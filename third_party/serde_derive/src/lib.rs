//! Offline stub of `serde_derive` (see `third_party/README.md`).
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for
//! non-generic structs with named fields, without `syn`/`quote`: the
//! input token stream is walked with the bare `proc_macro` API and the
//! impl is emitted as a parsed string. `#[serde(...)]` attributes are not
//! supported and fields are handled in declaration order, matching the
//! real derive's default behavior — except that the derived
//! `Deserialize` always rejects unknown fields (see the `serde` stub's
//! crate docs).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` by emitting a `Content::Map` of the
/// struct's fields in declaration order.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (name, fields) = parse_struct(&tokens);
    let entries: String = fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::serialize_content(&self.{f})),"))
        .collect();
    let output = format!(
        "impl serde::Serialize for {name} {{\n\
             fn serialize_content(&self) -> serde::Content {{\n\
                 serde::Content::Map(vec![{entries}])\n\
             }}\n\
         }}"
    );
    output
        .parse()
        .expect("serde_derive stub generated invalid Rust")
}

/// Derives `serde::Deserialize` by reading the struct's fields back out
/// of a `Content::Map` through `serde::MapReader`, which rejects unknown
/// fields after every declared field has been claimed.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (name, fields) = parse_struct(&tokens);
    let reads: String = fields
        .iter()
        .map(|f| format!("{f}: map.field(\"{f}\")?,"))
        .collect();
    let output = format!(
        "impl serde::Deserialize for {name} {{\n\
             fn deserialize_content(content: &serde::Content)\n\
                 -> Result<Self, serde::DeError> {{\n\
                 let mut map = serde::MapReader::new(content, \"{name}\")?;\n\
                 let out = {name} {{ {reads} }};\n\
                 map.finish()?;\n\
                 Ok(out)\n\
             }}\n\
         }}"
    );
    output
        .parse()
        .expect("serde_derive stub generated invalid Rust")
}

/// Extracts the struct name and named-field identifiers from the token
/// stream of a struct definition. Panics with a readable message on
/// unsupported shapes (enums, tuple structs, generics).
fn parse_struct(tokens: &[TokenTree]) -> (String, Vec<String>) {
    let mut i = 0;
    // Skip outer attributes (`#[...]`) and visibility.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                // `pub(crate)` etc: skip the restriction group.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    match &tokens[i] {
        TokenTree::Ident(id) if id.to_string() == "struct" => i += 1,
        other => panic!("serde_derive stub: only structs are supported, found `{other}`"),
    }
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected struct name, found `{other}`"),
    };
    i += 1;
    let body = match &tokens[i] {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g.stream(),
        TokenTree::Punct(p) if p.as_char() == '<' => {
            panic!("serde_derive stub: generic struct `{name}` is not supported")
        }
        other => panic!("serde_derive stub: `{name}` must have named fields, found `{other}`"),
    };
    (name, parse_fields(body))
}

/// Collects field names: the identifier preceding each top-level `:`.
/// Tracks `<`/`>` depth so commas inside generic types don't split a
/// field, and skips field attributes. The `>` of an `->` arrow (fn
/// pointer / closure types) is not an angle-bracket close: the `-` is
/// joint-spaced, so it is recognized and skipped.
fn parse_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut angle_depth = 0i32;
    let mut expecting_name = true;
    let mut last_ident: Option<String> = None;
    let mut arrow = false;
    let mut iter = body.into_iter().peekable();
    while let Some(tok) = iter.next() {
        let prev_arrow = arrow;
        arrow = matches!(
            &tok,
            TokenTree::Punct(p)
                if p.as_char() == '-' && p.spacing() == proc_macro::Spacing::Joint
        );
        match tok {
            TokenTree::Punct(p) if p.as_char() == '#' && expecting_name => {
                // Field attribute: consume the `[...]` group.
                iter.next();
            }
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && !prev_arrow => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ':' && angle_depth == 0 && expecting_name => {
                if let Some(name) = last_ident.take() {
                    fields.push(name);
                }
                expecting_name = false;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                expecting_name = true;
                last_ident = None;
            }
            TokenTree::Ident(id) if expecting_name => {
                let s = id.to_string();
                if s != "pub" {
                    last_ident = Some(s);
                }
            }
            _ => {}
        }
    }
    fields
}
