//! Offline stub of `serde_json` (see `third_party/README.md`).
//!
//! Renders the `serde` stub's `Content` tree to JSON text, parses JSON
//! text back into any [`Deserialize`] type (including the dynamic
//! [`Value`]), and provides a one-level [`json!`] macro.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

mod parse;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`, like JavaScript).
    Number(f64),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Index lookup; `None` out of bounds or for non-arrays.
    pub fn get_index(&self, idx: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(idx),
            _ => None,
        }
    }

    /// `Some(bool)` if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `Some(f64)` if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// `Some(i64)` if this is a number with an exact integer value.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && n.abs() < 2f64.powi(53) => Some(*n as i64),
            _ => None,
        }
    }

    /// `Some(u64)` if this is a non-negative integer number.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|n| u64::try_from(n).ok())
    }

    /// `Some(&str)` if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// `Some(slice)` if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// `Some(entries)` if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.get_index(idx).unwrap_or(&NULL)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&render(self, None, 0))
    }
}

impl Deserialize for Value {
    fn deserialize_content(content: &Content) -> Result<Self, serde::DeError> {
        Ok(content_to_value(content.clone()))
    }
}

impl Serialize for Value {
    fn serialize_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Number(n) => Content::F64(*n),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(items) => {
                Content::Seq(items.iter().map(Serialize::serialize_content).collect())
            }
            Value::Object(entries) => Content::Map(
                entries
                    .iter()
                    .map(|(k, v)| (k.clone(), v.serialize_content()))
                    .collect(),
            ),
        }
    }
}

/// Serialization/parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Converts any `Serialize` value into a [`Value`].
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    content_to_value(value.serialize_content())
}

/// Parses JSON text into any [`Deserialize`] type (like the real
/// `serde_json::from_str`; deserialize to [`Value`] for dynamic access).
///
/// # Errors
///
/// Fails on malformed JSON, trailing garbage, or a shape mismatch with
/// `T` (including unknown fields for derived struct types).
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    from_value(&parse::parse_str(s)?)
}

/// Rebuilds any [`Deserialize`] type from an already-parsed [`Value`].
///
/// # Errors
///
/// Fails on a shape mismatch with `T`.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::deserialize_content(&value.serialize_content()).map_err(|e| Error::new(e.to_string()))
}

fn content_to_value(c: Content) -> Value {
    match c {
        Content::Null => Value::Null,
        Content::Bool(b) => Value::Bool(b),
        Content::I64(n) => Value::Number(n as f64),
        Content::U64(n) => Value::Number(n as f64),
        Content::F64(n) => Value::Number(n),
        Content::Str(s) => Value::String(s),
        Content::Seq(items) => Value::Array(items.into_iter().map(content_to_value).collect()),
        Content::Map(entries) => Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k, content_to_value(v)))
                .collect(),
        ),
    }
}

/// Compact JSON text.
///
/// # Errors
///
/// Fails on non-finite floats, which JSON cannot represent.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = to_value(value);
    check_finite(&v)?;
    Ok(render(&v, None, 0))
}

/// Pretty-printed JSON text (two-space indent, like the real crate).
///
/// # Errors
///
/// Fails on non-finite floats, which JSON cannot represent.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = to_value(value);
    check_finite(&v)?;
    Ok(render(&v, Some("  "), 0))
}

fn check_finite(v: &Value) -> Result<(), Error> {
    match v {
        Value::Number(n) if !n.is_finite() => {
            Err(Error::new(format!("cannot serialize non-finite float {n}")))
        }
        Value::Array(items) => items.iter().try_for_each(check_finite),
        Value::Object(entries) => entries.iter().try_for_each(|(_, v)| check_finite(v)),
        _ => Ok(()),
    }
}

fn render(v: &Value, indent: Option<&str>, depth: usize) -> String {
    let (nl, pad, pad_in) = match indent {
        Some(unit) => ("\n".to_string(), unit.repeat(depth), unit.repeat(depth + 1)),
        None => (String::new(), String::new(), String::new()),
    };
    let sep = if indent.is_some() { ": " } else { ":" };
    match v {
        Value::Null => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Number(n) => render_number(*n),
        Value::String(s) => escape_string(s),
        Value::Array(items) if items.is_empty() => "[]".to_string(),
        Value::Array(items) => {
            let body: Vec<String> = items
                .iter()
                .map(|it| format!("{pad_in}{}", render(it, indent, depth + 1)))
                .collect();
            format!("[{nl}{}{nl}{pad}]", body.join(&format!(",{nl}")))
        }
        Value::Object(entries) if entries.is_empty() => "{}".to_string(),
        Value::Object(entries) => {
            let body: Vec<String> = entries
                .iter()
                .map(|(k, val)| {
                    format!(
                        "{pad_in}{}{sep}{}",
                        escape_string(k),
                        render(val, indent, depth + 1)
                    )
                })
                .collect();
            format!("{{{nl}{}{nl}{pad}}}", body.join(&format!(",{nl}")))
        }
    }
}

fn render_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        // Integral values print without a trailing `.0`, like serde_json.
        format!("{}", n as i64)
    } else {
        // `{}` on f64 is the shortest representation that round-trips.
        format!("{n}")
    }
}

fn escape_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Builds a [`Value`] from a JSON-ish literal.
///
/// Supports `null`, `{ "key": expr, ... }`, `[expr, ...]`, and plain
/// expressions (anything implementing `Serialize`). Values inside
/// objects/arrays are expressions — nest by calling `json!` again.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $( $key:literal : $value:expr ),* $(,)? }) => {
        $crate::Value::Object(vec![ $( ($key.to_string(), $crate::to_value(&$value)) ),* ])
    };
    ([ $( $value:expr ),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$value) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_reparses() {
        let v = json!({
            "name": "tgv",
            "nodes": 4_200_000u64,
            "ratio": 1.5f64,
            "tags": json!(["a", "b"]),
            "none": json!(null),
        });
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back["name"].as_str(), Some("tgv"));
        assert_eq!(back["nodes"].as_u64(), Some(4_200_000));
        assert_eq!(back["ratio"].as_f64(), Some(1.5));
        assert_eq!(back["tags"][1].as_str(), Some("b"));
        assert!(back["none"].is_null());
    }

    #[test]
    fn generic_from_str_roundtrips_derived_structs() {
        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        struct Cfg {
            name: String,
            edge: usize,
            cfl: Option<f64>,
        }
        let cfg = Cfg {
            name: "tgv".into(),
            edge: 8,
            cfl: Some(0.4),
        };
        let text = to_string(&cfg).unwrap();
        assert_eq!(from_str::<Cfg>(&text).unwrap(), cfg);
        // Unknown fields in the text are rejected, not silently dropped.
        let err = from_str::<Cfg>(r#"{"name":"a","edge":1,"cfl":null,"x":0}"#).unwrap_err();
        assert!(err.to_string().contains("unknown field `x`"), "{err}");
    }

    #[test]
    fn compact_matches_expected_shape() {
        let v = json!({ "a": 1u8, "b": json!([true, json!(null)]) });
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[true,null]}"#);
    }

    #[test]
    fn non_finite_floats_error() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string_pretty(&f64::INFINITY).is_err());
    }

    #[test]
    fn escapes_control_and_quote_chars() {
        let text = to_string(&"a\"b\\c\nd").unwrap();
        assert_eq!(text, r#""a\"b\\c\nd""#);
        assert_eq!(
            from_str::<Value>(&text).unwrap().as_str(),
            Some("a\"b\\c\nd")
        );
    }
}
