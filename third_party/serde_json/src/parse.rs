//! A small recursive-descent JSON parser for the stub's [`Value`].

use crate::{Error, Value};

/// Parses JSON text into a [`Value`] (the backend of the crate-level
/// generic `from_str`).
///
/// # Errors
///
/// Returns a positioned message on malformed input or trailing garbage.
pub(crate) fn parse_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("number span is ASCII");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not supported by the stub.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().expect("non-empty rest");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse_str(r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": true}}"#).unwrap();
        assert_eq!(v["a"][2].as_f64(), Some(-300.0));
        assert!(v["b"]["c"].is_null());
        assert_eq!(v["b"]["d"].as_bool(), Some(true));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_str("{} x").is_err());
        assert!(parse_str("[1,]").is_err());
        assert!(parse_str("").is_err());
    }
}
