//! Offline stub of `criterion` (see `third_party/README.md`).
//!
//! Implements the `Criterion` / `BenchmarkGroup` / `Bencher` surface the
//! workspace's benches use. Each benchmark is warmed up briefly and then
//! timed over a fixed wall-clock budget; the mean iteration time is
//! printed in criterion-like one-line form. No statistics, baselines, or
//! HTML reports — `cargo bench` stays honest but lightweight.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Wall-clock budget per benchmark measurement.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
/// Wall-clock budget for warm-up.
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

/// Re-export of `std::hint::black_box`, criterion's optimization barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (printed, not statistically processed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("function", parameter)`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function.into()),
        }
    }

    /// Id derived from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    mean: Option<Duration>,
}

impl Bencher {
    /// Warm up, then time `f` until the measurement budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_BUDGET {
            black_box(f());
            warm_iters += 1;
        }
        // Batch size: roughly 1ms per batch, at least one iteration.
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let batch = ((0.001 / per_iter.max(1e-9)) as u64).clamp(1, 1 << 20);
        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < MEASURE_BUDGET {
            for _ in 0..batch {
                black_box(f());
            }
            iters += batch;
        }
        self.mean = Some(start.elapsed() / u32::try_from(iters.max(1)).unwrap_or(u32::MAX));
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn run_one(name: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { mean: None };
    f(&mut b);
    match b.mean {
        Some(mean) => {
            let rate = throughput
                .map(|t| {
                    let secs = mean.as_secs_f64().max(1e-12);
                    match t {
                        Throughput::Elements(n) => {
                            format!("  ({:.3} Melem/s)", n as f64 / secs / 1e6)
                        }
                        Throughput::Bytes(n) => {
                            format!("  ({:.3} MiB/s)", n as f64 / secs / (1024.0 * 1024.0))
                        }
                    }
                })
                .unwrap_or_default();
            println!("{name:<40} time: {}{rate}", format_duration(mean));
        }
        None => println!("{name:<40} (no measurement: closure never called iter)"),
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the sample count (accepted for API compatibility; the stub's
    /// time-budgeted loop ignores it).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotates subsequent benches with a throughput for rate printing.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{name}", self.name), self.throughput, &mut f);
        self
    }

    /// Runs a parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{id}", self.name),
            self.throughput,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group-runner function over the listed bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $( $target:path ),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($( $group:path ),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { mean: None };
        b.iter(|| std::hint::black_box(3u64.wrapping_mul(7)));
        assert!(b.mean.is_some());
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
        assert_eq!(BenchmarkId::new("f", 64).to_string(), "f/64");
    }
}
