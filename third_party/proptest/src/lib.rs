//! Offline stub of `proptest` (see `third_party/README.md`).
//!
//! Runs each property over [`CASES`] deterministically sampled inputs
//! (fixed-seed splitmix64, so failures reproduce across runs). Supports
//! the strategies this workspace uses: half-open numeric ranges and
//! `proptest::bool::ANY`. No shrinking — the failing case's arguments
//! are printed instead.

use std::fmt;

/// Number of sampled cases per property (the real crate defaults to 256;
/// 64 keeps mesh-building properties fast while still sweeping ranges).
pub const CASES: usize = 64;

pub mod prelude {
    //! The subset of `proptest::prelude` the workspace imports.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Strategy, TestCaseError,
    };
}

/// Deterministic RNG (splitmix64 with a fixed seed).
pub struct TestRng {
    state: u64,
}

impl Default for TestRng {
    fn default() -> Self {
        TestRng {
            state: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl TestRng {
    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator, sampled once per test case.
pub trait Strategy {
    /// Generated value type (printed when a property fails).
    type Value: fmt::Debug;
    /// Draws one value. `case` 0 pins the low edge so boundary values are
    /// always exercised.
    fn sample(&self, rng: &mut TestRng, case: usize) -> Self::Value;

    /// Maps generated values through `f` (proptest's `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng, case: usize) -> O {
        (self.f)(self.inner.sample(rng, case))
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {
        $(impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng, case: usize) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                if case == 0 {
                    return self.start;
                }
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                ((self.start as u128).wrapping_add(draw)) as $t
            }
        })*
    };
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng, case: usize) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        if case == 0 {
            return self.start;
        }
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng, case: usize) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        if case == 0 {
            return self.start;
        }
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).
    use super::{Strategy, TestRng};

    /// Length specification: a fixed `usize` or a half-open range.
    pub trait IntoSizeRange {
        /// `(min, max)` with `max` exclusive.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// Strategy producing `Vec`s of `elem`-generated values.
    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    /// `vec(element_strategy, len)` with `len` a fixed size or range.
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        assert!(min < max, "empty vec size range");
        VecStrategy { elem, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng, case: usize) -> Vec<S::Value> {
            let span = (self.max - self.min) as u64;
            let len = if case == 0 {
                self.min
            } else {
                self.min + (rng.next_u64() % span) as usize
            };
            (0..len).map(|_| self.elem.sample(rng, case)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies (`proptest::bool::ANY`).
    use super::{Strategy, TestRng};

    /// Samples `true`/`false` uniformly (`false` on the edge case).
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The any-boolean strategy value.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng, case: usize) -> bool {
            case != 0 && rng.next_u64() & 1 == 1
        }
    }
}

/// Failure raised by the `prop_assert*` macros.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// A failed property.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` looping over [`CASES`] sampled inputs.
#[macro_export]
macro_rules! proptest {
    ( $( $(#[$meta:meta])* fn $name:ident (
        $( $arg:ident in $strat:expr ),* $(,)?
    ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::TestRng::default();
                for case in 0..$crate::CASES {
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut rng, case); )*
                    let mut desc = String::new();
                    $( desc.push_str(&format!("{} = {:?}, ", stringify!($arg), $arg)); )*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = outcome {
                        panic!("property failed on case {case} ({desc}): {e}");
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports the sampled inputs instead of panicking inline.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// `assert_ne!` variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}` (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    proptest! {
        /// The stub itself: samples stay in range and hit the low edge.
        #[test]
        fn sampling_stays_in_range(x in 5u64..10, f in 0.5f64..2.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn first_case_is_low_edge() {
        let mut rng = TestRng::default();
        assert_eq!(Strategy::sample(&(3usize..6), &mut rng, 0), 3);
        assert!(!Strategy::sample(&crate::bool::ANY, &mut rng, 0));
    }

    #[test]
    fn rng_is_deterministic() {
        let (mut a, mut b) = (TestRng::default(), TestRng::default());
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
