//! Offline stub of `rayon` (see `third_party/README.md`).
//!
//! Provides the subset of rayon's data-parallel API this workspace uses:
//! the `par_iter()` / `into_par_iter()` → `map` → `collect` pipeline plus
//! the side-effect and reduction patterns (`for_each`, `fold`/`reduce`,
//! `sum`, `zip`, `filter`, `flat_map`, `par_chunks`/`par_chunks_mut`),
//! and the explicit task API [`scope`]/[`Scope::spawn`] the solver's
//! multi-device exchange workers run on.
//! Unlike a pass-through sequential
//! stub, every terminal operation genuinely fans the work out over
//! `std::thread::scope` threads (one chunk per available core) and
//! recombines the per-chunk results **in input order**, so:
//!
//! * parallel assembly paths stay parallel, and
//! * reductions are deterministic for a fixed worker count — the chunk
//!   boundaries (and therefore the floating-point grouping) depend only on
//!   the item count and `available_parallelism`, never on scheduling.

use std::num::NonZeroUsize;

pub mod prelude {
    //! The subset of `rayon::prelude` the workspace imports.
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

/// Number of worker threads used by the terminal operations.
fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Splits `items` into one contiguous chunk per worker, runs `f` on each
/// chunk on a scoped thread, and returns the per-chunk results in input
/// order. Panics inside `f` are resumed on the caller (like real rayon).
fn run_chunked<T, U>(items: Vec<T>, f: impl Fn(Vec<T>) -> U + Sync) -> Vec<U>
where
    T: Send,
    U: Send,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = num_threads().min(n);
    if workers <= 1 {
        return vec![f(items)];
    }
    let chunk = n.div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut iter = items.into_iter();
    loop {
        let c: Vec<T> = iter.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let f = &f;
    let mut out: Vec<U> = Vec::with_capacity(chunks.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks.into_iter().map(|c| s.spawn(move || f(c))).collect();
        for h in handles {
            // Resume the original payload so assertion messages from
            // inside parallel closures survive (like real rayon).
            match h.join() {
                Ok(u) => out.push(u),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out
}

/// A scope for spawning borrowed worker tasks, mirroring `rayon::Scope`.
///
/// Backed by [`std::thread::scope`]: every [`Scope::spawn`] starts its
/// own OS thread (no pool, no work stealing). That is a deliberately
/// *stronger* guarantee than real rayon's: spawned tasks here always run
/// concurrently, so a task may block waiting on another spawned task
/// (e.g. a mailbox handshake between device workers) without risk of the
/// scheduler deadlocking — a pattern that could starve on a fixed-size
/// work-stealing pool. Callers should spawn O(devices) long-lived
/// workers, not O(elements) fine-grained tasks.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns `f` on a fresh scoped OS thread. The closure may borrow
    /// from the environment (`'env` outlives the scope) and may spawn
    /// further tasks through the scope handle it receives.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

/// Runs `op` inside a task scope, mirroring `rayon::scope`: every task
/// spawned through the handle completes before `scope` returns, and a
/// panic in any spawned task propagates to the caller (via
/// [`std::thread::scope`]'s join-on-exit). See [`Scope`] for the
/// one-thread-per-spawn execution guarantee.
pub fn scope<'env, OP, R>(op: OP) -> R
where
    OP: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R + Send,
    R: Send,
{
    std::thread::scope(|s| op(&Scope { inner: s }))
}

/// A "parallel" iterator over an eagerly collected item list.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A mapped parallel iterator: items plus the mapping function.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

/// Conversion into a parallel iterator, mirroring rayon's trait.
pub trait IntoParallelIterator {
    /// Item type produced by the parallel iterator.
    type Item: Send;
    /// Converts `self` into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// `.par_iter()` on `&self`, mirroring rayon's by-reference entry point.
pub trait IntoParallelRefIterator<'a> {
    /// Item type produced (a reference).
    type Item: Send + 'a;
    /// Borrowing parallel iterator over `&self`.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send> IntoParallelIterator for ParIter<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        self
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        self.as_slice().par_iter()
    }
}

/// `.par_chunks()` on slices, mirroring rayon's `ParallelSlice`.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over contiguous `size`-element chunks (the last
    /// chunk may be shorter).
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    fn par_chunks(&self, size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParIter<&[T]> {
        assert!(size > 0, "chunk size must be non-zero");
        ParIter {
            items: self.chunks(size).collect(),
        }
    }
}

/// `.par_chunks_mut()` on slices, mirroring rayon's `ParallelSliceMut`.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over contiguous mutable `size`-element chunks
    /// (the last chunk may be shorter).
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]> {
        assert!(size > 0, "chunk size must be non-zero");
        ParIter {
            items: self.chunks_mut(size).collect(),
        }
    }
}

/// The operations available on the stub's parallel iterators.
pub trait ParallelIterator: Sized {
    /// Item type.
    type Item: Send;
    /// Maps each item through `f` (lazily; work happens in the terminal
    /// operation).
    fn map<R, F>(self, f: F) -> ParMap<Self::Item, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync;
    /// Runs the pipeline across threads and collects in input order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>;
    /// Applies `f` to every item across worker threads (no result).
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync;
    /// Folds each worker chunk from `identity()` with `fold_op`, yielding
    /// a parallel iterator over the per-chunk accumulators (rayon's
    /// `fold`; chain with [`ParallelIterator::reduce`] or `map`).
    fn fold<U, ID, F>(self, identity: ID, fold_op: F) -> ParIter<U>
    where
        U: Send,
        ID: Fn() -> U + Sync,
        F: Fn(U, Self::Item) -> U + Sync;
    /// Reduces all items to one value: worker chunks fold in parallel,
    /// then the per-chunk results combine in input order. Returns
    /// `identity()` when empty.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync;
    /// Pairs items positionally with `other`, truncating to the shorter
    /// side (rayon's `IndexedParallelIterator::zip`).
    fn zip<Z>(self, other: Z) -> ParIter<(Self::Item, Z::Item)>
    where
        Z: IntoParallelIterator;
    /// Keeps the items satisfying `p`, preserving input order (rayon's
    /// `filter`; evaluated eagerly across worker threads).
    fn filter<P>(self, p: P) -> ParIter<Self::Item>
    where
        P: Fn(&Self::Item) -> bool + Sync;
    /// Maps each item to a parallel iterable and flattens the results in
    /// input order (rayon's `flat_map`; evaluated eagerly across worker
    /// threads).
    fn flat_map<PI, F>(self, f: F) -> ParIter<PI::Item>
    where
        PI: IntoParallelIterator,
        F: Fn(Self::Item) -> PI + Sync;
    /// Sums all items: worker chunks sum in parallel, then the per-chunk
    /// sums combine in input order (deterministic for a fixed worker
    /// count, like [`ParallelIterator::reduce`]). Mirrors rayon's `sum`.
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>;
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;
    fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<T>,
    {
        C::from_vec(self.items)
    }
    fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        let f = &f;
        run_chunked(self.items, |chunk| {
            for item in chunk {
                f(item);
            }
        });
    }
    fn fold<U, ID, F>(self, identity: ID, fold_op: F) -> ParIter<U>
    where
        U: Send,
        ID: Fn() -> U + Sync,
        F: Fn(U, T) -> U + Sync,
    {
        let identity = &identity;
        let fold_op = &fold_op;
        ParIter {
            items: run_chunked(self.items, |chunk| {
                chunk.into_iter().fold(identity(), fold_op)
            }),
        }
    }
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T + Sync,
        OP: Fn(T, T) -> T + Sync,
    {
        let id = &identity;
        let op_ref = &op;
        let partials = run_chunked(self.items, |chunk| chunk.into_iter().fold(id(), op_ref));
        partials.into_iter().fold(identity(), &op)
    }
    fn zip<Z>(self, other: Z) -> ParIter<(T, Z::Item)>
    where
        Z: IntoParallelIterator,
    {
        ParIter {
            items: self
                .items
                .into_iter()
                .zip(other.into_par_iter().items)
                .collect(),
        }
    }
    fn filter<P>(self, p: P) -> ParIter<T>
    where
        P: Fn(&T) -> bool + Sync,
    {
        let p = &p;
        ParIter {
            items: run_chunked(self.items, |chunk| {
                chunk.into_iter().filter(p).collect::<Vec<T>>()
            })
            .into_iter()
            .flatten()
            .collect(),
        }
    }
    fn flat_map<PI, F>(self, f: F) -> ParIter<PI::Item>
    where
        PI: IntoParallelIterator,
        F: Fn(T) -> PI + Sync,
    {
        let f = &f;
        ParIter {
            items: run_chunked(self.items, |chunk| {
                chunk
                    .into_iter()
                    .flat_map(|item| f(item).into_par_iter().items)
                    .collect::<Vec<PI::Item>>()
            })
            .into_iter()
            .flatten()
            .collect(),
        }
    }
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<T> + std::iter::Sum<S>,
    {
        run_chunked(self.items, |chunk| chunk.into_iter().sum::<S>())
            .into_iter()
            .sum()
    }
}

impl<T, R, F> ParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Maps the items over scoped worker threads, preserving order.
    fn run(self) -> Vec<R> {
        let ParMap { items, f } = self;
        let f = &f;
        run_chunked(items, |chunk| chunk.into_iter().map(f).collect::<Vec<R>>())
            .into_iter()
            .flatten()
            .collect()
    }

    /// Runs the map and collects the results in input order.
    pub fn collect<C>(self) -> C
    where
        C: FromParallelIterator<R>,
    {
        C::from_vec(self.run())
    }

    /// Applies `g` to every mapped item across worker threads.
    pub fn for_each<G>(self, g: G)
    where
        G: Fn(R) + Sync,
    {
        let ParMap { items, f } = self;
        let f = &f;
        let g = &g;
        run_chunked(items, |chunk| {
            for item in chunk {
                g(f(item));
            }
        });
    }

    /// Folds each worker chunk of mapped items from `identity()`, yielding
    /// the per-chunk accumulators as a parallel iterator.
    pub fn fold<U, ID, G>(self, identity: ID, fold_op: G) -> ParIter<U>
    where
        U: Send,
        ID: Fn() -> U + Sync,
        G: Fn(U, R) -> U + Sync,
    {
        let ParMap { items, f } = self;
        let f = &f;
        let identity = &identity;
        let fold_op = &fold_op;
        ParIter {
            items: run_chunked(items, |chunk| {
                chunk
                    .into_iter()
                    .fold(identity(), |acc, item| fold_op(acc, f(item)))
            }),
        }
    }

    /// Reduces the mapped items to one value (per-chunk folds in
    /// parallel, combined in input order; `identity()` when empty).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> R
    where
        ID: Fn() -> R + Sync,
        OP: Fn(R, R) -> R + Sync,
    {
        let ParMap { items, f } = self;
        let f = &f;
        let id = &identity;
        let op_ref = &op;
        let partials = run_chunked(items, |chunk| {
            chunk
                .into_iter()
                .fold(id(), |acc, item| op_ref(acc, f(item)))
        });
        partials.into_iter().fold(identity(), &op)
    }

    /// Keeps the mapped items satisfying `p`, preserving input order.
    pub fn filter<P>(self, p: P) -> ParIter<R>
    where
        P: Fn(&R) -> bool + Sync,
    {
        let ParMap { items, f } = self;
        let f = &f;
        let p = &p;
        ParIter {
            items: run_chunked(items, |chunk| {
                chunk.into_iter().map(f).filter(p).collect::<Vec<R>>()
            })
            .into_iter()
            .flatten()
            .collect(),
        }
    }

    /// Maps each mapped item to a parallel iterable and flattens the
    /// results in input order.
    pub fn flat_map<PI, G>(self, g: G) -> ParIter<PI::Item>
    where
        PI: IntoParallelIterator,
        G: Fn(R) -> PI + Sync,
    {
        let ParMap { items, f } = self;
        let f = &f;
        let g = &g;
        ParIter {
            items: run_chunked(items, |chunk| {
                chunk
                    .into_iter()
                    .flat_map(|item| g(f(item)).into_par_iter().items)
                    .collect::<Vec<PI::Item>>()
            })
            .into_iter()
            .flatten()
            .collect(),
        }
    }

    /// Sums the mapped items (per-chunk sums in parallel, combined in
    /// input order — deterministic for a fixed worker count).
    pub fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<R> + std::iter::Sum<S>,
    {
        let ParMap { items, f } = self;
        let f = &f;
        run_chunked(items, |chunk| chunk.into_iter().map(f).sum::<S>())
            .into_iter()
            .sum()
    }
}

/// Collection from the stub's parallel pipelines (rayon's
/// `FromParallelIterator`, restricted to an ordered `Vec` hand-off).
pub trait FromParallelIterator<T> {
    /// Builds the collection from items in input order.
    fn from_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_vec(items: Vec<T>) -> Self {
        items
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn range_map_collect_preserves_order() {
        let squares: Vec<usize> = (0..1000).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 1000);
        assert!(squares.iter().enumerate().all(|(i, &s)| s == i * i));
    }

    #[test]
    fn slice_par_iter_borrows() {
        let data = vec![(0usize, 10usize), (10, 20), (20, 25)];
        let sums: Vec<usize> = data.par_iter().map(|&(a, b)| (a..b).sum()).collect();
        assert_eq!(sums, vec![45, 145, 110]);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u8> = (0..0).into_par_iter().map(|_| 1u8).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn for_each_visits_every_item() {
        let count = AtomicUsize::new(0);
        let sum = AtomicUsize::new(0);
        (0..500).into_par_iter().for_each(|i| {
            count.fetch_add(1, Ordering::Relaxed);
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 500);
        assert_eq!(sum.load(Ordering::Relaxed), 499 * 500 / 2);
    }

    #[test]
    fn mapped_for_each_applies_both_stages() {
        let sum = AtomicUsize::new(0);
        (0..100).into_par_iter().map(|i| i * 2).for_each(|x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 99 * 100);
    }

    #[test]
    fn fold_then_reduce_sums() {
        let total = (0..10_000)
            .into_par_iter()
            .fold(|| 0usize, |acc, i| acc + i)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 9_999 * 10_000 / 2);
    }

    #[test]
    fn reduce_on_mapped_items() {
        let max = (0..257)
            .into_par_iter()
            .map(|i| (i * 31) % 257)
            .reduce(|| 0, |a, b| a.max(b));
        assert_eq!(max, 256);
    }

    #[test]
    fn reduce_of_empty_is_identity() {
        let v: Vec<usize> = Vec::new();
        let r = v.into_par_iter().reduce(|| 42, |a, b| a + b);
        assert_eq!(r, 42);
    }

    #[test]
    fn reduce_is_deterministic_across_runs() {
        // Floating-point grouping depends only on item count and worker
        // count, so two identical runs are bitwise equal.
        let run = || {
            (0..10_000)
                .into_par_iter()
                .map(|i| 1.0 / (1.0 + i as f64))
                .reduce(|| 0.0, |a, b| a + b)
        };
        assert_eq!(run().to_bits(), run().to_bits());
    }

    #[test]
    fn sum_matches_sequential_and_is_deterministic() {
        let total: usize = (0..10_000).into_par_iter().sum();
        assert_eq!(total, 9_999 * 10_000 / 2);
        let mapped: f64 = (0..1_000).into_par_iter().map(|i| i as f64 * 0.5).sum();
        assert!((mapped - 0.5 * 999.0 * 1000.0 / 2.0).abs() < 1e-9);
        // Fixed worker count ⇒ fixed chunking ⇒ bitwise-stable f64 sums.
        let run = || -> f64 {
            (0..10_000)
                .into_par_iter()
                .map(|i| 1.0 / (1.0 + i as f64))
                .sum()
        };
        assert_eq!(run().to_bits(), run().to_bits());
        let empty: f64 = Vec::<f64>::new().into_par_iter().sum();
        assert_eq!(empty, 0.0);
    }

    #[test]
    fn filter_keeps_matching_items_in_order() {
        let evens: Vec<usize> = (0..1000).into_par_iter().filter(|&i| i % 2 == 0).collect();
        assert_eq!(evens.len(), 500);
        assert!(evens.windows(2).all(|w| w[0] < w[1]));
        assert!(evens.iter().all(|&i| i % 2 == 0));
        // Mapped variant, and chaining into a terminal op.
        let sum: usize = (0..100)
            .into_par_iter()
            .map(|i| i * 3)
            .filter(|&x| x % 2 == 1)
            .into_par_iter()
            .sum();
        assert_eq!(sum, (0..100).map(|i| i * 3).filter(|x| x % 2 == 1).sum());
    }

    #[test]
    fn flat_map_flattens_in_input_order() {
        let out: Vec<usize> = (0..100)
            .into_par_iter()
            .flat_map(|i| vec![i; i % 3])
            .collect();
        let expect: Vec<usize> = (0..100).flat_map(|i| vec![i; i % 3]).collect();
        assert_eq!(out, expect);
        // Mapped variant preserves order too (the halo-stream pattern:
        // per-shard vectors concatenated in shard order).
        let halo: Vec<(usize, usize)> =
            vec![vec![(0, 1), (0, 2)], vec![(1, 7)], vec![], vec![(3, 4)]]
                .into_par_iter()
                .map(|v| v)
                .flat_map(|v| v)
                .collect();
        assert_eq!(halo, vec![(0, 1), (0, 2), (1, 7), (3, 4)]);
    }

    #[test]
    fn filter_then_for_each_visits_only_kept_items() {
        let count = AtomicUsize::new(0);
        (0..256)
            .into_par_iter()
            .filter(|&i| i >= 200)
            .for_each(|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        assert_eq!(count.load(Ordering::Relaxed), 56);
    }

    #[test]
    fn zip_pairs_positionally_and_truncates() {
        let a = vec![1, 2, 3, 4];
        let b = vec![10, 20, 30];
        let pairs: Vec<(i32, i32)> = a.into_par_iter().zip(b).collect();
        assert_eq!(pairs, vec![(1, 10), (2, 20), (3, 30)]);
    }

    #[test]
    fn par_chunks_covers_the_slice() {
        let data: Vec<usize> = (0..103).collect();
        let sums: Vec<usize> = data
            .par_chunks(10)
            .map(|c| c.iter().sum::<usize>())
            .collect();
        assert_eq!(sums.len(), 11);
        assert_eq!(sums.iter().sum::<usize>(), 102 * 103 / 2);
    }

    #[test]
    fn par_chunks_mut_mutates_in_place() {
        let mut data = vec![1i64; 1000];
        data.par_chunks_mut(64).for_each(|chunk| {
            for v in chunk {
                *v *= 3;
            }
        });
        assert!(data.iter().all(|&v| v == 3));
    }

    #[test]
    fn zipped_chunks_scale_elementwise() {
        // The driver's lumped-mass divide pattern.
        let mut num = vec![10.0f64; 97];
        let den = vec![2.0f64; 97];
        num.par_chunks_mut(16)
            .zip(den.par_chunks(16))
            .for_each(|(n, d)| {
                for (x, y) in n.iter_mut().zip(d) {
                    *x /= y;
                }
            });
        assert!(num.iter().all(|&v| v == 5.0));
    }

    #[test]
    #[should_panic(expected = "chunk size")]
    fn zero_chunk_size_panics() {
        let data = [1, 2, 3];
        let _ = data.par_chunks(0);
    }

    #[test]
    fn scope_spawns_genuinely_concurrent_tasks() {
        // Every spawn gets its own OS thread, so N tasks can all wait on
        // one barrier — with a shared pool smaller than N this would
        // deadlock rather than pass.
        const N: usize = 8;
        let barrier = std::sync::Barrier::new(N);
        let passed = AtomicUsize::new(0);
        crate::scope(|s| {
            for _ in 0..N {
                s.spawn(|_| {
                    barrier.wait();
                    passed.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(passed.load(Ordering::Relaxed), N);
    }

    #[test]
    fn scope_tasks_write_disjoint_result_slots() {
        // The device-worker pattern: hand each task a disjoint &mut slot,
        // join at scope exit, read the results.
        let mut results = vec![0usize; 6];
        crate::scope(|s| {
            for (i, slot) in results.iter_mut().enumerate() {
                s.spawn(move |_| *slot = (i + 1) * 10);
            }
        });
        assert_eq!(results, vec![10, 20, 30, 40, 50, 60]);
    }

    #[test]
    fn scope_returns_op_result_and_supports_nested_spawn() {
        let sum = AtomicUsize::new(0);
        let r = crate::scope(|s| {
            s.spawn(|s| {
                sum.fetch_add(1, Ordering::Relaxed);
                s.spawn(|_| {
                    sum.fetch_add(2, Ordering::Relaxed);
                });
            });
            42usize
        });
        assert_eq!(r, 42);
        assert_eq!(sum.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn scope_propagates_spawned_panics() {
        let caught = std::panic::catch_unwind(|| {
            crate::scope(|s| {
                s.spawn(|_| panic!("worker died"));
            });
        });
        assert!(caught.is_err());
    }
}
