//! Offline stub of `rayon` (see `third_party/README.md`).
//!
//! Provides the `par_iter()` / `into_par_iter()` → `map` → `collect`
//! pipeline this workspace uses. Unlike a pass-through sequential stub,
//! `collect` genuinely fans the mapped items out over `std::thread::scope`
//! threads (one chunk per available core) and reassembles the results in
//! input order, so the parallel assembly paths stay parallel.

use std::num::NonZeroUsize;

pub mod prelude {
    //! The subset of `rayon::prelude` the workspace imports.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Number of worker threads used for `collect`.
fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// A "parallel" iterator over an eagerly collected item list.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A mapped parallel iterator: items plus the mapping function.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

/// Conversion into a parallel iterator, mirroring rayon's trait.
pub trait IntoParallelIterator {
    /// Item type produced by the parallel iterator.
    type Item: Send;
    /// Converts `self` into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// `.par_iter()` on `&self`, mirroring rayon's by-reference entry point.
pub trait IntoParallelRefIterator<'a> {
    /// Item type produced (a reference).
    type Item: Send + 'a;
    /// Borrowing parallel iterator over `&self`.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        self.as_slice().par_iter()
    }
}

/// The operations available on the stub's parallel iterators.
pub trait ParallelIterator: Sized {
    /// Item type.
    type Item: Send;
    /// Maps each item through `f` (lazily; work happens in `collect`).
    fn map<R, F>(self, f: F) -> ParMap<Self::Item, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync;
    /// Runs the pipeline across threads and collects in input order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>;
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;
    fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<T>,
    {
        C::from_vec(self.items)
    }
}

impl<T, R, F> ParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Maps the items over scoped worker threads, preserving order.
    fn run(self) -> Vec<R> {
        let ParMap { items, f } = self;
        let n = items.len();
        let workers = num_threads().min(n.max(1));
        if workers <= 1 || n < 2 {
            return items.into_iter().map(f).collect();
        }
        let chunk = n.div_ceil(workers);
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
        let mut iter = items.into_iter();
        loop {
            let c: Vec<T> = iter.by_ref().take(chunk).collect();
            if c.is_empty() {
                break;
            }
            chunks.push(c);
        }
        let f = &f;
        let mut out: Vec<R> = Vec::with_capacity(n);
        std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
                .collect();
            for h in handles {
                // Resume the original payload so assertion messages from
                // inside parallel closures survive (like real rayon).
                match h.join() {
                    Ok(chunk) => out.extend(chunk),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        out
    }

    /// Runs the map and collects the results in input order.
    pub fn collect<C>(self) -> C
    where
        C: FromParallelIterator<R>,
    {
        C::from_vec(self.run())
    }
}

/// Collection from the stub's parallel pipelines (rayon's
/// `FromParallelIterator`, restricted to an ordered `Vec` hand-off).
pub trait FromParallelIterator<T> {
    /// Builds the collection from items in input order.
    fn from_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_vec(items: Vec<T>) -> Self {
        items
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let squares: Vec<usize> = (0..1000).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 1000);
        assert!(squares.iter().enumerate().all(|(i, &s)| s == i * i));
    }

    #[test]
    fn slice_par_iter_borrows() {
        let data = vec![(0usize, 10usize), (10, 20), (20, 25)];
        let sums: Vec<usize> = data.par_iter().map(|&(a, b)| (a..b).sum()).collect();
        assert_eq!(sums, vec![45, 145, 110]);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u8> = (0..0).into_par_iter().map(|_| 1u8).collect();
        assert!(out.is_empty());
    }
}
