//! Offline stub of `serde` (see `third_party/README.md`).
//!
//! The real serde drives a `Serializer` visitor; this stub instead has
//! every `Serialize` type produce an owned [`Content`] tree that data
//! formats (here: the sibling `serde_json` stub) render. The subset is
//! exactly what this workspace uses: `#[derive(Serialize)]` on plain
//! structs plus impls for primitives, strings, options, sequences,
//! arrays, tuples, and string-keyed maps.

// Let the derive-generated `serde::...` paths resolve inside this crate
// too (the real serde does the same).
extern crate self as serde;

pub use serde_derive::Serialize;

/// A self-describing serialized value — the stub's wire-independent tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// Unit / `None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (slices, `Vec`, arrays, tuples).
    Seq(Vec<Content>),
    /// Map / struct with string keys, in field order.
    Map(Vec<(String, Content)>),
}

/// A data structure that can be serialized into a [`Content`] tree.
pub trait Serialize {
    /// Converts `self` into the owned content tree.
    fn serialize_content(&self) -> Content;
}

macro_rules! impl_int {
    ($($t:ty => $v:ident as $as:ty),* $(,)?) => {
        $(impl Serialize for $t {
            fn serialize_content(&self) -> Content { Content::$v(*self as $as) }
        })*
    };
}

impl_int!(
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    isize => I64 as i64,
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
    usize => U64 as u64,
);

impl Serialize for f32 {
    fn serialize_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn serialize_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Serialize for bool {
    fn serialize_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Serialize for str {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn serialize_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Serialize for char {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for () {
    fn serialize_content(&self) -> Content {
        Content::Null
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: ?Sized> Serialize for std::marker::PhantomData<T> {
    fn serialize_content(&self) -> Content {
        Content::Null
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_content(&self) -> Content {
        match self {
            Some(v) => v.serialize_content(),
            None => Content::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_content(&self) -> Content {
        self.as_slice().serialize_content()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_content(&self) -> Content {
        self.as_slice().serialize_content()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_content(&self) -> Content {
        Content::Seq(vec![self.0.serialize_content(), self.1.serialize_content()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize_content(&self) -> Content {
        Content::Seq(vec![
            self.0.serialize_content(),
            self.1.serialize_content(),
            self.2.serialize_content(),
        ])
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_content()))
                .collect(),
        )
    }
}

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn serialize_content(&self) -> Content {
        // Sorted for deterministic output.
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl Serialize for Content {
    fn serialize_content(&self) -> Content {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip_to_content() {
        assert_eq!(3u32.serialize_content(), Content::U64(3));
        assert_eq!((-3i32).serialize_content(), Content::I64(-3));
        assert_eq!(1.5f64.serialize_content(), Content::F64(1.5));
        assert_eq!("hi".serialize_content(), Content::Str("hi".into()));
        assert_eq!(None::<u8>.serialize_content(), Content::Null);
        assert_eq!(
            vec![1u8, 2].serialize_content(),
            Content::Seq(vec![Content::U64(1), Content::U64(2)])
        );
    }

    #[test]
    fn derive_survives_arrow_in_field_type() {
        // The `>` of `->` must not close an angle bracket in the derive's
        // field parser, or every later field is silently dropped.
        #[derive(Serialize)]
        struct P {
            tag: std::marker::PhantomData<fn() -> u64>,
            v: u32,
        }
        let c = P {
            tag: std::marker::PhantomData,
            v: 7,
        }
        .serialize_content();
        assert_eq!(
            c,
            Content::Map(vec![
                ("tag".into(), Content::Null),
                ("v".into(), Content::U64(7)),
            ])
        );
    }

    #[test]
    fn derive_emits_field_order_map() {
        #[derive(Serialize)]
        struct P {
            x: f64,
            name: String,
        }
        let c = P {
            x: 2.0,
            name: "a".into(),
        }
        .serialize_content();
        assert_eq!(
            c,
            Content::Map(vec![
                ("x".into(), Content::F64(2.0)),
                ("name".into(), Content::Str("a".into())),
            ])
        );
    }
}
