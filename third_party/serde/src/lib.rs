//! Offline stub of `serde` (see `third_party/README.md`).
//!
//! The real serde drives a `Serializer` visitor; this stub instead has
//! every `Serialize` type produce an owned [`Content`] tree that data
//! formats (here: the sibling `serde_json` stub) render, and every
//! [`Deserialize`] type rebuild itself from such a tree. The subset is
//! exactly what this workspace uses: `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` on plain structs plus impls for primitives,
//! strings, options, sequences, arrays, tuples, and string-keyed maps.
//!
//! Unlike the real serde, the derived `Deserialize` **always rejects
//! unknown fields** (as if `#[serde(deny_unknown_fields)]` were present)
//! — declarative configs are the only deserialization consumer in this
//! workspace and they want strict validation.

// Let the derive-generated `serde::...` paths resolve inside this crate
// too (the real serde does the same).
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value — the stub's wire-independent tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// Unit / `None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (slices, `Vec`, arrays, tuples).
    Seq(Vec<Content>),
    /// Map / struct with string keys, in field order.
    Map(Vec<(String, Content)>),
}

/// A data structure that can be serialized into a [`Content`] tree.
pub trait Serialize {
    /// Converts `self` into the owned content tree.
    fn serialize_content(&self) -> Content;
}

macro_rules! impl_int {
    ($($t:ty => $v:ident as $as:ty),* $(,)?) => {
        $(impl Serialize for $t {
            fn serialize_content(&self) -> Content { Content::$v(*self as $as) }
        })*
    };
}

impl_int!(
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    isize => I64 as i64,
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
    usize => U64 as u64,
);

impl Serialize for f32 {
    fn serialize_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn serialize_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Serialize for bool {
    fn serialize_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Serialize for str {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn serialize_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Serialize for char {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for () {
    fn serialize_content(&self) -> Content {
        Content::Null
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: ?Sized> Serialize for std::marker::PhantomData<T> {
    fn serialize_content(&self) -> Content {
        Content::Null
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_content(&self) -> Content {
        match self {
            Some(v) => v.serialize_content(),
            None => Content::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_content(&self) -> Content {
        self.as_slice().serialize_content()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_content(&self) -> Content {
        self.as_slice().serialize_content()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_content(&self) -> Content {
        Content::Seq(vec![self.0.serialize_content(), self.1.serialize_content()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize_content(&self) -> Content {
        Content::Seq(vec![
            self.0.serialize_content(),
            self.1.serialize_content(),
            self.2.serialize_content(),
        ])
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_content()))
                .collect(),
        )
    }
}

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn serialize_content(&self) -> Content {
        // Sorted for deterministic output.
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl Serialize for Content {
    fn serialize_content(&self) -> Content {
        self.clone()
    }
}

// --------------------------------------------------------- deserialization

/// Deserialization error: a human-readable message naming the offending
/// field or type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Builds an error from a message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialize: {}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// A data structure that can be rebuilt from a [`Content`] tree — the
/// stub's counterpart of serde's `Deserialize`.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the content tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] on a type/shape mismatch.
    fn deserialize_content(content: &Content) -> Result<Self, DeError>;
}

fn type_name(c: &Content) -> &'static str {
    match c {
        Content::Null => "null",
        Content::Bool(_) => "bool",
        Content::I64(_) | Content::U64(_) | Content::F64(_) => "number",
        Content::Str(_) => "string",
        Content::Seq(_) => "sequence",
        Content::Map(_) => "map",
    }
}

fn integral(c: &Content) -> Option<i128> {
    match c {
        Content::I64(n) => Some(i128::from(*n)),
        Content::U64(n) => Some(i128::from(*n)),
        // JSON numbers arrive as f64; accept exact integral values.
        Content::F64(n) if n.fract() == 0.0 && n.abs() < 2f64.powi(53) => Some(*n as i128),
        _ => None,
    }
}

macro_rules! impl_de_int {
    ($($t:ty),* $(,)?) => {
        $(impl Deserialize for $t {
            fn deserialize_content(content: &Content) -> Result<Self, DeError> {
                let n = integral(content).ok_or_else(|| {
                    DeError::new(format!(
                        "expected an integer, found {}", type_name(content)
                    ))
                })?;
                <$t>::try_from(n).map_err(|_| {
                    DeError::new(format!(
                        "integer {n} out of range for {}", stringify!($t)
                    ))
                })
            }
        })*
    };
}

impl_de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::F64(n) => Ok(*n),
            Content::I64(n) => Ok(*n as f64),
            Content::U64(n) => Ok(*n as f64),
            other => Err(DeError::new(format!(
                "expected a number, found {}",
                type_name(other)
            ))),
        }
    }
}

impl Deserialize for f32 {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        f64::deserialize_content(content).map(|n| n as f32)
    }
}

impl Deserialize for bool {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!(
                "expected a bool, found {}",
                type_name(other)
            ))),
        }
    }
}

impl Deserialize for String {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!(
                "expected a string, found {}",
                type_name(other)
            ))),
        }
    }
}

impl Deserialize for () {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(()),
            other => Err(DeError::new(format!(
                "expected null, found {}",
                type_name(other)
            ))),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::deserialize_content(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::deserialize_content).collect(),
            other => Err(DeError::new(format!(
                "expected a sequence, found {}",
                type_name(other)
            ))),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        T::deserialize_content(content).map(Box::new)
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize_content(v)?)))
                .collect(),
            other => Err(DeError::new(format!(
                "expected a map, found {}",
                type_name(other)
            ))),
        }
    }
}

impl Deserialize for Content {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        Ok(content.clone())
    }
}

/// Field-by-field reader over a [`Content::Map`] — the runtime the
/// derived `Deserialize` impls drive. Every [`MapReader::field`] call
/// claims one key; [`MapReader::finish`] then rejects any unclaimed
/// (unknown) keys, duplicates included.
#[derive(Debug)]
pub struct MapReader<'a> {
    type_name: &'static str,
    entries: &'a [(String, Content)],
    claimed: Vec<bool>,
}

impl<'a> MapReader<'a> {
    /// Opens `content` as a map for struct `type_name`.
    ///
    /// # Errors
    ///
    /// [`DeError`] if `content` is not a map.
    pub fn new(content: &'a Content, type_name: &'static str) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => Ok(MapReader {
                type_name,
                entries,
                claimed: vec![false; entries.len()],
            }),
            other => Err(DeError::new(format!(
                "expected a map for struct {type_name}, found {}",
                type_name_of(other)
            ))),
        }
    }

    /// Reads and claims field `name`. A missing key deserializes from
    /// [`Content::Null`], so `Option` fields default to `None` while any
    /// other type reports the field as missing (serde's behavior for
    /// plain derives).
    ///
    /// # Errors
    ///
    /// [`DeError`] if the field is missing (non-`Option` types) or its
    /// value has the wrong shape.
    pub fn field<T: Deserialize>(&mut self, name: &str) -> Result<T, DeError> {
        match self.entries.iter().position(|(k, _)| k == name) {
            Some(i) => {
                self.claimed[i] = true;
                T::deserialize_content(&self.entries[i].1)
                    .map_err(|e| DeError::new(format!("field `{}.{name}`: {e}", self.type_name)))
            }
            None => T::deserialize_content(&Content::Null).map_err(|_| {
                DeError::new(format!(
                    "missing field `{name}` in struct {}",
                    self.type_name
                ))
            }),
        }
    }

    /// Rejects every key no [`MapReader::field`] call claimed.
    ///
    /// # Errors
    ///
    /// [`DeError`] naming the first unknown field.
    pub fn finish(self) -> Result<(), DeError> {
        for (i, (k, _)) in self.entries.iter().enumerate() {
            if !self.claimed[i] {
                return Err(DeError::new(format!(
                    "unknown field `{k}` in struct {}",
                    self.type_name
                )));
            }
        }
        Ok(())
    }
}

// `MapReader::new` shadows `type_name` with its parameter; re-expose the
// helper under a distinct name for its error message.
fn type_name_of(c: &Content) -> &'static str {
    type_name(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip_to_content() {
        assert_eq!(3u32.serialize_content(), Content::U64(3));
        assert_eq!((-3i32).serialize_content(), Content::I64(-3));
        assert_eq!(1.5f64.serialize_content(), Content::F64(1.5));
        assert_eq!("hi".serialize_content(), Content::Str("hi".into()));
        assert_eq!(None::<u8>.serialize_content(), Content::Null);
        assert_eq!(
            vec![1u8, 2].serialize_content(),
            Content::Seq(vec![Content::U64(1), Content::U64(2)])
        );
    }

    #[test]
    fn derive_survives_arrow_in_field_type() {
        // The `>` of `->` must not close an angle bracket in the derive's
        // field parser, or every later field is silently dropped.
        #[derive(Serialize)]
        struct P {
            tag: std::marker::PhantomData<fn() -> u64>,
            v: u32,
        }
        let c = P {
            tag: std::marker::PhantomData,
            v: 7,
        }
        .serialize_content();
        assert_eq!(
            c,
            Content::Map(vec![
                ("tag".into(), Content::Null),
                ("v".into(), Content::U64(7)),
            ])
        );
    }

    #[test]
    fn deserialize_rebuilds_primitives() {
        assert_eq!(u32::deserialize_content(&Content::U64(3)), Ok(3));
        assert_eq!(u32::deserialize_content(&Content::F64(3.0)), Ok(3));
        assert!(u8::deserialize_content(&Content::I64(-1)).is_err());
        assert!(usize::deserialize_content(&Content::F64(1.5)).is_err());
        assert_eq!(f64::deserialize_content(&Content::I64(-2)), Ok(-2.0));
        assert_eq!(Option::<f64>::deserialize_content(&Content::Null), Ok(None));
        assert_eq!(
            Vec::<u8>::deserialize_content(&Content::Seq(vec![Content::U64(1), Content::U64(2)])),
            Ok(vec![1, 2])
        );
    }

    #[test]
    fn derived_deserialize_roundtrips_and_rejects_unknown_fields() {
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct P {
            x: f64,
            name: String,
            count: Option<usize>,
        }
        let p = P {
            x: 2.5,
            name: "a".into(),
            count: None,
        };
        let back = P::deserialize_content(&p.serialize_content()).unwrap();
        assert_eq!(back, p);

        // Missing Option field defaults to None; missing non-Option errors.
        let partial = Content::Map(vec![
            ("x".into(), Content::F64(1.0)),
            ("name".into(), Content::Str("b".into())),
        ]);
        assert_eq!(
            P::deserialize_content(&partial).unwrap(),
            P {
                x: 1.0,
                name: "b".into(),
                count: None
            }
        );
        let missing = Content::Map(vec![("x".into(), Content::F64(1.0))]);
        let err = P::deserialize_content(&missing).unwrap_err();
        assert!(err.to_string().contains("missing field `name`"), "{err}");

        // Unknown fields are rejected (deny_unknown_fields semantics).
        let unknown = Content::Map(vec![
            ("x".into(), Content::F64(1.0)),
            ("name".into(), Content::Str("b".into())),
            ("bogus".into(), Content::Bool(true)),
        ]);
        let err = P::deserialize_content(&unknown).unwrap_err();
        assert!(err.to_string().contains("unknown field `bogus`"), "{err}");
    }

    #[test]
    fn derive_emits_field_order_map() {
        #[derive(Serialize)]
        struct P {
            x: f64,
            name: String,
        }
        let c = P {
            x: 2.0,
            name: "a".into(),
        }
        .serialize_content();
        assert_eq!(
            c,
            Content::Map(vec![
                ("x".into(), Content::F64(2.0)),
                ("name".into(), Content::Str("a".into())),
            ])
        );
    }
}
