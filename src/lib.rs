//! Facade crate for the FEM-based CFD accelerator reproduction
//! (Kapetanakis et al., *Dataflow Optimized Reconfigurable Acceleration for
//! FEM-based CFD Simulations*, DATE 2025).
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can use a single dependency:
//!
//! * [`numerics`] — GLL quadrature, Lagrange bases, linear algebra, RK.
//! * [`mesh`] — hexahedral meshes and generators.
//! * [`solver`] — the FEM compressible Navier-Stokes solver (CPU reference).
//! * [`hls`] — the HLS kernel IR, scheduler, and resource estimator.
//! * [`dataflow`] — the discrete-event dataflow (TLP) simulator.
//! * [`platform`] — Alveo U200 platform, power, and CPU models.
//! * [`accel`] — the paper's accelerator designs, optimizer and experiments.

pub use fem_accel as accel;
pub use fem_mesh as mesh;
pub use fem_numerics as numerics;
pub use fem_solver as solver;
pub use fpga_platform as platform;
pub use hls_dataflow as dataflow;
pub use hls_kernel as hls;
