//! Integration: the accelerator's staged task pipeline computes exactly
//! what the reference solver computes, on every mesh family we support.

use fem_cfd_accel::accel::functional::{
    monolithic_stage_residual, staged_stage_residual, StagedRhs,
};
use fem_cfd_accel::mesh::generator::BoxMeshBuilder;
use fem_cfd_accel::mesh::geometry::GeometryCache;
use fem_cfd_accel::numerics::rk::{ButcherTableau, ExplicitRk};
use fem_cfd_accel::numerics::tensor::HexBasis;
use fem_cfd_accel::solver::state::Primitives;
use fem_cfd_accel::solver::{Conserved, GasModel, Simulation, TgvConfig};

fn bits(c: &Conserved) -> Vec<u64> {
    let mut out = Vec::new();
    c.for_each_field(|f| out.extend(f.iter().map(|x| x.to_bits())));
    out
}

#[test]
fn staged_equals_monolithic_on_various_meshes() {
    for (edge, order) in [(4usize, 1usize), (6, 1), (3, 2)] {
        let mut b = BoxMeshBuilder::tgv_box(edge);
        b.order(order);
        let mesh = b.build().unwrap();
        let basis = HexBasis::new(order).unwrap();
        let cfg = TgvConfig::standard();
        let gas = cfg.gas();
        let state = cfg.initial_state(&mesh);
        let mut prim = Primitives::zeros(mesh.num_nodes());
        prim.update_from(&state, &gas);
        let geometry = GeometryCache::build(&mesh, &basis).unwrap();
        let staged = staged_stage_residual(&mesh, &basis, &gas, &geometry, &state, &prim);
        let mono = monolithic_stage_residual(&mesh, &basis, &gas, &geometry, &state, &prim);
        assert_eq!(
            bits(&staged),
            bits(&mono),
            "decomposition diverged at edge={edge} order={order}"
        );
    }
}

#[test]
fn staged_equals_monolithic_on_walled_mesh() {
    let mesh = BoxMeshBuilder::new()
        .elements(4, 3, 3)
        .periodic(true, false, false)
        .extent(2.0, 1.0, 1.0)
        .build()
        .unwrap();
    let basis = HexBasis::new(1).unwrap();
    let gas = GasModel::air(1.5e-3);
    let mut state = Conserved::zeros(mesh.num_nodes());
    for (n, &x) in mesh.coords().iter().enumerate() {
        let rho = 1.0 + 0.05 * (x.x * 3.0).sin();
        let u = fem_cfd_accel::numerics::linalg::Vec3::new(5.0 * x.y, -2.0 * x.z, 1.0);
        state.rho[n] = rho;
        state.mom[0][n] = rho * u.x;
        state.mom[1][n] = rho * u.y;
        state.mom[2][n] = rho * u.z;
        state.energy[n] = gas.total_energy(rho, u, 290.0 + 5.0 * x.z);
    }
    let mut prim = Primitives::zeros(mesh.num_nodes());
    prim.update_from(&state, &gas);
    let geometry = GeometryCache::build(&mesh, &basis).unwrap();
    let staged = staged_stage_residual(&mesh, &basis, &gas, &geometry, &state, &prim);
    let mono = monolithic_stage_residual(&mesh, &basis, &gas, &geometry, &state, &prim);
    assert_eq!(bits(&staged), bits(&mono));
}

#[test]
fn accelerated_trajectory_tracks_reference_for_many_steps() {
    let mesh = BoxMeshBuilder::tgv_box(5).build().unwrap();
    let cfg = TgvConfig::new(0.15, 300.0);
    let gas = cfg.gas();
    let initial = cfg.initial_state(&mesh);

    let mut reference = Simulation::builder(mesh.clone(), gas, initial.clone())
        .build()
        .unwrap();
    let dt = reference.suggest_dt(0.35);
    reference.advance(15, dt).unwrap();

    let mut staged_sys = StagedRhs::new(mesh, gas);
    let mut state = initial;
    let mut rk = ExplicitRk::new(ButcherTableau::rk4(), &state);
    for s in 0..15 {
        rk.step(&mut staged_sys, s as f64 * dt, dt, &mut state);
    }
    assert_eq!(bits(&state), bits(reference.conserved()));
}
