//! Integration: the headline claims of the paper hold in the
//! reproduction, within the documented tolerance bands (EXPERIMENTS.md).

use fem_cfd_accel::accel::experiments::{
    run_ablations, run_fig2, run_fig5, run_table1, run_table2,
};

#[test]
fn fig2_diffusion_dominates_and_rk_is_the_bulk() {
    let r = run_fig2(&[10], 2).unwrap();
    // Shape: diffusion > convection; RK method > 50% of runtime.
    assert!(r.average_percent[0] > r.average_percent[1]);
    assert!(r.rows[0].rk_fraction_percent > 50.0);
    let sum: f64 = r.average_percent.iter().sum();
    assert!((sum - 100.0).abs() < 1e-9);
}

#[test]
fn fig5_headline_speedup_and_clocks() {
    let r = run_fig5().unwrap();
    // Average speedup in the paper's neighbourhood (7.9×).
    assert!(
        (5.0..=11.0).contains(&r.avg_speedup),
        "avg speedup {:.2}",
        r.avg_speedup
    );
    for row in &r.rows {
        // Proposed wins at every size, with the 150 vs 100 MHz clocks.
        assert!(row.speedup > 3.0, "{}: {:.2}", row.label, row.speedup);
        assert_eq!(row.proposed_fmax, 150.0, "{}", row.label);
        assert_eq!(row.vitis_fmax, 100.0, "{}", row.label);
    }
    // Monotone scaling in mesh size for both designs.
    for pair in r.rows.windows(2) {
        assert!(pair[1].proposed_seconds > pair[0].proposed_seconds);
        assert!(pair[1].vitis_seconds > pair[0].vitis_seconds);
    }
}

#[test]
fn table1_proposed_outspends_baseline_like_the_paper() {
    let r = run_table1().unwrap();
    let p = r.proposed.utilization_percent;
    let v = r.vitis.utilization_percent;
    // FF, LUT, URAM, DSP: proposed ≥ baseline (paper: 1.5×, 1.5×, 16.8×,
    // 1.9×).
    for i in [0usize, 1, 3, 4] {
        assert!(p[i] >= v[i], "column {i}: {:.2} < {:.2}", p[i], v[i]);
    }
    // Clock gap.
    assert!(r.proposed.fmax_mhz >= r.vitis.fmax_mhz + 25.0);
}

#[test]
fn table2_latency_and_power_bands() {
    let r = run_table2(4_200_000, None).unwrap();
    assert!(
        (0.30..=0.70).contains(&r.latency_reduction),
        "latency reduction {:.3} (paper 0.45)",
        r.latency_reduction
    );
    // FPGA total power well below the CPU's.
    let fpga_total = r.fpga_core_w + r.fpga_peripherals_w + r.fpga_rest_w;
    assert!(fpga_total < r.cpu_power_w);
    // The paper's 3.64× is bracketed by our two denominators.
    assert!(r.power_ratio_total <= r.paper_power_ratio + 0.5);
    assert!(r.paper_power_ratio <= r.power_ratio_core_rest + 0.5);
}

#[test]
fn every_ablated_optimization_contributes() {
    let r = run_ablations(150_000).unwrap();
    let full = &r.rows[0];
    assert_eq!(full.slowdown_vs_proposed, 1.0);
    for row in &r.rows[1..] {
        assert!(
            row.slowdown_vs_proposed >= 1.0,
            "{} unexpectedly faster ({:.2}×)",
            row.name,
            row.slowdown_vs_proposed
        );
    }
    // The big levers of the paper: TLP and AXI bundling.
    let tlp = r
        .rows
        .iter()
        .find(|x| x.name.contains("task-level"))
        .unwrap();
    let axi = r.rows.iter().find(|x| x.name.contains("AXI")).unwrap();
    assert!(tlp.slowdown_vs_proposed > 1.2);
    assert!(axi.slowdown_vs_proposed > 1.5);
}
