//! End-to-end integration: the Taylor-Green Vortex workload through the
//! full stack (mesh generation → solver → diagnostics), including the
//! higher-order element path.

use fem_cfd_accel::mesh::generator::BoxMeshBuilder;
use fem_cfd_accel::solver::{Simulation, TgvConfig};

#[test]
fn tgv_runs_conserves_and_decays() {
    let mesh = BoxMeshBuilder::tgv_box(10).build().unwrap();
    let cfg = TgvConfig::new(0.1, 200.0);
    let initial = cfg.initial_state(&mesh);
    let mut sim = Simulation::builder(mesh, cfg.gas(), initial)
        .build()
        .unwrap();
    let dt = sim.suggest_dt(0.4);
    let d0 = sim.diagnostics();
    sim.advance(40, dt).unwrap();
    let d1 = sim.diagnostics();

    // Conservation (periodic Galerkin): exact to roundoff.
    assert!(((d1.total_mass - d0.total_mass) / d0.total_mass).abs() < 1e-12);
    assert!(((d1.total_energy - d0.total_energy) / d0.total_energy).abs() < 1e-12);
    // Viscosity dissipates kinetic energy.
    assert!(d1.kinetic_energy < d0.kinetic_energy);
    // The flow stays subsonic (TGV at Mach 0.1).
    assert!(d1.max_mach < 0.2);
}

#[test]
fn tgv_second_order_elements_run() {
    let mut builder = BoxMeshBuilder::tgv_box(5);
    builder.order(2);
    let mesh = builder.build().unwrap();
    assert_eq!(mesh.nodes_per_element(), 27);
    let cfg = TgvConfig::new(0.1, 100.0);
    let initial = cfg.initial_state(&mesh);
    let mut sim = Simulation::builder(mesh, cfg.gas(), initial)
        .build()
        .unwrap();
    let dt = sim.suggest_dt(0.3);
    let d0 = sim.diagnostics();
    sim.advance(10, dt).unwrap();
    let d1 = sim.diagnostics();
    assert!(((d1.total_mass - d0.total_mass) / d0.total_mass).abs() < 1e-12);
    assert!(d1.kinetic_energy < d0.kinetic_energy);
}

#[test]
fn kinetic_energy_decay_rate_scales_with_viscosity() {
    // Early-time TGV dissipation is ∝ μ; halving Re (doubling μ) should
    // roughly double the initial KE drop.
    let drop_for = |re: f64| {
        let mesh = BoxMeshBuilder::tgv_box(8).build().unwrap();
        let cfg = TgvConfig::new(0.1, re);
        let initial = cfg.initial_state(&mesh);
        let mut sim = Simulation::builder(mesh, cfg.gas(), initial)
            .build()
            .unwrap();
        let dt = 1.0e-3;
        let ke0 = sim.diagnostics().kinetic_energy;
        sim.advance(200, dt).unwrap();
        let ke1 = sim.diagnostics().kinetic_energy;
        (ke0 - ke1) / ke0
    };
    let drop_hi = drop_for(100.0);
    let drop_lo = drop_for(200.0);
    let ratio = drop_hi / drop_lo;
    assert!(
        (1.6..=2.4).contains(&ratio),
        "dissipation should scale ~2× with viscosity, got {ratio:.2}"
    );
}

#[test]
fn timestep_above_cfl_limit_blows_up_and_is_caught() {
    let mesh = BoxMeshBuilder::tgv_box(6).build().unwrap();
    let cfg = TgvConfig::standard();
    let initial = cfg.initial_state(&mesh);
    let mut sim = Simulation::builder(mesh, cfg.gas(), initial)
        .build()
        .unwrap();
    let dt = sim.suggest_dt(40.0);
    assert!(sim.advance(200, dt).is_err());
}
