//! The cross-strategy scenario regression matrix — its own tier-1 check.
//!
//! Three layers of protection for the scenario registry:
//!
//! 1. **Matrix**: every registered scenario (TGV, lid-driven cavity,
//!    double shear layer, acoustic pulse) must run under Serial, Chunked
//!    and Colored assembly with per-step deviations ≤ 1e-12 relative and
//!    its physical invariants intact — the acceptance bar of the
//!    `repro scenarios` artifact, asserted here on the exact same study.
//! 2. **Golden trace**: a committed TGV kinetic-energy/enstrophy decay
//!    trace (n = 8, 8 steps) that new runs must match to ≤ 1e-12
//!    relative, so kernel refactors cannot silently change the physics.
//!    Regenerate deliberately with
//!    `cargo test --test scenario_matrix -- --ignored` after a *wanted*
//!    physics change.
//! 3. **Bitwise pinning**: Dirichlet-constrained nodes of the cavity
//!    stay bitwise at their targets across full RK4 steps under all
//!    three strategies, and the composed RHS is exactly zero there.

use fem_bench::scenarios::{run_scenario_matrix, STRATEGY_EQUIVALENCE_TOL};
use fem_bench::{SCENARIO_MATRIX_EDGE, SCENARIO_MATRIX_STEPS};
use fem_cfd_accel::solver::scenarios::Scenario;
use fem_cfd_accel::solver::{AssemblyStrategy, Simulation};

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/tgv_n8_trace.json"
);
const GOLDEN_EDGE: usize = 8;
const GOLDEN_STEPS: usize = 8;
const GOLDEN_TOL: f64 = 1e-12;

#[test]
fn matrix_passes_equivalence_and_invariants_for_all_scenarios() {
    let m = run_scenario_matrix(SCENARIO_MATRIX_EDGE, SCENARIO_MATRIX_STEPS);

    // Acceptance: at least the four canonical scenarios ran.
    assert!(
        m.summaries.len() >= 4,
        "only {} scenarios",
        m.summaries.len()
    );
    for name in [
        "taylor-green-vortex",
        "lid-driven-cavity",
        "double-shear-layer",
        "acoustic-pulse",
    ] {
        assert!(
            m.summaries.iter().any(|s| s.scenario == name),
            "scenario `{name}` missing from the matrix"
        );
    }

    // Every (scenario, strategy) cell tracks serial at ≤ 1e-12.
    assert_eq!(m.rows.len(), m.summaries.len() * 3);
    for r in &m.rows {
        assert!(
            r.max_rel_dev_vs_serial <= STRATEGY_EQUIVALENCE_TOL,
            "{} / {}: deviation {:.3e} exceeds {:.0e}",
            r.scenario,
            r.strategy,
            r.max_rel_dev_vs_serial,
            STRATEGY_EQUIVALENCE_TOL
        );
    }

    // Every scenario's physical invariants hold on the serial run.
    for s in &m.summaries {
        assert!(s.strategies_agree, "{}: strategies diverged", s.scenario);
        assert!(!s.invariants.is_empty(), "{}: no invariants", s.scenario);
        for c in &s.invariants {
            assert!(
                c.passed,
                "{}: invariant `{}` failed ({:.4e} {} {:.3e})",
                s.scenario, c.name, c.value, c.op, c.bound
            );
        }
        // The accelerator workload quote rides along per scenario.
        assert!(s.workload.rkl_flops_per_stage > 0, "{}", s.scenario);
        assert!(s.workload.ddr_bound_gflops > 0.0, "{}", s.scenario);
    }

    // The cavity exercised the Dirichlet path; the periodic entries did
    // not accidentally pin anything.
    for s in &m.summaries {
        if s.scenario == "lid-driven-cavity" {
            assert!(s.dirichlet_nodes > 0);
        } else {
            assert_eq!(s.dirichlet_nodes, 0, "{}", s.scenario);
        }
    }
}

/// Runs the golden TGV configuration and returns per-step
/// `(time, kinetic_energy, enstrophy, total_mass)` rows.
fn tgv_trace(dt: f64, steps: usize) -> Vec<(f64, f64, f64, f64)> {
    let scenario = Scenario::taylor_green();
    let mut sim = scenario.simulation(GOLDEN_EDGE).expect("golden TGV builds");
    let mut rows = Vec::with_capacity(steps);
    for _ in 0..steps {
        sim.step(dt).expect("golden TGV steps");
        let d = sim.diagnostics();
        rows.push((d.time, d.kinetic_energy, d.enstrophy, d.total_mass));
    }
    rows
}

/// The dt the golden trace was recorded at (CFL 0.4 on the n = 8 box).
fn golden_dt() -> f64 {
    let scenario = Scenario::taylor_green();
    let sim = scenario.simulation(GOLDEN_EDGE).expect("golden TGV builds");
    sim.suggest_dt(scenario.default_cfl())
}

#[test]
fn golden_tgv_trace_matches() {
    let text = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!(
            "missing golden trace {GOLDEN_PATH} ({e}); regenerate with \
             `cargo test --test scenario_matrix -- --ignored`"
        )
    });
    let doc: serde_json::Value = serde_json::from_str(&text).expect("golden trace parses");
    assert_eq!(doc["scenario"].as_str(), Some("taylor-green-vortex"));
    assert_eq!(doc["edge"].as_u64(), Some(GOLDEN_EDGE as u64));
    let dt = doc["dt"].as_f64().expect("dt");
    let rows = doc["rows"].as_array().expect("rows");
    assert_eq!(rows.len(), GOLDEN_STEPS);

    // Replay at the *recorded* dt so the comparison is immune to
    // CFL-estimate changes, then hold every observable to ≤ 1e-12.
    let trace = tgv_trace(dt, rows.len());
    let rel = |a: f64, b: f64| (a - b).abs() / b.abs();
    for (i, (row, &(time, ke, ens, mass))) in rows.iter().zip(&trace).enumerate() {
        for (key, ours) in [
            ("time", time),
            ("kinetic_energy", ke),
            ("enstrophy", ens),
            ("total_mass", mass),
        ] {
            let golden = row[key]
                .as_f64()
                .unwrap_or_else(|| panic!("row {i} missing `{key}`"));
            assert!(
                rel(ours, golden) <= GOLDEN_TOL,
                "step {}: `{key}` drifted from the golden trace: \
                 {ours:.17e} vs {golden:.17e} (rel {:.3e})",
                i + 1,
                rel(ours, golden)
            );
        }
    }
}

#[test]
#[ignore = "writes tests/golden/tgv_n8_trace.json; run only to bless a wanted physics change"]
fn regenerate_golden_tgv_trace() {
    let dt = golden_dt();
    let trace = tgv_trace(dt, GOLDEN_STEPS);
    let mut out = String::from("{\n");
    out.push_str("  \"scenario\": \"taylor-green-vortex\",\n");
    out.push_str(&format!("  \"edge\": {GOLDEN_EDGE},\n"));
    out.push_str(&format!("  \"dt\": {dt},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, (time, ke, ens, mass)) in trace.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"step\": {}, \"time\": {time}, \"kinetic_energy\": {ke}, \
             \"enstrophy\": {ens}, \"total_mass\": {mass}}}{}\n",
            i + 1,
            if i + 1 < trace.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(GOLDEN_PATH, out).expect("write golden trace");
}

#[test]
fn cavity_pinned_nodes_stay_bitwise_fixed_under_every_strategy() {
    let scenario = Scenario::lid_cavity();
    for strategy in [
        AssemblyStrategy::Serial,
        AssemblyStrategy::chunked_auto(),
        AssemblyStrategy::Colored,
    ] {
        let mesh = scenario.mesh(5).expect("cavity mesh builds");
        let initial = scenario.initial_state(&mesh);
        let bc = scenario.boundary(&mesh).expect("cavity is wall-bounded");
        let mut sim = Simulation::builder(mesh, scenario.gas(), initial)
            .bc(bc)
            .assembly(strategy)
            .build()
            .expect("cavity builds");
        let targets: Vec<(u32, [f64; 5])> = sim.bc().expect("cavity has a BC").targets().to_vec();
        assert!(!targets.is_empty());

        // The composed RHS (fused kernel, lumped mass, boundary zeroing)
        // is exactly zero at every pinned node.
        let rhs = sim.eval_rhs();
        for &(n, _) in &targets {
            let n = n as usize;
            assert_eq!(rhs.rho[n], 0.0, "{strategy}: rho RHS at node {n}");
            assert_eq!(rhs.energy[n], 0.0, "{strategy}: energy RHS at node {n}");
            for d in 0..3 {
                assert_eq!(rhs.mom[d][n], 0.0, "{strategy}: mom[{d}] RHS at node {n}");
            }
        }

        // Full RK4 steps leave every pinned value bit-identical.
        let dt = sim.suggest_dt(scenario.default_cfl());
        sim.advance(3, dt).expect("cavity steps");
        for &(n, vals) in &targets {
            let n = n as usize;
            assert_eq!(
                sim.conserved().rho[n].to_bits(),
                vals[0].to_bits(),
                "{strategy}: rho moved at node {n}"
            );
            for d in 0..3 {
                assert_eq!(
                    sim.conserved().mom[d][n].to_bits(),
                    vals[1 + d].to_bits(),
                    "{strategy}: mom[{d}] moved at node {n}"
                );
            }
            assert_eq!(
                sim.conserved().energy[n].to_bits(),
                vals[4].to_bits(),
                "{strategy}: energy moved at node {n}"
            );
        }
    }
}
