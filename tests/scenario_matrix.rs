//! The cross-strategy scenario regression matrix — its own tier-1 check.
//!
//! Three layers of protection for the scenario registry:
//!
//! 1. **Matrix**: every registered scenario (TGV, lid-driven cavity,
//!    double shear layer, acoustic pulse) must run under Serial, Chunked
//!    and Colored assembly with per-step deviations ≤ 1e-12 relative and
//!    its physical invariants intact — the acceptance bar of the
//!    `repro scenarios` artifact, asserted here on the exact same study.
//! 2. **Golden traces**: committed TGV kinetic-energy/enstrophy decay
//!    traces (the order-1 n = 8 seed plus the PR-9 high-order p = 2 and
//!    p = 3 boxes, 8 steps each) that new runs must match to ≤ 1e-12
//!    relative, so kernel refactors — in particular anything touching
//!    the sum-factored weak-divergence path — cannot silently change
//!    the physics at any order. Regenerate deliberately with
//!    `cargo test --test scenario_matrix -- --ignored` after a *wanted*
//!    physics change.
//! 3. **Bitwise pinning**: Dirichlet-constrained nodes of the cavity
//!    stay bitwise at their targets across full RK4 steps under all
//!    three strategies, and the composed RHS is exactly zero there.
//! 4. **Kernel paths**: every registered scenario runs its invariant
//!    suite at p = 2 under both the sum-factored and the full-matrix
//!    weak-divergence contraction, and the two trajectories agree.

use fem_bench::scenarios::{run_scenario_matrix, STRATEGY_EQUIVALENCE_TOL};
use fem_bench::{SCENARIO_MATRIX_EDGE, SCENARIO_MATRIX_STEPS};
use fem_cfd_accel::solver::scenarios::Scenario;
use fem_cfd_accel::solver::{AssemblyStrategy, KernelPath, Simulation};

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/tgv_n8_trace.json"
);
const GOLDEN_EDGE: usize = 8;
const GOLDEN_STEPS: usize = 8;
const GOLDEN_TOL: f64 = 1e-12;

/// The high-order golden rungs: `(file, edge, order)` — chosen so each
/// box stays small enough for tier-1 while exercising the tensor-product
/// basis the sum-factored kernels were built for.
const GOLDEN_HIGH_ORDER: [(&str, usize, usize); 2] = [
    (
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/tgv_p2_n4_trace.json"
        ),
        4,
        2,
    ),
    (
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/tgv_p3_n3_trace.json"
        ),
        3,
        3,
    ),
];

#[test]
fn matrix_passes_equivalence_and_invariants_for_all_scenarios() {
    let m = run_scenario_matrix(SCENARIO_MATRIX_EDGE, SCENARIO_MATRIX_STEPS);

    // Acceptance: at least the four canonical scenarios ran.
    assert!(
        m.summaries.len() >= 4,
        "only {} scenarios",
        m.summaries.len()
    );
    for name in [
        "taylor-green-vortex",
        "lid-driven-cavity",
        "double-shear-layer",
        "acoustic-pulse",
    ] {
        assert!(
            m.summaries.iter().any(|s| s.scenario == name),
            "scenario `{name}` missing from the matrix"
        );
    }

    // Every (scenario, strategy) cell tracks serial at ≤ 1e-12.
    assert_eq!(m.rows.len(), m.summaries.len() * 3);
    for r in &m.rows {
        assert!(
            r.max_rel_dev_vs_serial <= STRATEGY_EQUIVALENCE_TOL,
            "{} / {}: deviation {:.3e} exceeds {:.0e}",
            r.scenario,
            r.strategy,
            r.max_rel_dev_vs_serial,
            STRATEGY_EQUIVALENCE_TOL
        );
    }

    // Every scenario's physical invariants hold on the serial run.
    for s in &m.summaries {
        assert!(s.strategies_agree, "{}: strategies diverged", s.scenario);
        assert!(!s.invariants.is_empty(), "{}: no invariants", s.scenario);
        for c in &s.invariants {
            assert!(
                c.passed,
                "{}: invariant `{}` failed ({:.4e} {} {:.3e})",
                s.scenario, c.name, c.value, c.op, c.bound
            );
        }
        // The accelerator workload quote rides along per scenario.
        assert!(s.workload.rkl_flops_per_stage > 0, "{}", s.scenario);
        assert!(s.workload.ddr_bound_gflops > 0.0, "{}", s.scenario);
    }

    // The cavity exercised the Dirichlet path; the periodic entries did
    // not accidentally pin anything.
    for s in &m.summaries {
        if s.scenario == "lid-driven-cavity" {
            assert!(s.dirichlet_nodes > 0);
        } else {
            assert_eq!(s.dirichlet_nodes, 0, "{}", s.scenario);
        }
    }
}

/// Runs a golden TGV configuration on the `edge`³ box of `order`-th
/// degree elements and returns per-step
/// `(time, kinetic_energy, enstrophy, total_mass)` rows.
fn tgv_trace_at(edge: usize, order: usize, dt: f64, steps: usize) -> Vec<(f64, f64, f64, f64)> {
    let scenario = Scenario::taylor_green();
    let mut sim = scenario
        .simulation_with_order(edge, order)
        .expect("golden TGV builds");
    let mut rows = Vec::with_capacity(steps);
    for _ in 0..steps {
        sim.step(dt).expect("golden TGV steps");
        let d = sim.diagnostics();
        rows.push((d.time, d.kinetic_energy, d.enstrophy, d.total_mass));
    }
    rows
}

/// Runs the order-1 golden TGV configuration.
fn tgv_trace(dt: f64, steps: usize) -> Vec<(f64, f64, f64, f64)> {
    tgv_trace_at(GOLDEN_EDGE, 1, dt, steps)
}

/// The dt a golden trace is recorded at (CFL 0.4 on the given box).
fn golden_dt_at(edge: usize, order: usize) -> f64 {
    let scenario = Scenario::taylor_green();
    let sim = scenario
        .simulation_with_order(edge, order)
        .expect("golden TGV builds");
    sim.suggest_dt(scenario.default_cfl())
}

/// The dt the order-1 golden trace was recorded at.
fn golden_dt() -> f64 {
    golden_dt_at(GOLDEN_EDGE, 1)
}

#[test]
fn golden_tgv_trace_matches() {
    let text = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!(
            "missing golden trace {GOLDEN_PATH} ({e}); regenerate with \
             `cargo test --test scenario_matrix -- --ignored`"
        )
    });
    let doc: serde_json::Value = serde_json::from_str(&text).expect("golden trace parses");
    assert_eq!(doc["scenario"].as_str(), Some("taylor-green-vortex"));
    assert_eq!(doc["edge"].as_u64(), Some(GOLDEN_EDGE as u64));
    let dt = doc["dt"].as_f64().expect("dt");
    let rows = doc["rows"].as_array().expect("rows");
    assert_eq!(rows.len(), GOLDEN_STEPS);

    // Replay at the *recorded* dt so the comparison is immune to
    // CFL-estimate changes, then hold every observable to ≤ 1e-12.
    let trace = tgv_trace(dt, rows.len());
    let rel = |a: f64, b: f64| (a - b).abs() / b.abs();
    for (i, (row, &(time, ke, ens, mass))) in rows.iter().zip(&trace).enumerate() {
        for (key, ours) in [
            ("time", time),
            ("kinetic_energy", ke),
            ("enstrophy", ens),
            ("total_mass", mass),
        ] {
            let golden = row[key]
                .as_f64()
                .unwrap_or_else(|| panic!("row {i} missing `{key}`"));
            assert!(
                rel(ours, golden) <= GOLDEN_TOL,
                "step {}: `{key}` drifted from the golden trace: \
                 {ours:.17e} vs {golden:.17e} (rel {:.3e})",
                i + 1,
                rel(ours, golden)
            );
        }
    }
}

/// Replays a committed high-order golden trace at its recorded dt and
/// holds every observable to ≤ 1e-12 relative.
fn check_golden_high_order_trace(path: &str, edge: usize, order: usize) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "missing golden trace {path} ({e}); regenerate with \
             `cargo test --test scenario_matrix -- --ignored`"
        )
    });
    let doc: serde_json::Value = serde_json::from_str(&text).expect("golden trace parses");
    assert_eq!(doc["scenario"].as_str(), Some("taylor-green-vortex"));
    assert_eq!(doc["edge"].as_u64(), Some(edge as u64));
    assert_eq!(doc["order"].as_u64(), Some(order as u64));
    let dt = doc["dt"].as_f64().expect("dt");
    let rows = doc["rows"].as_array().expect("rows");
    assert_eq!(rows.len(), GOLDEN_STEPS);

    let trace = tgv_trace_at(edge, order, dt, rows.len());
    let rel = |a: f64, b: f64| (a - b).abs() / b.abs();
    for (i, (row, &(time, ke, ens, mass))) in rows.iter().zip(&trace).enumerate() {
        for (key, ours) in [
            ("time", time),
            ("kinetic_energy", ke),
            ("enstrophy", ens),
            ("total_mass", mass),
        ] {
            let golden = row[key]
                .as_f64()
                .unwrap_or_else(|| panic!("row {i} missing `{key}`"));
            assert!(
                rel(ours, golden) <= GOLDEN_TOL,
                "p={order} step {}: `{key}` drifted from the golden trace: \
                 {ours:.17e} vs {golden:.17e} (rel {:.3e})",
                i + 1,
                rel(ours, golden)
            );
        }
    }
}

#[test]
fn golden_high_order_tgv_traces_match() {
    for (path, edge, order) in GOLDEN_HIGH_ORDER {
        check_golden_high_order_trace(path, edge, order);
    }
}

/// Serializes a golden trace document (shared by the blessing tests).
fn golden_trace_json(edge: usize, order: Option<usize>, dt: f64) -> String {
    let trace = tgv_trace_at(edge, order.unwrap_or(1), dt, GOLDEN_STEPS);
    let mut out = String::from("{\n");
    out.push_str("  \"scenario\": \"taylor-green-vortex\",\n");
    out.push_str(&format!("  \"edge\": {edge},\n"));
    if let Some(order) = order {
        out.push_str(&format!("  \"order\": {order},\n"));
    }
    out.push_str(&format!("  \"dt\": {dt},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, (time, ke, ens, mass)) in trace.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"step\": {}, \"time\": {time}, \"kinetic_energy\": {ke}, \
             \"enstrophy\": {ens}, \"total_mass\": {mass}}}{}\n",
            i + 1,
            if i + 1 < trace.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[test]
#[ignore = "writes tests/golden/tgv_n8_trace.json; run only to bless a wanted physics change"]
fn regenerate_golden_tgv_trace() {
    let dt = golden_dt();
    let out = golden_trace_json(GOLDEN_EDGE, None, dt);
    std::fs::write(GOLDEN_PATH, out).expect("write golden trace");
}

#[test]
#[ignore = "writes tests/golden/tgv_p{2,3}_*.json; run only to bless a wanted physics change"]
fn regenerate_golden_high_order_tgv_traces() {
    for (path, edge, order) in GOLDEN_HIGH_ORDER {
        let dt = golden_dt_at(edge, order);
        let out = golden_trace_json(edge, Some(order), dt);
        std::fs::write(path, out).expect("write golden trace");
    }
}

#[test]
fn registry_invariants_hold_at_p2_under_both_kernel_paths() {
    for scenario in Scenario::registry() {
        let mut ends: Vec<Vec<u64>> = Vec::new();
        for path in KernelPath::ALL {
            let mut sim = scenario
                .simulation_with_order(4, 2)
                .unwrap_or_else(|e| panic!("{}: p=2 build failed: {e}", scenario.name()));
            sim.set_kernel_path(path);
            let dt = sim.suggest_dt(scenario.default_cfl());
            let start = sim.diagnostics();
            sim.advance(GOLDEN_STEPS, dt)
                .unwrap_or_else(|e| panic!("{}/{path}: p=2 step failed: {e}", scenario.name()));
            let end = sim.diagnostics();
            let report = scenario.check_invariants(&start, &end, &sim);
            for c in report.checks() {
                assert!(
                    c.passed,
                    "{}/{path} at p=2: invariant `{}` failed ({:.4e} {} {:.3e})",
                    scenario.name(),
                    c.name,
                    c.value,
                    c.op,
                    c.bound
                );
            }
            ends.push(sim.conserved().rho.iter().map(|v| v.to_bits()).collect());
        }
        // Both contraction paths integrate the same physics: the two
        // trajectories track each other well below any invariant bound
        // (they are *not* bitwise equal — summation order differs).
        let [ref factored, ref full] = ends[..] else {
            panic!("expected both kernel paths")
        };
        let max_rel = factored
            .iter()
            .zip(full)
            .map(|(&a, &b)| {
                let (a, b) = (f64::from_bits(a), f64::from_bits(b));
                (a - b).abs() / b.abs()
            })
            .fold(0.0, f64::max);
        assert!(
            max_rel <= 1e-9,
            "{}: kernel paths diverged at p=2: {max_rel:.3e}",
            scenario.name()
        );
    }
}

#[test]
fn cavity_pinned_nodes_stay_bitwise_fixed_under_every_strategy() {
    let scenario = Scenario::lid_cavity();
    for strategy in [
        AssemblyStrategy::Serial,
        AssemblyStrategy::chunked_auto(),
        AssemblyStrategy::Colored,
    ] {
        let mesh = scenario.mesh(5).expect("cavity mesh builds");
        let initial = scenario.initial_state(&mesh);
        let bc = scenario.boundary(&mesh).expect("cavity is wall-bounded");
        let mut sim = Simulation::builder(mesh, scenario.gas(), initial)
            .bc(bc)
            .assembly(strategy)
            .build()
            .expect("cavity builds");
        let targets: Vec<(u32, [f64; 5])> = sim.bc().expect("cavity has a BC").targets().to_vec();
        assert!(!targets.is_empty());

        // The composed RHS (fused kernel, lumped mass, boundary zeroing)
        // is exactly zero at every pinned node.
        let rhs = sim.eval_rhs();
        for &(n, _) in &targets {
            let n = n as usize;
            assert_eq!(rhs.rho[n], 0.0, "{strategy}: rho RHS at node {n}");
            assert_eq!(rhs.energy[n], 0.0, "{strategy}: energy RHS at node {n}");
            for d in 0..3 {
                assert_eq!(rhs.mom[d][n], 0.0, "{strategy}: mom[{d}] RHS at node {n}");
            }
        }

        // Full RK4 steps leave every pinned value bit-identical.
        let dt = sim.suggest_dt(scenario.default_cfl());
        sim.advance(3, dt).expect("cavity steps");
        for &(n, vals) in &targets {
            let n = n as usize;
            assert_eq!(
                sim.conserved().rho[n].to_bits(),
                vals[0].to_bits(),
                "{strategy}: rho moved at node {n}"
            );
            for d in 0..3 {
                assert_eq!(
                    sim.conserved().mom[d][n].to_bits(),
                    vals[1 + d].to_bits(),
                    "{strategy}: mom[{d}] moved at node {n}"
                );
            }
            assert_eq!(
                sim.conserved().energy[n].to_bits(),
                vals[4].to_bits(),
                "{strategy}: energy moved at node {n}"
            );
        }
    }
}
