//! Integration: the performance models cross-validate each other — the
//! discrete-event simulator against the analytic steady-state formula on
//! the *actual* accelerator networks, and the HLS schedule consistency
//! between design variants.

use fem_cfd_accel::accel::designs::{proposed_design, vitis_baseline_design};
use fem_cfd_accel::accel::optimizer::{optimize_design, OptimizerConfig};
use fem_cfd_accel::accel::perf::{estimate_performance, PerfOptions};
use fem_cfd_accel::accel::workload::RklWorkload;
use fem_cfd_accel::hls::schedule::schedule_kernel;

#[test]
fn des_matches_analytic_on_real_designs_at_multiple_sizes() {
    for nodes in [5_000usize, 20_000, 50_000] {
        let w = RklWorkload::with_nodes(nodes, 1);
        let mut d = proposed_design(&w);
        optimize_design(&mut d, &OptimizerConfig::for_u200_slr()).unwrap();
        let des = estimate_performance(
            &d,
            &PerfOptions {
                des_element_threshold: usize::MAX,
                host_in_the_loop: false,
                ..Default::default()
            },
        )
        .unwrap();
        let ana = estimate_performance(
            &d,
            &PerfOptions {
                des_element_threshold: 0,
                host_in_the_loop: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(des.used_des);
        assert!(!ana.used_des);
        let rel = (des.rkl_cycles_per_stage as f64 - ana.rkl_cycles_per_stage as f64).abs()
            / ana.rkl_cycles_per_stage as f64;
        assert!(rel < 0.05, "{nodes} nodes: DES/analytic gap {rel:.3}");
    }
}

#[test]
fn task_iis_are_schedule_consistent() {
    let w = RklWorkload::with_nodes(100_000, 1);
    let mut d = proposed_design(&w);
    optimize_design(&mut d, &OptimizerConfig::for_u200_slr()).unwrap();
    let perf = estimate_performance(&d, &PerfOptions::default()).unwrap();
    // Every task's effective per-element cost is at least its scheduled
    // cost (contention can only add).
    for t in &perf.tasks {
        assert!(t.effective_cycles_per_element >= t.cycles_per_element);
    }
    // The bottleneck really is the max.
    let max = perf
        .tasks
        .iter()
        .map(|t| t.effective_cycles_per_element)
        .max()
        .unwrap();
    let named = perf
        .tasks
        .iter()
        .find(|t| t.name == perf.bottleneck)
        .unwrap();
    assert_eq!(named.effective_cycles_per_element, max);
}

#[test]
fn baseline_never_beats_proposed_anywhere() {
    for nodes in [10_000usize, 500_000, 2_000_000] {
        let w = RklWorkload::with_nodes(nodes, 1);
        let mut p = proposed_design(&w);
        optimize_design(&mut p, &OptimizerConfig::for_u200_slr()).unwrap();
        let b = vitis_baseline_design(&w);
        let opts = PerfOptions {
            host_in_the_loop: false,
            des_element_threshold: 0,
            ..Default::default()
        };
        let rp = estimate_performance(&p, &opts).unwrap();
        let rb = estimate_performance(&b, &opts).unwrap();
        assert!(
            rp.rk_method_seconds < rb.rk_method_seconds,
            "{nodes} nodes: proposed {} ≥ baseline {}",
            rp.rk_method_seconds,
            rb.rk_method_seconds
        );
    }
}

#[test]
fn schedules_are_deterministic() {
    let w = RklWorkload::with_nodes(123_456, 1);
    let d1 = proposed_design(&w);
    let d2 = proposed_design(&w);
    for (a, b) in d1.rkl_tasks.iter().zip(&d2.rkl_tasks) {
        let sa = schedule_kernel(a).unwrap();
        let sb = schedule_kernel(b).unwrap();
        assert_eq!(sa, sb);
    }
    // Optimizer determinism too.
    let mut o1 = proposed_design(&w);
    let mut o2 = proposed_design(&w);
    let s1 = optimize_design(&mut o1, &OptimizerConfig::for_u200_slr()).unwrap();
    let s2 = optimize_design(&mut o2, &OptimizerConfig::for_u200_slr()).unwrap();
    assert_eq!(s1.len(), s2.len());
    assert_eq!(o1, o2);
}
