//! Integration: mesh serialization and node reordering compose correctly
//! with the solver — solutions are invariant (to the bit) under mesh
//! round-trips, and equivariant under node renumbering.

use fem_cfd_accel::mesh::generator::BoxMeshBuilder;
use fem_cfd_accel::mesh::io::{read_mesh, write_mesh};
use fem_cfd_accel::mesh::reorder::rcm_permutation;
use fem_cfd_accel::solver::{Conserved, Simulation, TgvConfig};

fn bits(c: &Conserved) -> Vec<u64> {
    let mut out = Vec::new();
    c.for_each_field(|f| out.extend(f.iter().map(|x| x.to_bits())));
    out
}

#[test]
fn solution_is_identical_on_io_roundtripped_mesh() {
    let mesh = BoxMeshBuilder::tgv_box(5).build().unwrap();
    let mut buf = Vec::new();
    write_mesh(&mesh, &mut buf).unwrap();
    let back = read_mesh(buf.as_slice()).unwrap();
    assert_eq!(mesh, back);

    let cfg = TgvConfig::standard();
    let run = |m: fem_cfd_accel::mesh::HexMesh| {
        let initial = cfg.initial_state(&m);
        let mut sim = Simulation::builder(m, cfg.gas(), initial).build().unwrap();
        let dt = 5.0e-3;
        sim.advance(8, dt).unwrap();
        bits(sim.conserved())
    };
    assert_eq!(run(mesh), run(back));
}

#[test]
fn solution_is_equivariant_under_rcm_renumbering() {
    let mesh = BoxMeshBuilder::tgv_box(5).build().unwrap();
    let perm = rcm_permutation(&mesh);
    let renumbered = mesh.renumber_nodes(&perm).unwrap();
    let cfg = TgvConfig::new(0.1, 400.0);
    let dt = 5.0e-3;

    // Original run.
    let initial = cfg.initial_state(&mesh);
    let mut sim = Simulation::builder(mesh, cfg.gas(), initial)
        .build()
        .unwrap();
    sim.advance(6, dt).unwrap();
    let original = sim.conserved().clone();

    // Renumbered run (ICs generated on the renumbered coordinates).
    let initial_r = cfg.initial_state(&renumbered);
    let mut sim_r = Simulation::builder(renumbered, cfg.gas(), initial_r)
        .build()
        .unwrap();
    sim_r.advance(6, dt).unwrap();
    let renumbered_result = sim_r.conserved();

    // Fields must match under the permutation. Scatter order per node is
    // preserved (same element visit order), so equality is exact.
    for (old, &new) in perm.iter().enumerate() {
        let new = new as usize;
        assert_eq!(
            original.rho[old].to_bits(),
            renumbered_result.rho[new].to_bits(),
            "rho mismatch at node {old}→{new}"
        );
        assert_eq!(
            original.energy[old].to_bits(),
            renumbered_result.energy[new].to_bits()
        );
        for d in 0..3 {
            assert_eq!(
                original.mom[d][old].to_bits(),
                renumbered_result.mom[d][new].to_bits()
            );
        }
    }
}

#[test]
fn rcm_improves_bandwidth_on_scrambled_mesh() {
    use fem_cfd_accel::mesh::reorder::rcm_reorder;
    // A structured box already has good bandwidth; scramble then recover.
    let mesh = BoxMeshBuilder::new()
        .elements(7, 7, 7)
        .periodic(false, false, false)
        .extent(1.0, 1.0, 1.0)
        .build()
        .unwrap();
    let n = mesh.num_nodes() as u32;
    // Deterministic bit-reversal-ish shuffle.
    let mut perm: Vec<u32> = (0..n).collect();
    perm.sort_by_key(|&i| (i.wrapping_mul(2654435761)) % n);
    let mut inverse = vec![0u32; n as usize];
    for (rank, &old) in perm.iter().enumerate() {
        inverse[old as usize] = rank as u32;
    }
    let scrambled = mesh.renumber_nodes(&inverse).unwrap();
    assert!(scrambled.bandwidth() > mesh.bandwidth());
    let (_, before, after) = rcm_reorder(&scrambled).unwrap();
    assert!(after < before, "RCM failed: {before} → {after}");
}
