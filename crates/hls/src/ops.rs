//! Operator latency and resource profiles.
//!
//! Per-operator implementation costs of the Vitis HLS floating-point
//! operator library on an UltraScale+ device (Alveo U200 class), at a
//! 300 MHz-ish target clock. Exact numbers vary with core configuration;
//! these are representative of the medium-latency fully-pipelined cores
//! and drive both the initiation-interval model and the resource
//! estimator.

/// Scalar datatype of an operation or array element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataType {
    /// IEEE-754 single precision.
    F32,
    /// IEEE-754 double precision.
    F64,
    /// 32-bit integer (indices, counters).
    U32,
    /// 64-bit integer.
    U64,
}

impl DataType {
    /// Width in bits.
    pub fn bits(self) -> u32 {
        match self {
            DataType::F32 | DataType::U32 => 32,
            DataType::F64 | DataType::U64 => 64,
        }
    }
}

/// Kinds of arithmetic operations the kernels perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    /// Addition / subtraction.
    Add,
    /// Multiplication.
    Mul,
    /// Fused multiply-add (counted as one op).
    MulAdd,
    /// Division.
    Div,
    /// Square root.
    Sqrt,
    /// Comparison / select / integer glue.
    Logic,
}

impl OpKind {
    /// All modeled op kinds.
    pub const ALL: [OpKind; 6] = [
        OpKind::Add,
        OpKind::Mul,
        OpKind::MulAdd,
        OpKind::Div,
        OpKind::Sqrt,
        OpKind::Logic,
    ];
}

/// Implementation cost of one operator instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpProfile {
    /// Pipeline latency in cycles (fully pipelined: II=1 per instance).
    pub latency: u32,
    /// DSP48 slices.
    pub dsp: u32,
    /// Lookup tables.
    pub lut: u32,
    /// Flip-flops.
    pub ff: u32,
}

/// Cost profile of `kind` at `dtype`.
///
/// # Example
///
/// ```
/// use hls_kernel::ops::{op_profile, DataType, OpKind};
/// let f64_mul = op_profile(OpKind::Mul, DataType::F64);
/// let f32_mul = op_profile(OpKind::Mul, DataType::F32);
/// assert!(f64_mul.dsp > f32_mul.dsp);
/// ```
pub fn op_profile(kind: OpKind, dtype: DataType) -> OpProfile {
    use DataType::*;
    use OpKind::*;
    match (kind, dtype) {
        (Add, F32) => OpProfile {
            latency: 7,
            dsp: 2,
            lut: 214,
            ff: 324,
        },
        (Add, F64) => OpProfile {
            latency: 7,
            dsp: 3,
            lut: 654,
            ff: 800,
        },
        (Mul, F32) => OpProfile {
            latency: 4,
            dsp: 3,
            lut: 135,
            ff: 252,
        },
        (Mul, F64) => OpProfile {
            latency: 7,
            dsp: 11,
            lut: 285,
            ff: 588,
        },
        (MulAdd, F32) => OpProfile {
            latency: 9,
            dsp: 5,
            lut: 349,
            ff: 576,
        },
        (MulAdd, F64) => OpProfile {
            latency: 12,
            dsp: 14,
            lut: 939,
            ff: 1388,
        },
        (Div, F32) => OpProfile {
            latency: 15,
            dsp: 0,
            lut: 792,
            ff: 1446,
        },
        (Div, F64) => OpProfile {
            latency: 30,
            dsp: 0,
            lut: 3247,
            ff: 6266,
        },
        (Sqrt, F32) => OpProfile {
            latency: 16,
            dsp: 0,
            lut: 458,
            ff: 810,
        },
        (Sqrt, F64) => OpProfile {
            latency: 30,
            dsp: 0,
            lut: 1799,
            ff: 3554,
        },
        (Logic, F32 | U32) => OpProfile {
            latency: 1,
            dsp: 0,
            lut: 32,
            ff: 32,
        },
        (Logic, F64 | U64) => OpProfile {
            latency: 1,
            dsp: 0,
            lut: 64,
            ff: 64,
        },
        // Integer arithmetic maps onto fabric adders / DSP multipliers.
        (Add, U32) => OpProfile {
            latency: 1,
            dsp: 0,
            lut: 32,
            ff: 32,
        },
        (Add, U64) => OpProfile {
            latency: 2,
            dsp: 0,
            lut: 64,
            ff: 64,
        },
        (Mul, U32) => OpProfile {
            latency: 3,
            dsp: 3,
            lut: 20,
            ff: 60,
        },
        (Mul, U64) => OpProfile {
            latency: 5,
            dsp: 10,
            lut: 40,
            ff: 160,
        },
        (MulAdd, U32) => OpProfile {
            latency: 4,
            dsp: 3,
            lut: 52,
            ff: 92,
        },
        (MulAdd, U64) => OpProfile {
            latency: 6,
            dsp: 10,
            lut: 104,
            ff: 224,
        },
        (Div, U32) => OpProfile {
            latency: 34,
            dsp: 0,
            lut: 600,
            ff: 1200,
        },
        (Div, U64) => OpProfile {
            latency: 66,
            dsp: 0,
            lut: 1800,
            ff: 3600,
        },
        (Sqrt, U32) => OpProfile {
            latency: 17,
            dsp: 0,
            lut: 450,
            ff: 800,
        },
        (Sqrt, U64) => OpProfile {
            latency: 33,
            dsp: 0,
            lut: 1750,
            ff: 3500,
        },
    }
}

/// Round-trip latency (cycles) of an AXI read over the platform
/// interconnect before burst pipelining hides it.
pub const AXI_READ_LATENCY: u32 = 30;

/// Cycles per data beat on an AXI interface once a burst is streaming.
pub const AXI_BEAT_CYCLES: u32 = 1;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_are_defined_and_sane() {
        for kind in OpKind::ALL {
            for dtype in [DataType::F32, DataType::F64, DataType::U32, DataType::U64] {
                let p = op_profile(kind, dtype);
                assert!(p.latency >= 1, "{kind:?}/{dtype:?}");
                assert!(p.lut + p.ff + p.dsp > 0, "{kind:?}/{dtype:?}");
            }
        }
    }

    #[test]
    fn f64_costs_dominate_f32() {
        for kind in [
            OpKind::Add,
            OpKind::Mul,
            OpKind::MulAdd,
            OpKind::Div,
            OpKind::Sqrt,
        ] {
            let a = op_profile(kind, DataType::F32);
            let b = op_profile(kind, DataType::F64);
            assert!(b.latency >= a.latency, "{kind:?} latency");
            assert!(b.lut >= a.lut, "{kind:?} lut");
            assert!(b.dsp >= a.dsp, "{kind:?} dsp");
        }
    }

    #[test]
    fn division_avoids_dsps() {
        assert_eq!(op_profile(OpKind::Div, DataType::F64).dsp, 0);
        assert_eq!(op_profile(OpKind::Sqrt, DataType::F32).dsp, 0);
    }

    #[test]
    fn bit_widths() {
        assert_eq!(DataType::F32.bits(), 32);
        assert_eq!(DataType::F64.bits(), 64);
        assert_eq!(DataType::U32.bits(), 32);
        assert_eq!(DataType::U64.bits(), 64);
    }
}
