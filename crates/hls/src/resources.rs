//! Resource estimation: LUT / FF / DSP / BRAM18K / URAM from a schedule.
//!
//! Follows the Vitis binding model closely enough to reproduce the
//! *trade-offs* the paper's Table I reports:
//!
//! * each pipelined loop needs `⌈ops_per_initiation / II⌉` instances of
//!   every operator kind (lower II ⇒ more parallel hardware);
//! * sequential loops reuse one instance per kind; operator instances are
//!   shared **across** the loops of one kernel (max, not sum) because the
//!   loops execute sequentially;
//! * arrays cost BRAM18K / URAM banks as a function of their partitioning
//!   (partitioning multiplies bank count — the BRAM% growth in Table I),
//!   `Complete` partitioning spills into FF/LUT;
//! * every `m_axi` bundle pays a fixed adapter cost (the price of the
//!   §III-C bundle-per-array optimization).

use crate::ir::{ArrayKind, Kernel, Partition, StorageKind};
use crate::ops::{op_profile, DataType, OpKind};
use crate::schedule::KernelSchedule;
use std::collections::BTreeMap;
use std::ops::{Add, AddAssign};

/// FPGA resource vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceUsage {
    /// Lookup tables.
    pub lut: u64,
    /// Flip-flops.
    pub ff: u64,
    /// DSP48 slices.
    pub dsp: u64,
    /// 18Kb block RAMs.
    pub bram18k: u64,
    /// 288Kb UltraRAMs.
    pub uram: u64,
}

impl ResourceUsage {
    /// The zero vector.
    pub const ZERO: ResourceUsage = ResourceUsage {
        lut: 0,
        ff: 0,
        dsp: 0,
        bram18k: 0,
        uram: 0,
    };

    /// Whether every component fits inside `budget`.
    pub fn fits_in(&self, budget: &ResourceUsage) -> bool {
        self.lut <= budget.lut
            && self.ff <= budget.ff
            && self.dsp <= budget.dsp
            && self.bram18k <= budget.bram18k
            && self.uram <= budget.uram
    }

    /// Component-wise maximum.
    pub fn max(&self, other: &ResourceUsage) -> ResourceUsage {
        ResourceUsage {
            lut: self.lut.max(other.lut),
            ff: self.ff.max(other.ff),
            dsp: self.dsp.max(other.dsp),
            bram18k: self.bram18k.max(other.bram18k),
            uram: self.uram.max(other.uram),
        }
    }

    /// Largest utilization fraction across components, against `budget`
    /// (0.0 when the budget is zero everywhere).
    pub fn peak_utilization(&self, budget: &ResourceUsage) -> f64 {
        let frac = |used: u64, avail: u64| {
            if avail == 0 {
                if used == 0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                used as f64 / avail as f64
            }
        };
        [
            frac(self.lut, budget.lut),
            frac(self.ff, budget.ff),
            frac(self.dsp, budget.dsp),
            frac(self.bram18k, budget.bram18k),
            frac(self.uram, budget.uram),
        ]
        .into_iter()
        .fold(0.0, f64::max)
    }

    /// Scales every component by `f` (for replicated hardware).
    pub fn scaled(&self, f: u64) -> ResourceUsage {
        ResourceUsage {
            lut: self.lut * f,
            ff: self.ff * f,
            dsp: self.dsp * f,
            bram18k: self.bram18k * f,
            uram: self.uram * f,
        }
    }
}

impl Add for ResourceUsage {
    type Output = ResourceUsage;
    fn add(self, o: ResourceUsage) -> ResourceUsage {
        ResourceUsage {
            lut: self.lut + o.lut,
            ff: self.ff + o.ff,
            dsp: self.dsp + o.dsp,
            bram18k: self.bram18k + o.bram18k,
            uram: self.uram + o.uram,
        }
    }
}

impl AddAssign for ResourceUsage {
    fn add_assign(&mut self, o: ResourceUsage) {
        *self = *self + o;
    }
}

impl std::fmt::Display for ResourceUsage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LUT {} | FF {} | DSP {} | BRAM18K {} | URAM {}",
            self.lut, self.ff, self.dsp, self.bram18k, self.uram
        )
    }
}

/// Fixed cost of one `m_axi` bundle adapter (burst buffers, address
/// channels, alignment logic).
pub const AXI_ADAPTER: ResourceUsage = ResourceUsage {
    lut: 3200,
    ff: 5400,
    dsp: 0,
    bram18k: 4,
    uram: 0,
};

/// Control overhead per loop (FSM, counters).
pub const LOOP_CONTROL: ResourceUsage = ResourceUsage {
    lut: 120,
    ff: 150,
    dsp: 0,
    bram18k: 0,
    uram: 0,
};

/// Storage cost of one array declaration.
pub fn array_cost(
    elems: usize,
    dtype: DataType,
    storage: StorageKind,
    partition: Partition,
) -> ResourceUsage {
    let bits = dtype.bits() as u64;
    match partition {
        Partition::Complete => {
            // Registers + access muxing.
            let total_bits = bits * elems as u64;
            ResourceUsage {
                lut: total_bits / 2,
                ff: total_bits,
                dsp: 0,
                bram18k: 0,
                uram: 0,
            }
        }
        _ => {
            let banks = partition.banks(elems) as u64;
            let elems_per_bank = (elems as u64).div_ceil(banks);
            match storage {
                StorageKind::Uram => {
                    // URAM: 4096 × 72b.
                    let per_bank = bits.div_ceil(72) * elems_per_bank.div_ceil(4096);
                    ResourceUsage {
                        uram: banks * per_bank.max(1),
                        ..ResourceUsage::ZERO
                    }
                }
                StorageKind::Lutram => ResourceUsage {
                    lut: bits * elems_per_bank / 2 * banks,
                    ff: 64 * banks,
                    ..ResourceUsage::ZERO
                },
                StorageKind::Auto | StorageKind::Bram => {
                    // BRAM18K: 512 × 36b.
                    let per_bank = bits.div_ceil(36) * elems_per_bank.div_ceil(512);
                    ResourceUsage {
                        bram18k: banks * per_bank.max(1),
                        ..ResourceUsage::ZERO
                    }
                }
            }
        }
    }
}

/// Estimates the resources of a scheduled kernel.
///
/// Operator instances are shared across loops (sequential execution ⇒
/// per-kind maximum); arrays, AXI adapters, and loop control are summed.
pub fn estimate_resources(kernel: &Kernel, schedule: &KernelSchedule) -> ResourceUsage {
    // Operator instances: per (kind, dtype), max over loops.
    let mut instances: BTreeMap<(OpKind, DataType), u64> = BTreeMap::new();
    for ls in &schedule.loops {
        if let Some(agg) = &ls.aggregate {
            for (&(kind, dtype), &count) in &agg.ops {
                let needed = match ls.ii {
                    Some(ii) => count.div_ceil(ii as u64),
                    None => {
                        if ls.effective_trips == 1 && ls.replication == 1 {
                            // Fully unrolled combinational block.
                            count
                        } else {
                            // Sequential loop: one shared instance, times
                            // unroll replication.
                            ls.replication
                        }
                    }
                };
                let slot = instances.entry((kind, dtype)).or_insert(0);
                *slot = (*slot).max(needed);
            }
        }
    }
    let mut total = ResourceUsage::ZERO;
    for ((kind, dtype), n) in instances {
        let p = op_profile(kind, dtype);
        total += ResourceUsage {
            lut: p.lut as u64,
            ff: p.ff as u64,
            dsp: p.dsp as u64,
            bram18k: 0,
            uram: 0,
        }
        .scaled(n);
    }

    // Arrays.
    for a in kernel.arrays() {
        match &a.kind {
            ArrayKind::OnChip { storage, partition } => {
                total += array_cost(a.elems, a.dtype, *storage, *partition);
            }
            ArrayKind::Axi { .. } => {}
        }
    }

    // AXI adapters (one per distinct bundle).
    total += AXI_ADAPTER.scaled(kernel.bundles().len() as u64);

    // Loop control.
    total += LOOP_CONTROL.scaled(schedule.loops.len() as u64);

    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Kernel, LoopBuilder, OpCount};
    use crate::schedule::schedule_kernel;
    use proptest::prelude::*;

    fn kernel_with_ii(target_ii: u32, muladds: u64) -> (Kernel, KernelSchedule) {
        let mut k = Kernel::new("k");
        k.push_loop(
            LoopBuilder::new("l", 1024)
                .ops(vec![OpCount::new(OpKind::MulAdd, DataType::F64, muladds)])
                .pipeline(target_ii)
                .build(),
        );
        let s = schedule_kernel(&k).unwrap();
        (k, s)
    }

    #[test]
    fn lower_ii_needs_more_operators() {
        let (k1, s1) = kernel_with_ii(1, 8);
        let (k8, s8) = kernel_with_ii(8, 8);
        assert_eq!(s1.loop_schedule("l").unwrap().ii, Some(1));
        assert_eq!(s8.loop_schedule("l").unwrap().ii, Some(8));
        let r1 = estimate_resources(&k1, &s1);
        let r8 = estimate_resources(&k8, &s8);
        assert!(r1.dsp > r8.dsp, "II=1 must replicate MulAdd units");
        // 8 ops at II=1 → 8 units; at II=8 → 1 unit.
        let unit = op_profile(OpKind::MulAdd, DataType::F64).dsp as u64;
        assert_eq!(r1.dsp - r8.dsp, 7 * unit);
    }

    #[test]
    fn partitioning_multiplies_brams() {
        let base = array_cost(4096, DataType::F64, StorageKind::Bram, Partition::None);
        let split = array_cost(4096, DataType::F64, StorageKind::Bram, Partition::Cyclic(8));
        assert!(split.bram18k >= base.bram18k);
        // 4096 f64 = 8 banks of 512 × 64b = 8 × 2 BRAM18K.
        assert_eq!(split.bram18k, 16);
        assert_eq!(base.bram18k, 16); // 8 deep-blocks × 2 wide
    }

    #[test]
    fn small_array_partitioning_costs_brams() {
        // A small array fits one BRAM pair; partitioning forces one bank
        // minimum per partition.
        let base = array_cost(256, DataType::F64, StorageKind::Bram, Partition::None);
        let split = array_cost(256, DataType::F64, StorageKind::Bram, Partition::Cyclic(16));
        assert_eq!(base.bram18k, 2);
        assert_eq!(split.bram18k, 32);
    }

    #[test]
    fn complete_partition_uses_registers() {
        let r = array_cost(64, DataType::F64, StorageKind::Bram, Partition::Complete);
        assert_eq!(r.bram18k, 0);
        assert_eq!(r.ff, 64 * 64);
        assert!(r.lut > 0);
    }

    #[test]
    fn uram_binding() {
        // 32768 f64 = 2Mb: URAM 4096×72 → 8 URAMs (width 64 ≤ 72).
        let r = array_cost(32768, DataType::F64, StorageKind::Uram, Partition::None);
        assert_eq!(r.uram, 8);
        assert_eq!(r.bram18k, 0);
    }

    #[test]
    fn bundles_cost_adapters() {
        let mut k1 = Kernel::new("a");
        k1.add_axi_array("x", 128, DataType::F64, "gmem_0").unwrap();
        k1.add_axi_array("y", 128, DataType::F64, "gmem_0").unwrap();
        k1.push_loop(
            LoopBuilder::new("l", 16)
                .reads("x", 1)
                .reads("y", 1)
                .pipeline(1)
                .build(),
        );
        let mut k2 = Kernel::new("b");
        k2.add_axi_array("x", 128, DataType::F64, "gmem_0").unwrap();
        k2.add_axi_array("y", 128, DataType::F64, "gmem_1").unwrap();
        k2.push_loop(
            LoopBuilder::new("l", 16)
                .reads("x", 1)
                .reads("y", 1)
                .pipeline(1)
                .build(),
        );
        let r1 = estimate_resources(&k1, &schedule_kernel(&k1).unwrap());
        let r2 = estimate_resources(&k2, &schedule_kernel(&k2).unwrap());
        assert!(r2.lut > r1.lut, "extra bundle must cost an adapter");
        assert_eq!(r2.lut - r1.lut, AXI_ADAPTER.lut);
    }

    #[test]
    fn fits_and_peak_utilization() {
        let used = ResourceUsage {
            lut: 100,
            ff: 200,
            dsp: 10,
            bram18k: 4,
            uram: 0,
        };
        let budget = ResourceUsage {
            lut: 1000,
            ff: 1000,
            dsp: 20,
            bram18k: 8,
            uram: 10,
        };
        assert!(used.fits_in(&budget));
        assert!((used.peak_utilization(&budget) - 0.5).abs() < 1e-12);
        let over = ResourceUsage { dsp: 21, ..used };
        assert!(!over.fits_in(&budget));
    }

    proptest! {
        /// Resource estimates are monotone in op count.
        #[test]
        fn prop_resources_monotone_in_ops(ops in 1u64..32) {
            let (k1, s1) = kernel_with_ii(1, ops);
            let (k2, s2) = kernel_with_ii(1, ops + 1);
            let r1 = estimate_resources(&k1, &s1);
            let r2 = estimate_resources(&k2, &s2);
            prop_assert!(r2.dsp >= r1.dsp && r2.lut >= r1.lut);
        }

        /// Bank math: total capacity of banks covers the array.
        #[test]
        fn prop_bram_capacity_sufficient(elems in 1usize..100_000, factor in 1u32..32) {
            let r = array_cost(elems, DataType::F64, StorageKind::Bram, Partition::Cyclic(factor));
            // Each BRAM18K stores 18Kib.
            prop_assert!(r.bram18k * 18 * 1024 >= (elems as u64) * 64 / 2, // /2: width packing slack
                "bram {} elems {elems} factor {factor}", r.bram18k);
        }
    }
}
