//! Code generation: emit the Vitis-HLS C++ skeleton a kernel IR
//! represents.
//!
//! The IR abstracts the paper's C++-with-pragmas source (Fig 4 shows the
//! real thing); this module reverses the abstraction, emitting a
//! compilable-shaped C++ top function with the exact `#pragma HLS`
//! directives the model assumes — `interface m_axi bundle=…`,
//! `pipeline II=…`, `unroll factor=…`, `array_partition`,
//! `bind_storage`. Useful for (a) eyeballing that a design means what
//! you think it means and (b) seeding an actual Vitis project from a
//! tuned model.

use crate::ir::{ArrayKind, Kernel, Loop, Partition, StorageKind};
use crate::ops::DataType;
use std::fmt::Write as _;

fn ctype(d: DataType) -> &'static str {
    match d {
        DataType::F32 => "float",
        DataType::F64 => "double",
        DataType::U32 => "uint32_t",
        DataType::U64 => "uint64_t",
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn emit_loop(out: &mut String, lp: &Loop, level: usize) {
    let var = format!("i{level}");
    indent(out, level);
    let _ = writeln!(
        out,
        "{}: for (uint64_t {var} = 0; {var} < {}ULL; ++{var}) {{",
        lp.label, lp.trip_count
    );
    if let Some(ii) = lp.pipeline {
        indent(out, level + 1);
        let _ = writeln!(out, "#pragma HLS pipeline II={ii}");
    }
    if let Some(f) = lp.unroll {
        indent(out, level + 1);
        if f as u64 == lp.trip_count {
            let _ = writeln!(out, "#pragma HLS unroll");
        } else {
            let _ = writeln!(out, "#pragma HLS unroll factor={f}");
        }
    }
    for dep in &lp.deps {
        indent(out, level + 1);
        let _ = writeln!(
            out,
            "// loop-carried dependence through {} (latency {}, distance {})",
            dep.through, dep.latency, dep.distance
        );
    }
    for a in &lp.accesses {
        indent(out, level + 1);
        let verb = if a.write { "write" } else { "read" };
        let _ = writeln!(out, "// {} {}x per iteration: {}", verb, a.count, a.array);
    }
    for oc in &lp.ops {
        indent(out, level + 1);
        let _ = writeln!(
            out,
            "// {} x {:?} on {}",
            oc.count,
            oc.kind,
            ctype(oc.dtype)
        );
    }
    for inner in &lp.inner {
        emit_loop(out, inner, level + 1);
    }
    indent(out, level);
    out.push_str("}\n");
}

/// Emits the C++ top-function skeleton of `kernel`.
///
/// # Example
///
/// ```
/// use hls_kernel::ir::{Kernel, LoopBuilder};
/// use hls_kernel::ops::DataType;
/// use hls_kernel::codegen::emit_cpp;
///
/// let mut k = Kernel::new("copy");
/// k.add_axi_array("src", 1024, DataType::F64, "gmem_0").unwrap();
/// k.push_loop(LoopBuilder::new("main", 1024).reads("src", 1).pipeline(1).build());
/// let cpp = emit_cpp(&k);
/// assert!(cpp.contains("void copy("));
/// // Interface pragmas keep the paper's Fig 4 `#   pragma` spacing.
/// assert!(cpp.contains("pragma HLS interface mode=m_axi bundle=gmem_0 port=src"));
/// assert!(cpp.contains("#pragma HLS pipeline II=1"));
/// ```
pub fn emit_cpp(kernel: &Kernel) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// Generated from the `{}` kernel model — the C++-with-pragmas",
        kernel.name()
    );
    out.push_str("// shape the paper's Fig 4 shows, with this design's directives.\n");
    out.push_str("#include <cstdint>\n\n");

    // Signature: AXI arrays are top-level pointer arguments.
    let axi_args: Vec<&crate::ir::ArrayDecl> = kernel
        .arrays()
        .filter(|a| matches!(a.kind, ArrayKind::Axi { .. }))
        .collect();
    let _ = write!(out, "void {}(", kernel.name());
    for (i, a) in axi_args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{} *{}", ctype(a.dtype), a.name);
    }
    out.push_str(") {\n");

    // Interface pragmas (the paper's Fig 4 form).
    for a in &axi_args {
        if let ArrayKind::Axi { bundle } = &a.kind {
            let _ = writeln!(
                out,
                "#   pragma HLS interface mode=m_axi bundle={bundle} port={}",
                a.name
            );
        }
    }

    // On-chip arrays with storage/partition pragmas.
    for a in kernel.arrays() {
        if let ArrayKind::OnChip { storage, partition } = &a.kind {
            let _ = writeln!(out, "    {} {}[{}];", ctype(a.dtype), a.name, a.elems);
            match storage {
                StorageKind::Uram => {
                    let _ = writeln!(
                        out,
                        "#   pragma HLS bind_storage variable={} type=ram_2p impl=uram",
                        a.name
                    );
                }
                StorageKind::Lutram => {
                    let _ = writeln!(
                        out,
                        "#   pragma HLS bind_storage variable={} type=ram_2p impl=lutram",
                        a.name
                    );
                }
                StorageKind::Bram | StorageKind::Auto => {}
            }
            match partition {
                Partition::None => {}
                Partition::Complete => {
                    let _ = writeln!(
                        out,
                        "#   pragma HLS array_partition variable={} complete",
                        a.name
                    );
                }
                Partition::Cyclic(f) => {
                    let _ = writeln!(
                        out,
                        "#   pragma HLS array_partition variable={} cyclic factor={f}",
                        a.name
                    );
                }
                Partition::Block(f) => {
                    let _ = writeln!(
                        out,
                        "#   pragma HLS array_partition variable={} block factor={f}",
                        a.name
                    );
                }
            }
        }
    }
    out.push('\n');

    for lp in kernel.body() {
        emit_loop(&mut out, lp, 1);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Kernel, LoopBuilder, OpCount};
    use crate::ops::OpKind;

    fn sample() -> Kernel {
        let mut k = Kernel::new("rkl_compute");
        k.add_axi_array("rho", 4096, DataType::F64, "gmem_1")
            .unwrap();
        k.add_array("buf", 512, DataType::F64).unwrap();
        crate::directives::set_storage(&mut k, "buf", StorageKind::Uram).unwrap();
        crate::directives::set_partition(&mut k, "buf", Partition::Cyclic(4)).unwrap();
        let inner = LoopBuilder::new("taps", 2)
            .ops(vec![OpCount::new(OpKind::MulAdd, DataType::F64, 4)])
            .unroll_complete()
            .build();
        let outer = LoopBuilder::new("nodes", 4096)
            .reads("rho", 1)
            .reads("buf", 2)
            .carried_dep(7, 1, "acc")
            .nest(inner)
            .pipeline(2)
            .build();
        k.push_loop(outer);
        k
    }

    #[test]
    fn emits_signature_and_interfaces() {
        let cpp = emit_cpp(&sample());
        assert!(cpp.contains("void rkl_compute(double *rho)"));
        assert!(cpp.contains("#   pragma HLS interface mode=m_axi bundle=gmem_1 port=rho"));
    }

    #[test]
    fn emits_storage_and_partition_pragmas() {
        let cpp = emit_cpp(&sample());
        assert!(cpp.contains("double buf[512];"));
        assert!(cpp.contains("bind_storage variable=buf type=ram_2p impl=uram"));
        assert!(cpp.contains("array_partition variable=buf cyclic factor=4"));
    }

    #[test]
    fn emits_loop_structure_with_directives() {
        let cpp = emit_cpp(&sample());
        assert!(cpp.contains("nodes: for (uint64_t i1 = 0; i1 < 4096ULL; ++i1) {"));
        assert!(cpp.contains("#pragma HLS pipeline II=2"));
        assert!(cpp.contains("taps: for"));
        assert!(cpp.contains("#pragma HLS unroll\n"));
        assert!(cpp.contains("loop-carried dependence through acc"));
    }

    #[test]
    fn complete_partition_emits_complete_pragma() {
        let mut k = Kernel::new("t");
        k.add_array("regs", 8, DataType::F32).unwrap();
        crate::directives::set_partition(&mut k, "regs", Partition::Complete).unwrap();
        let cpp = emit_cpp(&k);
        assert!(cpp.contains("array_partition variable=regs complete"));
        assert!(cpp.contains("float regs[8];"));
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(emit_cpp(&sample()), emit_cpp(&sample()));
    }
}
