//! High-Level Synthesis kernel model: loop-nest IR, modulo scheduling,
//! directives, and resource estimation.
//!
//! The paper designs its accelerator with Vitis HLS 2021.1 and tunes it
//! through three directive families (§III-D): loop **pipelining**, loop
//! **unrolling**, and **array partitioning**, plus `m_axi` interface
//! bundling for off-chip parallelism (§III-C). This crate models how those
//! directives turn a C-like loop nest into hardware:
//!
//! * [`ir`] — the kernel intermediate representation: typed operation
//!   bundles, arrays with storage/partitioning, AXI bundles, loop nests.
//! * [`ops`] — latency and resource profiles of floating-point operators
//!   (UltraScale+-class numbers).
//! * [`schedule`] — the initiation-interval model
//!   `II = max(target, RecMII, MemMII, AxiMII)` and loop-nest latency
//!   computation, mirroring Vitis behaviour (pipelining an outer loop
//!   requires fully unrolled inner loops, §III-B).
//! * [`resources`] — LUT/FF/DSP/BRAM/URAM estimation from the schedule.
//! * [`directives`] — programmatic directive application, including the
//!   Vitis default optimization recipe the paper benchmarks against
//!   (`config_compile -pipeline_loops`, trip-count-threshold unrolling,
//!   small-array complete partitioning, §IV-A).
//!
//! # Example
//!
//! ```
//! use hls_kernel::ir::{Kernel, LoopBuilder, OpCount};
//! use hls_kernel::ops::{DataType, OpKind};
//! use hls_kernel::schedule::schedule_kernel;
//!
//! let mut k = Kernel::new("saxpy");
//! k.add_array("x", 1024, DataType::F32).unwrap();
//! let body = LoopBuilder::new("main", 1024)
//!     .ops(vec![
//!         OpCount::new(OpKind::Mul, DataType::F32, 1),
//!         OpCount::new(OpKind::Add, DataType::F32, 1),
//!     ])
//!     .reads("x", 1)
//!     .writes("x", 1)
//!     .pipeline(1)
//!     .build();
//! k.push_loop(body);
//! let schedule = schedule_kernel(&k).unwrap();
//! assert!(schedule.total_latency_cycles >= 1024);
//! ```

#![deny(missing_docs)]

pub mod codegen;
pub mod directives;
pub mod ir;
pub mod ops;
pub mod report;
pub mod resources;
pub mod schedule;

pub use ir::{Kernel, Loop, LoopBuilder, OpCount};
pub use ops::{DataType, OpKind};
pub use resources::ResourceUsage;
pub use schedule::{schedule_kernel, KernelSchedule};

/// Errors produced by the HLS model.
#[derive(Debug, Clone, PartialEq)]
pub enum HlsError {
    /// A name (array, loop label, bundle) was declared twice.
    DuplicateName(String),
    /// A statement references an undeclared array or bundle.
    UnknownName(String),
    /// A directive parameter is invalid (zero factor, zero II, ...).
    InvalidDirective(String),
    /// A loop marked for pipelining contains an inner loop that is not
    /// fully unrolled — Vitis cannot pipeline across it (§III-B).
    PipelineAcrossLoop {
        /// The pipelined outer loop.
        outer: String,
        /// The blocking inner loop.
        inner: String,
    },
    /// An unroll factor does not divide the loop trip count.
    UnrollMismatch {
        /// The loop label.
        label: String,
        /// The requested factor.
        factor: u32,
        /// The loop trip count.
        trip: u64,
    },
}

impl std::fmt::Display for HlsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HlsError::DuplicateName(n) => write!(f, "duplicate name `{n}`"),
            HlsError::UnknownName(n) => write!(f, "unknown name `{n}`"),
            HlsError::InvalidDirective(msg) => write!(f, "invalid directive: {msg}"),
            HlsError::PipelineAcrossLoop { outer, inner } => write!(
                f,
                "cannot pipeline loop `{outer}`: inner loop `{inner}` is not fully unrolled"
            ),
            HlsError::UnrollMismatch {
                label,
                factor,
                trip,
            } => write!(
                f,
                "unroll factor {factor} does not divide trip count {trip} of loop `{label}`"
            ),
        }
    }
}

impl std::error::Error for HlsError {}
