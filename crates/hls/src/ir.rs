//! The kernel intermediate representation.
//!
//! A [`Kernel`] is the model of one HLS top function (one accelerator
//! task): arrays (on-chip memories or `m_axi` ports), and a forest of
//! [`Loop`] nests whose bodies are summarized as typed operation counts
//! and memory access counts per iteration — exactly the information the
//! Vitis scheduler uses to derive initiation intervals and resource
//! binding.

use crate::ops::{DataType, OpKind};
use crate::HlsError;
use std::collections::BTreeMap;

/// On-chip storage binding of an array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageKind {
    /// Let the tool decide (modeled as BRAM).
    Auto,
    /// 18Kb block RAM.
    Bram,
    /// 288Kb UltraRAM (the paper's design uses URAM for matrices that
    /// exceed BRAM capacity, §III-D).
    Uram,
    /// Distributed LUT RAM.
    Lutram,
}

/// Array partitioning directive (`#pragma HLS array_partition`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partition {
    /// Single memory, two ports.
    None,
    /// Fully dissolved into registers.
    Complete,
    /// `factor` banks, elements striped round-robin.
    Cyclic(u32),
    /// `factor` banks, contiguous blocks.
    Block(u32),
}

impl Partition {
    /// Number of independent banks this partitioning yields for an array
    /// of `elems` elements (`Complete` → one per element).
    pub fn banks(self, elems: usize) -> usize {
        match self {
            Partition::None => 1,
            Partition::Complete => elems.max(1),
            Partition::Cyclic(f) | Partition::Block(f) => (f as usize).max(1),
        }
    }

    /// Concurrent port count available to a pipelined loop body
    /// (`None` when unlimited, i.e. registers).
    pub fn ports(self, elems: usize) -> Option<u64> {
        match self {
            Partition::Complete => None,
            _ => Some(2 * self.banks(elems) as u64),
        }
    }
}

/// Where an array lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArrayKind {
    /// On the programmable logic (BRAM/URAM/LUTRAM/registers).
    OnChip {
        /// Storage binding.
        storage: StorageKind,
        /// Partitioning directive.
        partition: Partition,
    },
    /// Behind an `m_axi` interface bundle (off-chip DDR).
    Axi {
        /// The bundle (`gmem_1`, ... in the paper's Fig 4) this port maps
        /// to. Arrays sharing a bundle contend for its data path.
        bundle: String,
    },
}

/// An array declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Array name (unique within the kernel).
    pub name: String,
    /// Element count.
    pub elems: usize,
    /// Element type.
    pub dtype: DataType,
    /// Placement.
    pub kind: ArrayKind,
}

/// Typed operation count inside one loop iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpCount {
    /// Operation kind.
    pub kind: OpKind,
    /// Operand type.
    pub dtype: DataType,
    /// Occurrences per iteration.
    pub count: u64,
}

impl OpCount {
    /// Convenience constructor.
    pub fn new(kind: OpKind, dtype: DataType, count: u64) -> Self {
        OpCount { kind, dtype, count }
    }
}

/// A memory access count inside one loop iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemAccess {
    /// Target array.
    pub array: String,
    /// Accesses per iteration.
    pub count: u64,
    /// Write (true) or read (false).
    pub write: bool,
}

/// A loop-carried dependence: a value produced in iteration `i` is needed
/// in iteration `i + distance` after `latency` cycles of computation.
/// Bounds the initiation interval from below by `⌈latency/distance⌉`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CarriedDep {
    /// Cycles of computation on the dependence cycle.
    pub latency: u32,
    /// Iteration distance.
    pub distance: u32,
    /// What carries the dependence (for diagnostics).
    pub through: String,
}

/// A counted loop with directives and a summarized body.
#[derive(Debug, Clone, PartialEq)]
pub struct Loop {
    /// Unique label (used to address directives).
    pub label: String,
    /// Trip count.
    pub trip_count: u64,
    /// Pipeline directive: target II.
    pub pipeline: Option<u32>,
    /// Unroll factor (`Some(trip_count)` = complete unroll).
    pub unroll: Option<u32>,
    /// Straight-line ops per iteration (excluding inner loops).
    pub ops: Vec<OpCount>,
    /// Memory accesses per iteration (excluding inner loops).
    pub accesses: Vec<MemAccess>,
    /// Loop-carried dependences.
    pub deps: Vec<CarriedDep>,
    /// Nested loops, executed sequentially inside each iteration.
    pub inner: Vec<Loop>,
    /// Optional explicit pipeline-depth estimate (cycles); when absent the
    /// scheduler derives one from the op latencies.
    pub depth_hint: Option<u32>,
}

impl Loop {
    /// Whether every iteration is materialized in parallel hardware.
    pub fn is_fully_unrolled(&self) -> bool {
        self.unroll == Some(self.trip_count as u32) || self.trip_count <= 1
    }

    /// Depth-first traversal of this loop and its nest.
    pub fn walk<'a>(&'a self, out: &mut Vec<&'a Loop>) {
        out.push(self);
        for l in &self.inner {
            l.walk(out);
        }
    }

    fn walk_mut<'a>(&'a mut self, label: &str) -> Option<&'a mut Loop> {
        if self.label == label {
            return Some(self);
        }
        for l in &mut self.inner {
            if let Some(found) = l.walk_mut(label) {
                return Some(found);
            }
        }
        None
    }
}

/// Fluent builder for [`Loop`].
///
/// # Example
///
/// ```
/// use hls_kernel::ir::{LoopBuilder, OpCount};
/// use hls_kernel::ops::{DataType, OpKind};
///
/// let inner = LoopBuilder::new("inner", 8)
///     .ops(vec![OpCount::new(OpKind::MulAdd, DataType::F64, 2)])
///     .unroll_complete()
///     .build();
/// let outer = LoopBuilder::new("outer", 4096)
///     .nest(inner)
///     .pipeline(1)
///     .build();
/// assert_eq!(outer.inner.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct LoopBuilder {
    lp: Loop,
}

impl LoopBuilder {
    /// Starts a loop with `label` and `trip_count`.
    pub fn new(label: impl Into<String>, trip_count: u64) -> Self {
        LoopBuilder {
            lp: Loop {
                label: label.into(),
                trip_count,
                pipeline: None,
                unroll: None,
                ops: Vec::new(),
                accesses: Vec::new(),
                deps: Vec::new(),
                inner: Vec::new(),
                depth_hint: None,
            },
        }
    }

    /// Adds straight-line ops per iteration.
    pub fn ops(mut self, ops: Vec<OpCount>) -> Self {
        self.lp.ops.extend(ops);
        self
    }

    /// Adds `count` reads per iteration from `array`.
    pub fn reads(mut self, array: impl Into<String>, count: u64) -> Self {
        self.lp.accesses.push(MemAccess {
            array: array.into(),
            count,
            write: false,
        });
        self
    }

    /// Adds `count` writes per iteration to `array`.
    pub fn writes(mut self, array: impl Into<String>, count: u64) -> Self {
        self.lp.accesses.push(MemAccess {
            array: array.into(),
            count,
            write: true,
        });
        self
    }

    /// Declares a loop-carried dependence.
    pub fn carried_dep(mut self, latency: u32, distance: u32, through: impl Into<String>) -> Self {
        self.lp.deps.push(CarriedDep {
            latency,
            distance,
            through: through.into(),
        });
        self
    }

    /// Requests pipelining with a target II.
    pub fn pipeline(mut self, target_ii: u32) -> Self {
        self.lp.pipeline = Some(target_ii.max(1));
        self
    }

    /// Requests partial unrolling.
    pub fn unroll(mut self, factor: u32) -> Self {
        self.lp.unroll = Some(factor.max(1));
        self
    }

    /// Requests complete unrolling.
    pub fn unroll_complete(mut self) -> Self {
        self.lp.unroll = Some(self.lp.trip_count as u32);
        self
    }

    /// Nests an inner loop.
    pub fn nest(mut self, inner: Loop) -> Self {
        self.lp.inner.push(inner);
        self
    }

    /// Sets an explicit pipeline-depth estimate.
    pub fn depth_hint(mut self, cycles: u32) -> Self {
        self.lp.depth_hint = Some(cycles);
        self
    }

    /// Finishes the loop.
    pub fn build(self) -> Loop {
        self.lp
    }
}

/// One HLS top function (accelerator task).
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    name: String,
    arrays: BTreeMap<String, ArrayDecl>,
    body: Vec<Loop>,
}

impl Kernel {
    /// Creates an empty kernel.
    pub fn new(name: impl Into<String>) -> Self {
        Kernel {
            name: name.into(),
            arrays: BTreeMap::new(),
            body: Vec::new(),
        }
    }

    /// Kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declares an on-chip array (auto storage, no partitioning).
    ///
    /// # Errors
    ///
    /// [`HlsError::DuplicateName`] if the name is taken.
    pub fn add_array(
        &mut self,
        name: impl Into<String>,
        elems: usize,
        dtype: DataType,
    ) -> Result<(), HlsError> {
        let name = name.into();
        self.insert_array(ArrayDecl {
            name,
            elems,
            dtype,
            kind: ArrayKind::OnChip {
                storage: StorageKind::Auto,
                partition: Partition::None,
            },
        })
    }

    /// Declares an array behind an `m_axi` bundle (the paper's
    /// `#pragma HLS interface mode=m_axi bundle=...`, Fig 4).
    ///
    /// # Errors
    ///
    /// [`HlsError::DuplicateName`] if the name is taken.
    pub fn add_axi_array(
        &mut self,
        name: impl Into<String>,
        elems: usize,
        dtype: DataType,
        bundle: impl Into<String>,
    ) -> Result<(), HlsError> {
        let name = name.into();
        self.insert_array(ArrayDecl {
            name,
            elems,
            dtype,
            kind: ArrayKind::Axi {
                bundle: bundle.into(),
            },
        })
    }

    fn insert_array(&mut self, decl: ArrayDecl) -> Result<(), HlsError> {
        if self.arrays.contains_key(&decl.name) {
            return Err(HlsError::DuplicateName(decl.name));
        }
        self.arrays.insert(decl.name.clone(), decl);
        Ok(())
    }

    /// All declared arrays (sorted by name).
    pub fn arrays(&self) -> impl Iterator<Item = &ArrayDecl> {
        self.arrays.values()
    }

    /// Looks up one array.
    pub fn array(&self, name: &str) -> Option<&ArrayDecl> {
        self.arrays.get(name)
    }

    /// Mutable access to one array declaration (directive application).
    pub fn array_mut(&mut self, name: &str) -> Option<&mut ArrayDecl> {
        self.arrays.get_mut(name)
    }

    /// Distinct AXI bundles referenced by the kernel's arrays.
    pub fn bundles(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .arrays
            .values()
            .filter_map(|a| match &a.kind {
                ArrayKind::Axi { bundle } => Some(bundle.as_str()),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Appends a top-level loop (top-level loops run sequentially).
    pub fn push_loop(&mut self, lp: Loop) {
        self.body.push(lp);
    }

    /// Top-level loops.
    pub fn body(&self) -> &[Loop] {
        &self.body
    }

    /// Mutable access to the top-level loops (crate-internal; directive
    /// passes use this).
    pub(crate) fn body_mut(&mut self) -> &mut Vec<Loop> {
        &mut self.body
    }

    /// All loops, depth-first.
    pub fn loops(&self) -> Vec<&Loop> {
        let mut out = Vec::new();
        for l in &self.body {
            l.walk(&mut out);
        }
        out
    }

    /// Finds a loop by label.
    pub fn find_loop_mut(&mut self, label: &str) -> Option<&mut Loop> {
        for l in &mut self.body {
            if let Some(f) = l.walk_mut(label) {
                return Some(f);
            }
        }
        None
    }

    /// Validates internal consistency: unique loop labels, every access
    /// targets a declared array, positive trip counts, unroll factors
    /// divide trip counts.
    ///
    /// # Errors
    ///
    /// The first violation found, as an [`HlsError`].
    pub fn validate(&self) -> Result<(), HlsError> {
        let loops = self.loops();
        let mut labels = std::collections::BTreeSet::new();
        for l in &loops {
            if !labels.insert(l.label.as_str()) {
                return Err(HlsError::DuplicateName(l.label.clone()));
            }
            if l.trip_count == 0 {
                return Err(HlsError::InvalidDirective(format!(
                    "loop `{}` has zero trip count",
                    l.label
                )));
            }
            if let Some(f) = l.unroll {
                if f == 0 || l.trip_count % f as u64 != 0 {
                    return Err(HlsError::UnrollMismatch {
                        label: l.label.clone(),
                        factor: f,
                        trip: l.trip_count,
                    });
                }
            }
            for a in &l.accesses {
                if !self.arrays.contains_key(&a.array) {
                    return Err(HlsError::UnknownName(a.array.clone()));
                }
            }
            for d in &l.deps {
                if d.distance == 0 {
                    return Err(HlsError::InvalidDirective(format!(
                        "dependence through `{}` has zero distance",
                        d.through
                    )));
                }
            }
        }
        for a in self.arrays.values() {
            if let ArrayKind::OnChip {
                partition: Partition::Cyclic(0) | Partition::Block(0),
                ..
            } = &a.kind
            {
                return Err(HlsError::InvalidDirective(format!(
                    "array `{}` has zero partition factor",
                    a.name
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_kernel() -> Kernel {
        let mut k = Kernel::new("k");
        k.add_array("buf", 256, DataType::F64).unwrap();
        k.add_axi_array("x", 4096, DataType::F64, "gmem_0").unwrap();
        let inner = LoopBuilder::new("inner", 8)
            .ops(vec![OpCount::new(OpKind::MulAdd, DataType::F64, 3)])
            .reads("buf", 2)
            .build();
        let outer = LoopBuilder::new("outer", 512)
            .reads("x", 1)
            .nest(inner)
            .build();
        k.push_loop(outer);
        k
    }

    #[test]
    fn arrays_and_bundles() {
        let k = simple_kernel();
        assert_eq!(k.arrays().count(), 2);
        assert_eq!(k.bundles(), vec!["gmem_0"]);
        assert!(k.array("buf").is_some());
        assert!(k.array("nope").is_none());
    }

    #[test]
    fn duplicate_array_rejected() {
        let mut k = Kernel::new("k");
        k.add_array("a", 1, DataType::F32).unwrap();
        assert!(matches!(
            k.add_array("a", 2, DataType::F32),
            Err(HlsError::DuplicateName(_))
        ));
    }

    #[test]
    fn loop_lookup_and_walk() {
        let mut k = simple_kernel();
        assert_eq!(k.loops().len(), 2);
        assert!(k.find_loop_mut("inner").is_some());
        assert!(k.find_loop_mut("outer").is_some());
        assert!(k.find_loop_mut("ghost").is_none());
    }

    #[test]
    fn validation_catches_problems() {
        let k = simple_kernel();
        assert!(k.validate().is_ok());

        let mut bad = simple_kernel();
        bad.push_loop(LoopBuilder::new("outer", 4).build()); // duplicate label
        assert!(matches!(bad.validate(), Err(HlsError::DuplicateName(_))));

        let mut bad = simple_kernel();
        bad.push_loop(LoopBuilder::new("l2", 10).unroll(3).build());
        assert!(matches!(
            bad.validate(),
            Err(HlsError::UnrollMismatch { .. })
        ));

        let mut bad = simple_kernel();
        bad.push_loop(LoopBuilder::new("l3", 4).reads("ghost", 1).build());
        assert!(matches!(bad.validate(), Err(HlsError::UnknownName(_))));

        let mut bad = simple_kernel();
        bad.push_loop(LoopBuilder::new("l4", 4).carried_dep(10, 0, "acc").build());
        assert!(matches!(bad.validate(), Err(HlsError::InvalidDirective(_))));
    }

    #[test]
    fn partition_bank_math() {
        assert_eq!(Partition::None.banks(100), 1);
        assert_eq!(Partition::Cyclic(4).banks(100), 4);
        assert_eq!(Partition::Complete.banks(100), 100);
        assert_eq!(Partition::None.ports(100), Some(2));
        assert_eq!(Partition::Block(8).ports(100), Some(16));
        assert_eq!(Partition::Complete.ports(100), None);
    }

    #[test]
    fn fully_unrolled_detection() {
        let l = LoopBuilder::new("l", 8).unroll_complete().build();
        assert!(l.is_fully_unrolled());
        let l = LoopBuilder::new("l", 8).unroll(4).build();
        assert!(!l.is_fully_unrolled());
        let l = LoopBuilder::new("l", 1).build();
        assert!(l.is_fully_unrolled());
    }
}
