//! Programmatic directive application and the Vitis default recipe.
//!
//! The §III-D optimizer (in the `fem-accel` crate) manipulates kernels
//! through these functions; [`apply_vitis_defaults`] reproduces the
//! baseline configuration the paper compares against (§IV-A):
//! `config_compile -pipeline_loops` (pipeline innermost loops),
//! `config_unroll -tripcount_threshold` (unroll small loops), and
//! `config_array_partition -complete_threshold` (dissolve small arrays).

use crate::ir::{ArrayKind, Kernel, Loop, Partition, StorageKind};
use crate::HlsError;

/// Sets a pipeline directive (target II) on the labeled loop.
///
/// # Errors
///
/// [`HlsError::UnknownName`] if no loop carries the label;
/// [`HlsError::InvalidDirective`] for a zero target.
pub fn set_pipeline(kernel: &mut Kernel, label: &str, target_ii: u32) -> Result<(), HlsError> {
    if target_ii == 0 {
        return Err(HlsError::InvalidDirective(
            "pipeline target II must be ≥ 1".into(),
        ));
    }
    let lp = kernel
        .find_loop_mut(label)
        .ok_or_else(|| HlsError::UnknownName(label.to_string()))?;
    lp.pipeline = Some(target_ii);
    Ok(())
}

/// Removes the pipeline directive from the labeled loop.
///
/// # Errors
///
/// [`HlsError::UnknownName`] if no loop carries the label.
pub fn clear_pipeline(kernel: &mut Kernel, label: &str) -> Result<(), HlsError> {
    let lp = kernel
        .find_loop_mut(label)
        .ok_or_else(|| HlsError::UnknownName(label.to_string()))?;
    lp.pipeline = None;
    Ok(())
}

/// Sets an unroll directive on the labeled loop.
///
/// # Errors
///
/// [`HlsError::UnknownName`] for a missing loop,
/// [`HlsError::UnrollMismatch`] if `factor` does not divide the trip count.
pub fn set_unroll(kernel: &mut Kernel, label: &str, factor: u32) -> Result<(), HlsError> {
    let lp = kernel
        .find_loop_mut(label)
        .ok_or_else(|| HlsError::UnknownName(label.to_string()))?;
    if factor == 0 || lp.trip_count % factor as u64 != 0 {
        return Err(HlsError::UnrollMismatch {
            label: label.to_string(),
            factor,
            trip: lp.trip_count,
        });
    }
    lp.unroll = Some(factor);
    Ok(())
}

/// Fully unrolls the labeled loop.
///
/// # Errors
///
/// [`HlsError::UnknownName`] for a missing loop, or
/// [`HlsError::InvalidDirective`] if the trip count exceeds `u32::MAX`.
pub fn set_unroll_complete(kernel: &mut Kernel, label: &str) -> Result<(), HlsError> {
    let lp = kernel
        .find_loop_mut(label)
        .ok_or_else(|| HlsError::UnknownName(label.to_string()))?;
    let trip = u32::try_from(lp.trip_count).map_err(|_| {
        HlsError::InvalidDirective(format!(
            "cannot completely unroll `{label}`: trip count too large"
        ))
    })?;
    lp.unroll = Some(trip);
    Ok(())
}

/// Sets the partitioning of an on-chip array.
///
/// # Errors
///
/// [`HlsError::UnknownName`] for a missing array,
/// [`HlsError::InvalidDirective`] when applied to an AXI port or with a
/// zero factor.
pub fn set_partition(
    kernel: &mut Kernel,
    array: &str,
    partition: Partition,
) -> Result<(), HlsError> {
    if let Partition::Cyclic(0) | Partition::Block(0) = partition {
        return Err(HlsError::InvalidDirective(
            "partition factor must be ≥ 1".into(),
        ));
    }
    let decl = kernel
        .array_mut(array)
        .ok_or_else(|| HlsError::UnknownName(array.to_string()))?;
    match &mut decl.kind {
        ArrayKind::OnChip { partition: p, .. } => {
            *p = partition;
            Ok(())
        }
        ArrayKind::Axi { .. } => Err(HlsError::InvalidDirective(format!(
            "array `{array}` is an AXI port and cannot be partitioned"
        ))),
    }
}

/// Sets the storage binding of an on-chip array (BRAM/URAM/LUTRAM).
///
/// # Errors
///
/// [`HlsError::UnknownName`] / [`HlsError::InvalidDirective`] as for
/// [`set_partition`].
pub fn set_storage(kernel: &mut Kernel, array: &str, storage: StorageKind) -> Result<(), HlsError> {
    let decl = kernel
        .array_mut(array)
        .ok_or_else(|| HlsError::UnknownName(array.to_string()))?;
    match &mut decl.kind {
        ArrayKind::OnChip { storage: s, .. } => {
            *s = storage;
            Ok(())
        }
        ArrayKind::Axi { .. } => Err(HlsError::InvalidDirective(format!(
            "array `{array}` is an AXI port and has no on-chip storage"
        ))),
    }
}

/// Reassigns an AXI array to a different bundle (the paper's per-array
/// interface assignment, Fig 4).
///
/// # Errors
///
/// [`HlsError::UnknownName`] for a missing array,
/// [`HlsError::InvalidDirective`] when the array is on-chip.
pub fn assign_bundle(kernel: &mut Kernel, array: &str, bundle: &str) -> Result<(), HlsError> {
    let decl = kernel
        .array_mut(array)
        .ok_or_else(|| HlsError::UnknownName(array.to_string()))?;
    match &mut decl.kind {
        ArrayKind::Axi { bundle: b } => {
            *b = bundle.to_string();
            Ok(())
        }
        ArrayKind::OnChip { .. } => Err(HlsError::InvalidDirective(format!(
            "array `{array}` is on-chip and has no AXI bundle"
        ))),
    }
}

/// The Vitis default optimization configuration (§IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VitisDefaults {
    /// `config_compile -pipeline_loops`: pipeline innermost loops.
    pub pipeline_loops: bool,
    /// `config_unroll -tripcount_threshold`: fully unroll loops with trip
    /// count at or below this.
    pub unroll_trip_threshold: u64,
    /// `config_array_partition -complete_threshold`: completely partition
    /// arrays with at most this many elements.
    pub partition_elem_threshold: usize,
}

impl Default for VitisDefaults {
    fn default() -> Self {
        VitisDefaults {
            pipeline_loops: true,
            unroll_trip_threshold: 4,
            partition_elem_threshold: 16,
        }
    }
}

/// Applies the Vitis default recipe in place.
///
/// Innermost loops get `pipeline(1)`; loops with small trip counts are
/// fully unrolled; small on-chip arrays are completely partitioned.
pub fn apply_vitis_defaults(kernel: &mut Kernel, cfg: VitisDefaults) {
    fn visit(lp: &mut Loop, cfg: &VitisDefaults) {
        if lp.trip_count <= cfg.unroll_trip_threshold {
            lp.unroll = Some(lp.trip_count as u32);
        }
        if lp.inner.is_empty() {
            if cfg.pipeline_loops && !lp.is_fully_unrolled() {
                lp.pipeline = Some(1);
            }
        } else {
            for inner in &mut lp.inner {
                visit(inner, cfg);
            }
            // Pipeline this loop only if everything below dissolved.
            if cfg.pipeline_loops
                && lp.inner.iter().all(|l| l.is_fully_unrolled())
                && lp.trip_count > cfg.unroll_trip_threshold
            {
                lp.pipeline = Some(1);
            }
        }
    }
    // Collect array names first to avoid aliasing the kernel borrow.
    let small_arrays: Vec<String> = kernel
        .arrays()
        .filter(|a| {
            matches!(a.kind, ArrayKind::OnChip { .. }) && a.elems <= cfg.partition_elem_threshold
        })
        .map(|a| a.name.clone())
        .collect();
    for name in small_arrays {
        let _ = set_partition(kernel, &name, Partition::Complete);
    }
    // Loops.
    let mut body = std::mem::take(kernel_body_mut(kernel));
    for lp in &mut body {
        visit(lp, &cfg);
    }
    *kernel_body_mut(kernel) = body;
}

/// Internal accessor: the IR deliberately keeps `body` private; directives
/// go through `find_loop_mut`. The defaults pass needs whole-body access.
fn kernel_body_mut(kernel: &mut Kernel) -> &mut Vec<Loop> {
    // SAFETY-free: Kernel exposes this via a crate-public helper.
    kernel.body_mut()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{LoopBuilder, OpCount};
    use crate::ops::{DataType, OpKind};
    use crate::schedule::schedule_kernel;

    fn nest() -> Kernel {
        let mut k = Kernel::new("k");
        k.add_array("small", 8, DataType::F64).unwrap();
        k.add_array("big", 4096, DataType::F64).unwrap();
        let inner = LoopBuilder::new("inner", 4)
            .ops(vec![OpCount::new(OpKind::MulAdd, DataType::F64, 2)])
            .reads("small", 1)
            .build();
        let outer = LoopBuilder::new("outer", 1000)
            .nest(inner)
            .reads("big", 1)
            .build();
        k.push_loop(outer);
        k
    }

    #[test]
    fn directive_setters_work() {
        let mut k = nest();
        set_pipeline(&mut k, "outer", 1).unwrap();
        set_unroll_complete(&mut k, "inner").unwrap();
        set_partition(&mut k, "big", Partition::Cyclic(4)).unwrap();
        set_storage(&mut k, "big", StorageKind::Uram).unwrap();
        // 4 unrolled reads of `small` per initiation: needs 4 ports.
        set_partition(&mut k, "small", Partition::Cyclic(2)).unwrap();
        let s = schedule_kernel(&k).unwrap();
        assert_eq!(s.loop_schedule("outer").unwrap().ii, Some(1));
    }

    #[test]
    fn errors_on_unknown_names() {
        let mut k = nest();
        assert!(matches!(
            set_pipeline(&mut k, "ghost", 1),
            Err(HlsError::UnknownName(_))
        ));
        assert!(matches!(
            set_unroll(&mut k, "ghost", 2),
            Err(HlsError::UnknownName(_))
        ));
        assert!(matches!(
            set_partition(&mut k, "ghost", Partition::Complete),
            Err(HlsError::UnknownName(_))
        ));
    }

    #[test]
    fn unroll_must_divide() {
        let mut k = nest();
        assert!(matches!(
            set_unroll(&mut k, "outer", 7),
            Err(HlsError::UnrollMismatch { .. })
        ));
        set_unroll(&mut k, "outer", 8).unwrap();
    }

    #[test]
    fn axi_arrays_reject_onchip_directives() {
        let mut k = Kernel::new("k");
        k.add_axi_array("x", 64, DataType::F64, "gmem_0").unwrap();
        assert!(set_partition(&mut k, "x", Partition::Complete).is_err());
        assert!(set_storage(&mut k, "x", StorageKind::Uram).is_err());
        assign_bundle(&mut k, "x", "gmem_7").unwrap();
        assert_eq!(k.bundles(), vec!["gmem_7"]);
    }

    #[test]
    fn vitis_defaults_pipeline_innermost_and_unroll_small() {
        let mut k = nest();
        apply_vitis_defaults(&mut k, VitisDefaults::default());
        // inner (trip 4 ≤ threshold) fully unrolled; outer pipelined.
        let loops = k.loops();
        let inner = loops.iter().find(|l| l.label == "inner").unwrap();
        assert!(inner.is_fully_unrolled());
        let outer = loops.iter().find(|l| l.label == "outer").unwrap();
        assert_eq!(outer.pipeline, Some(1));
        // small array completely partitioned, big untouched.
        match &k.array("small").unwrap().kind {
            ArrayKind::OnChip { partition, .. } => assert_eq!(*partition, Partition::Complete),
            _ => panic!(),
        }
        match &k.array("big").unwrap().kind {
            ArrayKind::OnChip { partition, .. } => assert_eq!(*partition, Partition::None),
            _ => panic!(),
        }
        // The configured kernel schedules cleanly.
        assert!(schedule_kernel(&k).is_ok());
    }

    #[test]
    fn vitis_defaults_leave_deep_nests_sequential() {
        // A large inner loop cannot be unrolled by the defaults, so the
        // outer loop must stay unpipelined (the §III-B limitation).
        let mut k = Kernel::new("k");
        let inner = LoopBuilder::new("inner", 512)
            .ops(vec![OpCount::new(OpKind::Add, DataType::F64, 1)])
            .build();
        let outer = LoopBuilder::new("outer", 100).nest(inner).build();
        k.push_loop(outer);
        apply_vitis_defaults(&mut k, VitisDefaults::default());
        let loops = k.loops();
        let outer = loops.iter().find(|l| l.label == "outer").unwrap();
        assert_eq!(outer.pipeline, None);
        let inner = loops.iter().find(|l| l.label == "inner").unwrap();
        assert_eq!(inner.pipeline, Some(1));
    }
}
