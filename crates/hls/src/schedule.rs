//! Loop scheduling: initiation intervals and latency.
//!
//! Models the Vitis HLS scheduler's observable behaviour:
//!
//! * A pipelined loop achieves `II = max(target, RecMII, MemMII, AxiMII)`:
//!   - `RecMII = ⌈latency/distance⌉` over loop-carried dependences,
//!   - `MemMII = ⌈accesses/ports⌉` per on-chip array (ports grow with
//!     array partitioning — the §III-D lever),
//!   - `AxiMII = beats` per AXI bundle (arrays sharing a bundle contend —
//!     the §III-C lever).
//! * Pipelining a loop **requires every inner loop to be fully unrolled**
//!   (§III-B: "applying loop pipelining to the outer loop ... often
//!   requires fully unrolling the inner loops").
//! * A read-modify-write of an AXI array inside one pipelined loop incurs
//!   a carried dependence of the AXI round-trip latency — the bottleneck
//!   the paper removes by decoupling load and store interfaces (§III-C).

use crate::ir::{ArrayKind, Kernel, Loop};
use crate::ops::{op_profile, DataType, OpKind, AXI_BEAT_CYCLES, AXI_READ_LATENCY};
use crate::HlsError;
use std::collections::BTreeMap;

/// What limited a pipelined loop's achieved II.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IiBound {
    /// The requested target was achievable.
    Target,
    /// A loop-carried dependence (name of the carrier).
    Recurrence(String),
    /// On-chip memory ports of the named array.
    MemoryPorts(String),
    /// Contention on the named AXI bundle.
    AxiContention(String),
}

impl std::fmt::Display for IiBound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IiBound::Target => write!(f, "target"),
            IiBound::Recurrence(s) => write!(f, "recurrence through `{s}`"),
            IiBound::MemoryPorts(a) => write!(f, "memory ports of `{a}`"),
            IiBound::AxiContention(b) => write!(f, "AXI contention on `{b}`"),
        }
    }
}

/// Flattened per-iteration content of a (possibly nested) loop body.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Aggregate {
    /// Operation counts by (kind, type).
    pub ops: BTreeMap<(OpKind, DataType), u64>,
    /// Read counts per array.
    pub reads: BTreeMap<String, u64>,
    /// Write counts per array.
    pub writes: BTreeMap<String, u64>,
    /// Worst carried dependence bound `⌈latency/distance⌉` and its carrier.
    pub rec_mii: u32,
    /// Carrier description for `rec_mii`.
    pub rec_through: Option<String>,
    /// Estimated pipeline depth (cycles).
    pub depth: u32,
}

impl Aggregate {
    fn absorb_own(&mut self, lp: &Loop, multiplier: u64) {
        for oc in &lp.ops {
            *self.ops.entry((oc.kind, oc.dtype)).or_insert(0) += oc.count * multiplier;
        }
        for a in &lp.accesses {
            let slot = if a.write {
                self.writes.entry(a.array.clone()).or_insert(0)
            } else {
                self.reads.entry(a.array.clone()).or_insert(0)
            };
            *slot += a.count * multiplier;
        }
        for d in &lp.deps {
            let bound = d.latency.div_ceil(d.distance);
            if bound > self.rec_mii {
                self.rec_mii = bound;
                self.rec_through = Some(d.through.clone());
            }
        }
        let own_depth = lp.depth_hint.unwrap_or_else(|| {
            // Default: one of each distinct op kind chained, plus memory
            // access setup.
            let chain: u32 = lp
                .ops
                .iter()
                .map(|oc| op_profile(oc.kind, oc.dtype).latency)
                .sum();
            chain + 4
        });
        self.depth = self.depth.max(own_depth);
    }

    /// Total op count of one (kind, dtype).
    pub fn op_count(&self, kind: OpKind, dtype: DataType) -> u64 {
        self.ops.get(&(kind, dtype)).copied().unwrap_or(0)
    }
}

/// Recursively flattens `lp` (body ops plus fully unrolled inner loops)
/// into `agg`, scaled by `multiplier` iterations.
fn collect_aggregate(
    lp: &Loop,
    multiplier: u64,
    outer: &str,
    agg: &mut Aggregate,
) -> Result<(), HlsError> {
    agg.absorb_own(lp, multiplier);
    for inner in &lp.inner {
        if !inner.is_fully_unrolled() {
            return Err(HlsError::PipelineAcrossLoop {
                outer: outer.to_string(),
                inner: inner.label.clone(),
            });
        }
        collect_aggregate(inner, multiplier * inner.trip_count, outer, agg)?;
    }
    Ok(())
}

/// Schedule of one loop in the kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopSchedule {
    /// Loop label.
    pub label: String,
    /// Achieved II (None for non-pipelined loops).
    pub ii: Option<u32>,
    /// What bound the II.
    pub bound: Option<IiBound>,
    /// Pipeline depth / body latency in cycles.
    pub depth: u32,
    /// Effective trip count after unrolling.
    pub effective_trips: u64,
    /// Total latency of the loop in cycles.
    pub latency: u64,
    /// Flattened body aggregate (for resource estimation). `None` for
    /// sequential loops with inner loops (their resources come from the
    /// inner schedules).
    pub aggregate: Option<Aggregate>,
    /// Unroll replication factor applied to resources.
    pub replication: u64,
}

/// The schedule of a whole kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSchedule {
    /// Kernel name.
    pub name: String,
    /// Per-loop schedules, outer loops after their inner loops.
    pub loops: Vec<LoopSchedule>,
    /// Total kernel latency (sum over sequential top-level loops).
    pub total_latency_cycles: u64,
}

impl KernelSchedule {
    /// Finds a loop schedule by label.
    pub fn loop_schedule(&self, label: &str) -> Option<&LoopSchedule> {
        self.loops.iter().find(|l| l.label == label)
    }

    /// The loop with the largest total latency (the optimizer's critical
    /// task selector, §III-D).
    pub fn critical_loop(&self) -> Option<&LoopSchedule> {
        self.loops.iter().max_by_key(|l| l.latency)
    }
}

/// Derives the II lower bounds of a flattened body against the kernel's
/// array declarations. Returns `(ii, bound)`.
fn ii_bounds(kernel: &Kernel, agg: &Aggregate, target: u32) -> (u32, IiBound) {
    let mut ii = target.max(1);
    let mut bound = IiBound::Target;

    // Recurrences declared on the loops.
    if agg.rec_mii > ii {
        ii = agg.rec_mii;
        bound = IiBound::Recurrence(
            agg.rec_through
                .clone()
                .unwrap_or_else(|| "carried dependence".into()),
        );
    }

    // On-chip memory ports & per-bundle AXI beats.
    let mut bundle_beats: BTreeMap<&str, u64> = BTreeMap::new();
    let mut bundle_rmw: BTreeMap<&str, (bool, bool, &str)> = BTreeMap::new();
    for (name, decl) in kernel.arrays().map(|a| (a.name.as_str(), a)) {
        let reads = agg.reads.get(name).copied().unwrap_or(0);
        let writes = agg.writes.get(name).copied().unwrap_or(0);
        if reads + writes == 0 {
            continue;
        }
        match &decl.kind {
            ArrayKind::OnChip { partition, .. } => {
                if let Some(ports) = partition.ports(decl.elems) {
                    let mem_mii = (reads + writes).div_ceil(ports) as u32;
                    if mem_mii > ii {
                        ii = mem_mii;
                        bound = IiBound::MemoryPorts(name.to_string());
                    }
                }
            }
            ArrayKind::Axi { bundle } => {
                *bundle_beats.entry(bundle.as_str()).or_insert(0) +=
                    (reads + writes) * AXI_BEAT_CYCLES as u64;
                let e = bundle_rmw
                    .entry(bundle.as_str())
                    .or_insert((false, false, name));
                if reads > 0 && writes > 0 {
                    // Same array read and written through one port: a
                    // read-modify-write recurrence (§III-C).
                    let rmw = AXI_READ_LATENCY;
                    if rmw > ii {
                        ii = rmw;
                        bound = IiBound::Recurrence(format!("AXI read-modify-write of `{name}`"));
                    }
                }
                e.0 |= reads > 0;
                e.1 |= writes > 0;
            }
        }
    }
    for (bundle, beats) in bundle_beats {
        let axi_mii = beats as u32;
        if axi_mii > ii {
            ii = axi_mii;
            bound = IiBound::AxiContention(bundle.to_string());
        }
    }

    (ii, bound)
}

fn schedule_loop(kernel: &Kernel, lp: &Loop, out: &mut Vec<LoopSchedule>) -> Result<u64, HlsError> {
    let unroll = lp.unroll.unwrap_or(1).max(1) as u64;
    let effective_trips = lp.trip_count / unroll;

    if let Some(target) = lp.pipeline {
        // Pipelined: body (with fully unrolled inner loops) flattened; the
        // unroll factor multiplies the per-initiation work.
        let mut agg = Aggregate::default();
        collect_aggregate(lp, unroll, &lp.label, &mut agg)?;
        let (ii, bound) = ii_bounds(kernel, &agg, target);
        let depth = agg.depth + ii; // fill + issue
        let latency = depth as u64 + ii as u64 * effective_trips.saturating_sub(1);
        out.push(LoopSchedule {
            label: lp.label.clone(),
            ii: Some(ii),
            bound: Some(bound),
            depth,
            effective_trips,
            latency,
            aggregate: Some(agg),
            replication: 1,
        });
        Ok(latency)
    } else if lp.is_fully_unrolled() {
        // Completely unrolled, not pipelined: all iterations in parallel.
        let mut agg = Aggregate::default();
        collect_aggregate(lp, lp.trip_count, &lp.label, &mut agg)
            .unwrap_or_else(|_| unreachable!("fully unrolled loops flatten"));
        let latency = agg.depth as u64;
        out.push(LoopSchedule {
            label: lp.label.clone(),
            ii: None,
            bound: None,
            depth: agg.depth,
            effective_trips: 1,
            latency,
            aggregate: Some(agg),
            replication: 1,
        });
        Ok(latency)
    } else {
        // Sequential (possibly partially unrolled): body latency = own ops
        // + inner loop latencies, repeated `effective_trips` times.
        let mut own = Aggregate::default();
        own.absorb_own(lp, unroll);
        let mut body_latency = if lp.ops.is_empty() {
            0
        } else {
            own.depth as u64
        };
        for inner in &lp.inner {
            body_latency += schedule_loop(kernel, inner, out)?;
        }
        let latency = effective_trips * body_latency.max(1);
        out.push(LoopSchedule {
            label: lp.label.clone(),
            ii: None,
            bound: None,
            depth: own.depth,
            effective_trips,
            latency,
            aggregate: if lp.ops.is_empty() && lp.accesses.is_empty() {
                None
            } else {
                Some(own)
            },
            replication: unroll,
        });
        Ok(latency)
    }
}

/// Schedules every loop of `kernel` and returns II, latency, and
/// flattened aggregates.
///
/// # Errors
///
/// Any [`HlsError`] from validation, plus
/// [`HlsError::PipelineAcrossLoop`] when a pipelined loop contains a
/// not-fully-unrolled inner loop.
pub fn schedule_kernel(kernel: &Kernel) -> Result<KernelSchedule, HlsError> {
    kernel.validate()?;
    let mut loops = Vec::new();
    let mut total = 0u64;
    for lp in kernel.body() {
        total += schedule_loop(kernel, lp, &mut loops)?;
    }
    Ok(KernelSchedule {
        name: kernel.name().to_string(),
        loops,
        total_latency_cycles: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{LoopBuilder, OpCount, Partition, StorageKind};
    use proptest::prelude::*;

    fn pipelined_kernel(partition: Partition, bundles: usize) -> Kernel {
        let mut k = Kernel::new("k");
        k.add_array("buf", 512, DataType::F64).unwrap();
        if let Some(a) = k.array_mut("buf") {
            a.kind = ArrayKind::OnChip {
                storage: StorageKind::Bram,
                partition,
            };
        }
        for i in 0..4 {
            let bundle = format!("gmem_{}", i % bundles.max(1));
            k.add_axi_array(format!("x{i}"), 4096, DataType::F64, bundle)
                .unwrap();
        }
        let mut lb = LoopBuilder::new("main", 1024)
            .ops(vec![OpCount::new(OpKind::MulAdd, DataType::F64, 4)])
            .reads("buf", 4)
            .pipeline(1);
        for i in 0..4 {
            lb = lb.reads(format!("x{i}"), 1);
        }
        k.push_loop(lb.build());
        k
    }

    #[test]
    fn ii_limited_by_memory_ports() {
        // 4 reads of an unpartitioned dual-port BRAM → MemMII 2; with 4
        // AXI arrays on 4 bundles AXI MII = 1.
        let k = pipelined_kernel(Partition::None, 4);
        let s = schedule_kernel(&k).unwrap();
        let main = s.loop_schedule("main").unwrap();
        assert_eq!(main.ii, Some(2));
        assert_eq!(main.bound, Some(IiBound::MemoryPorts("buf".into())));
        // Partitioning by 2 lifts the bound (4 ports ≥ 4 accesses).
        let k = pipelined_kernel(Partition::Cyclic(2), 4);
        let s = schedule_kernel(&k).unwrap();
        assert_eq!(s.loop_schedule("main").unwrap().ii, Some(1));
    }

    #[test]
    fn ii_limited_by_axi_bundle_sharing() {
        // All 4 AXI arrays on one bundle → 4 beats per iteration (Fig 4's
        // contention scenario).
        let k = pipelined_kernel(Partition::Cyclic(4), 1);
        let s = schedule_kernel(&k).unwrap();
        let main = s.loop_schedule("main").unwrap();
        assert_eq!(main.ii, Some(4));
        assert!(matches!(main.bound, Some(IiBound::AxiContention(_))));
    }

    #[test]
    fn axi_read_modify_write_recurrence() {
        // x[i] = f(x[i], y[i]) through one interface: II jumps to the AXI
        // round-trip latency (§III-C motivation).
        let mut k = Kernel::new("k");
        k.add_axi_array("x", 1024, DataType::F64, "gmem_0").unwrap();
        k.add_axi_array("y", 1024, DataType::F64, "gmem_1").unwrap();
        let lp = LoopBuilder::new("update", 1024)
            .ops(vec![OpCount::new(OpKind::MulAdd, DataType::F64, 1)])
            .reads("x", 1)
            .reads("y", 1)
            .writes("x", 1)
            .pipeline(1)
            .build();
        k.push_loop(lp);
        let s = schedule_kernel(&k).unwrap();
        let main = s.loop_schedule("update").unwrap();
        assert_eq!(main.ii, Some(AXI_READ_LATENCY));
        assert!(matches!(main.bound, Some(IiBound::Recurrence(_))));

        // Decoupled: read through x_rd, write through x_wr (separate
        // bundles) → II back to the beat bound.
        let mut k = Kernel::new("k");
        k.add_axi_array("x_rd", 1024, DataType::F64, "gmem_0")
            .unwrap();
        k.add_axi_array("x_wr", 1024, DataType::F64, "gmem_2")
            .unwrap();
        k.add_axi_array("y", 1024, DataType::F64, "gmem_1").unwrap();
        let lp = LoopBuilder::new("update", 1024)
            .ops(vec![OpCount::new(OpKind::MulAdd, DataType::F64, 1)])
            .reads("x_rd", 1)
            .reads("y", 1)
            .writes("x_wr", 1)
            .pipeline(1)
            .build();
        k.push_loop(lp);
        let s = schedule_kernel(&k).unwrap();
        assert_eq!(s.loop_schedule("update").unwrap().ii, Some(1));
    }

    #[test]
    fn declared_recurrence_bounds_ii() {
        let mut k = Kernel::new("k");
        let lp = LoopBuilder::new("acc", 100)
            .ops(vec![OpCount::new(OpKind::Add, DataType::F64, 1)])
            .carried_dep(7, 1, "accumulator")
            .pipeline(1)
            .build();
        k.push_loop(lp);
        let s = schedule_kernel(&k).unwrap();
        let main = s.loop_schedule("acc").unwrap();
        assert_eq!(main.ii, Some(7));
        assert_eq!(main.bound, Some(IiBound::Recurrence("accumulator".into())));
        // Distance 2 halves the bound.
        let mut k = Kernel::new("k");
        let lp = LoopBuilder::new("acc", 100)
            .ops(vec![OpCount::new(OpKind::Add, DataType::F64, 1)])
            .carried_dep(7, 2, "accumulator")
            .pipeline(1)
            .build();
        k.push_loop(lp);
        let s = schedule_kernel(&k).unwrap();
        assert_eq!(s.loop_schedule("acc").unwrap().ii, Some(4));
    }

    #[test]
    fn pipeline_across_inner_loop_is_rejected() {
        let mut k = Kernel::new("k");
        let inner = LoopBuilder::new("inner", 8)
            .ops(vec![OpCount::new(OpKind::Add, DataType::F64, 1)])
            .build(); // NOT unrolled
        let outer = LoopBuilder::new("outer", 64)
            .nest(inner)
            .pipeline(1)
            .build();
        k.push_loop(outer);
        assert!(matches!(
            schedule_kernel(&k),
            Err(HlsError::PipelineAcrossLoop { .. })
        ));
    }

    #[test]
    fn pipelining_with_unrolled_inner_succeeds() {
        let mut k = Kernel::new("k");
        let inner = LoopBuilder::new("inner", 8)
            .ops(vec![OpCount::new(OpKind::MulAdd, DataType::F64, 1)])
            .unroll_complete()
            .build();
        let outer = LoopBuilder::new("outer", 64)
            .nest(inner)
            .pipeline(1)
            .build();
        k.push_loop(outer);
        let s = schedule_kernel(&k).unwrap();
        let outer = s.loop_schedule("outer").unwrap();
        assert_eq!(outer.ii, Some(1));
        let agg = outer.aggregate.as_ref().unwrap();
        assert_eq!(agg.op_count(OpKind::MulAdd, DataType::F64), 8);
    }

    #[test]
    fn sequential_nest_latency_multiplies() {
        let mut k = Kernel::new("k");
        let inner = LoopBuilder::new("inner", 10)
            .ops(vec![OpCount::new(OpKind::Add, DataType::F64, 1)])
            .pipeline(1)
            .build();
        let outer = LoopBuilder::new("outer", 5).nest(inner).build();
        k.push_loop(outer.clone());
        let s = schedule_kernel(&k).unwrap();
        let inner_lat = s.loop_schedule("inner").unwrap().latency;
        let outer_lat = s.loop_schedule("outer").unwrap().latency;
        assert_eq!(outer_lat, 5 * inner_lat);
        assert_eq!(s.total_latency_cycles, outer_lat);
    }

    #[test]
    fn pipelining_beats_sequential_execution() {
        // The core TLP claim: same work, pipelined vs not.
        let body_ops = vec![OpCount::new(OpKind::MulAdd, DataType::F64, 6)];
        let mut seq = Kernel::new("seq");
        seq.push_loop(LoopBuilder::new("l", 10_000).ops(body_ops.clone()).build());
        let mut pip = Kernel::new("pip");
        pip.push_loop(
            LoopBuilder::new("l", 10_000)
                .ops(body_ops)
                .pipeline(1)
                .build(),
        );
        let s_seq = schedule_kernel(&seq).unwrap().total_latency_cycles;
        let s_pip = schedule_kernel(&pip).unwrap().total_latency_cycles;
        assert!(
            s_pip * 5 < s_seq,
            "pipelining should dominate: {s_pip} vs {s_seq}"
        );
    }

    #[test]
    fn critical_loop_is_found() {
        let mut k = Kernel::new("k");
        k.push_loop(
            LoopBuilder::new("small", 10)
                .ops(vec![OpCount::new(OpKind::Add, DataType::F64, 1)])
                .pipeline(1)
                .build(),
        );
        k.push_loop(
            LoopBuilder::new("big", 100_000)
                .ops(vec![OpCount::new(OpKind::Add, DataType::F64, 1)])
                .pipeline(1)
                .build(),
        );
        let s = schedule_kernel(&k).unwrap();
        assert_eq!(s.critical_loop().unwrap().label, "big");
    }

    #[test]
    fn ii_is_max_of_all_bounds_on_tiny_kernel() {
        // One tiny kernel with all three II limiters active at once:
        //   RecMII  = ⌈6/1⌉ = 6   (declared carried dependence)
        //   MemMII  = ⌈8/2⌉ = 4   (8 accesses, unpartitioned dual-port BRAM)
        //   AxiMII  = 3·beats     (3 reads on one bundle)
        // The achieved II must be the max of the bounds (and never below
        // the requested target), attributed to the recurrence.
        let build = |dep_latency: u32| {
            let mut k = Kernel::new("k");
            k.add_array("buf", 256, DataType::F64).unwrap();
            for i in 0..3 {
                k.add_axi_array(format!("x{i}"), 1024, DataType::F64, "gmem_0")
                    .unwrap();
            }
            let mut lb = LoopBuilder::new("l", 100)
                .ops(vec![OpCount::new(OpKind::MulAdd, DataType::F64, 2)])
                .reads("buf", 6)
                .writes("buf", 2)
                .carried_dep(dep_latency, 1, "acc")
                .pipeline(1);
            for i in 0..3 {
                lb = lb.reads(format!("x{i}"), 1);
            }
            k.push_loop(lb.build());
            schedule_kernel(&k).unwrap()
        };

        let rec_mii = 6u32;
        let mem_mii = 4u32; // 8 accesses / 2 ports
        let axi_mii = 3 * AXI_BEAT_CYCLES;
        let s = build(rec_mii);
        let main = s.loop_schedule("l").unwrap();
        let expect = rec_mii.max(mem_mii).max(axi_mii).max(1);
        assert_eq!(main.ii, Some(expect));
        assert_eq!(main.bound, Some(IiBound::Recurrence("acc".into())));
        // Steady-state issue: latency = depth + II·(trips − 1).
        assert_eq!(main.latency, u64::from(main.depth) + u64::from(expect) * 99);

        // Dropping the recurrence hands the bound to the next limiter
        // (memory ports or AXI beats, whichever is larger).
        let s = build(1);
        let main = s.loop_schedule("l").unwrap();
        assert_eq!(main.ii, Some(mem_mii.max(axi_mii)));
        assert!(main.ii.unwrap() >= 1, "achieved II below target");
    }

    proptest! {
        /// Latency is monotone in trip count.
        #[test]
        fn prop_latency_monotone_in_trips(trip in 2u64..100_000, pipeline in proptest::bool::ANY) {
            let build = |t: u64| {
                let mut k = Kernel::new("k");
                let mut lb = LoopBuilder::new("l", t)
                    .ops(vec![OpCount::new(OpKind::Mul, DataType::F64, 3)]);
                if pipeline { lb = lb.pipeline(1); }
                k.push_loop(lb.build());
                schedule_kernel(&k).unwrap().total_latency_cycles
            };
            prop_assert!(build(trip) <= build(trip * 2));
        }

        /// Achieved II never beats the request and partitioning never hurts.
        #[test]
        fn prop_partition_never_increases_ii(
            accesses in 1u64..16,
            factor in 1u32..16,
        ) {
            let build = |p: Partition| {
                let mut k = Kernel::new("k");
                k.add_array("buf", 1024, DataType::F64).unwrap();
                if let Some(a) = k.array_mut("buf") {
                    a.kind = ArrayKind::OnChip { storage: StorageKind::Bram, partition: p };
                }
                k.push_loop(
                    LoopBuilder::new("l", 512)
                        .ops(vec![OpCount::new(OpKind::Add, DataType::F64, 1)])
                        .reads("buf", accesses)
                        .pipeline(1)
                        .build(),
                );
                schedule_kernel(&k).unwrap().loop_schedule("l").unwrap().ii.unwrap()
            };
            let base = build(Partition::None);
            let part = build(Partition::Cyclic(factor));
            prop_assert!(part <= base);
            prop_assert!(build(Partition::Complete) <= part);
        }

        /// More bundle sharing never decreases II.
        #[test]
        fn prop_bundle_sharing_monotone(arrays in 1usize..8) {
            let build = |bundles: usize| {
                let mut k = Kernel::new("k");
                for i in 0..arrays {
                    k.add_axi_array(
                        format!("x{i}"),
                        1024,
                        DataType::F64,
                        format!("gmem_{}", i % bundles),
                    )
                    .unwrap();
                }
                let mut lb = LoopBuilder::new("l", 512)
                    .ops(vec![OpCount::new(OpKind::Add, DataType::F64, 1)])
                    .pipeline(1);
                for i in 0..arrays {
                    lb = lb.reads(format!("x{i}"), 1);
                }
                k.push_loop(lb.build());
                schedule_kernel(&k).unwrap().loop_schedule("l").unwrap().ii.unwrap()
            };
            prop_assert!(build(1) >= build(arrays.max(1)));
        }
    }
}
