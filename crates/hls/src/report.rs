//! Synthesis-style text reports — the `csynth.rpt` equivalent of the
//! kernel model: per-loop II/latency/bound tables and a resource
//! summary, so a design review reads like a Vitis report.

use crate::ir::Kernel;
use crate::resources::{estimate_resources, ResourceUsage};
use crate::schedule::{schedule_kernel, KernelSchedule};
use crate::HlsError;
use std::fmt::Write as _;

/// A schedule + resource report for one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelReport {
    /// Kernel name.
    pub name: String,
    /// The schedule the report describes.
    pub schedule: KernelSchedule,
    /// Estimated resources.
    pub resources: ResourceUsage,
}

impl KernelReport {
    /// Schedules `kernel` and assembles its report.
    ///
    /// # Errors
    ///
    /// Propagates scheduling errors.
    pub fn generate(kernel: &Kernel) -> Result<KernelReport, HlsError> {
        let schedule = schedule_kernel(kernel)?;
        let resources = estimate_resources(kernel, &schedule);
        Ok(KernelReport {
            name: kernel.name().to_string(),
            schedule,
            resources,
        })
    }

    /// The total latency in cycles.
    pub fn latency(&self) -> u64 {
        self.schedule.total_latency_cycles
    }
}

impl std::fmt::Display for KernelReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== kernel `{}` ==", self.name)?;
        writeln!(
            f,
            "{:<28} {:>6} {:>12} {:>14} {:>8}  bound",
            "loop", "II", "trips", "latency", "depth"
        )?;
        for l in &self.schedule.loops {
            let ii =
                l.ii.map(|x| x.to_string())
                    .unwrap_or_else(|| "-".to_string());
            let bound = l
                .bound
                .as_ref()
                .map(|b| b.to_string())
                .unwrap_or_else(|| "sequential".to_string());
            writeln!(
                f,
                "{:<28} {:>6} {:>12} {:>14} {:>8}  {}",
                l.label, ii, l.effective_trips, l.latency, l.depth, bound
            )?;
        }
        writeln!(f, "total latency: {} cycles", self.latency())?;
        write!(f, "resources: {}", self.resources)
    }
}

/// Renders a side-by-side comparison of several kernel reports (the
/// design-review view of an RKL task region).
pub fn comparison_table(reports: &[KernelReport]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18} {:>14} {:>10} {:>10} {:>8} {:>8} {:>6}",
        "kernel", "latency", "LUT", "FF", "DSP", "BRAM", "URAM"
    );
    for r in reports {
        let _ = writeln!(
            out,
            "{:<18} {:>14} {:>10} {:>10} {:>8} {:>8} {:>6}",
            r.name,
            r.latency(),
            r.resources.lut,
            r.resources.ff,
            r.resources.dsp,
            r.resources.bram18k,
            r.resources.uram
        );
    }
    let total = reports
        .iter()
        .fold(ResourceUsage::ZERO, |acc, r| acc + r.resources);
    let _ = writeln!(
        out,
        "{:<18} {:>14} {:>10} {:>10} {:>8} {:>8} {:>6}",
        "TOTAL", "-", total.lut, total.ff, total.dsp, total.bram18k, total.uram
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{LoopBuilder, OpCount};
    use crate::ops::{DataType, OpKind};

    fn kernel(name: &str, trips: u64) -> Kernel {
        let mut k = Kernel::new(name);
        k.push_loop(
            LoopBuilder::new(format!("{name}_main"), trips)
                .ops(vec![OpCount::new(OpKind::MulAdd, DataType::F64, 2)])
                .pipeline(1)
                .build(),
        );
        k
    }

    #[test]
    fn report_contains_loop_rows_and_totals() {
        let r = KernelReport::generate(&kernel("k", 1000)).unwrap();
        let text = format!("{r}");
        assert!(text.contains("kernel `k`"));
        assert!(text.contains("k_main"));
        assert!(text.contains("total latency"));
        assert!(r.latency() >= 1000);
    }

    #[test]
    fn comparison_sums_resources() {
        let a = KernelReport::generate(&kernel("a", 10)).unwrap();
        let b = KernelReport::generate(&kernel("b", 10)).unwrap();
        let table = comparison_table(&[a.clone(), b.clone()]);
        assert!(table.contains("TOTAL"));
        let total = a.resources + b.resources;
        assert!(table.contains(&total.dsp.to_string()));
    }

    #[test]
    fn invalid_kernel_fails() {
        let mut k = Kernel::new("bad");
        let inner = LoopBuilder::new("inner", 64)
            .ops(vec![OpCount::new(OpKind::Add, DataType::F64, 1)])
            .build();
        k.push_loop(
            LoopBuilder::new("outer", 10)
                .nest(inner)
                .pipeline(1)
                .build(),
        );
        assert!(KernelReport::generate(&k).is_err());
    }
}
