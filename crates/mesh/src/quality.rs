//! Element quality metrics and whole-mesh statistics.

use crate::hex::{ElementGeometry, GeometryScratch, HexMesh};
use crate::MeshError;
use fem_numerics::tensor::HexBasis;

/// Aggregate quality statistics of a mesh.
///
/// # Example
///
/// ```
/// use fem_mesh::{generator::BoxMeshBuilder, quality::MeshStats};
/// let mesh = BoxMeshBuilder::tgv_box(4).build().unwrap();
/// let stats = MeshStats::compute(&mesh).unwrap();
/// assert_eq!(stats.num_elements, 64);
/// assert!(stats.min_det_jacobian > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MeshStats {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Number of elements.
    pub num_elements: usize,
    /// Polynomial order.
    pub order: usize,
    /// Integrated mesh volume `Σ_e Σ_q det(J_q) w_q`.
    pub total_volume: f64,
    /// Smallest nodal Jacobian determinant over all elements.
    pub min_det_jacobian: f64,
    /// Largest nodal Jacobian determinant over all elements.
    pub max_det_jacobian: f64,
    /// Connectivity bandwidth (see [`HexMesh::bandwidth`]).
    pub bandwidth: usize,
    /// Bytes that must stream per RK stage for this mesh (node data only).
    pub stream_bytes_per_stage: usize,
}

impl MeshStats {
    /// Computes statistics; visits every element.
    ///
    /// # Errors
    ///
    /// Propagates [`MeshError`] for invalid bases or inverted elements.
    pub fn compute(mesh: &HexMesh) -> Result<MeshStats, MeshError> {
        let basis = HexBasis::new(mesh.order())?;
        let nn = mesh.nodes_per_element();
        let mut scratch = GeometryScratch::new(nn);
        let mut geom = ElementGeometry::with_capacity(nn);
        let mut total_volume = 0.0;
        let mut min_det = f64::INFINITY;
        let mut max_det = f64::NEG_INFINITY;
        let rule = basis.rule().clone();
        let weights = rule.weights();
        let n = basis.nodes_per_dim();
        for e in 0..mesh.num_elements() {
            mesh.fill_element_geometry(e, &basis, &mut scratch, &mut geom)?;
            for (q, &dw) in geom.det_w.iter().enumerate() {
                total_volume += dw;
                let i = q % n;
                let j = (q / n) % n;
                let k = q / (n * n);
                let w = weights[i] * weights[j] * weights[k];
                let det = dw / w;
                min_det = min_det.min(det);
                max_det = max_det.max(det);
            }
        }
        Ok(MeshStats {
            num_nodes: mesh.num_nodes(),
            num_elements: mesh.num_elements(),
            order: mesh.order(),
            total_volume,
            min_det_jacobian: min_det,
            max_det_jacobian: max_det,
            bandwidth: mesh.bandwidth(),
            stream_bytes_per_stage: mesh.num_nodes() * HexMesh::bytes_per_node(),
        })
    }

    /// Jacobian uniformity ratio `max_det / min_det` (1.0 for a uniform box).
    pub fn jacobian_ratio(&self) -> f64 {
        self.max_det_jacobian / self.min_det_jacobian
    }
}

impl std::fmt::Display for MeshStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "mesh: {} nodes, {} elements (order {})",
            self.num_nodes, self.num_elements, self.order
        )?;
        writeln!(f, "  volume          : {:.6e}", self.total_volume)?;
        writeln!(
            f,
            "  det(J) range    : [{:.3e}, {:.3e}] (ratio {:.2})",
            self.min_det_jacobian,
            self.max_det_jacobian,
            self.jacobian_ratio()
        )?;
        writeln!(f, "  bandwidth       : {}", self.bandwidth)?;
        write!(
            f,
            "  stream per stage: {:.1} MiB",
            self.stream_bytes_per_stage as f64 / (1024.0 * 1024.0)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::BoxMeshBuilder;

    #[test]
    fn uniform_box_has_unit_jacobian_ratio() {
        let mesh = BoxMeshBuilder::tgv_box(3).build().unwrap();
        let stats = MeshStats::compute(&mesh).unwrap();
        assert!((stats.jacobian_ratio() - 1.0).abs() < 1e-9);
        let tau = std::f64::consts::TAU;
        assert!((stats.total_volume - tau.powi(3)).abs() < 1e-8);
    }

    #[test]
    fn anisotropic_box_volume() {
        let mesh = BoxMeshBuilder::new()
            .elements(2, 3, 4)
            .periodic(false, false, false)
            .extent(1.0, 2.0, 3.0)
            .build()
            .unwrap();
        let stats = MeshStats::compute(&mesh).unwrap();
        assert!((stats.total_volume - 6.0).abs() < 1e-10);
        // Uniform per-axis spacing still gives a constant Jacobian.
        assert!((stats.jacobian_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn display_is_nonempty() {
        let mesh = BoxMeshBuilder::tgv_box(3).build().unwrap();
        let stats = MeshStats::compute(&mesh).unwrap();
        let s = format!("{stats}");
        assert!(s.contains("nodes"));
        assert!(s.contains("bandwidth"));
    }

    #[test]
    fn higher_order_stats() {
        let mut b = BoxMeshBuilder::tgv_box(3);
        b.order(3);
        let mesh = b.build().unwrap();
        let stats = MeshStats::compute(&mesh).unwrap();
        let tau = std::f64::consts::TAU;
        assert!((stats.total_volume - tau.powi(3)).abs() < 1e-8 * tau.powi(3));
        // The isoparametric map through GLL-placed nodes reproduces the
        // affine box map exactly, so the Jacobian stays constant even at
        // high order.
        assert!((stats.jacobian_ratio() - 1.0).abs() < 1e-9);
    }
}
