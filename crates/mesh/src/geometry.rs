//! Precomputed per-element geometry in a structure-of-arrays layout.
//!
//! The mesh is static over a simulation, yet the seed hot path rebuilt
//! every element's Jacobians from nodal coordinates on **every RHS
//! evaluation of every RK stage**. Karp et al. (arXiv:2108.12188) and the
//! spectral-element FPGA flow (arXiv:2010.13463) instead precompute the
//! geometric factors once and stream them — [`GeometryCache`] is that
//! restructuring for the host solver: one [`HexMesh::fill_element_geometry`]
//! sweep at construction, contiguous `det_w` / `inv_jt` arrays afterwards,
//! and O(1) borrowed [`GeomRef`] slices per element in the hot loop.

use crate::hex::{ElementGeometry, GeomRef, GeometryScratch};
use crate::{HexMesh, MeshError};
use fem_numerics::linalg::Mat3;
use fem_numerics::tensor::HexBasis;
use rayon::prelude::*;

/// All per-element geometric factors of a mesh, precomputed once.
///
/// Layout is structure-of-arrays at element granularity: element `e`'s
/// factors occupy the contiguous ranges `[e·npe, (e+1)·npe)` of both
/// arrays, so the RHS kernels stream them with unit stride — the host-side
/// analogue of the paper's LOAD-Element burst.
///
/// # Example
///
/// ```
/// use fem_mesh::generator::BoxMeshBuilder;
/// use fem_mesh::geometry::GeometryCache;
/// use fem_numerics::tensor::HexBasis;
///
/// let mesh = BoxMeshBuilder::tgv_box(4).build().unwrap();
/// let basis = HexBasis::new(mesh.order()).unwrap();
/// let cache = GeometryCache::build(&mesh, &basis).unwrap();
/// assert_eq!(cache.num_elements(), mesh.num_elements());
/// let exact = std::f64::consts::TAU.powi(3);
/// assert!((cache.total_volume() - exact).abs() < 1e-9 * exact);
/// ```
#[derive(Debug, Clone)]
pub struct GeometryCache {
    num_elements: usize,
    nodes_per_element: usize,
    /// `J⁻ᵀ` per element node, element-major.
    inv_jt: Vec<Mat3>,
    /// `det(J) · w` per element node, element-major.
    det_w: Vec<f64>,
}

impl GeometryCache {
    /// Precomputes the geometric factors of every element of `mesh`.
    ///
    /// # Errors
    ///
    /// [`MeshError::InvertedElement`] if any nodal Jacobian determinant is
    /// non-positive — the same validation the per-evaluation path did,
    /// now performed exactly once.
    ///
    /// # Panics
    ///
    /// Panics if `basis.order() != mesh.order()`.
    pub fn build(mesh: &HexMesh, basis: &HexBasis) -> Result<Self, MeshError> {
        assert_eq!(basis.order(), mesh.order(), "basis order mismatch");
        let ne = mesh.num_elements();
        let npe = mesh.nodes_per_element();
        let mut scratch = GeometryScratch::new(npe);
        let mut geom = ElementGeometry::with_capacity(npe);
        let mut inv_jt = Vec::with_capacity(ne * npe);
        let mut det_w = Vec::with_capacity(ne * npe);
        for e in 0..ne {
            mesh.fill_element_geometry(e, basis, &mut scratch, &mut geom)?;
            inv_jt.extend_from_slice(&geom.inv_jt);
            det_w.extend_from_slice(&geom.det_w);
        }
        Ok(GeometryCache {
            num_elements: ne,
            nodes_per_element: npe,
            inv_jt,
            det_w,
        })
    }

    /// Number of cached elements.
    pub fn num_elements(&self) -> usize {
        self.num_elements
    }

    /// Nodes per element the cache was built for.
    pub fn nodes_per_element(&self) -> usize {
        self.nodes_per_element
    }

    /// `J⁻ᵀ` factors of element `e`, one per node.
    ///
    /// # Panics
    ///
    /// Panics if `e >= num_elements()`.
    pub fn inv_jt(&self, e: usize) -> &[Mat3] {
        let s = self.nodes_per_element;
        &self.inv_jt[e * s..(e + 1) * s]
    }

    /// `det(J) · w` factors of element `e`, one per node.
    ///
    /// # Panics
    ///
    /// Panics if `e >= num_elements()`.
    pub fn det_w(&self, e: usize) -> &[f64] {
        let s = self.nodes_per_element;
        &self.det_w[e * s..(e + 1) * s]
    }

    /// Both factor slices of element `e` as a kernel-ready [`GeomRef`].
    ///
    /// # Panics
    ///
    /// Panics if `e >= num_elements()`.
    pub fn element(&self, e: usize) -> GeomRef<'_> {
        GeomRef {
            inv_jt: self.inv_jt(e),
            det_w: self.det_w(e),
        }
    }

    /// Cached bytes per element node: one `Mat3` (`J⁻ᵀ`) plus one `f64`
    /// (`det(J)·w`). The single source of truth every other memory
    /// accounting (streaming footprints, accelerator workload quotes) is
    /// tested against.
    pub const BYTES_PER_ELEMENT_NODE: usize =
        std::mem::size_of::<Mat3>() + std::mem::size_of::<f64>();

    /// Heap bytes held by the cached factor arrays.
    ///
    /// [`GeometryCache::BYTES_PER_ELEMENT_NODE`] (80 B) per element node,
    /// e.g. ~1.1 MiB for the 12³-element TGV box — the memory the cache
    /// trades for skipping the Jacobian rebuild on every RK stage.
    pub fn memory_bytes(&self) -> usize {
        self.inv_jt.len() * std::mem::size_of::<Mat3>()
            + self.det_w.len() * std::mem::size_of::<f64>()
    }

    /// Extracts the contiguous sub-cache of elements
    /// `[first_element, first_element + count)` — the per-shard geometry
    /// stream of a contiguous-strategy [`crate::partition::ShardPlan`]
    /// shard (graph-partitioned shards index the full cache per element
    /// id instead). The slice owns
    /// its (bitwise-identical) copies of the factors, re-indexed so the
    /// shard's element `k` is `shard_cache.element(k)`, exactly like the
    /// accelerator stages a shard's γ-factors into its own DDR channel.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the cached element count.
    pub fn shard(&self, first_element: usize, count: usize) -> GeometryCache {
        assert!(
            first_element + count <= self.num_elements,
            "shard range {}..{} exceeds {} cached elements",
            first_element,
            first_element + count,
            self.num_elements
        );
        let s = self.nodes_per_element;
        GeometryCache {
            num_elements: count,
            nodes_per_element: s,
            inv_jt: self.inv_jt[first_element * s..(first_element + count) * s].to_vec(),
            det_w: self.det_w[first_element * s..(first_element + count) * s].to_vec(),
        }
    }

    /// Total mesh volume `Σ det(J)·w` over all cached quadrature nodes —
    /// a cheap integrity check against the analytic domain volume.
    pub fn total_volume(&self) -> f64 {
        self.det_w.par_iter().map(|&w| w).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::BoxMeshBuilder;

    #[test]
    fn cache_matches_per_element_recompute() {
        for order in [1usize, 2] {
            let mut b = BoxMeshBuilder::tgv_box(3);
            b.order(order);
            let mesh = b.build().unwrap();
            let basis = HexBasis::new(order).unwrap();
            let cache = GeometryCache::build(&mesh, &basis).unwrap();
            assert_eq!(cache.num_elements(), mesh.num_elements());
            assert_eq!(cache.nodes_per_element(), mesh.nodes_per_element());
            let npe = mesh.nodes_per_element();
            let mut scratch = GeometryScratch::new(npe);
            let mut geom = ElementGeometry::with_capacity(npe);
            for e in 0..mesh.num_elements() {
                mesh.fill_element_geometry(e, &basis, &mut scratch, &mut geom)
                    .unwrap();
                let g = cache.element(e);
                for q in 0..npe {
                    assert_eq!(
                        g.det_w[q].to_bits(),
                        geom.det_w[q].to_bits(),
                        "det_w differs at e={e} q={q} order={order}"
                    );
                    assert!((g.inv_jt[q] - geom.inv_jt[q]).frobenius_norm() == 0.0);
                }
            }
        }
    }

    #[test]
    fn memory_accounting_is_exact() {
        let mesh = BoxMeshBuilder::tgv_box(4).build().unwrap();
        let basis = HexBasis::new(1).unwrap();
        let cache = GeometryCache::build(&mesh, &basis).unwrap();
        let per_node = std::mem::size_of::<Mat3>() + std::mem::size_of::<f64>();
        assert_eq!(per_node, GeometryCache::BYTES_PER_ELEMENT_NODE);
        assert_eq!(
            cache.memory_bytes(),
            mesh.num_elements() * mesh.nodes_per_element() * per_node
        );
    }

    #[test]
    fn shard_slices_are_bitwise_reindexed_copies() {
        let mesh = BoxMeshBuilder::tgv_box(4).build().unwrap();
        let basis = HexBasis::new(1).unwrap();
        let cache = GeometryCache::build(&mesh, &basis).unwrap();
        let first = 10;
        let count = 23;
        let shard = cache.shard(first, count);
        assert_eq!(shard.num_elements(), count);
        assert_eq!(shard.nodes_per_element(), cache.nodes_per_element());
        assert_eq!(
            shard.memory_bytes(),
            count * cache.nodes_per_element() * GeometryCache::BYTES_PER_ELEMENT_NODE
        );
        for k in 0..count {
            let a = shard.element(k);
            let b = cache.element(first + k);
            for q in 0..cache.nodes_per_element() {
                assert_eq!(a.det_w[q].to_bits(), b.det_w[q].to_bits());
                assert!((a.inv_jt[q] - b.inv_jt[q]).frobenius_norm() == 0.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn shard_slice_out_of_range_panics() {
        let mesh = BoxMeshBuilder::tgv_box(3).build().unwrap();
        let basis = HexBasis::new(1).unwrap();
        let cache = GeometryCache::build(&mesh, &basis).unwrap();
        let _ = cache.shard(20, 10); // 27 elements
    }

    #[test]
    fn total_volume_matches_domain() {
        let mesh = BoxMeshBuilder::tgv_box(5).build().unwrap();
        let basis = HexBasis::new(1).unwrap();
        let cache = GeometryCache::build(&mesh, &basis).unwrap();
        let exact = std::f64::consts::TAU.powi(3);
        assert!((cache.total_volume() - exact).abs() < 1e-9 * exact);
    }

    #[test]
    fn inverted_elements_are_rejected_at_build() {
        use fem_numerics::linalg::Vec3;
        let coords = vec![
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 1.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(1.0, 0.0, 1.0),
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(1.0, 1.0, 1.0),
            Vec3::new(0.0, 1.0, 1.0),
        ];
        let mesh = HexMesh::new(1, coords, (0..8u32).collect(), Vec::new(), [None; 3]).unwrap();
        let basis = HexBasis::new(1).unwrap();
        assert!(matches!(
            GeometryCache::build(&mesh, &basis),
            Err(MeshError::InvertedElement { .. })
        ));
    }
}
