//! Unstructured hexahedral meshes for the FEM-based CFD accelerator.
//!
//! The paper's solver (§II-B) discretizes the fluid domain with a mesh of
//! volume elements "defined by vertices and edges, allowing for the
//! representation of complex geometries beyond simple cubes". This crate
//! provides:
//!
//! * [`hex`] — the unstructured hexahedral mesh container ([`HexMesh`]):
//!   arbitrary connectivity, high-order (GLL) node layouts, periodic image
//!   unwrapping, element geometry (Jacobians).
//! * [`geometry`] — the precomputed structure-of-arrays geometry cache
//!   ([`GeometryCache`]): every element's `J⁻ᵀ` and `det(J)·w` factors
//!   computed once, streamed as contiguous slices by the solver hot loop.
//! * [`generator`] — mesh generation, most importantly the periodic box for
//!   the Taylor-Green Vortex workload ([`BoxMeshBuilder`]), matching the
//!   paper's mesh-size sweep (5K … 4.2M nodes).
//! * [`reorder`] — reverse Cuthill-McKee node reordering (memory locality
//!   for the CPU baseline and DDR burst efficiency for the accelerator).
//! * [`quality`] — element quality metrics and mesh statistics.
//! * [`partition`] — element batching for the accelerator's streaming
//!   Load-Compute-Store pipeline, and the [`ShardPlan`] domain
//!   decomposition (owned/halo node metadata) the shard-parallel
//!   execution backends run on, with a halo-minimizing graph
//!   partitioner selectable via [`partition::PartitionStrategy`].
//! * [`context`] — the immutable [`SharedMeshContext`] handle bundling a
//!   mesh with its basis, geometry cache, lumped mass, and lazily built
//!   coloring/shard plans, so ensemble members on one mesh share a
//!   single copy instead of each rebuilding and holding their own.
//! * [`io`] — compact binary serialization.
//!
//! # Example
//!
//! ```
//! use fem_mesh::generator::BoxMeshBuilder;
//!
//! // A periodic 4×4×4-element TGV box of trilinear hexes: 64 nodes.
//! let mesh = BoxMeshBuilder::tgv_box(4).build().unwrap();
//! assert_eq!(mesh.num_elements(), 64);
//! assert_eq!(mesh.num_nodes(), 64);
//! ```

#![deny(missing_docs)]

pub mod coloring;
pub mod context;
pub mod generator;
pub mod geometry;
pub mod hex;
pub mod io;
pub mod partition;
pub mod quality;
pub mod reorder;

pub use coloring::{ColoringStats, ElementColoring};
pub use context::SharedMeshContext;
pub use generator::BoxMeshBuilder;
pub use geometry::GeometryCache;
pub use hex::HexMesh;
pub use partition::{ElementBatch, PartitionStrategy, Shard, ShardPlan};
pub use quality::MeshStats;

/// Errors produced by the mesh layer.
#[derive(Debug, Clone, PartialEq)]
pub enum MeshError {
    /// An element references a node index beyond the coordinate table.
    NodeIndexOutOfRange {
        /// Element that holds the bad reference.
        element: usize,
        /// The offending node index.
        node: u32,
        /// Number of nodes in the mesh.
        num_nodes: usize,
    },
    /// Connectivity length is not a multiple of nodes-per-element.
    RaggedConnectivity {
        /// Length of the connectivity array.
        len: usize,
        /// Expected stride.
        stride: usize,
    },
    /// A generator parameter was invalid (zero elements, bad extent, ...).
    InvalidParameter(String),
    /// An element has a non-positive Jacobian determinant (inverted/degenerate).
    InvertedElement {
        /// The offending element.
        element: usize,
        /// The determinant found.
        det: f64,
    },
    /// Serialization failure.
    Io(String),
    /// The byte stream being deserialized is not a valid mesh.
    Format(String),
    /// A numerics-layer error (bad polynomial order).
    Numerics(fem_numerics::NumericsError),
}

impl std::fmt::Display for MeshError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeshError::NodeIndexOutOfRange {
                element,
                node,
                num_nodes,
            } => write!(
                f,
                "element {element} references node {node} but mesh has {num_nodes} nodes"
            ),
            MeshError::RaggedConnectivity { len, stride } => {
                write!(f, "connectivity length {len} is not a multiple of {stride}")
            }
            MeshError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            MeshError::InvertedElement { element, det } => {
                write!(f, "element {element} has non-positive jacobian {det:e}")
            }
            MeshError::Io(msg) => write!(f, "i/o failure: {msg}"),
            MeshError::Format(msg) => write!(f, "malformed mesh data: {msg}"),
            MeshError::Numerics(e) => write!(f, "numerics error: {e}"),
        }
    }
}

impl std::error::Error for MeshError {}

impl From<fem_numerics::NumericsError> for MeshError {
    fn from(e: fem_numerics::NumericsError) -> Self {
        MeshError::Numerics(e)
    }
}

impl From<std::io::Error> for MeshError {
    fn from(e: std::io::Error) -> Self {
        MeshError::Io(e.to_string())
    }
}
