//! Reverse Cuthill-McKee (RCM) node reordering.
//!
//! The accelerator streams node data from off-chip DDR (§III-C); a low
//! connectivity bandwidth keeps the per-element gather windows compact,
//! which improves burst efficiency in the Load-Element task and cache
//! locality in the CPU baseline. RCM is the classic bandwidth-reduction
//! ordering for FEM meshes.

use crate::hex::HexMesh;
use crate::MeshError;

/// Computes the reverse Cuthill-McKee permutation for `mesh`.
///
/// Returns `perm` with `perm[old] = new`, a valid input to
/// [`HexMesh::renumber_nodes`]. All connected components are traversed,
/// each started from a minimum-degree node.
///
/// # Example
///
/// ```
/// use fem_mesh::{generator::BoxMeshBuilder, reorder::rcm_permutation};
/// let mesh = BoxMeshBuilder::tgv_box(4).build().unwrap();
/// let perm = rcm_permutation(&mesh);
/// let reordered = mesh.renumber_nodes(&perm).unwrap();
/// assert_eq!(reordered.num_nodes(), mesh.num_nodes());
/// ```
pub fn rcm_permutation(mesh: &HexMesh) -> Vec<u32> {
    let adj = mesh.node_adjacency();
    let n = adj.len();
    let mut visited = vec![false; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut queue: std::collections::VecDeque<u32> = std::collections::VecDeque::new();

    // Degree-sorted node list for picking component seeds.
    let mut by_degree: Vec<u32> = (0..n as u32).collect();
    by_degree.sort_by_key(|&v| adj[v as usize].len());

    for &seed in &by_degree {
        if visited[seed as usize] {
            continue;
        }
        visited[seed as usize] = true;
        queue.push_back(seed);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut children: Vec<u32> = adj[v as usize]
                .iter()
                .copied()
                .filter(|&w| !visited[w as usize])
                .collect();
            children.sort_by_key(|&w| adj[w as usize].len());
            for w in children {
                visited[w as usize] = true;
                queue.push_back(w);
            }
        }
    }

    // Reverse the Cuthill-McKee order.
    let mut perm = vec![0u32; n];
    for (rank, &old) in order.iter().rev().enumerate() {
        perm[old as usize] = rank as u32;
    }
    perm
}

/// Reorders `mesh` nodes with RCM and returns the new mesh together with
/// the (before, after) connectivity bandwidths.
///
/// # Errors
///
/// Propagates [`MeshError`] from renumbering (cannot occur for a
/// permutation produced by [`rcm_permutation`]).
pub fn rcm_reorder(mesh: &HexMesh) -> Result<(HexMesh, usize, usize), MeshError> {
    let before = mesh.bandwidth();
    let perm = rcm_permutation(mesh);
    let reordered = mesh.renumber_nodes(&perm)?;
    let after = reordered.bandwidth();
    Ok((reordered, before, after))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::BoxMeshBuilder;
    use proptest::prelude::*;

    #[test]
    fn rcm_produces_valid_permutation() {
        let mesh = BoxMeshBuilder::tgv_box(4).build().unwrap();
        let perm = rcm_permutation(&mesh);
        let mut seen = vec![false; perm.len()];
        for &p in &perm {
            assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn rcm_does_not_increase_bandwidth_after_shuffle() {
        // Scramble the mesh with a pseudo-random permutation, then check RCM
        // recovers a bandwidth no worse than the scrambled one.
        let mesh = BoxMeshBuilder::new()
            .elements(6, 6, 6)
            .periodic(false, false, false)
            .extent(1.0, 1.0, 1.0)
            .build()
            .unwrap();
        let n = mesh.num_nodes() as u32;
        // Multiplicative shuffle (343 is coprime with 7³ grid count 343? use
        // a safe LCG-style map): new = (old * 181 + 7) mod n with 181 coprime.
        let mut perm: Vec<u32> = (0..n).collect();
        let mut x = 1u64;
        for p in perm.iter_mut() {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *p = (x >> 33) as u32 % n;
        }
        // Fix duplicates: fall back to identity-completing permutation.
        let mut used = vec![false; n as usize];
        let mut free: Vec<u32> = Vec::new();
        for p in perm.iter_mut() {
            if used[*p as usize] {
                *p = u32::MAX;
            } else {
                used[*p as usize] = true;
            }
        }
        for (i, &u) in used.iter().enumerate() {
            if !u {
                free.push(i as u32);
            }
        }
        let mut fi = 0;
        for p in perm.iter_mut() {
            if *p == u32::MAX {
                *p = free[fi];
                fi += 1;
            }
        }
        let scrambled = mesh.renumber_nodes(&perm).unwrap();
        let (_, before, after) = rcm_reorder(&scrambled).unwrap();
        assert!(
            after <= before,
            "RCM increased bandwidth: {before} -> {after}"
        );
        // For this structured case RCM should do substantially better.
        assert!(
            (after as f64) < 0.8 * before as f64,
            "RCM too weak: {before} -> {after}"
        );
    }

    #[test]
    fn rcm_preserves_geometry() {
        let mesh = BoxMeshBuilder::tgv_box(3).build().unwrap();
        let (reordered, _, _) = rcm_reorder(&mesh).unwrap();
        // Sort both coordinate sets and compare.
        let key = |v: &fem_numerics::linalg::Vec3| {
            (v.x * 1e6) as i64 * 1_000_000_000 + (v.y * 1e6) as i64 * 1_000 + (v.z * 1e6) as i64
        };
        let mut a: Vec<i64> = mesh.coords().iter().map(key).collect();
        let mut b: Vec<i64> = reordered.coords().iter().map(key).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn rcm_reduces_bandwidth_and_preserves_adjacency() {
        // A non-periodic box numbered naturally already has low bandwidth;
        // renumber it with a bit-reversal-style scramble so RCM has real
        // work to do, then check (a) the permutation strictly reduces the
        // bandwidth and (b) the adjacency graph is exactly preserved.
        let mesh = BoxMeshBuilder::new()
            .elements(5, 5, 5)
            .periodic(false, false, false)
            .extent(1.0, 1.0, 1.0)
            .build()
            .unwrap();
        let n = mesh.num_nodes() as u32;
        // Stride permutation: new = (old * s) mod n with s coprime to n.
        let s = (1..n).find(|s| gcd(*s, n) == 1 && *s > n / 3).unwrap();
        let perm: Vec<u32> = (0..n).map(|old| (old * s) % n).collect();
        let scrambled = mesh.renumber_nodes(&perm).unwrap();

        let (reordered, before, after) = rcm_reorder(&scrambled).unwrap();
        assert!(
            after < before,
            "RCM did not reduce bandwidth: {before} -> {after}"
        );

        // Adjacency preservation: the edge multiset must be invariant
        // under the RCM permutation.
        let rcm = rcm_permutation(&scrambled);
        let mut expected: Vec<(u32, u32)> = Vec::new();
        for (v, nbrs) in scrambled.node_adjacency().iter().enumerate() {
            for &w in nbrs {
                let (a, b) = (rcm[v], rcm[w as usize]);
                expected.push((a.min(b), a.max(b)));
            }
        }
        let mut actual: Vec<(u32, u32)> = Vec::new();
        for (v, nbrs) in reordered.node_adjacency().iter().enumerate() {
            for &w in nbrs {
                let (a, b) = (v as u32, w);
                actual.push((a.min(b), a.max(b)));
            }
        }
        expected.sort_unstable();
        actual.sort_unstable();
        assert_eq!(expected, actual);
    }

    fn gcd(a: u32, b: u32) -> u32 {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }

    proptest! {
        #[test]
        fn prop_rcm_permutation_is_bijective(n in 3usize..6, order in 1usize..3) {
            let mut b = BoxMeshBuilder::tgv_box(n);
            b.order(order);
            let mesh = b.build().unwrap();
            let perm = rcm_permutation(&mesh);
            let mut sorted = perm.clone();
            sorted.sort_unstable();
            let expect: Vec<u32> = (0..mesh.num_nodes() as u32).collect();
            prop_assert_eq!(sorted, expect);
        }
    }
}
