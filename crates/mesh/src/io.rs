//! Compact binary mesh serialization.
//!
//! Format (`FMH1`): all integers little-endian.
//!
//! ```text
//! magic      : 4 bytes  b"FMH1"
//! order      : u32
//! flags      : u32      bit a (0..3) set = axis a periodic; bit 8 = tags present
//! extents    : 3 × f64  periodic extent per axis (0.0 when not periodic)
//! num_nodes  : u64
//! num_elems  : u64
//! coords     : num_nodes × 3 × f64
//! conn       : num_elems × (order+1)³ × u32
//! tags       : num_nodes × u8        (only when flag bit 8 set)
//! ```

use crate::hex::{BoundaryTag, HexMesh};
use crate::MeshError;
use fem_numerics::linalg::Vec3;
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"FMH1";

/// Serializes `mesh` to `w`.
///
/// A `&mut` reference can be passed for `w` (e.g. `&mut Vec<u8>` or a
/// `&mut File`).
///
/// # Errors
///
/// [`MeshError::Io`] on any write failure.
pub fn write_mesh<W: Write>(mesh: &HexMesh, mut w: W) -> Result<(), MeshError> {
    w.write_all(MAGIC)?;
    w.write_all(&(mesh.order() as u32).to_le_bytes())?;
    let mut flags: u32 = 0;
    let ext = mesh.periodic_extent();
    for (a, e) in ext.iter().enumerate() {
        if e.is_some() {
            flags |= 1 << a;
        }
    }
    let has_tags = !mesh.boundary_nodes().is_empty()
        || (0..mesh.num_nodes()).any(|n| mesh.boundary_tag(n).is_boundary());
    if has_tags {
        flags |= 1 << 8;
    }
    w.write_all(&flags.to_le_bytes())?;
    for e in ext {
        w.write_all(&e.unwrap_or(0.0).to_le_bytes())?;
    }
    w.write_all(&(mesh.num_nodes() as u64).to_le_bytes())?;
    w.write_all(&(mesh.num_elements() as u64).to_le_bytes())?;
    for c in mesh.coords() {
        w.write_all(&c.x.to_le_bytes())?;
        w.write_all(&c.y.to_le_bytes())?;
        w.write_all(&c.z.to_le_bytes())?;
    }
    for &n in mesh.connectivity() {
        w.write_all(&n.to_le_bytes())?;
    }
    if has_tags {
        for n in 0..mesh.num_nodes() {
            w.write_all(&[mesh.boundary_tag(n).0])?;
        }
    }
    Ok(())
}

fn read_exact_array<R: Read, const N: usize>(r: &mut R) -> Result<[u8; N], MeshError> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Deserializes a mesh from `r`.
///
/// A `&mut` reference can be passed for `r` (e.g. `&mut &[u8]`).
///
/// # Errors
///
/// [`MeshError::Format`] for a malformed stream, [`MeshError::Io`] on read
/// failure, and any validation error from [`HexMesh::new`].
pub fn read_mesh<R: Read>(mut r: R) -> Result<HexMesh, MeshError> {
    let magic = read_exact_array::<_, 4>(&mut r)?;
    if &magic != MAGIC {
        return Err(MeshError::Format(format!(
            "bad magic {:?}, expected {:?}",
            magic, MAGIC
        )));
    }
    let order = u32::from_le_bytes(read_exact_array::<_, 4>(&mut r)?) as usize;
    if order == 0 || order > 16 {
        return Err(MeshError::Format(format!("implausible order {order}")));
    }
    let flags = u32::from_le_bytes(read_exact_array::<_, 4>(&mut r)?);
    let mut extent = [None, None, None];
    for (a, e) in extent.iter_mut().enumerate() {
        let v = f64::from_le_bytes(read_exact_array::<_, 8>(&mut r)?);
        if flags & (1 << a) != 0 {
            *e = Some(v);
        }
    }
    let num_nodes = u64::from_le_bytes(read_exact_array::<_, 8>(&mut r)?) as usize;
    let num_elems = u64::from_le_bytes(read_exact_array::<_, 8>(&mut r)?) as usize;
    const SANITY: usize = 1 << 33;
    if num_nodes > SANITY || num_elems > SANITY {
        return Err(MeshError::Format("implausible mesh size".into()));
    }
    let mut coords = Vec::with_capacity(num_nodes);
    for _ in 0..num_nodes {
        let x = f64::from_le_bytes(read_exact_array::<_, 8>(&mut r)?);
        let y = f64::from_le_bytes(read_exact_array::<_, 8>(&mut r)?);
        let z = f64::from_le_bytes(read_exact_array::<_, 8>(&mut r)?);
        coords.push(Vec3::new(x, y, z));
    }
    let npe = (order + 1).pow(3);
    let mut conn = Vec::with_capacity(num_elems * npe);
    for _ in 0..num_elems * npe {
        conn.push(u32::from_le_bytes(read_exact_array::<_, 4>(&mut r)?));
    }
    let mut tags = Vec::new();
    if flags & (1 << 8) != 0 {
        let mut buf = vec![0u8; num_nodes];
        r.read_exact(&mut buf)?;
        tags = buf.into_iter().map(BoundaryTag).collect();
    }
    HexMesh::new(order, coords, conn, tags, extent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::BoxMeshBuilder;

    #[test]
    fn roundtrip_periodic_mesh() {
        let mesh = BoxMeshBuilder::tgv_box(3).build().unwrap();
        let mut buf = Vec::new();
        write_mesh(&mesh, &mut buf).unwrap();
        let back = read_mesh(buf.as_slice()).unwrap();
        assert_eq!(mesh, back);
    }

    #[test]
    fn roundtrip_walled_mesh_with_tags() {
        let mesh = BoxMeshBuilder::new()
            .elements(2, 3, 2)
            .periodic(false, true, false)
            .extent(1.0, 2.0, 3.0)
            .order(2)
            .build()
            .unwrap();
        let mut buf = Vec::new();
        write_mesh(&mesh, &mut buf).unwrap();
        let back = read_mesh(buf.as_slice()).unwrap();
        assert_eq!(mesh, back);
        assert_eq!(mesh.boundary_nodes(), back.boundary_nodes());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_mesh(&b"NOPE...."[..]);
        assert!(matches!(err, Err(MeshError::Format(_))));
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let mesh = BoxMeshBuilder::tgv_box(3).build().unwrap();
        let mut buf = Vec::new();
        write_mesh(&mesh, &mut buf).unwrap();
        for cut in [3, 8, 20, buf.len() / 2, buf.len() - 1] {
            let err = read_mesh(&buf[..cut]);
            assert!(err.is_err(), "cut at {cut} unexpectedly parsed");
        }
    }

    #[test]
    fn implausible_header_is_rejected() {
        // magic + order 0
        let mut buf = Vec::new();
        buf.extend_from_slice(b"FMH1");
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(read_mesh(buf.as_slice()).is_err());
    }
}
