//! Element batching and domain sharding for the streaming pipeline.
//!
//! The paper's Load-Element task transfers element data "in batches from
//! off-chip memory to the BRAMs and URAMs within the Programmable Logic"
//! (§III-A, step 1). A batch must fit in on-chip memory; this module
//! partitions the element list into batches and reports the on-chip
//! footprint and DDR traffic of each, which the platform model uses to
//! size buffers and estimate transfer time.
//!
//! On top of the flat batch list, [`ShardPlan`] decomposes the mesh into
//! element **shards** — the unit a multi-unit accelerator (or the host's
//! shard-parallel execution backend) assigns to one memory channel /
//! worker. Shards are ranges over an explicit element assignment chosen
//! by a [`PartitionStrategy`]:
//!
//! * [`PartitionStrategy::Contiguous`] — balanced contiguous ascending
//!   element ranges (the historical layout). Cheap to build, but the
//!   halo it produces is an artifact of element *numbering*, not mesh
//!   topology.
//! * [`PartitionStrategy::Partitioned`] — greedy KL-style recursive
//!   bisection over the element adjacency graph (elements conflict when
//!   they share a node — the same graph the coloring uses), seeded by
//!   the RCM node ordering of [`crate::reorder`]. Each bisection sorts
//!   the sub-problem along the RCM front, cuts at the balance point, and
//!   then greedily swaps boundary element pairs while the edge cut
//!   improves. The result is compared against the contiguous split and
//!   the layout with the smaller halo wins, so a partitioned plan is
//!   never worse than the contiguous one it replaces.
//!
//! Each shard carries the halo metadata the executor needs:
//!
//! * **owned nodes** — nodes whose residual accumulation this shard is
//!   responsible for. Ownership goes to the lowest-indexed shard touching
//!   the node, so the owned sets are disjoint and cover every mesh node.
//! * **shared (halo) nodes** — nodes the shard's elements touch but some
//!   other shard owns; contributions to them must be forwarded to the
//!   owner during the cross-shard reduction.
//! * **frontier flags** ([`ShardPlan::frontier`]) — per mesh node,
//!   whether two or more shards touch it. Only frontier nodes need the
//!   deterministic cross-shard merge; everything else can be scattered
//!   directly by its single toucher.
//! * **neighbor lists** ([`Shard::neighbors`]) — the shards sharing at
//!   least one frontier node with this one, the peers a multi-device
//!   executor exchanges halo buffers with. The relation is symmetric
//!   and every sends-to target is contained in it, so a device posting
//!   one buffer per neighbor and draining one per neighbor terminates.
//! * **streaming batches** — the shard's element list re-batched for the
//!   Load-Element pipeline, with the same DDR-traffic accounting as
//!   [`partition_elements`].
//!
//! # Determinism under permuted element orders
//!
//! The solver's `Sharded` backend is bitwise identical to the serial
//! element loop for *any* shard assignment, not just contiguous ranges.
//! The argument no longer leans on range contiguity:
//!
//! 1. every shard stores its elements **sorted ascending by global
//!    element id** and sweeps them in that order;
//! 2. an **interior** node (`frontier[n] == false`) is touched by exactly
//!    one shard, so its contributions arrive in ascending element order —
//!    the serial order restricted to that node;
//! 3. a **frontier** node's contributions are all recorded with their
//!    source element id and applied by the owner after a stable sort by
//!    (node, element) — again ascending global element order.
//!
//! Every node therefore accumulates its contributions one at a time in
//! exactly the serial order: no regrouping, no rounding difference, the
//! same bits for any shard count and either [`PartitionStrategy`].
//!
//! The same argument keeps a decentralized halo *exchange* bitwise: it
//! never constrains **where** a frontier contribution travels, only the
//! (node, element) order in which the owner applies what arrives. A
//! multi-device executor may route contributions through per-neighbor
//! mailboxes instead of a central reduction — as long as every owner
//! sorts its drained records by (node, element) before applying, the
//! accumulation order (and therefore every bit) is identical.

use crate::hex::HexMesh;
use crate::reorder::rcm_permutation;
use crate::MeshError;

/// A run of elements streamed as one unit (ascending element ids; a
/// contiguous id range under [`PartitionStrategy::Contiguous`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementBatch {
    /// First (lowest) element id in the batch.
    pub first_element: usize,
    /// Number of elements.
    pub num_elements: usize,
    /// Number of *unique* nodes touched by the batch (gather footprint).
    pub unique_nodes: usize,
    /// Bytes read from DDR for the batch (unique node payloads).
    pub bytes_in: usize,
    /// Bytes written back to DDR (per-node residual contributions).
    pub bytes_out: usize,
}

impl ElementBatch {
    /// Total DDR traffic of the batch.
    pub fn total_bytes(&self) -> usize {
        self.bytes_in + self.bytes_out
    }
}

/// Splits the mesh's elements into batches of at most `batch_elements`.
///
/// # Errors
///
/// [`MeshError::InvalidParameter`] if `batch_elements == 0`.
///
/// # Example
///
/// ```
/// use fem_mesh::{generator::BoxMeshBuilder, partition::partition_elements};
/// let mesh = BoxMeshBuilder::tgv_box(4).build().unwrap();
/// let batches = partition_elements(&mesh, 16).unwrap();
/// assert_eq!(batches.len(), 4);
/// let total: usize = batches.iter().map(|b| b.num_elements).sum();
/// assert_eq!(total, mesh.num_elements());
/// ```
pub fn partition_elements(
    mesh: &HexMesh,
    batch_elements: usize,
) -> Result<Vec<ElementBatch>, MeshError> {
    if batch_elements == 0 {
        return Err(MeshError::InvalidParameter(
            "batch size must be positive".into(),
        ));
    }
    let ids: Vec<u32> = (0..mesh.num_elements() as u32).collect();
    Ok(batch_element_run(mesh, &ids, batch_elements))
}

/// Bytes written back to DDR per unique node: the 5 conserved-field
/// residual contributions.
fn bytes_out_per_node() -> usize {
    5 * std::mem::size_of::<f64>()
}

/// Batches the element list `elems` (ascending ids) into runs of at most
/// `batch_elements` elements, with the same traffic accounting as
/// [`partition_elements`] (`batch_elements` must be > 0).
fn batch_element_run(mesh: &HexMesh, elems: &[u32], batch_elements: usize) -> Vec<ElementBatch> {
    debug_assert!(batch_elements > 0, "batch size must be positive");
    let bytes_per_node = HexMesh::bytes_per_node();
    let mut batches = Vec::with_capacity(elems.len().div_ceil(batch_elements));
    let mut scratch: Vec<u32> = Vec::with_capacity(batch_elements.min(elems.len().max(1)) * 8);
    for run in elems.chunks(batch_elements) {
        scratch.clear();
        for &e in run {
            scratch.extend_from_slice(mesh.element_nodes(e as usize));
        }
        scratch.sort_unstable();
        scratch.dedup();
        let unique = scratch.len();
        batches.push(ElementBatch {
            first_element: run[0] as usize,
            num_elements: run.len(),
            unique_nodes: unique,
            bytes_in: unique * bytes_per_node,
            bytes_out: unique * bytes_out_per_node(),
        });
    }
    batches
}

/// Whole-mesh streaming summary for one RK stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamingFootprint {
    /// Total bytes read from DDR per stage.
    pub bytes_in: usize,
    /// Total bytes written to DDR per stage.
    pub bytes_out: usize,
    /// Peak unique-node footprint of any batch (on-chip buffer sizing).
    pub peak_batch_nodes: usize,
}

/// Computes the aggregate streaming footprint for a given batch size.
///
/// # Errors
///
/// Propagates [`MeshError`] from [`partition_elements`].
pub fn streaming_footprint(
    mesh: &HexMesh,
    batch_elements: usize,
) -> Result<StreamingFootprint, MeshError> {
    let batches = partition_elements(mesh, batch_elements)?;
    Ok(StreamingFootprint {
        bytes_in: batches.iter().map(|b| b.bytes_in).sum(),
        bytes_out: batches.iter().map(|b| b.bytes_out).sum(),
        peak_batch_nodes: batches.iter().map(|b| b.unique_nodes).max().unwrap_or(0),
    })
}

/// How a [`ShardPlan`] assigns elements to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionStrategy {
    /// Balanced contiguous ascending element ranges.
    #[default]
    Contiguous,
    /// Halo-minimizing greedy KL-style recursive bisection over the
    /// element adjacency, seeded by the RCM ordering; falls back to the
    /// contiguous split when that happens to have the smaller halo.
    Partitioned,
}

impl std::fmt::Display for PartitionStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionStrategy::Contiguous => write!(f, "contiguous"),
            PartitionStrategy::Partitioned => write!(f, "partitioned"),
        }
    }
}

/// One domain-decomposition shard: an ascending run of elements plus the
/// node-ownership and streaming metadata the shard-parallel executor
/// consumes (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shard {
    index: usize,
    /// Element ids, sorted ascending (a contiguous range under
    /// [`PartitionStrategy::Contiguous`]).
    elements: Vec<u32>,
    owned_nodes: Vec<u32>,
    shared_nodes: Vec<u32>,
    neighbors: Vec<u32>,
    unique_nodes: usize,
    batches: Vec<ElementBatch>,
}

impl Shard {
    /// Shard index within its [`ShardPlan`].
    pub fn index(&self) -> usize {
        self.index
    }

    /// Lowest element id of the shard (0 for an empty shard).
    pub fn first_element(&self) -> usize {
        self.elements.first().copied().unwrap_or(0) as usize
    }

    /// Number of elements in the shard.
    pub fn num_elements(&self) -> usize {
        self.elements.len()
    }

    /// The shard's element ids, sorted ascending.
    pub fn elements(&self) -> &[u32] {
        &self.elements
    }

    /// Nodes this shard owns (sorted ascending; disjoint across shards,
    /// and the union over all shards covers every mesh node).
    pub fn owned_nodes(&self) -> &[u32] {
        &self.owned_nodes
    }

    /// Halo nodes: touched by this shard's elements but owned by another
    /// shard (sorted ascending).
    pub fn shared_nodes(&self) -> &[u32] {
        &self.shared_nodes
    }

    /// Neighboring shard indices (sorted ascending, never containing the
    /// shard itself): shards sharing at least one frontier node with this
    /// one. The relation is symmetric by construction, which is what lets
    /// a neighbor-to-neighbor halo exchange terminate: a device expecting
    /// one message per neighbor is expected by each of those neighbors in
    /// turn. The set of shards a device *sends* to (neighbors owning one
    /// of its shared nodes) is a subset of this list, so posting one —
    /// possibly empty — buffer per neighbor covers every send.
    pub fn neighbors(&self) -> &[u32] {
        &self.neighbors
    }

    /// Unique nodes the shard's elements touch (gather footprint,
    /// computed from connectivity). Can be smaller than owned + shared
    /// on degenerate meshes: nodes referenced by no element fall back to
    /// shard 0's *owned* set without being touched by it.
    pub fn unique_nodes(&self) -> usize {
        self.unique_nodes
    }

    /// The shard's element list re-batched for the streaming pipeline.
    pub fn batches(&self) -> &[ElementBatch] {
        &self.batches
    }

    /// Bytes read from DDR per RK stage for this shard (sum over its
    /// streaming batches — shared nodes between batches are re-read).
    pub fn bytes_in(&self) -> usize {
        self.batches.iter().map(|b| b.bytes_in).sum()
    }

    /// Bytes written back to DDR per RK stage for this shard.
    pub fn bytes_out(&self) -> usize {
        self.batches.iter().map(|b| b.bytes_out).sum()
    }

    /// Total DDR traffic of the shard per RK stage.
    pub fn total_bytes(&self) -> usize {
        self.bytes_in() + self.bytes_out()
    }
}

/// A domain decomposition of a mesh into element shards with
/// lowest-toucher node ownership (see the module docs for the
/// determinism argument this layout supports).
///
/// # Example
///
/// ```
/// use fem_mesh::{generator::BoxMeshBuilder, partition::ShardPlan};
/// let mesh = BoxMeshBuilder::tgv_box(4).build().unwrap();
/// let plan = ShardPlan::new(&mesh, 4).unwrap();
/// assert_eq!(plan.num_shards(), 4);
/// let owned: usize = plan.shards().iter().map(|s| s.owned_nodes().len()).sum();
/// assert_eq!(owned, mesh.num_nodes());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    strategy: PartitionStrategy,
    num_elements: usize,
    num_nodes: usize,
    shards: Vec<Shard>,
    /// Owning shard of every node.
    owner: Vec<u32>,
    /// Per node, whether ≥ 2 shards touch it.
    frontier: Vec<bool>,
}

impl ShardPlan {
    /// Decomposes `mesh` into `shards` balanced contiguous element
    /// shards, streaming each shard as a single batch. `shards` is
    /// clamped to the element count, so every shard is non-empty —
    /// callers that label results by shard count should read the
    /// effective [`ShardPlan::num_shards`] back rather than echo the
    /// requested value.
    ///
    /// # Errors
    ///
    /// [`MeshError::InvalidParameter`] if `shards == 0`.
    pub fn new(mesh: &HexMesh, shards: usize) -> Result<ShardPlan, MeshError> {
        Self::with_batch(mesh, shards, usize::MAX)
    }

    /// Like [`ShardPlan::new`], but re-batches each shard's element list
    /// into streaming batches of at most `batch_elements` elements.
    ///
    /// # Errors
    ///
    /// [`MeshError::InvalidParameter`] if `shards == 0` or
    /// `batch_elements == 0`.
    pub fn with_batch(
        mesh: &HexMesh,
        shards: usize,
        batch_elements: usize,
    ) -> Result<ShardPlan, MeshError> {
        Self::with_strategy(mesh, shards, batch_elements, PartitionStrategy::Contiguous)
    }

    /// The general constructor: decomposes `mesh` into (up to) `shards`
    /// shards under `strategy`, re-batching each shard's element list
    /// into runs of at most `batch_elements`.
    ///
    /// # Errors
    ///
    /// [`MeshError::InvalidParameter`] if `shards == 0` or
    /// `batch_elements == 0`.
    pub fn with_strategy(
        mesh: &HexMesh,
        shards: usize,
        batch_elements: usize,
        strategy: PartitionStrategy,
    ) -> Result<ShardPlan, MeshError> {
        if shards == 0 {
            return Err(MeshError::InvalidParameter(
                "shard count must be positive".into(),
            ));
        }
        if batch_elements == 0 {
            return Err(MeshError::InvalidParameter(
                "batch size must be positive".into(),
            ));
        }
        let ne = mesh.num_elements();
        let nshards = shards.min(ne).max(1);
        let parts = match strategy {
            PartitionStrategy::Contiguous => contiguous_parts(ne, nshards),
            PartitionStrategy::Partitioned => {
                let candidate = graph_partition(mesh, nshards);
                let baseline = contiguous_parts(ne, nshards);
                // The refined bisection should beat the numbering-derived
                // split, but greedy refinement carries no guarantee — keep
                // whichever layout has the smaller (unique halo,
                // reduction volume), so Partitioned is never worse.
                if halo_metrics(mesh, &candidate) <= halo_metrics(mesh, &baseline) {
                    candidate
                } else {
                    baseline
                }
            }
        };
        Ok(Self::from_parts(mesh, parts, batch_elements, strategy))
    }

    /// Builds the plan metadata (ownership, frontier flags, halo lists,
    /// batches) for an element assignment. Each part must be sorted
    /// ascending; together they must cover every element exactly once.
    fn from_parts(
        mesh: &HexMesh,
        parts: Vec<Vec<u32>>,
        batch_elements: usize,
        strategy: PartitionStrategy,
    ) -> ShardPlan {
        let ne = mesh.num_elements();
        let nn = mesh.num_nodes();
        let nshards = parts.len();

        // Lowest-toucher ownership plus per-node touching-shard counts
        // (shards are visited in index order, so the first claim is the
        // lowest-indexed toucher). Nodes no element references fall to
        // shard 0 so the owned sets always cover every node.
        const UNOWNED: u32 = u32::MAX;
        let mut owner = vec![UNOWNED; nn];
        let mut touch = vec![0u32; nn];
        let mut stamp = vec![u32::MAX; nn];
        for (s, part) in parts.iter().enumerate() {
            for &e in part {
                for &n in mesh.element_nodes(e as usize) {
                    let ni = n as usize;
                    if owner[ni] == UNOWNED {
                        owner[ni] = s as u32;
                    }
                    if stamp[ni] != s as u32 {
                        stamp[ni] = s as u32;
                        touch[ni] += 1;
                    }
                }
            }
        }
        for slot in &mut owner {
            if *slot == UNOWNED {
                *slot = 0;
            }
        }
        let frontier: Vec<bool> = touch.iter().map(|&t| t >= 2).collect();

        // Neighbor lists: shards a, b are neighbors iff some frontier
        // node is touched by both. Collect the distinct touching shards
        // of every frontier node (stamp-deduplicated, like the touch
        // counts above), then make every toucher pair mutual — the
        // symmetry the exchange protocol's termination leans on.
        stamp.fill(u32::MAX);
        let mut touchers: Vec<Vec<u32>> = vec![Vec::new(); nn];
        for (s, part) in parts.iter().enumerate() {
            for &e in part {
                for &n in mesh.element_nodes(e as usize) {
                    let ni = n as usize;
                    if frontier[ni] && stamp[ni] != s as u32 {
                        stamp[ni] = s as u32;
                        touchers[ni].push(s as u32);
                    }
                }
            }
        }
        let mut neighbor_sets: Vec<Vec<u32>> = vec![Vec::new(); nshards];
        for list in &touchers {
            for &a in list {
                for &b in list {
                    if a != b {
                        neighbor_sets[a as usize].push(b);
                    }
                }
            }
        }
        for set in &mut neighbor_sets {
            set.sort_unstable();
            set.dedup();
        }

        let mut owned: Vec<Vec<u32>> = vec![Vec::new(); nshards];
        for (n, &s) in owner.iter().enumerate() {
            owned[s as usize].push(n as u32);
        }

        let mut plan_shards = Vec::with_capacity(nshards);
        let mut touched: Vec<u32> = Vec::new();
        for (s, part) in parts.into_iter().enumerate() {
            debug_assert!(part.windows(2).all(|w| w[0] < w[1]), "part not ascending");
            touched.clear();
            for &e in &part {
                touched.extend_from_slice(mesh.element_nodes(e as usize));
            }
            touched.sort_unstable();
            touched.dedup();
            let shared_nodes: Vec<u32> = touched
                .iter()
                .copied()
                .filter(|&n| owner[n as usize] != s as u32)
                .collect();
            let batches = batch_element_run(mesh, &part, batch_elements.min(part.len().max(1)));
            plan_shards.push(Shard {
                index: s,
                owned_nodes: std::mem::take(&mut owned[s]),
                shared_nodes,
                neighbors: std::mem::take(&mut neighbor_sets[s]),
                unique_nodes: touched.len(),
                batches,
                elements: part,
            });
        }
        ShardPlan {
            strategy,
            num_elements: ne,
            num_nodes: nn,
            shards: plan_shards,
            owner,
            frontier,
        }
    }

    /// The strategy the plan was built with.
    pub fn strategy(&self) -> PartitionStrategy {
        self.strategy
    }

    /// Number of shards (≥ 1, ≤ element count).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Elements of the mesh the plan was built for.
    pub fn num_elements(&self) -> usize {
        self.num_elements
    }

    /// Nodes of the mesh the plan was built for.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The shards, in shard-index order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// The owning shard of every node (`owners()[n]` is the index of the
    /// shard whose `owned_nodes` contain `n`).
    pub fn owners(&self) -> &[u32] {
        &self.owner
    }

    /// Per mesh node, whether two or more shards touch it. Only frontier
    /// nodes need the deterministic cross-shard merge; an interior node's
    /// single toucher can scatter directly (see the module docs).
    pub fn frontier(&self) -> &[bool] {
        &self.frontier
    }

    /// Streamed-DDR-bytes load imbalance: the largest per-shard DDR
    /// traffic over the mean (1.0 = perfectly balanced). This weights
    /// shards by what the dataflow emulation actually schedules — bytes
    /// moved, not raw element counts (see
    /// [`ShardPlan::element_imbalance`] for the count-based metric).
    pub fn load_imbalance(&self) -> f64 {
        let bytes: Vec<usize> = self.shards.iter().map(Shard::total_bytes).collect();
        let max = bytes.iter().copied().max().unwrap_or(0);
        let mean = bytes.iter().sum::<usize>() as f64 / self.shards.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max as f64 / mean
        }
    }

    /// Element-count load imbalance: largest shard element count over the
    /// mean (1.0 = perfectly balanced).
    pub fn element_imbalance(&self) -> f64 {
        let max = self
            .shards
            .iter()
            .map(Shard::num_elements)
            .max()
            .unwrap_or(0);
        let mean = self.num_elements as f64 / self.shards.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max as f64 / mean
        }
    }

    /// Cross-shard reduction volume: shared-node records summed over all
    /// shards (a node shared by *k* non-owner shards contributes *k*
    /// entries — this is a traffic count, **not** a node count; see
    /// [`ShardPlan::unique_halo_nodes`] for the deduplicated quantity).
    pub fn halo_entries(&self) -> usize {
        self.shards.iter().map(|s| s.shared_nodes.len()).sum()
    }

    /// Number of distinct halo (frontier) nodes — nodes touched by two or
    /// more shards. Bounded by the mesh node count, unlike
    /// [`ShardPlan::halo_entries`].
    pub fn unique_halo_nodes(&self) -> usize {
        self.frontier.iter().filter(|&&f| f).count()
    }

    /// Unique halo nodes over total mesh nodes — always within
    /// `0.0 ..= 1.0`.
    pub fn halo_fraction(&self) -> f64 {
        if self.num_nodes == 0 {
            0.0
        } else {
            self.unique_halo_nodes() as f64 / self.num_nodes as f64
        }
    }

    /// Aggregate DDR bytes read per RK stage over all shards.
    pub fn total_bytes_in(&self) -> usize {
        self.shards.iter().map(Shard::bytes_in).sum()
    }

    /// Aggregate DDR bytes written per RK stage over all shards.
    pub fn total_bytes_out(&self) -> usize {
        self.shards.iter().map(Shard::bytes_out).sum()
    }

    /// Approximate resident bytes of the plan: per-shard element/node id
    /// lists and batch metadata plus the plan-wide owner/frontier maps.
    pub fn memory_bytes(&self) -> usize {
        let per_shard: usize = self
            .shards
            .iter()
            .map(|s| {
                (s.elements.len() + s.owned_nodes.len() + s.shared_nodes.len() + s.neighbors.len())
                    * std::mem::size_of::<u32>()
                    + s.batches.len() * std::mem::size_of::<ElementBatch>()
            })
            .sum();
        per_shard
            + self.owner.len() * std::mem::size_of::<u32>()
            + self.frontier.len() * std::mem::size_of::<bool>()
    }
}

/// Balanced contiguous ascending element ranges: the first `rem` parts
/// get one extra element, so no part is empty and |max − min| ≤ 1.
fn contiguous_parts(ne: usize, nshards: usize) -> Vec<Vec<u32>> {
    let base = ne / nshards;
    let rem = ne % nshards;
    let mut parts = Vec::with_capacity(nshards);
    let mut first = 0u32;
    for s in 0..nshards {
        let count = (base + usize::from(s < rem)) as u32;
        parts.push((first..first + count).collect());
        first += count;
    }
    debug_assert_eq!(first as usize, ne);
    parts
}

/// Halo quality of an element assignment, cheap enough to compare
/// candidate layouts before committing: (unique frontier nodes,
/// cross-shard reduction entries), lexicographically comparable.
fn halo_metrics(mesh: &HexMesh, parts: &[Vec<u32>]) -> (usize, usize) {
    let nn = mesh.num_nodes();
    let mut touch = vec![0u32; nn];
    let mut stamp = vec![u32::MAX; nn];
    for (s, part) in parts.iter().enumerate() {
        for &e in part {
            for &n in mesh.element_nodes(e as usize) {
                let ni = n as usize;
                if stamp[ni] != s as u32 {
                    stamp[ni] = s as u32;
                    touch[ni] += 1;
                }
            }
        }
    }
    let frontier = touch.iter().filter(|&&t| t >= 2).count();
    let entries: usize = touch.iter().map(|&t| (t as usize).saturating_sub(1)).sum();
    (frontier, entries)
}

/// Element conflict graph: two elements are adjacent when they share a
/// node (the same graph the greedy coloring colors). Lists are sorted
/// ascending.
fn element_adjacency(mesh: &HexMesh) -> Vec<Vec<u32>> {
    let ne = mesh.num_elements();
    let mut node_elems: Vec<Vec<u32>> = vec![Vec::new(); mesh.num_nodes()];
    for e in 0..ne {
        for &n in mesh.element_nodes(e) {
            node_elems[n as usize].push(e as u32);
        }
    }
    let mut adj = Vec::with_capacity(ne);
    let mut nbrs: Vec<u32> = Vec::new();
    for e in 0..ne {
        nbrs.clear();
        for &n in mesh.element_nodes(e) {
            nbrs.extend_from_slice(&node_elems[n as usize]);
        }
        nbrs.sort_unstable();
        nbrs.dedup();
        if let Ok(i) = nbrs.binary_search(&(e as u32)) {
            nbrs.remove(i);
        }
        adj.push(nbrs.clone());
    }
    adj
}

/// Per-element seed keys for the bisection ordering: the minimum RCM
/// rank over the element's nodes. Sorting elements by this key walks
/// them along the RCM front, so the initial cut of every bisection is
/// already a locality-respecting split.
fn rcm_element_keys(mesh: &HexMesh) -> Vec<u32> {
    let perm = rcm_permutation(mesh);
    (0..mesh.num_elements())
        .map(|e| {
            mesh.element_nodes(e)
                .iter()
                .map(|&n| perm[n as usize])
                .min()
                .unwrap_or(0)
        })
        .collect()
}

/// Greedy KL-style recursive bisection of the element graph into
/// `nshards` balanced parts (each sorted ascending).
fn graph_partition(mesh: &HexMesh, nshards: usize) -> Vec<Vec<u32>> {
    let ne = mesh.num_elements();
    let adj = element_adjacency(mesh);
    let keys = rcm_element_keys(mesh);
    let mut parts = Vec::with_capacity(nshards);
    bisect(
        (0..ne as u32).collect(),
        nshards,
        &adj,
        &keys,
        ne,
        &mut parts,
    );
    parts
}

/// Recursively bisects `elems` into `nparts` parts: RCM-ordered initial
/// cut at the proportional balance point, then greedy pair-swap
/// refinement of the edge cut.
fn bisect(
    mut elems: Vec<u32>,
    nparts: usize,
    adj: &[Vec<u32>],
    keys: &[u32],
    ne: usize,
    out: &mut Vec<Vec<u32>>,
) {
    if nparts <= 1 {
        elems.sort_unstable();
        out.push(elems);
        return;
    }
    let left_parts = nparts / 2;
    let right_parts = nparts - left_parts;
    elems.sort_unstable_by_key(|&e| (keys[e as usize], e));
    let n = elems.len();
    // Proportional cut, clamped so each side keeps ≥ 1 element per part.
    let cut = (n * left_parts / nparts).clamp(left_parts, n - right_parts);
    let mut right = elems.split_off(cut);
    let mut left = elems;
    refine_cut(&mut left, &mut right, adj, ne);
    bisect(left, left_parts, adj, keys, ne, out);
    bisect(right, right_parts, adj, keys, ne, out);
}

/// Greedy KL-style refinement: repeatedly swaps the best element pair
/// across the cut while the edge cut strictly improves. Swaps (rather
/// than moves) keep both sides' sizes exact, so the refinement never
/// degrades the balance the proportional cut established.
fn refine_cut(a: &mut [u32], b: &mut [u32], adj: &[Vec<u32>], ne: usize) {
    if a.is_empty() || b.is_empty() {
        return;
    }
    const OUT: u8 = 0;
    const SIDE_A: u8 = 1;
    const SIDE_B: u8 = 2;
    let mut side = vec![OUT; ne];
    for &e in a.iter() {
        side[e as usize] = SIDE_A;
    }
    for &e in b.iter() {
        side[e as usize] = SIDE_B;
    }
    // gain[e] = (neighbors across the cut) − (neighbors on e's side),
    // restricted to this sub-problem: the cut reduction if `e` crossed
    // over alone.
    let gain_of = |e: u32, side: &[u8]| -> i64 {
        let s = side[e as usize];
        let mut g = 0i64;
        for &w in &adj[e as usize] {
            let t = side[w as usize];
            if t == OUT {
                continue;
            }
            if t == s {
                g -= 1;
            } else {
                g += 1;
            }
        }
        g
    };
    let mut gain = vec![0i64; ne];
    for &e in a.iter().chain(b.iter()) {
        gain[e as usize] = gain_of(e, &side);
    }
    // Each positive-gain swap strictly reduces the cut, so the loop
    // terminates; the cap is a safety net, not the expected exit.
    let max_swaps = a.len().min(b.len()).max(1) * 4;
    for _ in 0..max_swaps {
        let pick = |side_elems: &[u32], gain: &[i64]| -> usize {
            let mut best = 0;
            for (i, &e) in side_elems.iter().enumerate() {
                let (g, bg) = (gain[e as usize], gain[side_elems[best] as usize]);
                if g > bg || (g == bg && e < side_elems[best]) {
                    best = i;
                }
            }
            best
        };
        let ia = pick(a, &gain);
        let ib = pick(b, &gain);
        let (ea, eb) = (a[ia], b[ib]);
        // If the pair is adjacent, their shared edge stays cut after the
        // swap even though both individual gains claimed it.
        let linked = adj[ea as usize].binary_search(&eb).is_ok();
        let total = gain[ea as usize] + gain[eb as usize] - if linked { 2 } else { 0 };
        if total <= 0 {
            break;
        }
        a[ia] = eb;
        b[ib] = ea;
        side[ea as usize] = SIDE_B;
        side[eb as usize] = SIDE_A;
        for &e in [ea, eb].iter() {
            gain[e as usize] = gain_of(e, &side);
            for &w in &adj[e as usize] {
                if side[w as usize] != OUT {
                    gain[w as usize] = gain_of(w, &side);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::BoxMeshBuilder;
    use proptest::prelude::*;

    #[test]
    fn zero_batch_size_rejected() {
        let mesh = BoxMeshBuilder::tgv_box(3).build().unwrap();
        assert!(partition_elements(&mesh, 0).is_err());
    }

    #[test]
    fn batches_cover_all_elements_without_overlap() {
        let mesh = BoxMeshBuilder::tgv_box(4).build().unwrap();
        let batches = partition_elements(&mesh, 10).unwrap();
        let mut next = 0;
        for b in &batches {
            assert_eq!(b.first_element, next);
            next += b.num_elements;
        }
        assert_eq!(next, mesh.num_elements());
    }

    #[test]
    fn unique_nodes_bounded_by_gather_size() {
        let mesh = BoxMeshBuilder::tgv_box(4).build().unwrap();
        let npe = mesh.nodes_per_element();
        for b in partition_elements(&mesh, 7).unwrap() {
            assert!(b.unique_nodes <= b.num_elements * npe);
            assert!(b.unique_nodes >= npe); // at least one element's nodes
            assert_eq!(b.bytes_in, b.unique_nodes * HexMesh::bytes_per_node());
        }
    }

    #[test]
    fn footprint_peak_shrinks_with_batch_size() {
        let mesh = BoxMeshBuilder::tgv_box(5).build().unwrap();
        let small = streaming_footprint(&mesh, 4).unwrap();
        let large = streaming_footprint(&mesh, 64).unwrap();
        assert!(small.peak_batch_nodes <= large.peak_batch_nodes);
        // Shared nodes between batches are re-read: smaller batches cannot
        // reduce the total input traffic.
        assert!(small.bytes_in >= large.bytes_in);
    }

    #[test]
    fn zero_shards_rejected() {
        let mesh = BoxMeshBuilder::tgv_box(3).build().unwrap();
        assert!(ShardPlan::new(&mesh, 0).is_err());
        assert!(ShardPlan::with_batch(&mesh, 2, 0).is_err());
        assert!(
            ShardPlan::with_strategy(&mesh, 0, usize::MAX, PartitionStrategy::Partitioned).is_err()
        );
    }

    #[test]
    fn shard_count_clamps_to_element_count() {
        let mesh = BoxMeshBuilder::tgv_box(3).build().unwrap(); // 27 elements
        let plan = ShardPlan::new(&mesh, 1000).unwrap();
        assert_eq!(plan.num_shards(), 27);
        assert!(plan.shards().iter().all(|s| s.num_elements() == 1));
        assert!((plan.element_imbalance() - 1.0).abs() < 1e-12);
        // Single-element shards all stream the same byte count, so the
        // traffic-weighted imbalance is exact too.
        assert!((plan.load_imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_shard_owns_everything() {
        let mesh = BoxMeshBuilder::tgv_box(4).build().unwrap();
        for strategy in [
            PartitionStrategy::Contiguous,
            PartitionStrategy::Partitioned,
        ] {
            let plan = ShardPlan::with_strategy(&mesh, 1, usize::MAX, strategy).unwrap();
            assert_eq!(plan.num_shards(), 1);
            let s = &plan.shards()[0];
            assert_eq!(s.owned_nodes().len(), mesh.num_nodes());
            assert!(s.shared_nodes().is_empty());
            assert_eq!(plan.halo_entries(), 0);
            assert_eq!(plan.unique_halo_nodes(), 0);
            assert_eq!(plan.halo_fraction(), 0.0);
            assert!(plan.frontier().iter().all(|&f| !f));
            assert_eq!(s.batches().len(), 1);
            assert_eq!(s.bytes_in(), mesh.num_nodes() * HexMesh::bytes_per_node());
        }
    }

    #[test]
    fn shard_batching_respects_batch_size() {
        let mesh = BoxMeshBuilder::tgv_box(4).build().unwrap(); // 64 elements
        let plan = ShardPlan::with_batch(&mesh, 4, 5).unwrap();
        for s in plan.shards() {
            assert_eq!(s.num_elements(), 16);
            assert_eq!(s.batches().len(), 4); // ceil(16 / 5)
            let covered: usize = s.batches().iter().map(|b| b.num_elements).sum();
            assert_eq!(covered, s.num_elements());
            assert_eq!(s.batches()[0].first_element, s.first_element());
        }
    }

    #[test]
    fn contiguous_shards_are_ascending_ranges() {
        let mesh = BoxMeshBuilder::tgv_box(4).build().unwrap();
        let plan = ShardPlan::new(&mesh, 5).unwrap();
        let mut next = 0u32;
        for s in plan.shards() {
            assert_eq!(s.elements()[0], next);
            assert!(s.elements().windows(2).all(|w| w[1] == w[0] + 1));
            next += s.num_elements() as u32;
        }
        assert_eq!(next as usize, mesh.num_elements());
    }

    #[test]
    fn partitioned_halo_never_worse_than_contiguous() {
        // The tentpole guarantee the `repro sharding` CI gate leans on:
        // at every swept shard count, on periodic and walled boxes alike.
        for periodic in [true, false] {
            let mut b = BoxMeshBuilder::new();
            b.elements(6, 6, 6).periodic(periodic, periodic, periodic);
            let mesh = b.build().unwrap();
            for shards in [2usize, 4, 8, 16] {
                let c = ShardPlan::with_strategy(
                    &mesh,
                    shards,
                    usize::MAX,
                    PartitionStrategy::Contiguous,
                )
                .unwrap();
                let p = ShardPlan::with_strategy(
                    &mesh,
                    shards,
                    usize::MAX,
                    PartitionStrategy::Partitioned,
                )
                .unwrap();
                assert_eq!(p.num_shards(), c.num_shards());
                assert!(
                    p.unique_halo_nodes() <= c.unique_halo_nodes(),
                    "periodic={periodic} shards={shards}: partitioned {} > contiguous {}",
                    p.unique_halo_nodes(),
                    c.unique_halo_nodes()
                );
                assert!(p.halo_fraction() <= c.halo_fraction());
            }
        }
    }

    #[test]
    fn partitioned_cuts_walled_box_halo_below_contiguous() {
        // Element numbering runs x-fastest, so contiguous shards of this
        // elongated walled box are thin z-slabs cut across the large
        // 16×4 cross-section; the graph partitioner should instead cut
        // across the small 4×4 cross-section and land strictly below.
        let mut b = BoxMeshBuilder::new();
        b.elements(16, 4, 4).periodic(false, false, false);
        let mesh = b.build().unwrap();
        let c =
            ShardPlan::with_strategy(&mesh, 4, usize::MAX, PartitionStrategy::Contiguous).unwrap();
        let p =
            ShardPlan::with_strategy(&mesh, 4, usize::MAX, PartitionStrategy::Partitioned).unwrap();
        assert!(
            p.unique_halo_nodes() < c.unique_halo_nodes(),
            "partitioned {} not below contiguous {}",
            p.unique_halo_nodes(),
            c.unique_halo_nodes()
        );
    }

    #[test]
    fn halo_fraction_bounded_with_many_sharing_shards() {
        // Regression for the halo_fraction metric: a periodic 3³ box cut
        // into 27 single-element shards shares every node between 8
        // shards, so the per-sharing-shard entry count (`halo_entries`,
        // the old "fraction" numerator) far exceeds the node count while
        // the deduplicated fraction stays ≤ 1.
        let mesh = BoxMeshBuilder::tgv_box(3).build().unwrap();
        let plan = ShardPlan::new(&mesh, 27).unwrap();
        let max_sharers = plan
            .shards()
            .iter()
            .flat_map(|s| s.shared_nodes().iter())
            .fold(vec![0u32; mesh.num_nodes()], |mut acc, &n| {
                acc[n as usize] += 1;
                acc
            })
            .into_iter()
            .max()
            .unwrap();
        assert!(max_sharers >= 3, "test mesh too weak: {max_sharers}");
        assert!(
            plan.halo_entries() > mesh.num_nodes(),
            "old metric must overflow"
        );
        assert!(plan.unique_halo_nodes() <= mesh.num_nodes());
        assert!((0.0..=1.0).contains(&plan.halo_fraction()));
    }

    proptest! {
        /// Shard partitions cover every element exactly once, owned-node
        /// sets are disjoint and complete, halo nodes are owned elsewhere,
        /// frontier flags match multi-shard touch, and the per-shard
        /// traffic accounting matches its batches — under BOTH partition
        /// strategies.
        #[test]
        fn prop_shard_plan_invariants(
            nx in 2usize..6,
            ny in 2usize..6,
            nz in 2usize..6,
            periodic in proptest::bool::ANY,
            shards in 1usize..12,
            batch in 1usize..30,
            partitioned in proptest::bool::ANY,
        ) {
            let mut b = BoxMeshBuilder::new();
            b.elements(nx, ny, nz).periodic(periodic, periodic, periodic);
            let mesh = match b.build() {
                Ok(m) => m,
                // Periodic axes need ≥ 3 elements; skip infeasible combos.
                Err(_) => return Ok(()),
            };
            let strategy = if partitioned {
                PartitionStrategy::Partitioned
            } else {
                PartitionStrategy::Contiguous
            };
            let plan = ShardPlan::with_strategy(&mesh, shards, batch, strategy).unwrap();
            prop_assert_eq!(plan.strategy(), strategy);

            // Coverage of every element exactly once, ascending per shard.
            let mut seen_e = vec![false; mesh.num_elements()];
            for s in plan.shards() {
                prop_assert!(s.num_elements() > 0);
                prop_assert!(s.elements().windows(2).all(|w| w[0] < w[1]));
                for &e in s.elements() {
                    prop_assert!(!seen_e[e as usize], "element {} assigned twice", e);
                    seen_e[e as usize] = true;
                }
            }
            prop_assert!(seen_e.iter().all(|&v| v), "elements dropped");

            // Owned sets: disjoint, complete, and consistent with owners().
            let mut seen = vec![false; mesh.num_nodes()];
            for s in plan.shards() {
                for &n in s.owned_nodes() {
                    prop_assert!(!seen[n as usize], "node {} owned twice", n);
                    seen[n as usize] = true;
                    prop_assert_eq!(plan.owners()[n as usize] as usize, s.index());
                }
            }
            prop_assert!(seen.iter().all(|&v| v), "owned sets incomplete");

            // Frontier flags match the number of distinct touching shards,
            // and shared nodes are exactly the touched-but-not-owned ones.
            let mut touch = vec![0u32; mesh.num_nodes()];
            let mut stamp = vec![u32::MAX; mesh.num_nodes()];
            for s in plan.shards() {
                for &e in s.elements() {
                    for &n in mesh.element_nodes(e as usize) {
                        if stamp[n as usize] != s.index() as u32 {
                            stamp[n as usize] = s.index() as u32;
                            touch[n as usize] += 1;
                        }
                    }
                }
            }
            for (n, &t) in touch.iter().enumerate() {
                prop_assert_eq!(plan.frontier()[n], t >= 2);
            }
            prop_assert_eq!(
                plan.unique_halo_nodes(),
                touch.iter().filter(|&&t| t >= 2).count()
            );
            prop_assert!((0.0..=1.0).contains(&plan.halo_fraction()));

            for s in plan.shards() {
                for &n in s.shared_nodes() {
                    let o = plan.owners()[n as usize] as usize;
                    prop_assert!(o != s.index());
                    prop_assert!(plan.frontier()[n as usize]);
                }
                // Traffic matches the shard's batches.
                let bin: usize = s.batches().iter().map(|b| b.bytes_in).sum();
                prop_assert_eq!(s.bytes_in(), bin);
                let total: usize = s.batches().iter().map(|b| b.num_elements).sum();
                prop_assert_eq!(total, s.num_elements());
            }
            prop_assert!(plan.load_imbalance() >= 1.0 - 1e-12);
            prop_assert!(plan.element_imbalance() >= 1.0 - 1e-12);
        }

        /// Neighbor lists are symmetric, self-free, and cover exactly the
        /// frontier: every pair of shards touching a common frontier node
        /// lists each other, and every listed pair shares at least one
        /// frontier node — under BOTH partition strategies.
        #[test]
        fn prop_neighbor_lists_symmetric_and_cover_the_frontier(
            nx in 2usize..6,
            ny in 2usize..6,
            nz in 2usize..6,
            periodic in proptest::bool::ANY,
            shards in 1usize..12,
            partitioned in proptest::bool::ANY,
        ) {
            let mut b = BoxMeshBuilder::new();
            b.elements(nx, ny, nz).periodic(periodic, periodic, periodic);
            let mesh = match b.build() {
                Ok(m) => m,
                Err(_) => return Ok(()),
            };
            let strategy = if partitioned {
                PartitionStrategy::Partitioned
            } else {
                PartitionStrategy::Contiguous
            };
            let plan = ShardPlan::with_strategy(&mesh, shards, usize::MAX, strategy).unwrap();
            let ns = plan.num_shards();

            // Model: distinct touching shards of every frontier node.
            let mut touchers: Vec<Vec<u32>> = vec![Vec::new(); mesh.num_nodes()];
            for s in plan.shards() {
                for &e in s.elements() {
                    for &n in mesh.element_nodes(e as usize) {
                        if plan.frontier()[n as usize] {
                            let list = &mut touchers[n as usize];
                            if !list.contains(&(s.index() as u32)) {
                                list.push(s.index() as u32);
                            }
                        }
                    }
                }
            }
            let mut expect: Vec<Vec<u32>> = vec![Vec::new(); ns];
            for list in &touchers {
                for &a in list {
                    for &b in list {
                        if a != b && !expect[a as usize].contains(&b) {
                            expect[a as usize].push(b);
                        }
                    }
                }
            }
            for e in &mut expect {
                e.sort_unstable();
            }

            for s in plan.shards() {
                // Sorted, self-free, in range.
                prop_assert!(s.neighbors().windows(2).all(|w| w[0] < w[1]));
                for &t in s.neighbors() {
                    prop_assert!((t as usize) < ns);
                    prop_assert!(t as usize != s.index());
                    // Symmetry.
                    prop_assert!(
                        plan.shards()[t as usize].neighbors().contains(&(s.index() as u32)),
                        "shard {} lists {} but not vice versa", s.index(), t
                    );
                }
                // Exactly the frontier-sharing pairs — no more, no less.
                prop_assert_eq!(s.neighbors(), expect[s.index()].as_slice());
                // Sends-to targets (owners of this shard's shared nodes)
                // are a subset of the neighbor list.
                for &n in s.shared_nodes() {
                    let o = plan.owners()[n as usize];
                    prop_assert!(s.neighbors().contains(&o));
                }
            }
            // A single-shard plan has no frontier and no neighbors.
            if ns == 1 {
                prop_assert!(plan.shards()[0].neighbors().is_empty());
            }
        }

        /// The partitioned strategy is never worse than contiguous on the
        /// (unique halo, reduction entries) metric it optimizes.
        #[test]
        fn prop_partitioned_not_worse(
            n in 3usize..6,
            shards in 2usize..10,
            periodic in proptest::bool::ANY,
        ) {
            let mut b = BoxMeshBuilder::new();
            b.elements(n, n, n).periodic(periodic, periodic, periodic);
            let mesh = b.build().unwrap();
            let c = ShardPlan::with_strategy(
                &mesh, shards, usize::MAX, PartitionStrategy::Contiguous).unwrap();
            let p = ShardPlan::with_strategy(
                &mesh, shards, usize::MAX, PartitionStrategy::Partitioned).unwrap();
            prop_assert!(p.unique_halo_nodes() <= c.unique_halo_nodes());
        }

        #[test]
        fn prop_batch_invariants(n in 3usize..6, batch in 1usize..40) {
            let mesh = BoxMeshBuilder::tgv_box(n).build().unwrap();
            let batches = partition_elements(&mesh, batch).unwrap();
            let total: usize = batches.iter().map(|b| b.num_elements).sum();
            prop_assert_eq!(total, mesh.num_elements());
            for b in &batches {
                prop_assert!(b.num_elements <= batch);
                prop_assert!(b.total_bytes() == b.bytes_in + b.bytes_out);
            }
        }
    }
}
