//! Element batching and domain sharding for the streaming pipeline.
//!
//! The paper's Load-Element task transfers element data "in batches from
//! off-chip memory to the BRAMs and URAMs within the Programmable Logic"
//! (§III-A, step 1). A batch must fit in on-chip memory; this module
//! partitions the element list into batches and reports the on-chip
//! footprint and DDR traffic of each, which the platform model uses to
//! size buffers and estimate transfer time.
//!
//! On top of the flat batch list, [`ShardPlan`] decomposes the mesh into
//! contiguous element **shards** — the unit a multi-unit accelerator (or
//! the host's shard-parallel execution backend) assigns to one memory
//! channel / worker. Each shard carries the halo metadata the executor
//! needs:
//!
//! * **owned nodes** — nodes whose residual accumulation this shard is
//!   responsible for. Ownership goes to the lowest-indexed shard touching
//!   the node, so the owned sets are disjoint and cover every mesh node.
//! * **shared (halo) nodes** — nodes the shard's elements touch but some
//!   lower-indexed shard owns; contributions to them must be forwarded to
//!   the owner during the cross-shard reduction.
//! * **streaming batches** — the shard's element range re-batched for the
//!   Load-Element pipeline, with the same DDR-traffic accounting as
//!   [`partition_elements`].
//!
//! Because shards are contiguous ascending element ranges and ownership
//! is "first toucher wins", applying each shard's own contributions in
//! element order and then the halo contributions in (source shard,
//! element) order reproduces the serial per-node accumulation order
//! *exactly* — the property the solver's `Sharded` backend exploits to be
//! bitwise identical across shard counts.

use crate::hex::HexMesh;
use crate::MeshError;

/// A contiguous range of elements streamed as one unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementBatch {
    /// First element id in the batch.
    pub first_element: usize,
    /// Number of elements.
    pub num_elements: usize,
    /// Number of *unique* nodes touched by the batch (gather footprint).
    pub unique_nodes: usize,
    /// Bytes read from DDR for the batch (unique node payloads).
    pub bytes_in: usize,
    /// Bytes written back to DDR (per-node residual contributions).
    pub bytes_out: usize,
}

impl ElementBatch {
    /// Total DDR traffic of the batch.
    pub fn total_bytes(&self) -> usize {
        self.bytes_in + self.bytes_out
    }
}

/// Splits the mesh's elements into batches of at most `batch_elements`.
///
/// # Errors
///
/// [`MeshError::InvalidParameter`] if `batch_elements == 0`.
///
/// # Example
///
/// ```
/// use fem_mesh::{generator::BoxMeshBuilder, partition::partition_elements};
/// let mesh = BoxMeshBuilder::tgv_box(4).build().unwrap();
/// let batches = partition_elements(&mesh, 16).unwrap();
/// assert_eq!(batches.len(), 4);
/// let total: usize = batches.iter().map(|b| b.num_elements).sum();
/// assert_eq!(total, mesh.num_elements());
/// ```
pub fn partition_elements(
    mesh: &HexMesh,
    batch_elements: usize,
) -> Result<Vec<ElementBatch>, MeshError> {
    if batch_elements == 0 {
        return Err(MeshError::InvalidParameter(
            "batch size must be positive".into(),
        ));
    }
    Ok(batch_element_range(
        mesh,
        0,
        mesh.num_elements(),
        batch_elements,
    ))
}

/// Bytes written back to DDR per unique node: the 5 conserved-field
/// residual contributions.
fn bytes_out_per_node() -> usize {
    5 * std::mem::size_of::<f64>()
}

/// Batches the contiguous element range `[first, first + count)` into
/// runs of at most `batch_elements` elements, with the same traffic
/// accounting as [`partition_elements`] (`batch_elements` must be > 0).
fn batch_element_range(
    mesh: &HexMesh,
    first: usize,
    count: usize,
    batch_elements: usize,
) -> Vec<ElementBatch> {
    let npe = mesh.nodes_per_element();
    let bytes_per_node = HexMesh::bytes_per_node();
    let end = first + count;
    let mut batches = Vec::with_capacity(count.div_ceil(batch_elements));
    let mut scratch: Vec<u32> = Vec::with_capacity(batch_elements.min(count) * npe);
    let mut start = first;
    while start < end {
        let n = batch_elements.min(end - start);
        scratch.clear();
        scratch.extend_from_slice(&mesh.connectivity()[start * npe..(start + n) * npe]);
        scratch.sort_unstable();
        scratch.dedup();
        let unique = scratch.len();
        batches.push(ElementBatch {
            first_element: start,
            num_elements: n,
            unique_nodes: unique,
            bytes_in: unique * bytes_per_node,
            bytes_out: unique * bytes_out_per_node(),
        });
        start += n;
    }
    batches
}

/// Whole-mesh streaming summary for one RK stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamingFootprint {
    /// Total bytes read from DDR per stage.
    pub bytes_in: usize,
    /// Total bytes written to DDR per stage.
    pub bytes_out: usize,
    /// Peak unique-node footprint of any batch (on-chip buffer sizing).
    pub peak_batch_nodes: usize,
}

/// Computes the aggregate streaming footprint for a given batch size.
///
/// # Errors
///
/// Propagates [`MeshError`] from [`partition_elements`].
pub fn streaming_footprint(
    mesh: &HexMesh,
    batch_elements: usize,
) -> Result<StreamingFootprint, MeshError> {
    let batches = partition_elements(mesh, batch_elements)?;
    Ok(StreamingFootprint {
        bytes_in: batches.iter().map(|b| b.bytes_in).sum(),
        bytes_out: batches.iter().map(|b| b.bytes_out).sum(),
        peak_batch_nodes: batches.iter().map(|b| b.unique_nodes).max().unwrap_or(0),
    })
}

/// One domain-decomposition shard: a contiguous ascending run of
/// elements plus the node-ownership and streaming metadata the
/// shard-parallel executor consumes (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shard {
    index: usize,
    first_element: usize,
    num_elements: usize,
    owned_nodes: Vec<u32>,
    shared_nodes: Vec<u32>,
    unique_nodes: usize,
    batches: Vec<ElementBatch>,
}

impl Shard {
    /// Shard index within its [`ShardPlan`] (ascending element ranges).
    pub fn index(&self) -> usize {
        self.index
    }

    /// First element id of the shard.
    pub fn first_element(&self) -> usize {
        self.first_element
    }

    /// Number of elements in the shard.
    pub fn num_elements(&self) -> usize {
        self.num_elements
    }

    /// The shard's element ids as a range.
    pub fn element_range(&self) -> std::ops::Range<usize> {
        self.first_element..self.first_element + self.num_elements
    }

    /// Nodes this shard owns (sorted ascending; disjoint across shards,
    /// and the union over all shards covers every mesh node).
    pub fn owned_nodes(&self) -> &[u32] {
        &self.owned_nodes
    }

    /// Halo nodes: touched by this shard's elements but owned by a
    /// lower-indexed shard (sorted ascending).
    pub fn shared_nodes(&self) -> &[u32] {
        &self.shared_nodes
    }

    /// Unique nodes the shard's elements touch (gather footprint,
    /// computed from connectivity). Can be smaller than owned + shared
    /// on degenerate meshes: nodes referenced by no element fall back to
    /// shard 0's *owned* set without being touched by it.
    pub fn unique_nodes(&self) -> usize {
        self.unique_nodes
    }

    /// The shard's element range re-batched for the streaming pipeline.
    pub fn batches(&self) -> &[ElementBatch] {
        &self.batches
    }

    /// Bytes read from DDR per RK stage for this shard (sum over its
    /// streaming batches — shared nodes between batches are re-read).
    pub fn bytes_in(&self) -> usize {
        self.batches.iter().map(|b| b.bytes_in).sum()
    }

    /// Bytes written back to DDR per RK stage for this shard.
    pub fn bytes_out(&self) -> usize {
        self.batches.iter().map(|b| b.bytes_out).sum()
    }

    /// Total DDR traffic of the shard per RK stage.
    pub fn total_bytes(&self) -> usize {
        self.bytes_in() + self.bytes_out()
    }
}

/// A domain decomposition of a mesh into contiguous element shards with
/// first-toucher node ownership (see the module docs for the determinism
/// argument this layout supports).
///
/// # Example
///
/// ```
/// use fem_mesh::{generator::BoxMeshBuilder, partition::ShardPlan};
/// let mesh = BoxMeshBuilder::tgv_box(4).build().unwrap();
/// let plan = ShardPlan::new(&mesh, 4).unwrap();
/// assert_eq!(plan.num_shards(), 4);
/// let owned: usize = plan.shards().iter().map(|s| s.owned_nodes().len()).sum();
/// assert_eq!(owned, mesh.num_nodes());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    num_elements: usize,
    num_nodes: usize,
    shards: Vec<Shard>,
    /// Owning shard of every node.
    owner: Vec<u32>,
}

impl ShardPlan {
    /// Decomposes `mesh` into `shards` balanced contiguous element
    /// shards, streaming each shard as a single batch. `shards` is
    /// clamped to the element count, so every shard is non-empty.
    ///
    /// # Errors
    ///
    /// [`MeshError::InvalidParameter`] if `shards == 0`.
    pub fn new(mesh: &HexMesh, shards: usize) -> Result<ShardPlan, MeshError> {
        Self::with_batch(mesh, shards, usize::MAX)
    }

    /// Like [`ShardPlan::new`], but re-batches each shard's element range
    /// into streaming batches of at most `batch_elements` elements.
    ///
    /// # Errors
    ///
    /// [`MeshError::InvalidParameter`] if `shards == 0` or
    /// `batch_elements == 0`.
    pub fn with_batch(
        mesh: &HexMesh,
        shards: usize,
        batch_elements: usize,
    ) -> Result<ShardPlan, MeshError> {
        if shards == 0 {
            return Err(MeshError::InvalidParameter(
                "shard count must be positive".into(),
            ));
        }
        if batch_elements == 0 {
            return Err(MeshError::InvalidParameter(
                "batch size must be positive".into(),
            ));
        }
        let ne = mesh.num_elements();
        let nn = mesh.num_nodes();
        let npe = mesh.nodes_per_element();
        let nshards = shards.min(ne).max(1);

        // Balanced contiguous split: the first `rem` shards get one extra
        // element, so no shard is empty and |max − min| ≤ 1.
        let base = ne / nshards;
        let rem = ne % nshards;
        let mut ranges = Vec::with_capacity(nshards);
        let mut first = 0;
        for s in 0..nshards {
            let count = base + usize::from(s < rem);
            ranges.push((first, count));
            first += count;
        }
        debug_assert_eq!(first, ne);

        // First-toucher ownership: walk shards (= ascending elements) and
        // claim unowned nodes. Nodes no element references (impossible
        // for generator meshes, but legal input) fall to shard 0 so the
        // owned sets always cover every node.
        const UNOWNED: u32 = u32::MAX;
        let mut owner = vec![UNOWNED; nn];
        for (s, &(start, count)) in ranges.iter().enumerate() {
            for &n in &mesh.connectivity()[start * npe..(start + count) * npe] {
                let slot = &mut owner[n as usize];
                if *slot == UNOWNED {
                    *slot = s as u32;
                }
            }
        }
        for slot in &mut owner {
            if *slot == UNOWNED {
                *slot = 0;
            }
        }

        let mut owned: Vec<Vec<u32>> = vec![Vec::new(); nshards];
        for (n, &s) in owner.iter().enumerate() {
            owned[s as usize].push(n as u32);
        }

        let mut plan_shards = Vec::with_capacity(nshards);
        let mut touched: Vec<u32> = Vec::new();
        for (s, &(start, count)) in ranges.iter().enumerate() {
            touched.clear();
            touched.extend_from_slice(&mesh.connectivity()[start * npe..(start + count) * npe]);
            touched.sort_unstable();
            touched.dedup();
            let shared_nodes: Vec<u32> = touched
                .iter()
                .copied()
                .filter(|&n| owner[n as usize] != s as u32)
                .collect();
            plan_shards.push(Shard {
                index: s,
                first_element: start,
                num_elements: count,
                owned_nodes: std::mem::take(&mut owned[s]),
                shared_nodes,
                unique_nodes: touched.len(),
                batches: batch_element_range(mesh, start, count, batch_elements.min(count.max(1))),
            });
        }
        Ok(ShardPlan {
            num_elements: ne,
            num_nodes: nn,
            shards: plan_shards,
            owner,
        })
    }

    /// Number of shards (≥ 1, ≤ element count).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Elements of the mesh the plan was built for.
    pub fn num_elements(&self) -> usize {
        self.num_elements
    }

    /// Nodes of the mesh the plan was built for.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The shards, in ascending element order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// The owning shard of every node (`owners()[n]` is the index of the
    /// shard whose `owned_nodes` contain `n`).
    pub fn owners(&self) -> &[u32] {
        &self.owner
    }

    /// Load imbalance of the decomposition: largest shard element count
    /// over the mean (1.0 = perfectly balanced).
    pub fn load_imbalance(&self) -> f64 {
        let max = self
            .shards
            .iter()
            .map(Shard::num_elements)
            .max()
            .unwrap_or(0);
        let mean = self.num_elements as f64 / self.shards.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max as f64 / mean
        }
    }

    /// Total halo size: nodes that appear in some shard's `shared_nodes`
    /// (counted once per sharing shard — the cross-shard reduction
    /// volume).
    pub fn halo_entries(&self) -> usize {
        self.shards.iter().map(|s| s.shared_nodes.len()).sum()
    }

    /// Aggregate DDR bytes read per RK stage over all shards.
    pub fn total_bytes_in(&self) -> usize {
        self.shards.iter().map(Shard::bytes_in).sum()
    }

    /// Aggregate DDR bytes written per RK stage over all shards.
    pub fn total_bytes_out(&self) -> usize {
        self.shards.iter().map(Shard::bytes_out).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::BoxMeshBuilder;
    use proptest::prelude::*;

    #[test]
    fn zero_batch_size_rejected() {
        let mesh = BoxMeshBuilder::tgv_box(3).build().unwrap();
        assert!(partition_elements(&mesh, 0).is_err());
    }

    #[test]
    fn batches_cover_all_elements_without_overlap() {
        let mesh = BoxMeshBuilder::tgv_box(4).build().unwrap();
        let batches = partition_elements(&mesh, 10).unwrap();
        let mut next = 0;
        for b in &batches {
            assert_eq!(b.first_element, next);
            next += b.num_elements;
        }
        assert_eq!(next, mesh.num_elements());
    }

    #[test]
    fn unique_nodes_bounded_by_gather_size() {
        let mesh = BoxMeshBuilder::tgv_box(4).build().unwrap();
        let npe = mesh.nodes_per_element();
        for b in partition_elements(&mesh, 7).unwrap() {
            assert!(b.unique_nodes <= b.num_elements * npe);
            assert!(b.unique_nodes >= npe); // at least one element's nodes
            assert_eq!(b.bytes_in, b.unique_nodes * HexMesh::bytes_per_node());
        }
    }

    #[test]
    fn footprint_peak_shrinks_with_batch_size() {
        let mesh = BoxMeshBuilder::tgv_box(5).build().unwrap();
        let small = streaming_footprint(&mesh, 4).unwrap();
        let large = streaming_footprint(&mesh, 64).unwrap();
        assert!(small.peak_batch_nodes <= large.peak_batch_nodes);
        // Shared nodes between batches are re-read: smaller batches cannot
        // reduce the total input traffic.
        assert!(small.bytes_in >= large.bytes_in);
    }

    #[test]
    fn zero_shards_rejected() {
        let mesh = BoxMeshBuilder::tgv_box(3).build().unwrap();
        assert!(ShardPlan::new(&mesh, 0).is_err());
        assert!(ShardPlan::with_batch(&mesh, 2, 0).is_err());
    }

    #[test]
    fn shard_count_clamps_to_element_count() {
        let mesh = BoxMeshBuilder::tgv_box(3).build().unwrap(); // 27 elements
        let plan = ShardPlan::new(&mesh, 1000).unwrap();
        assert_eq!(plan.num_shards(), 27);
        assert!(plan.shards().iter().all(|s| s.num_elements() == 1));
        assert!((plan.load_imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_shard_owns_everything() {
        let mesh = BoxMeshBuilder::tgv_box(4).build().unwrap();
        let plan = ShardPlan::new(&mesh, 1).unwrap();
        assert_eq!(plan.num_shards(), 1);
        let s = &plan.shards()[0];
        assert_eq!(s.owned_nodes().len(), mesh.num_nodes());
        assert!(s.shared_nodes().is_empty());
        assert_eq!(plan.halo_entries(), 0);
        assert_eq!(s.batches().len(), 1);
        assert_eq!(s.bytes_in(), mesh.num_nodes() * HexMesh::bytes_per_node());
    }

    #[test]
    fn shard_batching_respects_batch_size() {
        let mesh = BoxMeshBuilder::tgv_box(4).build().unwrap(); // 64 elements
        let plan = ShardPlan::with_batch(&mesh, 4, 5).unwrap();
        for s in plan.shards() {
            assert_eq!(s.num_elements(), 16);
            assert_eq!(s.batches().len(), 4); // ceil(16 / 5)
            let covered: usize = s.batches().iter().map(|b| b.num_elements).sum();
            assert_eq!(covered, s.num_elements());
            assert_eq!(s.batches()[0].first_element, s.first_element());
        }
    }

    proptest! {
        /// Shard partitions cover every element exactly once, owned-node
        /// sets are disjoint and complete, halo nodes are owned elsewhere,
        /// and the per-shard traffic accounting matches its batches.
        #[test]
        fn prop_shard_plan_invariants(
            nx in 2usize..6,
            ny in 2usize..6,
            nz in 2usize..6,
            periodic in proptest::bool::ANY,
            shards in 1usize..12,
            batch in 1usize..30,
        ) {
            let mut b = BoxMeshBuilder::new();
            b.elements(nx, ny, nz).periodic(periodic, periodic, periodic);
            let mesh = match b.build() {
                Ok(m) => m,
                // Periodic axes need ≥ 3 elements; skip infeasible combos.
                Err(_) => return Ok(()),
            };
            let plan = ShardPlan::with_batch(&mesh, shards, batch).unwrap();

            // Contiguous ascending coverage of every element exactly once.
            let mut next = 0;
            for s in plan.shards() {
                prop_assert_eq!(s.first_element(), next);
                prop_assert!(s.num_elements() > 0);
                next += s.num_elements();
            }
            prop_assert_eq!(next, mesh.num_elements());

            // Owned sets: disjoint, complete, and consistent with owners().
            let mut seen = vec![false; mesh.num_nodes()];
            for s in plan.shards() {
                for &n in s.owned_nodes() {
                    prop_assert!(!seen[n as usize], "node {} owned twice", n);
                    seen[n as usize] = true;
                    prop_assert_eq!(plan.owners()[n as usize] as usize, s.index());
                }
            }
            prop_assert!(seen.iter().all(|&v| v), "owned sets incomplete");

            // Shared nodes are owned by a *lower* shard (first-toucher).
            for s in plan.shards() {
                for &n in s.shared_nodes() {
                    prop_assert!((plan.owners()[n as usize] as usize) < s.index());
                }
                // Traffic matches the shard's batches.
                let bin: usize = s.batches().iter().map(|b| b.bytes_in).sum();
                prop_assert_eq!(s.bytes_in(), bin);
                let total: usize = s.batches().iter().map(|b| b.num_elements).sum();
                prop_assert_eq!(total, s.num_elements());
            }
            prop_assert!(plan.load_imbalance() >= 1.0 - 1e-12);
        }

        #[test]
        fn prop_batch_invariants(n in 3usize..6, batch in 1usize..40) {
            let mesh = BoxMeshBuilder::tgv_box(n).build().unwrap();
            let batches = partition_elements(&mesh, batch).unwrap();
            let total: usize = batches.iter().map(|b| b.num_elements).sum();
            prop_assert_eq!(total, mesh.num_elements());
            for b in &batches {
                prop_assert!(b.num_elements <= batch);
                prop_assert!(b.total_bytes() == b.bytes_in + b.bytes_out);
            }
        }
    }
}
