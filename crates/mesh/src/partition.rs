//! Element batching for the accelerator's streaming pipeline.
//!
//! The paper's Load-Element task transfers element data "in batches from
//! off-chip memory to the BRAMs and URAMs within the Programmable Logic"
//! (§III-A, step 1). A batch must fit in on-chip memory; this module
//! partitions the element list into batches and reports the on-chip
//! footprint and DDR traffic of each, which the platform model uses to
//! size buffers and estimate transfer time.

use crate::hex::HexMesh;
use crate::MeshError;

/// A contiguous range of elements streamed as one unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementBatch {
    /// First element id in the batch.
    pub first_element: usize,
    /// Number of elements.
    pub num_elements: usize,
    /// Number of *unique* nodes touched by the batch (gather footprint).
    pub unique_nodes: usize,
    /// Bytes read from DDR for the batch (unique node payloads).
    pub bytes_in: usize,
    /// Bytes written back to DDR (per-node residual contributions).
    pub bytes_out: usize,
}

impl ElementBatch {
    /// Total DDR traffic of the batch.
    pub fn total_bytes(&self) -> usize {
        self.bytes_in + self.bytes_out
    }
}

/// Splits the mesh's elements into batches of at most `batch_elements`.
///
/// # Errors
///
/// [`MeshError::InvalidParameter`] if `batch_elements == 0`.
///
/// # Example
///
/// ```
/// use fem_mesh::{generator::BoxMeshBuilder, partition::partition_elements};
/// let mesh = BoxMeshBuilder::tgv_box(4).build().unwrap();
/// let batches = partition_elements(&mesh, 16).unwrap();
/// assert_eq!(batches.len(), 4);
/// let total: usize = batches.iter().map(|b| b.num_elements).sum();
/// assert_eq!(total, mesh.num_elements());
/// ```
pub fn partition_elements(
    mesh: &HexMesh,
    batch_elements: usize,
) -> Result<Vec<ElementBatch>, MeshError> {
    if batch_elements == 0 {
        return Err(MeshError::InvalidParameter(
            "batch size must be positive".into(),
        ));
    }
    let npe = mesh.nodes_per_element();
    let bytes_per_node = HexMesh::bytes_per_node();
    // Residual write-back: 5 conserved-field contributions per node.
    let bytes_out_per_node = 5 * std::mem::size_of::<f64>();
    let num_elems = mesh.num_elements();
    let mut batches = Vec::with_capacity(num_elems.div_ceil(batch_elements));
    let mut scratch: Vec<u32> = Vec::with_capacity(batch_elements * npe);
    let mut first = 0;
    while first < num_elems {
        let count = batch_elements.min(num_elems - first);
        scratch.clear();
        scratch.extend_from_slice(&mesh.connectivity()[first * npe..(first + count) * npe]);
        scratch.sort_unstable();
        scratch.dedup();
        let unique = scratch.len();
        batches.push(ElementBatch {
            first_element: first,
            num_elements: count,
            unique_nodes: unique,
            bytes_in: unique * bytes_per_node,
            bytes_out: unique * bytes_out_per_node,
        });
        first += count;
    }
    Ok(batches)
}

/// Whole-mesh streaming summary for one RK stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamingFootprint {
    /// Total bytes read from DDR per stage.
    pub bytes_in: usize,
    /// Total bytes written to DDR per stage.
    pub bytes_out: usize,
    /// Peak unique-node footprint of any batch (on-chip buffer sizing).
    pub peak_batch_nodes: usize,
}

/// Computes the aggregate streaming footprint for a given batch size.
///
/// # Errors
///
/// Propagates [`MeshError`] from [`partition_elements`].
pub fn streaming_footprint(
    mesh: &HexMesh,
    batch_elements: usize,
) -> Result<StreamingFootprint, MeshError> {
    let batches = partition_elements(mesh, batch_elements)?;
    Ok(StreamingFootprint {
        bytes_in: batches.iter().map(|b| b.bytes_in).sum(),
        bytes_out: batches.iter().map(|b| b.bytes_out).sum(),
        peak_batch_nodes: batches.iter().map(|b| b.unique_nodes).max().unwrap_or(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::BoxMeshBuilder;
    use proptest::prelude::*;

    #[test]
    fn zero_batch_size_rejected() {
        let mesh = BoxMeshBuilder::tgv_box(3).build().unwrap();
        assert!(partition_elements(&mesh, 0).is_err());
    }

    #[test]
    fn batches_cover_all_elements_without_overlap() {
        let mesh = BoxMeshBuilder::tgv_box(4).build().unwrap();
        let batches = partition_elements(&mesh, 10).unwrap();
        let mut next = 0;
        for b in &batches {
            assert_eq!(b.first_element, next);
            next += b.num_elements;
        }
        assert_eq!(next, mesh.num_elements());
    }

    #[test]
    fn unique_nodes_bounded_by_gather_size() {
        let mesh = BoxMeshBuilder::tgv_box(4).build().unwrap();
        let npe = mesh.nodes_per_element();
        for b in partition_elements(&mesh, 7).unwrap() {
            assert!(b.unique_nodes <= b.num_elements * npe);
            assert!(b.unique_nodes >= npe); // at least one element's nodes
            assert_eq!(b.bytes_in, b.unique_nodes * HexMesh::bytes_per_node());
        }
    }

    #[test]
    fn footprint_peak_shrinks_with_batch_size() {
        let mesh = BoxMeshBuilder::tgv_box(5).build().unwrap();
        let small = streaming_footprint(&mesh, 4).unwrap();
        let large = streaming_footprint(&mesh, 64).unwrap();
        assert!(small.peak_batch_nodes <= large.peak_batch_nodes);
        // Shared nodes between batches are re-read: smaller batches cannot
        // reduce the total input traffic.
        assert!(small.bytes_in >= large.bytes_in);
    }

    proptest! {
        #[test]
        fn prop_batch_invariants(n in 3usize..6, batch in 1usize..40) {
            let mesh = BoxMeshBuilder::tgv_box(n).build().unwrap();
            let batches = partition_elements(&mesh, batch).unwrap();
            let total: usize = batches.iter().map(|b| b.num_elements).sum();
            prop_assert_eq!(total, mesh.num_elements());
            for b in &batches {
                prop_assert!(b.num_elements <= batch);
                prop_assert!(b.total_bytes() == b.bytes_in + b.bytes_out);
            }
        }
    }
}
