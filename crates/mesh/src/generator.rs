//! Mesh generation: structured boxes of hexahedral spectral elements.
//!
//! The paper's evaluation sweeps Taylor-Green Vortex meshes from 5K to 4.2M
//! nodes (Fig 5). [`BoxMeshBuilder`] generates those meshes: a periodic
//! `[0, 2π]³` box subdivided into `n³` hex elements, with GLL node layouts
//! for any polynomial order. Non-periodic (walled) boxes with boundary tags
//! are supported for the wall-bounded example flows.

use crate::hex::{BoundaryTag, HexMesh};
use crate::MeshError;
use fem_numerics::linalg::Vec3;
use rayon::prelude::*;

/// Builder for structured boxes of hexahedral elements.
///
/// # Example
///
/// ```
/// use fem_mesh::generator::BoxMeshBuilder;
///
/// // Walled (non-periodic) unit box, 2×3×4 elements, quadratic elements.
/// let mesh = BoxMeshBuilder::new()
///     .elements(2, 3, 4)
///     .order(2)
///     .origin(0.0, 0.0, 0.0)
///     .extent(1.0, 1.0, 1.0)
///     .periodic(false, false, false)
///     .build()
///     .unwrap();
/// assert_eq!(mesh.num_elements(), 24);
/// assert_eq!(mesh.num_nodes(), 5 * 7 * 9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BoxMeshBuilder {
    nx: usize,
    ny: usize,
    nz: usize,
    order: usize,
    origin: Vec3,
    extent: Vec3,
    periodic: [bool; 3],
}

impl Default for BoxMeshBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl BoxMeshBuilder {
    /// A periodic `[0, 2π]³` box with 4³ trilinear elements (TGV defaults).
    pub fn new() -> Self {
        BoxMeshBuilder {
            nx: 4,
            ny: 4,
            nz: 4,
            order: 1,
            origin: Vec3::ZERO,
            extent: Vec3::new(
                std::f64::consts::TAU,
                std::f64::consts::TAU,
                std::f64::consts::TAU,
            ),
            periodic: [true, true, true],
        }
    }

    /// The canonical Taylor-Green Vortex box: periodic `[0, 2π]³` with
    /// `n` trilinear elements per axis (`n³` nodes).
    pub fn tgv_box(n: usize) -> Self {
        let mut b = Self::new();
        b.nx = n;
        b.ny = n;
        b.nz = n;
        b
    }

    /// A TGV box sized to approximately `target_nodes` total nodes — used
    /// for the paper's mesh-size sweep (5K, 275K, 1.4M, … nodes).
    ///
    /// # Example
    ///
    /// ```
    /// use fem_mesh::generator::BoxMeshBuilder;
    /// let b = BoxMeshBuilder::with_node_budget(5_000);
    /// let n = b.node_count();
    /// assert!(n >= 4_000 && n <= 6_200, "{n}");
    /// ```
    pub fn with_node_budget(target_nodes: usize) -> Self {
        let n = (target_nodes as f64).cbrt().round().max(3.0) as usize;
        Self::tgv_box(n)
    }

    /// Sets the number of elements per axis.
    pub fn elements(&mut self, nx: usize, ny: usize, nz: usize) -> &mut Self {
        self.nx = nx;
        self.ny = ny;
        self.nz = nz;
        self
    }

    /// Sets the polynomial order (nodes per element edge = order + 1).
    pub fn order(&mut self, order: usize) -> &mut Self {
        self.order = order;
        self
    }

    /// Sets the domain minimum corner.
    pub fn origin(&mut self, x: f64, y: f64, z: f64) -> &mut Self {
        self.origin = Vec3::new(x, y, z);
        self
    }

    /// Sets the domain side lengths.
    pub fn extent(&mut self, lx: f64, ly: f64, lz: f64) -> &mut Self {
        self.extent = Vec3::new(lx, ly, lz);
        self
    }

    /// Sets per-axis periodicity.
    pub fn periodic(&mut self, x: bool, y: bool, z: bool) -> &mut Self {
        self.periodic = [x, y, z];
        self
    }

    /// Nodes per axis given the current configuration.
    fn nodes_per_axis(&self) -> [usize; 3] {
        let p = self.order;
        let count = |n: usize, per: bool| if per { n * p } else { n * p + 1 };
        [
            count(self.nx, self.periodic[0]),
            count(self.ny, self.periodic[1]),
            count(self.nz, self.periodic[2]),
        ]
    }

    /// Predicted total node count without building the mesh.
    pub fn node_count(&self) -> usize {
        let [a, b, c] = self.nodes_per_axis();
        a * b * c
    }

    /// Predicted total element count without building the mesh.
    pub fn element_count(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Generates the mesh.
    ///
    /// # Errors
    ///
    /// [`MeshError::InvalidParameter`] for a zero element count, zero order,
    /// or non-positive extent.
    pub fn build(&self) -> Result<HexMesh, MeshError> {
        if self.nx == 0 || self.ny == 0 || self.nz == 0 {
            return Err(MeshError::InvalidParameter(
                "element counts must be positive".into(),
            ));
        }
        if self.order == 0 {
            return Err(MeshError::InvalidParameter("order must be ≥ 1".into()));
        }
        if self.extent.x <= 0.0 || self.extent.y <= 0.0 || self.extent.z <= 0.0 {
            return Err(MeshError::InvalidParameter(
                "domain extent must be positive".into(),
            ));
        }
        for (axis, &per) in self.periodic.iter().enumerate() {
            let n = [self.nx, self.ny, self.nz][axis];
            // With fewer than 3 elements an element spans ≥ half the domain
            // and the nearest-image unwrapping in `HexMesh::element_coords`
            // becomes ambiguous.
            if per && n < 3 {
                return Err(MeshError::InvalidParameter(format!(
                    "periodic axis {axis} needs at least 3 elements, got {n}"
                )));
            }
        }
        let p = self.order;
        let [ndx, ndy, ndz] = self.nodes_per_axis();
        let total_nodes = ndx * ndy * ndz;
        // Node spacing (uniform sub-grid; GLL clustering is applied in
        // reference space by the basis, physical nodes are equispaced for
        // order 1 and mapped GLL points for higher orders).
        let gll = fem_numerics::quadrature::GllRule::new(p + 1)?;
        // Physical offset of local node i within an element, per unit cell.
        let local_frac: Vec<f64> = gll.points().iter().map(|&x| (x + 1.0) / 2.0).collect();

        let hx = self.extent.x / self.nx as f64;
        let hy = self.extent.y / self.ny as f64;
        let hz = self.extent.z / self.nz as f64;

        // Coordinates: global grid index (gi, gj, gk) → element + local part.
        let coord_1d = |g: usize, h: f64, orig: f64, frac: &[f64]| -> f64 {
            let e = g / p;
            let l = g % p;
            orig + e as f64 * h + frac[l] * h
        };
        let origin = self.origin;
        let coords: Vec<Vec3> = (0..total_nodes)
            .into_par_iter()
            .map(|flat| {
                let gi = flat % ndx;
                let gj = (flat / ndx) % ndy;
                let gk = flat / (ndx * ndy);
                Vec3::new(
                    coord_1d(gi, hx, origin.x, &local_frac),
                    coord_1d(gj, hy, origin.y, &local_frac),
                    coord_1d(gk, hz, origin.z, &local_frac),
                )
            })
            .collect();

        // Connectivity.
        let npe = (p + 1).pow(3);
        let num_elems = self.element_count();
        let periodic = self.periodic;
        let wrap = |g: usize, nd: usize, per: bool| if per { g % nd } else { g };
        let mut connectivity = Vec::with_capacity(num_elems * npe);
        for ez in 0..self.nz {
            for ey in 0..self.ny {
                for ex in 0..self.nx {
                    for k in 0..=p {
                        for j in 0..=p {
                            for i in 0..=p {
                                let gi = wrap(ex * p + i, ndx, periodic[0]);
                                let gj = wrap(ey * p + j, ndy, periodic[1]);
                                let gk = wrap(ez * p + k, ndz, periodic[2]);
                                let flat = gi + ndx * (gj + ndy * gk);
                                connectivity.push(flat as u32);
                            }
                        }
                    }
                }
            }
        }

        // Boundary tags on non-periodic faces.
        let mut tags = Vec::new();
        if periodic.iter().any(|&b| !b) {
            tags = vec![BoundaryTag::INTERIOR; total_nodes];
            for (flat, tag) in tags.iter_mut().enumerate() {
                let gi = flat % ndx;
                let gj = (flat / ndx) % ndy;
                let gk = flat / (ndx * ndy);
                let mut t = BoundaryTag::INTERIOR;
                if !periodic[0] {
                    if gi == 0 {
                        t = t.union(BoundaryTag::X_MIN);
                    }
                    if gi == ndx - 1 {
                        t = t.union(BoundaryTag::X_MAX);
                    }
                }
                if !periodic[1] {
                    if gj == 0 {
                        t = t.union(BoundaryTag::Y_MIN);
                    }
                    if gj == ndy - 1 {
                        t = t.union(BoundaryTag::Y_MAX);
                    }
                }
                if !periodic[2] {
                    if gk == 0 {
                        t = t.union(BoundaryTag::Z_MIN);
                    }
                    if gk == ndz - 1 {
                        t = t.union(BoundaryTag::Z_MAX);
                    }
                }
                *tag = t;
            }
        }

        let ext = |axis: usize| -> Option<f64> {
            if periodic[axis] {
                Some(self.extent.component(axis))
            } else {
                None
            }
        };
        HexMesh::new(
            self.order,
            coords,
            connectivity,
            tags,
            [ext(0), ext(1), ext(2)],
        )
    }
}

/// The mesh-size sweep of the paper's Fig 5, as (label, target node count).
///
/// `1.4M` means 1.4 million nodes, etc. Use with
/// [`BoxMeshBuilder::with_node_budget`] to regenerate the x-axis of Fig 5.
pub const FIG5_MESH_SIZES: [(&str, usize); 6] = [
    ("5K", 5_000),
    ("275K", 275_000),
    ("1.4M", 1_400_000),
    ("2.1M", 2_100_000),
    ("3M", 3_000_000),
    ("4.2M", 4_200_000),
];

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn tgv_box_counts() {
        for n in [3, 5, 8] {
            let b = BoxMeshBuilder::tgv_box(n);
            let mesh = b.build().unwrap();
            assert_eq!(mesh.num_elements(), n * n * n);
            assert_eq!(mesh.num_nodes(), n * n * n);
            assert_eq!(mesh.num_nodes(), b.node_count());
        }
    }

    #[test]
    fn walled_box_counts_and_tags() {
        let mesh = BoxMeshBuilder::new()
            .elements(3, 3, 3)
            .periodic(false, false, false)
            .extent(1.0, 1.0, 1.0)
            .build()
            .unwrap();
        assert_eq!(mesh.num_nodes(), 64);
        // Boundary of a 4×4×4 grid: 64 - 2³ interior = 56 nodes.
        assert_eq!(mesh.boundary_nodes().len(), 56);
    }

    #[test]
    fn corner_and_edge_nodes_get_deterministic_union_tags() {
        // A fully non-periodic box must tag corner nodes with all three
        // incident faces and edge nodes with exactly two — the
        // single-valued tags `DirichletBc::from_tagged_nodes` relies on
        // to visit every boundary node exactly once.
        let build = || {
            BoxMeshBuilder::new()
                .elements(3, 3, 3)
                .periodic(false, false, false)
                .extent(1.0, 1.0, 1.0)
                .build()
                .unwrap()
        };
        let mesh = build();
        // The origin corner carries the min-face union.
        let origin_tag = mesh.boundary_tag(0);
        assert_eq!(
            origin_tag,
            BoundaryTag::X_MIN
                .union(BoundaryTag::Y_MIN)
                .union(BoundaryTag::Z_MIN)
        );
        // Census by number of incident faces: a 4×4×4 node grid has 8
        // corners (3 faces), 12 edges × 2 interior nodes (2 faces), and
        // 6 faces × 4 interior nodes (1 face).
        let mut by_faces = [0usize; 4];
        for n in 0..mesh.num_nodes() {
            let t = mesh.boundary_tag(n);
            let faces = (0..6).filter(|b| t.contains(BoundaryTag(1 << b))).count();
            by_faces[faces] += 1;
        }
        assert_eq!(by_faces, [8, 24, 24, 8], "interior/face/edge/corner census");
        // Deterministic: an identical builder yields identical tags.
        let again = build();
        for n in 0..mesh.num_nodes() {
            assert_eq!(mesh.boundary_tag(n), again.boundary_tag(n), "node {n}");
        }
        // And the boundary-node list covers each tagged node exactly once.
        let nodes = mesh.boundary_nodes();
        let mut sorted = nodes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), nodes.len(), "duplicate boundary node");
        assert_eq!(nodes.len(), 56);
    }

    #[test]
    fn mixed_periodicity() {
        // Channel-like: periodic in x, walls in y and z.
        let mesh = BoxMeshBuilder::new()
            .elements(4, 3, 3)
            .periodic(true, false, false)
            .build()
            .unwrap();
        assert_eq!(mesh.num_nodes(), 4 * 4 * 4);
        for &n in &mesh.boundary_nodes() {
            let t = mesh.boundary_tag(n as usize);
            assert!(!t.contains(BoundaryTag::X_MIN) && !t.contains(BoundaryTag::X_MAX));
        }
    }

    #[test]
    fn high_order_node_count() {
        let b = {
            let mut b = BoxMeshBuilder::tgv_box(3);
            b.order(2);
            b
        };
        let mesh = b.build().unwrap();
        // Periodic: (3*2)³ = 216 nodes, 27 elements of 27 nodes.
        assert_eq!(mesh.num_nodes(), 216);
        assert_eq!(mesh.num_elements(), 27);
        assert_eq!(mesh.nodes_per_element(), 27);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(BoxMeshBuilder::new().elements(0, 1, 1).build().is_err());
        assert!(BoxMeshBuilder::new().order(0).build().is_err());
        assert!(BoxMeshBuilder::new()
            .extent(-1.0, 1.0, 1.0)
            .build()
            .is_err());
        // Periodic axes with fewer than 3 elements are rejected (nearest-
        // image unwrapping would be ambiguous).
        assert!(BoxMeshBuilder::new().elements(1, 4, 4).build().is_err());
        assert!(BoxMeshBuilder::new().elements(2, 4, 4).build().is_err());
    }

    #[test]
    fn fig5_budgets_are_close() {
        for (label, target) in FIG5_MESH_SIZES {
            let b = BoxMeshBuilder::with_node_budget(target);
            let got = b.node_count();
            let rel = (got as f64 - target as f64).abs() / target as f64;
            assert!(rel < 0.12, "{label}: target {target}, got {got}");
        }
    }

    #[test]
    fn each_node_appears_in_eight_elements_when_periodic_trilinear() {
        let mesh = BoxMeshBuilder::tgv_box(4).build().unwrap();
        let mut count = vec![0usize; mesh.num_nodes()];
        for &n in mesh.connectivity() {
            count[n as usize] += 1;
        }
        // Fully periodic trilinear grid: every node belongs to 8 elements.
        assert!(count.iter().all(|&c| c == 8));
    }

    proptest! {
        #[test]
        fn prop_builder_counts_match_built_mesh(
            nx in 3usize..6,
            ny in 3usize..6,
            nz in 3usize..6,
            order in 1usize..3,
            per in proptest::collection::vec(proptest::bool::ANY, 3),
        ) {
            let mut b = BoxMeshBuilder::new();
            b.elements(nx, ny, nz).order(order).periodic(per[0], per[1], per[2]);
            let mesh = b.build().unwrap();
            prop_assert_eq!(mesh.num_nodes(), b.node_count());
            prop_assert_eq!(mesh.num_elements(), b.element_count());
        }

        #[test]
        fn prop_coordinates_inside_domain(
            n in 3usize..6,
            order in 1usize..3,
        ) {
            let mut b = BoxMeshBuilder::tgv_box(n);
            b.order(order);
            let mesh = b.build().unwrap();
            let tau = std::f64::consts::TAU;
            for c in mesh.coords() {
                prop_assert!(c.x >= -1e-12 && c.x < tau);
                prop_assert!(c.y >= -1e-12 && c.y < tau);
                prop_assert!(c.z >= -1e-12 && c.z < tau);
            }
        }
    }
}
