//! The unstructured hexahedral mesh container.
//!
//! A [`HexMesh`] stores node coordinates and element→node connectivity for
//! hexahedral spectral elements of arbitrary polynomial order. Periodic
//! domains (the Taylor-Green Vortex box) are handled by *wrapped*
//! coordinates plus nearest-image unwrapping when an element's physical
//! geometry is needed.

use crate::MeshError;
use fem_numerics::linalg::{Mat3, Vec3};
use fem_numerics::tensor::HexBasis;

/// Bit flags marking which boundary face(s) a node lies on.
///
/// Generators set these; solvers use them for Dirichlet conditions.
/// A node can sit on up to three faces (a box corner).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BoundaryTag(pub u8);

impl BoundaryTag {
    /// Not on any boundary.
    pub const INTERIOR: BoundaryTag = BoundaryTag(0);
    /// Face x = min.
    pub const X_MIN: BoundaryTag = BoundaryTag(1);
    /// Face x = max.
    pub const X_MAX: BoundaryTag = BoundaryTag(2);
    /// Face y = min.
    pub const Y_MIN: BoundaryTag = BoundaryTag(4);
    /// Face y = max.
    pub const Y_MAX: BoundaryTag = BoundaryTag(8);
    /// Face z = min.
    pub const Z_MIN: BoundaryTag = BoundaryTag(16);
    /// Face z = max.
    pub const Z_MAX: BoundaryTag = BoundaryTag(32);

    /// Whether any boundary bit is set.
    pub fn is_boundary(self) -> bool {
        self.0 != 0
    }

    /// Whether all bits of `other` are set in `self`.
    pub fn contains(self, other: BoundaryTag) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two tags.
    pub fn union(self, other: BoundaryTag) -> BoundaryTag {
        BoundaryTag(self.0 | other.0)
    }
}

/// Per-element, per-node geometric factors needed by FEM kernels.
///
/// For each element node `q`: the transposed inverse Jacobian
/// `inv_jt[q]` (maps reference gradients to physical gradients) and the
/// quadrature factor `det_w[q] = det(J_q) · w_q` (volume scaling times GLL
/// weight). Reused across elements to avoid per-element allocation.
#[derive(Debug, Clone, Default)]
pub struct ElementGeometry {
    /// `J⁻ᵀ` at each element node.
    pub inv_jt: Vec<Mat3>,
    /// `det(J) · w` at each element node.
    pub det_w: Vec<f64>,
}

impl ElementGeometry {
    /// Creates storage for an element with `nodes_per_element` nodes.
    pub fn with_capacity(nodes_per_element: usize) -> Self {
        ElementGeometry {
            inv_jt: vec![Mat3::ZERO; nodes_per_element],
            det_w: vec![0.0; nodes_per_element],
        }
    }

    /// Borrowed view of the factors, in the form the FEM kernels consume.
    pub fn view(&self) -> GeomRef<'_> {
        GeomRef {
            inv_jt: &self.inv_jt,
            det_w: &self.det_w,
        }
    }
}

/// Borrowed per-element geometric factors: the common currency between
/// on-the-fly geometry ([`ElementGeometry::view`]) and the precomputed
/// structure-of-arrays cache ([`crate::geometry::GeometryCache::element`]).
///
/// Both slices have one entry per element node.
#[derive(Debug, Clone, Copy)]
pub struct GeomRef<'a> {
    /// `J⁻ᵀ` at each element node.
    pub inv_jt: &'a [Mat3],
    /// `det(J) · w` at each element node.
    pub det_w: &'a [f64],
}

/// An unstructured mesh of hexahedral spectral elements.
///
/// # Example
///
/// ```
/// use fem_mesh::generator::BoxMeshBuilder;
/// let mesh = BoxMeshBuilder::tgv_box(3).build().unwrap();
/// assert_eq!(mesh.nodes_per_element(), 8);
/// let nodes = mesh.element_nodes(0);
/// assert_eq!(nodes.len(), 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HexMesh {
    order: usize,
    coords: Vec<Vec3>,
    connectivity: Vec<u32>,
    boundary_tags: Vec<BoundaryTag>,
    /// Domain extent per axis for periodic axes (`None` = not periodic).
    periodic_extent: [Option<f64>; 3],
}

impl HexMesh {
    /// Builds a mesh from raw parts and validates connectivity.
    ///
    /// `boundary_tags` may be empty (all nodes treated as interior) or one
    /// tag per node.
    ///
    /// # Errors
    ///
    /// * [`MeshError::RaggedConnectivity`] if `connectivity.len()` is not a
    ///   multiple of `(order+1)³`.
    /// * [`MeshError::NodeIndexOutOfRange`] if an element references a
    ///   missing node.
    /// * [`MeshError::InvalidParameter`] if `order == 0`, a periodic extent
    ///   is non-positive, or the tag table has the wrong length.
    pub fn new(
        order: usize,
        coords: Vec<Vec3>,
        connectivity: Vec<u32>,
        boundary_tags: Vec<BoundaryTag>,
        periodic_extent: [Option<f64>; 3],
    ) -> Result<Self, MeshError> {
        if order == 0 {
            return Err(MeshError::InvalidParameter(
                "polynomial order must be at least 1".into(),
            ));
        }
        for ext in periodic_extent.iter().flatten() {
            if *ext <= 0.0 {
                return Err(MeshError::InvalidParameter(format!(
                    "periodic extent must be positive, got {ext}"
                )));
            }
        }
        let stride = (order + 1).pow(3);
        if !connectivity.len().is_multiple_of(stride) {
            return Err(MeshError::RaggedConnectivity {
                len: connectivity.len(),
                stride,
            });
        }
        if !boundary_tags.is_empty() && boundary_tags.len() != coords.len() {
            return Err(MeshError::InvalidParameter(format!(
                "boundary tag table has {} entries for {} nodes",
                boundary_tags.len(),
                coords.len()
            )));
        }
        let num_nodes = coords.len();
        for (pos, &n) in connectivity.iter().enumerate() {
            if n as usize >= num_nodes {
                return Err(MeshError::NodeIndexOutOfRange {
                    element: pos / stride,
                    node: n,
                    num_nodes,
                });
            }
        }
        Ok(HexMesh {
            order,
            coords,
            connectivity,
            boundary_tags,
            periodic_extent,
        })
    }

    /// Polynomial order of the elements.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.coords.len()
    }

    /// Number of elements.
    pub fn num_elements(&self) -> usize {
        self.connectivity.len() / self.nodes_per_element()
    }

    /// Nodes per element, `(order+1)³`.
    pub fn nodes_per_element(&self) -> usize {
        (self.order + 1).pow(3)
    }

    /// Node coordinates table.
    pub fn coords(&self) -> &[Vec3] {
        &self.coords
    }

    /// Raw connectivity, stride [`nodes_per_element`](Self::nodes_per_element).
    pub fn connectivity(&self) -> &[u32] {
        &self.connectivity
    }

    /// Global node ids of element `e` in lexicographic (i,j,k) order.
    ///
    /// # Panics
    ///
    /// Panics if `e >= num_elements()`.
    pub fn element_nodes(&self, e: usize) -> &[u32] {
        let s = self.nodes_per_element();
        &self.connectivity[e * s..(e + 1) * s]
    }

    /// Periodic extent per axis (`None` for walls).
    pub fn periodic_extent(&self) -> [Option<f64>; 3] {
        self.periodic_extent
    }

    /// Boundary tag of node `n` ([`BoundaryTag::INTERIOR`] when the mesh has
    /// no tag table).
    pub fn boundary_tag(&self, n: usize) -> BoundaryTag {
        self.boundary_tags
            .get(n)
            .copied()
            .unwrap_or(BoundaryTag::INTERIOR)
    }

    /// Ids of all nodes with a non-trivial boundary tag, in ascending
    /// order with each node listed exactly once — consumers like
    /// `DirichletBc::from_tagged_nodes` rely on this to visit every
    /// boundary node once (corner/edge nodes carry a multi-face union
    /// tag rather than appearing per face).
    pub fn boundary_nodes(&self) -> Vec<u32> {
        self.boundary_tags
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_boundary())
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Writes the *unwrapped* physical coordinates of element `e` into
    /// `out` (length `nodes_per_element()`).
    ///
    /// On periodic axes, nodes are shifted by ± the domain extent so the
    /// element is geometrically contiguous around its first node (nearest
    /// image convention) — required for elements that straddle the
    /// periodic seam. Elements must span *less than half* the periodic
    /// extent on every periodic axis or the nearest image is ambiguous
    /// (the box generator enforces ≥ 3 elements per periodic axis).
    ///
    /// # Panics
    ///
    /// Panics if `out` has the wrong length or `e` is out of range.
    pub fn element_coords(&self, e: usize, out: &mut [Vec3]) {
        let nodes = self.element_nodes(e);
        assert_eq!(out.len(), nodes.len(), "output length");
        let anchor = self.coords[nodes[0] as usize];
        for (slot, &n) in out.iter_mut().zip(nodes) {
            let mut p = self.coords[n as usize];
            for (axis, ext) in self.periodic_extent.iter().enumerate() {
                if let Some(len) = ext {
                    let a = anchor.component(axis);
                    let mut v = p.component(axis);
                    if v - a > len / 2.0 {
                        v -= len;
                    } else if a - v > len / 2.0 {
                        v += len;
                    }
                    match axis {
                        0 => p.x = v,
                        1 => p.y = v,
                        _ => p.z = v,
                    }
                }
            }
            *slot = p;
        }
    }

    /// Computes per-node geometric factors of element `e` into `geom`.
    ///
    /// The Jacobian at each node is assembled from the reference gradients
    /// of the coordinate fields; `geom.det_w[q]` combines `det(J)` with the
    /// 3D GLL weight of node `q`.
    ///
    /// # Errors
    ///
    /// [`MeshError::InvertedElement`] if any nodal Jacobian determinant is
    /// non-positive.
    ///
    /// # Panics
    ///
    /// Panics if `basis.order() != self.order()` or if `geom`/`scratch`
    /// were not sized with [`GeometryScratch::new`].
    pub fn fill_element_geometry(
        &self,
        e: usize,
        basis: &HexBasis,
        scratch: &mut GeometryScratch,
        geom: &mut ElementGeometry,
    ) -> Result<(), MeshError> {
        assert_eq!(basis.order(), self.order, "basis order mismatch");
        let nn = self.nodes_per_element();
        assert_eq!(geom.inv_jt.len(), nn, "geometry storage size");
        self.element_coords(e, &mut scratch.coords);
        for q in 0..nn {
            scratch.x[q] = scratch.coords[q].x;
            scratch.y[q] = scratch.coords[q].y;
            scratch.z[q] = scratch.coords[q].z;
        }
        basis.reference_gradient(&scratch.x, &mut scratch.gx);
        basis.reference_gradient(&scratch.y, &mut scratch.gy);
        basis.reference_gradient(&scratch.z, &mut scratch.gz);
        let n = basis.nodes_per_dim();
        for q in 0..nn {
            // J[r][c] = ∂x_r/∂ξ_c
            let j = Mat3::from_rows(scratch.gx[q], scratch.gy[q], scratch.gz[q]);
            let det = j.det();
            if det <= 0.0 {
                return Err(MeshError::InvertedElement { element: e, det });
            }
            let inv = j
                .inverse()
                .expect("positive determinant implies invertibility");
            geom.inv_jt[q] = inv.transpose();
            let i = q % n;
            let jj = (q / n) % n;
            let k = q / (n * n);
            geom.det_w[q] = det * basis.weight_3d(i, jj, k);
        }
        Ok(())
    }

    /// Maximum over elements of `max_node_id - min_node_id` — the
    /// connectivity bandwidth that node reordering tries to minimize.
    pub fn bandwidth(&self) -> usize {
        let s = self.nodes_per_element();
        (0..self.num_elements())
            .map(|e| {
                let nodes = &self.connectivity[e * s..(e + 1) * s];
                let min = nodes.iter().min().copied().unwrap_or(0);
                let max = nodes.iter().max().copied().unwrap_or(0);
                (max - min) as usize
            })
            .max()
            .unwrap_or(0)
    }

    /// Node-to-node adjacency lists (nodes sharing an element), sorted and
    /// deduplicated. Used by reordering and by the CPU cache model.
    pub fn node_adjacency(&self) -> Vec<Vec<u32>> {
        let mut adj = vec![Vec::new(); self.num_nodes()];
        let s = self.nodes_per_element();
        for e in 0..self.num_elements() {
            let nodes = &self.connectivity[e * s..(e + 1) * s];
            for &a in nodes {
                for &b in nodes {
                    if a != b {
                        adj[a as usize].push(b);
                    }
                }
            }
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        adj
    }

    /// Renumbers nodes with `perm`, where `perm[old] = new`. Returns the
    /// renumbered mesh.
    ///
    /// # Errors
    ///
    /// [`MeshError::InvalidParameter`] if `perm` is not a permutation of
    /// `0..num_nodes()`.
    pub fn renumber_nodes(&self, perm: &[u32]) -> Result<HexMesh, MeshError> {
        let n = self.num_nodes();
        if perm.len() != n {
            return Err(MeshError::InvalidParameter(format!(
                "permutation has {} entries for {} nodes",
                perm.len(),
                n
            )));
        }
        let mut seen = vec![false; n];
        for &p in perm {
            let idx = p as usize;
            if idx >= n || seen[idx] {
                return Err(MeshError::InvalidParameter(
                    "not a valid permutation".into(),
                ));
            }
            seen[idx] = true;
        }
        let mut coords = vec![Vec3::ZERO; n];
        for (old, &new) in perm.iter().enumerate() {
            coords[new as usize] = self.coords[old];
        }
        let mut tags = Vec::new();
        if !self.boundary_tags.is_empty() {
            tags = vec![BoundaryTag::INTERIOR; n];
            for (old, &new) in perm.iter().enumerate() {
                tags[new as usize] = self.boundary_tags[old];
            }
        }
        let connectivity = self
            .connectivity
            .iter()
            .map(|&c| perm[c as usize])
            .collect();
        HexMesh::new(self.order, coords, connectivity, tags, self.periodic_extent)
    }

    /// Approximate memory the paper's accelerator must stream per node per
    /// RK stage, in bytes: the five conserved fields plus primitives
    /// (u, T, p) and viscosity — the arrays shown in the paper's Fig 4
    /// (`rho`, `Tem`, `mu_fluid`, `E`, …), at f64 width.
    pub fn bytes_per_node() -> usize {
        // rho, mom(x3), E, u(x3), T, p, mu  →  11 doubles
        11 * std::mem::size_of::<f64>()
    }

    /// Approximate resident bytes of the mesh container (coordinates,
    /// connectivity, boundary tags) — what one more private copy costs
    /// an ensemble member that does not share the mesh through a
    /// [`crate::context::SharedMeshContext`].
    pub fn memory_bytes(&self) -> usize {
        self.coords.len() * std::mem::size_of::<Vec3>()
            + self.connectivity.len() * std::mem::size_of::<u32>()
            + self.boundary_tags.len() * std::mem::size_of::<BoundaryTag>()
    }
}

/// Reusable scratch buffers for [`HexMesh::fill_element_geometry`].
#[derive(Debug, Clone)]
pub struct GeometryScratch {
    coords: Vec<Vec3>,
    x: Vec<f64>,
    y: Vec<f64>,
    z: Vec<f64>,
    gx: Vec<Vec3>,
    gy: Vec<Vec3>,
    gz: Vec<Vec3>,
}

impl GeometryScratch {
    /// Allocates scratch for elements with `nodes_per_element` nodes.
    pub fn new(nodes_per_element: usize) -> Self {
        GeometryScratch {
            coords: vec![Vec3::ZERO; nodes_per_element],
            x: vec![0.0; nodes_per_element],
            y: vec![0.0; nodes_per_element],
            z: vec![0.0; nodes_per_element],
            gx: vec![Vec3::ZERO; nodes_per_element],
            gy: vec![Vec3::ZERO; nodes_per_element],
            gz: vec![Vec3::ZERO; nodes_per_element],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::BoxMeshBuilder;

    fn unit_cube_mesh() -> HexMesh {
        // One trilinear element on [0,1]³, nodes in lexicographic order.
        let coords = vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(1.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(1.0, 0.0, 1.0),
            Vec3::new(0.0, 1.0, 1.0),
            Vec3::new(1.0, 1.0, 1.0),
        ];
        let conn = (0..8u32).collect();
        HexMesh::new(1, coords, conn, Vec::new(), [None; 3]).unwrap()
    }

    #[test]
    fn validation_rejects_bad_connectivity() {
        let coords = vec![Vec3::ZERO; 4];
        let err = HexMesh::new(1, coords.clone(), vec![0, 1, 2], Vec::new(), [None; 3]);
        assert!(matches!(err, Err(MeshError::RaggedConnectivity { .. })));
        let err = HexMesh::new(
            1,
            coords,
            vec![0, 1, 2, 3, 4, 5, 6, 99],
            Vec::new(),
            [None; 3],
        );
        assert!(matches!(err, Err(MeshError::NodeIndexOutOfRange { .. })));
    }

    #[test]
    fn validation_rejects_order_zero_and_bad_extent() {
        assert!(HexMesh::new(0, vec![], vec![], Vec::new(), [None; 3]).is_err());
        assert!(HexMesh::new(
            1,
            vec![Vec3::ZERO; 8],
            (0..8u32).collect(),
            Vec::new(),
            [Some(-1.0), None, None]
        )
        .is_err());
    }

    #[test]
    fn unit_cube_geometry() {
        let mesh = unit_cube_mesh();
        let basis = HexBasis::new(1).unwrap();
        let mut scratch = GeometryScratch::new(8);
        let mut geom = ElementGeometry::with_capacity(8);
        mesh.fill_element_geometry(0, &basis, &mut scratch, &mut geom)
            .unwrap();
        // J = diag(1/2): reference [-1,1]³ → [0,1]³, det = 1/8.
        for q in 0..8 {
            assert!((geom.inv_jt[q] - Mat3::diagonal(2.0, 2.0, 2.0)).frobenius_norm() < 1e-12);
            // w = 1 per direction at order 1 → det_w = 1/8.
            assert!((geom.det_w[q] - 0.125).abs() < 1e-12);
        }
        // Total volume = Σ det_w = 1.
        let vol: f64 = geom.det_w.iter().sum();
        assert!((vol - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_element_is_reported() {
        let mut mesh = unit_cube_mesh();
        // Swap two x-planes to invert the element.
        mesh.coords.swap(0, 1);
        mesh.coords.swap(2, 3);
        mesh.coords.swap(4, 5);
        mesh.coords.swap(6, 7);
        let basis = HexBasis::new(1).unwrap();
        let mut scratch = GeometryScratch::new(8);
        let mut geom = ElementGeometry::with_capacity(8);
        let err = mesh.fill_element_geometry(0, &basis, &mut scratch, &mut geom);
        assert!(matches!(err, Err(MeshError::InvertedElement { .. })));
    }

    #[test]
    fn periodic_unwrapping_makes_elements_contiguous() {
        let mesh = BoxMeshBuilder::tgv_box(4).build().unwrap();
        let nn = mesh.nodes_per_element();
        let mut coords = vec![Vec3::ZERO; nn];
        let h = std::f64::consts::TAU / 4.0;
        for e in 0..mesh.num_elements() {
            mesh.element_coords(e, &mut coords);
            // All nodes within one cell of the anchor on every axis.
            for c in &coords {
                assert!((c.x - coords[0].x).abs() < h + 1e-9);
                assert!((c.y - coords[0].y).abs() < h + 1e-9);
                assert!((c.z - coords[0].z).abs() < h + 1e-9);
            }
        }
    }

    #[test]
    fn periodic_mesh_volume_is_domain_volume() {
        let mesh = BoxMeshBuilder::tgv_box(3).build().unwrap();
        let basis = HexBasis::new(1).unwrap();
        let nn = mesh.nodes_per_element();
        let mut scratch = GeometryScratch::new(nn);
        let mut geom = ElementGeometry::with_capacity(nn);
        let mut vol = 0.0;
        for e in 0..mesh.num_elements() {
            mesh.fill_element_geometry(e, &basis, &mut scratch, &mut geom)
                .unwrap();
            vol += geom.det_w.iter().sum::<f64>();
        }
        let exact = std::f64::consts::TAU.powi(3);
        assert!((vol - exact).abs() < 1e-9 * exact, "{vol} vs {exact}");
    }

    #[test]
    fn renumber_roundtrip_preserves_geometry() {
        let mesh = BoxMeshBuilder::tgv_box(3).build().unwrap();
        let n = mesh.num_nodes() as u32;
        // Reverse permutation.
        let perm: Vec<u32> = (0..n).map(|i| n - 1 - i).collect();
        let renumbered = mesh.renumber_nodes(&perm).unwrap();
        assert_eq!(renumbered.num_nodes(), mesh.num_nodes());
        assert_eq!(renumbered.num_elements(), mesh.num_elements());
        // Element 0's node coordinates are the same set.
        let mut a = vec![Vec3::ZERO; 8];
        let mut b = vec![Vec3::ZERO; 8];
        mesh.element_coords(0, &mut a);
        renumbered.element_coords(0, &mut b);
        for (pa, pb) in a.iter().zip(&b) {
            assert!((*pa - *pb).norm() < 1e-12);
        }
    }

    #[test]
    fn renumber_rejects_non_permutations() {
        let mesh = unit_cube_mesh();
        assert!(mesh.renumber_nodes(&[0, 0, 1, 2, 3, 4, 5, 6]).is_err());
        assert!(mesh.renumber_nodes(&[0, 1]).is_err());
        assert!(mesh.renumber_nodes(&[9, 1, 2, 3, 4, 5, 6, 7]).is_err());
    }

    #[test]
    fn adjacency_is_symmetric() {
        let mesh = BoxMeshBuilder::tgv_box(3).build().unwrap();
        let adj = mesh.node_adjacency();
        for (a, list) in adj.iter().enumerate() {
            for &b in list {
                assert!(
                    adj[b as usize].contains(&(a as u32)),
                    "asymmetric adjacency {a} -> {b}"
                );
            }
        }
    }

    #[test]
    fn boundary_tags_behave() {
        let t = BoundaryTag::X_MIN.union(BoundaryTag::Z_MAX);
        assert!(t.is_boundary());
        assert!(t.contains(BoundaryTag::X_MIN));
        assert!(!t.contains(BoundaryTag::Y_MIN));
        assert!(!BoundaryTag::INTERIOR.is_boundary());
    }
}
