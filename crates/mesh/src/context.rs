//! The shared immutable mesh context ensemble members solve on.
//!
//! Every simulation needs the same mesh-derived read-only data: the mesh
//! itself, its element basis, the precomputed [`GeometryCache`], the
//! assembled lumped mass vector, the CFL length scale, and — lazily —
//! the greedy [`ElementColoring`] and any [`ShardPlan`]s the execution
//! backends decompose it with. Before this module each `Simulation`
//! owned a private copy of all of it; an ensemble of N members on the
//! same mesh paid N× the memory for bitwise-identical bytes.
//!
//! [`SharedMeshContext`] packages that data behind one immutable
//! `Arc`-shared handle:
//!
//! * the eager parts (mesh, basis, geometry, lumped mass, min spacing)
//!   are computed once in [`SharedMeshContext::build`];
//! * the coloring is built on first request ([`SharedMeshContext::coloring`])
//!   through a `OnceLock`, so concurrent ensemble members race to build
//!   it at most once;
//! * shard plans are memoized per requested `(shards, strategy)` pair
//!   ([`SharedMeshContext::shard_plan`]), so every member selecting the
//!   same sharded backend reuses one plan.
//!
//! Nothing behind the handle is ever mutated after construction — the
//! lazy caches only *add* entries, and the values they hand out are
//! `Arc`s of immutable data. That immutability is what makes sharing
//! across concurrently running simulations sound, and
//! [`SharedMeshContext::memory_bytes`] is what makes it *measurable*:
//! an ensemble report can quote resident bytes with sharing against the
//! sum each member would privately own without it.

use crate::coloring::ElementColoring;
use crate::geometry::GeometryCache;
use crate::hex::HexMesh;
use crate::partition::{PartitionStrategy, ShardPlan};
use crate::MeshError;
use fem_numerics::linalg::Vec3;
use fem_numerics::tensor::HexBasis;
use std::sync::{Arc, Mutex, OnceLock};

/// One memoized shard plan (keyed by the *requested* shard count — the
/// plan itself may clamp to fewer shards on small meshes).
#[derive(Debug)]
struct PlanEntry {
    shards: usize,
    strategy: PartitionStrategy,
    plan: Arc<ShardPlan>,
}

/// Immutable mesh-derived data shared by every simulation on one mesh
/// (see the module docs).
#[derive(Debug)]
pub struct SharedMeshContext {
    mesh: HexMesh,
    basis: HexBasis,
    geometry: GeometryCache,
    lumped_mass: Vec<f64>,
    min_spacing: f64,
    coloring: OnceLock<Arc<ElementColoring>>,
    plans: Mutex<Vec<PlanEntry>>,
}

impl SharedMeshContext {
    /// Builds the context for `mesh`: element basis, geometry cache
    /// (every Jacobian validated exactly once), lumped mass matrix (the
    /// diagonal `K`), and the smallest node spacing (CFL length scale).
    ///
    /// # Errors
    ///
    /// [`MeshError`] for a bad basis order or inverted elements.
    pub fn build(mesh: HexMesh) -> Result<Arc<SharedMeshContext>, MeshError> {
        let basis = HexBasis::new(mesh.order())?;
        let geometry = GeometryCache::build(&mesh, &basis)?;
        let npe = mesh.nodes_per_element();
        let n = basis.nodes_per_dim();
        let mut lumped_mass = vec![0.0; mesh.num_nodes()];
        let mut min_spacing = f64::INFINITY;
        let mut coords = vec![Vec3::ZERO; npe];
        for e in 0..mesh.num_elements() {
            let det_w = geometry.det_w(e);
            for (q, &node) in mesh.element_nodes(e).iter().enumerate() {
                lumped_mass[node as usize] += det_w[q];
            }
            mesh.element_coords(e, &mut coords);
            // Node spacing along the i/j/k lines.
            for k in 0..n {
                for j in 0..n {
                    for i in 0..n {
                        let q = i + n * (j + n * k);
                        if i + 1 < n {
                            min_spacing = min_spacing.min((coords[q + 1] - coords[q]).norm());
                        }
                        if j + 1 < n {
                            min_spacing = min_spacing.min((coords[q + n] - coords[q]).norm());
                        }
                        if k + 1 < n {
                            min_spacing = min_spacing.min((coords[q + n * n] - coords[q]).norm());
                        }
                    }
                }
            }
        }
        Ok(Arc::new(SharedMeshContext {
            mesh,
            basis,
            geometry,
            lumped_mass,
            min_spacing,
            coloring: OnceLock::new(),
            plans: Mutex::new(Vec::new()),
        }))
    }

    /// The mesh being solved on.
    pub fn mesh(&self) -> &HexMesh {
        &self.mesh
    }

    /// The element basis.
    pub fn basis(&self) -> &HexBasis {
        &self.basis
    }

    /// The precomputed per-element geometry cache.
    pub fn geometry(&self) -> &GeometryCache {
        &self.geometry
    }

    /// The assembled lumped mass vector.
    pub fn lumped_mass(&self) -> &[f64] {
        &self.lumped_mass
    }

    /// Smallest node spacing (CFL length scale).
    pub fn min_spacing(&self) -> f64 {
        self.min_spacing
    }

    /// The greedy element coloring, built on first request and shared by
    /// every subsequent caller.
    pub fn coloring(&self) -> Arc<ElementColoring> {
        self.coloring
            .get_or_init(|| Arc::new(ElementColoring::greedy(&self.mesh)))
            .clone()
    }

    /// The coloring if some caller already built it (`None` otherwise —
    /// nothing is built as a side effect).
    pub fn coloring_if_built(&self) -> Option<Arc<ElementColoring>> {
        self.coloring.get().cloned()
    }

    /// The shard plan for a requested `(shards, strategy)` pair, built on
    /// first request and memoized (single-batch streaming, like the
    /// sharded execution backends).
    ///
    /// # Errors
    ///
    /// [`MeshError::InvalidParameter`] if `shards == 0`.
    pub fn shard_plan(
        &self,
        shards: usize,
        strategy: PartitionStrategy,
    ) -> Result<Arc<ShardPlan>, MeshError> {
        let mut plans = self.plans.lock().expect("shard-plan cache poisoned");
        if let Some(entry) = plans
            .iter()
            .find(|e| e.shards == shards && e.strategy == strategy)
        {
            return Ok(entry.plan.clone());
        }
        let plan = Arc::new(ShardPlan::with_strategy(
            &self.mesh,
            shards,
            usize::MAX,
            strategy,
        )?);
        plans.push(PlanEntry {
            shards,
            strategy,
            plan: plan.clone(),
        });
        Ok(plan)
    }

    /// Approximate resident bytes of everything behind the handle: mesh,
    /// geometry cache, lumped mass, plus whatever lazy structures
    /// (coloring, shard plans) have been built so far. An ensemble of N
    /// same-mesh members sharing one context holds this once instead of
    /// N times.
    pub fn memory_bytes(&self) -> usize {
        let lazy = self.coloring_if_built().map_or(0, |c| c.memory_bytes())
            + self
                .plans
                .lock()
                .expect("shard-plan cache poisoned")
                .iter()
                .map(|e| e.plan.memory_bytes())
                .sum::<usize>();
        self.mesh.memory_bytes()
            + self.geometry.memory_bytes()
            + self.lumped_mass.len() * std::mem::size_of::<f64>()
            + lazy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::BoxMeshBuilder;

    #[test]
    fn build_assembles_mass_and_spacing() {
        let mesh = BoxMeshBuilder::tgv_box(4).build().unwrap();
        let ctx = SharedMeshContext::build(mesh).unwrap();
        assert_eq!(ctx.lumped_mass().len(), ctx.mesh().num_nodes());
        assert!(ctx.lumped_mass().iter().all(|&m| m > 0.0));
        // Periodic [0, 2π]³ with 4 elements per axis: spacing 2π/4.
        let h = std::f64::consts::TAU / 4.0;
        assert!((ctx.min_spacing() - h).abs() < 1e-12 * h);
        // The lumped mass sums to the box volume (partition of unity).
        let vol: f64 = ctx.lumped_mass().iter().sum();
        let expect = std::f64::consts::TAU.powi(3);
        assert!((vol - expect).abs() < 1e-9 * expect, "{vol} vs {expect}");
    }

    #[test]
    fn coloring_and_plans_are_built_once_and_shared() {
        let mesh = BoxMeshBuilder::tgv_box(3).build().unwrap();
        let ctx = SharedMeshContext::build(mesh).unwrap();
        assert!(ctx.coloring_if_built().is_none());
        let a = ctx.coloring();
        let b = ctx.coloring();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(ctx.coloring_if_built().is_some());

        let p1 = ctx.shard_plan(4, PartitionStrategy::Contiguous).unwrap();
        let p2 = ctx.shard_plan(4, PartitionStrategy::Contiguous).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2), "same request must hit the cache");
        let p3 = ctx.shard_plan(4, PartitionStrategy::Partitioned).unwrap();
        assert!(!Arc::ptr_eq(&p1, &p3), "strategy is part of the key");
        assert!(ctx.shard_plan(0, PartitionStrategy::Contiguous).is_err());
    }

    #[test]
    fn memory_bytes_counts_lazy_structures_as_they_appear() {
        let mesh = BoxMeshBuilder::tgv_box(3).build().unwrap();
        let ctx = SharedMeshContext::build(mesh).unwrap();
        let base = ctx.memory_bytes();
        assert!(base > 0);
        ctx.coloring();
        let with_coloring = ctx.memory_bytes();
        assert!(with_coloring > base);
        ctx.shard_plan(2, PartitionStrategy::Contiguous).unwrap();
        assert!(ctx.memory_bytes() > with_coloring);
    }
}
