//! Element coloring: partition elements into classes that share no
//! nodes, so scatter-add assembly can run in parallel within a color
//! without atomics — the standard shared-memory FEM parallelization (and
//! the on-chip equivalent of the accelerator's conflict-free residual
//! banking).

use crate::hex::HexMesh;

/// A node-disjoint element coloring: `colors[e]` is element `e`'s class;
/// elements of equal color touch disjoint node sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementColoring {
    colors: Vec<u32>,
    num_colors: u32,
}

impl ElementColoring {
    /// Greedy first-fit coloring over the element conflict graph
    /// (elements conflict when they share a node).
    ///
    /// First-fit on structured hex meshes yields the optimal 8 colors
    /// (2×2×2 parity classes); on general meshes it stays within a small
    /// factor of the conflict degree.
    pub fn greedy(mesh: &HexMesh) -> ElementColoring {
        let ne = mesh.num_elements();
        let nn = mesh.num_nodes();
        // node -> elements that touch it
        let mut node_elems: Vec<Vec<u32>> = vec![Vec::new(); nn];
        for e in 0..ne {
            for &n in mesh.element_nodes(e) {
                node_elems[n as usize].push(e as u32);
            }
        }
        let mut colors = vec![u32::MAX; ne];
        let mut forbidden: Vec<u32> = Vec::new();
        let mut num_colors = 0;
        for e in 0..ne {
            forbidden.clear();
            for &n in mesh.element_nodes(e) {
                for &other in &node_elems[n as usize] {
                    let c = colors[other as usize];
                    if c != u32::MAX {
                        forbidden.push(c);
                    }
                }
            }
            forbidden.sort_unstable();
            forbidden.dedup();
            // Smallest color not forbidden.
            let mut chosen = 0u32;
            for &f in &forbidden {
                if f == chosen {
                    chosen += 1;
                } else if f > chosen {
                    break;
                }
            }
            colors[e] = chosen;
            num_colors = num_colors.max(chosen + 1);
        }
        ElementColoring { colors, num_colors }
    }

    /// Number of color classes.
    pub fn num_colors(&self) -> u32 {
        self.num_colors
    }

    /// The color of element `e`.
    pub fn color(&self, e: usize) -> u32 {
        self.colors[e]
    }

    /// Element ids of each color class, in ascending element order.
    pub fn classes(&self) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); self.num_colors as usize];
        for (e, &c) in self.colors.iter().enumerate() {
            out[c as usize].push(e as u32);
        }
        out
    }

    /// Verifies node-disjointness within every class (O(total nodes)).
    pub fn is_valid(&self, mesh: &HexMesh) -> bool {
        let mut stamp = vec![u32::MAX; mesh.num_nodes()];
        for (class_id, class) in self.classes().iter().enumerate() {
            for &e in class {
                for &n in mesh.element_nodes(e as usize) {
                    if stamp[n as usize] == class_id as u32 {
                        return false;
                    }
                    stamp[n as usize] = class_id as u32;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::BoxMeshBuilder;
    use proptest::prelude::*;

    #[test]
    fn structured_periodic_box_gets_eight_colors() {
        // Even element counts: the 2×2×2 parity classes are achievable
        // and greedy first-fit in lexicographic order finds them.
        let mesh = BoxMeshBuilder::tgv_box(6).build().unwrap();
        let coloring = ElementColoring::greedy(&mesh);
        assert!(coloring.is_valid(&mesh));
        assert_eq!(coloring.num_colors(), 8);
    }

    #[test]
    fn odd_periodic_box_needs_a_few_more() {
        // Odd counts break the parity classes around the seam.
        let mesh = BoxMeshBuilder::tgv_box(5).build().unwrap();
        let coloring = ElementColoring::greedy(&mesh);
        assert!(coloring.is_valid(&mesh));
        assert!(coloring.num_colors() >= 8);
        assert!(coloring.num_colors() <= 32, "{}", coloring.num_colors());
    }

    #[test]
    fn classes_cover_all_elements_once() {
        let mesh = BoxMeshBuilder::tgv_box(4).build().unwrap();
        let coloring = ElementColoring::greedy(&mesh);
        let total: usize = coloring.classes().iter().map(Vec::len).sum();
        assert_eq!(total, mesh.num_elements());
        let mut seen = vec![false; mesh.num_elements()];
        for class in coloring.classes() {
            for &e in &class {
                assert!(!seen[e as usize]);
                seen[e as usize] = true;
            }
        }
    }

    proptest! {
        #[test]
        fn prop_coloring_valid_on_mixed_meshes(
            nx in 3usize..6,
            ny in 3usize..6,
            nz in 3usize..6,
            periodic in proptest::bool::ANY,
        ) {
            let mut b = BoxMeshBuilder::new();
            b.elements(nx, ny, nz).periodic(periodic, periodic, periodic);
            let mesh = b.build().unwrap();
            let coloring = ElementColoring::greedy(&mesh);
            prop_assert!(coloring.is_valid(&mesh));
            prop_assert!(coloring.num_colors() >= 8);
        }
    }
}
