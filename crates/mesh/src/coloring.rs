//! Element coloring: partition elements into classes that share no
//! nodes, so scatter-add assembly can run in parallel within a color
//! without atomics — the standard shared-memory FEM parallelization (and
//! the on-chip equivalent of the accelerator's conflict-free residual
//! banking).

use crate::hex::HexMesh;

/// A node-disjoint element coloring: `colors[e]` is element `e`'s class;
/// elements of equal color touch disjoint node sets.
///
/// The per-class element lists are built once at construction and stored
/// in CSR form, so [`ElementColoring::class`] and
/// [`ElementColoring::classes`] are allocation-free slice accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementColoring {
    colors: Vec<u32>,
    num_colors: u32,
    /// CSR offsets into `class_elems`: class `c` spans
    /// `class_elems[class_offsets[c]..class_offsets[c + 1]]`.
    class_offsets: Vec<usize>,
    /// Element ids grouped by class, ascending within each class.
    class_elems: Vec<u32>,
}

/// Size statistics of a coloring's classes — the load-balance numbers a
/// parallel assembly cares about (a color is one barrier-separated
/// parallel sweep; small or uneven classes cap the speedup).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColoringStats {
    /// Number of color classes (= parallel sweeps per assembly).
    pub num_colors: u32,
    /// Total elements across all classes.
    pub num_elements: usize,
    /// Smallest class size.
    pub min_class_size: usize,
    /// Largest class size.
    pub max_class_size: usize,
    /// Mean class size.
    pub mean_class_size: f64,
    /// `max_class_size / mean_class_size` — 1.0 is perfectly balanced.
    pub imbalance: f64,
}

impl std::fmt::Display for ColoringStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} colors over {} elements (class sizes {}..{}, mean {:.1}, imbalance {:.2})",
            self.num_colors,
            self.num_elements,
            self.min_class_size,
            self.max_class_size,
            self.mean_class_size,
            self.imbalance
        )
    }
}

impl ElementColoring {
    /// Greedy first-fit coloring over the element conflict graph
    /// (elements conflict when they share a node).
    ///
    /// First-fit on structured hex meshes yields the optimal 8 colors
    /// (2×2×2 parity classes); on general meshes it stays within a small
    /// factor of the conflict degree. Debug builds validate the result
    /// with [`ElementColoring::is_valid`].
    pub fn greedy(mesh: &HexMesh) -> ElementColoring {
        let ne = mesh.num_elements();
        let nn = mesh.num_nodes();
        // node -> elements that touch it
        let mut node_elems: Vec<Vec<u32>> = vec![Vec::new(); nn];
        for e in 0..ne {
            for &n in mesh.element_nodes(e) {
                node_elems[n as usize].push(e as u32);
            }
        }
        let mut colors = vec![u32::MAX; ne];
        let mut forbidden: Vec<u32> = Vec::new();
        let mut num_colors = 0;
        for e in 0..ne {
            forbidden.clear();
            for &n in mesh.element_nodes(e) {
                for &other in &node_elems[n as usize] {
                    let c = colors[other as usize];
                    if c != u32::MAX {
                        forbidden.push(c);
                    }
                }
            }
            forbidden.sort_unstable();
            forbidden.dedup();
            // Smallest color not forbidden.
            let mut chosen = 0u32;
            for &f in &forbidden {
                if f == chosen {
                    chosen += 1;
                } else if f > chosen {
                    break;
                }
            }
            colors[e] = chosen;
            num_colors = num_colors.max(chosen + 1);
        }

        // Bucket elements by class once (counting sort keeps ascending
        // element order within each class).
        let nc = num_colors as usize;
        let mut counts = vec![0usize; nc];
        for &c in &colors {
            counts[c as usize] += 1;
        }
        let mut class_offsets = vec![0usize; nc + 1];
        for c in 0..nc {
            class_offsets[c + 1] = class_offsets[c] + counts[c];
        }
        let mut cursor = class_offsets.clone();
        let mut class_elems = vec![0u32; ne];
        for (e, &c) in colors.iter().enumerate() {
            class_elems[cursor[c as usize]] = e as u32;
            cursor[c as usize] += 1;
        }

        let coloring = ElementColoring {
            colors,
            num_colors,
            class_offsets,
            class_elems,
        };
        debug_assert!(
            coloring.is_valid(mesh),
            "greedy coloring violated node-disjointness"
        );
        coloring
    }

    /// Number of color classes.
    pub fn num_colors(&self) -> u32 {
        self.num_colors
    }

    /// Total elements covered by the coloring (allocation-free).
    pub fn num_elements(&self) -> usize {
        self.class_elems.len()
    }

    /// Size of the largest color class (allocation-free, from the CSR
    /// offsets — hot-path alternative to [`ElementColoring::stats`]).
    pub fn max_class_size(&self) -> usize {
        self.class_offsets
            .windows(2)
            .map(|w| w[1] - w[0])
            .max()
            .unwrap_or(0)
    }

    /// The color of element `e`.
    pub fn color(&self, e: usize) -> u32 {
        self.colors[e]
    }

    /// Element ids of color class `c`, in ascending element order.
    ///
    /// # Panics
    ///
    /// Panics if `c >= num_colors()`.
    pub fn class(&self, c: u32) -> &[u32] {
        let c = c as usize;
        &self.class_elems[self.class_offsets[c]..self.class_offsets[c + 1]]
    }

    /// Iterator over the color classes (each a slice of element ids in
    /// ascending order), from color 0 upward.
    pub fn classes(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.num_colors).map(|c| self.class(c))
    }

    /// Approximate resident bytes of the coloring (the per-element color
    /// map plus the CSR class lists).
    pub fn memory_bytes(&self) -> usize {
        self.colors.len() * std::mem::size_of::<u32>()
            + self.class_offsets.len() * std::mem::size_of::<usize>()
            + self.class_elems.len() * std::mem::size_of::<u32>()
    }

    /// Class-size statistics (see [`ColoringStats`]).
    pub fn stats(&self) -> ColoringStats {
        let sizes: Vec<usize> = self.classes().map(<[u32]>::len).collect();
        let num_elements = self.colors.len();
        let min = sizes.iter().copied().min().unwrap_or(0);
        let max = sizes.iter().copied().max().unwrap_or(0);
        let mean = if sizes.is_empty() {
            0.0
        } else {
            num_elements as f64 / sizes.len() as f64
        };
        ColoringStats {
            num_colors: self.num_colors,
            num_elements,
            min_class_size: min,
            max_class_size: max,
            mean_class_size: mean,
            imbalance: if mean > 0.0 { max as f64 / mean } else { 0.0 },
        }
    }

    /// Verifies node-disjointness within every class (O(total nodes)).
    pub fn is_valid(&self, mesh: &HexMesh) -> bool {
        let mut stamp = vec![u32::MAX; mesh.num_nodes()];
        for (class_id, class) in self.classes().enumerate() {
            for &e in class {
                for &n in mesh.element_nodes(e as usize) {
                    if stamp[n as usize] == class_id as u32 {
                        return false;
                    }
                    stamp[n as usize] = class_id as u32;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::BoxMeshBuilder;
    use proptest::prelude::*;

    #[test]
    fn structured_periodic_box_gets_eight_colors() {
        // Even element counts: the 2×2×2 parity classes are achievable
        // and greedy first-fit in lexicographic order finds them.
        let mesh = BoxMeshBuilder::tgv_box(6).build().unwrap();
        let coloring = ElementColoring::greedy(&mesh);
        assert!(coloring.is_valid(&mesh));
        assert_eq!(coloring.num_colors(), 8);
    }

    #[test]
    fn odd_periodic_box_needs_a_few_more() {
        // Odd counts break the parity classes around the seam.
        let mesh = BoxMeshBuilder::tgv_box(5).build().unwrap();
        let coloring = ElementColoring::greedy(&mesh);
        assert!(coloring.is_valid(&mesh));
        assert!(coloring.num_colors() >= 8);
        assert!(coloring.num_colors() <= 32, "{}", coloring.num_colors());
    }

    #[test]
    fn classes_cover_all_elements_once() {
        let mesh = BoxMeshBuilder::tgv_box(4).build().unwrap();
        let coloring = ElementColoring::greedy(&mesh);
        let total: usize = coloring.classes().map(<[u32]>::len).sum();
        assert_eq!(total, mesh.num_elements());
        let mut seen = vec![false; mesh.num_elements()];
        for class in coloring.classes() {
            for &e in class {
                assert!(!seen[e as usize]);
                seen[e as usize] = true;
            }
        }
    }

    #[test]
    fn class_slices_match_color_assignments() {
        let mesh = BoxMeshBuilder::tgv_box(5).build().unwrap();
        let coloring = ElementColoring::greedy(&mesh);
        for c in 0..coloring.num_colors() {
            let class = coloring.class(c);
            assert!(!class.is_empty(), "empty color class {c}");
            assert!(class.windows(2).all(|w| w[0] < w[1]), "not ascending");
            for &e in class {
                assert_eq!(coloring.color(e as usize), c);
            }
        }
    }

    #[test]
    fn stats_are_consistent() {
        let mesh = BoxMeshBuilder::tgv_box(6).build().unwrap();
        let coloring = ElementColoring::greedy(&mesh);
        let s = coloring.stats();
        assert_eq!(s.num_colors, 8);
        assert_eq!(s.num_elements, mesh.num_elements());
        // Allocation-free accessors agree with the full stats.
        assert_eq!(coloring.num_elements(), s.num_elements);
        assert_eq!(coloring.max_class_size(), s.max_class_size);
        // Even box: the 8 parity classes are equal-sized.
        assert_eq!(s.min_class_size, s.max_class_size);
        assert!((s.imbalance - 1.0).abs() < 1e-12);
        assert!((s.mean_class_size * 8.0 - mesh.num_elements() as f64).abs() < 1e-9);
        let shown = format!("{s}");
        assert!(shown.contains("8 colors"), "{shown}");
    }

    proptest! {
        #[test]
        fn prop_coloring_valid_on_mixed_meshes(
            nx in 3usize..6,
            ny in 3usize..6,
            nz in 3usize..6,
            periodic in proptest::bool::ANY,
        ) {
            let mut b = BoxMeshBuilder::new();
            b.elements(nx, ny, nz).periodic(periodic, periodic, periodic);
            let mesh = b.build().unwrap();
            let coloring = ElementColoring::greedy(&mesh);
            prop_assert!(coloring.is_valid(&mesh));
            prop_assert!(coloring.num_colors() >= 8);
            let total: usize = coloring.classes().map(<[u32]>::len).sum();
            prop_assert_eq!(total, mesh.num_elements());
        }
    }
}
