//! Smoke tests pinning the machine-readable schema of `repro --json`.
//!
//! Downstream tooling (plot scripts, CI dashboards) parses this output;
//! these tests run the actual binary and assert the JSON document shape
//! for the `fig5`, `assembly`, `geometry`, `scenarios`, `sharding`,
//! `banking`, `ensemble` and `table1` subcommands, so schema drift is
//! caught at
//! test time rather than by consumers. The `scenarios` test pins the PR-4 acceptance bar:
//! every registered scenario (≥ 4: TGV, cavity, shear layer, pulse) must
//! pass serial-vs-colored equivalence at ≤ 1e-12 relative plus its
//! per-scenario invariant checks. The `sharding` test pins the PR-5
//! acceptance bar — the `Sharded` backend must be bitwise identical to
//! the serial reference and across all swept shard counts on every
//! registered scenario, with per-shard load-imbalance and
//! `DataflowEmulated` cycle/II quotes attached — and the PR-6 bar:
//! every cell reports contiguous and graph-partitioned strategies side
//! by side, both bitwise identical, `halo_fraction` a true `0 ..= 1`
//! unique-node fraction, and the partitioned halo never above the
//! contiguous one at ≥ 4 shards. The
//! The `sharding` test also pins the PR-8 bar: the study's MultiDevice
//! overlap sweep must report per-(scenario, devices) phase timings with
//! every cell bitwise identical to the serial reference, positive
//! emulated overlap efficiency on ≥ 4 devices, a consistent
//! compute-bound vs comm-bound classification, and an explicit skip log
//! for any device count that did not run as its own cell. The
//! `geometry` test also pins the PR-3 acceptance bar: the cached+fused
//! RHS path must beat the seed recompute+split path by ≥1.5× on the TGV
//! n=12 viscous benchmark (hard-enforced when `REPRO_PERF_GATE` is set —
//! the CI `repro-artifacts` job gates the release build — and a warning
//! otherwise, since wall-clock ratios are noisy on loaded runners), with
//! a bitwise schedule-independent `Colored` strategy — and the PR-9
//! bar: the geometry study's sum-factored vs full-matrix order ladder
//! spans p = 1..4, pins the exact O(p⁴)/O(p⁶) flop models, holds both
//! kernel paths to ≤ 1e-12 mutual agreement with per-path bitwise
//! colored-vs-serial flags, and (under `REPRO_PERF_GATE`) requires the
//! factored path ahead of the dense path from p = 3. The `ensemble`
//! test pins the PR-7 acceptance bar: the 8-member same-mesh sweep must
//! share its [`fem_mesh::SharedMeshContext`] at a measured ≥ 2× memory
//! savings (in fact exactly 8×), serve every registry scenario under
//! three backends from two shared contexts with all invariants passing,
//! and the declarative spec path must reproduce the imperative setter
//! path bitwise. The `banking` test pins the PR-10 acceptance bar: the
//! banked-memory frontier study must show the optimized bank assignment
//! strictly beating round-robin on DES makespan at 8 shards on the
//! 32-bank HBM2 system for ≥ 2 registry scenarios, and every 1-bank
//! degenerate row must reproduce the unbanked flat quote
//! cycle-for-cycle.

use std::process::Command;

fn repro_json(subcommand: &str) -> serde_json::Value {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([subcommand, "--json"])
        .output()
        .expect("repro binary runs");
    assert!(
        out.status.success(),
        "repro {subcommand} --json failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    serde_json::from_str::<serde_json::Value>(&stdout)
        .unwrap_or_else(|e| panic!("repro {subcommand} --json is not valid JSON: {e}\n{stdout}"))
}

#[test]
fn fig5_json_schema() {
    let doc = repro_json("fig5");

    // Top-level summary fields.
    for key in [
        "avg_speedup",
        "growth_1p4_to_4p2_proposed",
        "growth_1p4_to_4p2_vitis",
        "paper_avg_speedup",
        "paper_growth",
    ] {
        assert!(
            doc[key].as_f64().is_some(),
            "fig5 missing numeric field `{key}`"
        );
    }

    // Per-size rows: one per entry of FIG5_MESH_SIZES (5K .. 4.2M).
    let rows = doc["rows"].as_array().expect("fig5 `rows` is an array");
    assert_eq!(rows.len(), 6, "fig5 should report 6 mesh sizes");
    for row in rows {
        assert!(row["label"].as_str().is_some());
        assert!(row["nodes"].as_u64().is_some());
        for key in [
            "proposed_seconds",
            "vitis_seconds",
            "speedup",
            "proposed_fmax",
            "vitis_fmax",
        ] {
            let v = row[key]
                .as_f64()
                .unwrap_or_else(|| panic!("fig5 row missing numeric field `{key}`: {row:?}"));
            assert!(v.is_finite() && v > 0.0, "fig5 `{key}` not positive: {v}");
        }
    }

    // Sanity: the modeled speedup must actually favor the proposed design.
    assert!(doc["avg_speedup"].as_f64().unwrap() > 1.0);
}

#[test]
fn assembly_json_schema() {
    let doc = repro_json("assembly");

    assert!(doc["threads"].as_u64().is_some(), "missing `threads`");
    let colors = doc["colors_by_edge"]
        .as_array()
        .expect("`colors_by_edge` is an array");
    assert!(!colors.is_empty());

    // Three strategies per mesh edge, in a fixed order.
    let rows = doc["rows"].as_array().expect("`rows` is an array");
    assert_eq!(rows.len() % 3, 0, "rows come in strategy triples");
    for row in rows.chunks(3) {
        assert_eq!(row[0]["strategy"].as_str(), Some("serial"));
        assert_eq!(row[2]["strategy"].as_str(), Some("colored"));
        assert!(row[1]["strategy"]
            .as_str()
            .expect("strategy string")
            .starts_with("chunked("));
        for r in row {
            assert!(r["edge"].as_u64().is_some());
            assert!(r["nodes"].as_u64().is_some());
            let ms = r["millis_per_assembly"].as_f64().expect("numeric time");
            assert!(ms > 0.0, "non-positive time {ms}");
            assert!(r["speedup_vs_serial"].as_f64().expect("speedup") > 0.0);
            // Parallel strategies must agree with serial to rounding.
            let err = r["max_rel_error_vs_serial"].as_f64().expect("rel err");
            assert!(err < 1e-12, "assembly deviates from serial: {err}");
        }
    }
}

#[test]
fn geometry_json_schema() {
    let doc = repro_json("geometry");

    assert!(doc["threads"].as_u64().is_some(), "missing `threads`");

    // Four paths per mesh edge, in the optimization-ladder order.
    let rows = doc["rows"].as_array().expect("`rows` is an array");
    assert_eq!(rows.len() % 4, 0, "rows come in path quadruples");
    assert!(!rows.is_empty());
    for quad in rows.chunks(4) {
        assert_eq!(quad[0]["path"].as_str(), Some("recompute+split"));
        assert_eq!(quad[1]["path"].as_str(), Some("cached+split"));
        assert_eq!(quad[2]["path"].as_str(), Some("cached+fused"));
        assert_eq!(quad[3]["path"].as_str(), Some("cached+fused colored"));
        for r in quad {
            assert!(r["edge"].as_u64().is_some());
            assert!(r["nodes"].as_u64().is_some());
            let ms = r["millis_per_assembly"].as_f64().expect("numeric time");
            assert!(ms > 0.0, "non-positive time {ms}");
            assert!(r["speedup_vs_seed"].as_f64().expect("speedup") > 0.0);
            // Every path must agree with the seed residual to rounding.
            let err = r["max_rel_error_vs_seed"].as_f64().expect("rel err");
            assert!(err < 1e-12, "path deviates from seed: {err}");
        }
    }

    // Per-edge summaries: cache footprint, ladder speedups, and the
    // colored bitwise-stability flag (must hold unconditionally).
    let summaries = doc["summaries"].as_array().expect("`summaries` array");
    assert_eq!(summaries.len() * 4, rows.len());
    let mut saw_edge_12 = false;
    for s in summaries {
        let edge = s["edge"].as_u64().expect("edge");
        assert!(s["nodes"].as_u64().is_some());
        let mem = s["cache_memory_bytes"].as_u64().expect("cache bytes");
        // 80 B per element node (Mat3 + f64).
        assert_eq!(mem, (edge * edge * edge) * 8 * 80);
        for key in [
            "cached_over_recompute",
            "fused_over_split",
            "cached_fused_over_seed",
        ] {
            let v = s[key].as_f64().unwrap_or_else(|| panic!("missing {key}"));
            assert!(v.is_finite() && v > 0.0, "`{key}` not positive: {v}");
        }
        assert_eq!(
            s["colored_bitwise_stable"].as_bool(),
            Some(true),
            "colored path not schedule-independent"
        );
        if edge == 12 {
            saw_edge_12 = true;
            // Acceptance: cached+fused beats the seed recompute+split
            // path by ≥1.5× on the TGV n=12 viscous benchmark. Wall-clock
            // thresholds are flaky on loaded or unoptimized runners, so
            // the hard assert is opt-in (REPRO_PERF_GATE=1; the CI
            // repro-artifacts job enforces it on the release build).
            let total = s["cached_fused_over_seed"].as_f64().unwrap();
            if std::env::var("REPRO_PERF_GATE").is_ok() {
                assert!(
                    total >= 1.5,
                    "cached+fused only {total:.2}x over seed at n=12"
                );
            } else if total < 1.5 {
                eprintln!(
                    "warning: cached+fused only {total:.2}x over seed at n=12 \
                     (not enforced without REPRO_PERF_GATE)"
                );
            }
        }
    }
    assert!(saw_edge_12, "study must include the TGV n=12 mesh");

    // PR-9: the sum-factored vs full-matrix order ladder. One rung per
    // polynomial order 1..=4, each carrying both kernel-path timings,
    // the exact flop model, a ≤1e-12 cross-path agreement bound, and
    // per-path colored-vs-serial bitwise flags.
    let ladder = doc["order_ladder"].as_array().expect("`order_ladder`");
    let orders: Vec<u64> = ladder
        .iter()
        .map(|r| r["order"].as_u64().expect("order"))
        .collect();
    assert_eq!(orders, vec![1, 2, 3, 4], "ladder rungs drifted");
    for r in ladder {
        let p = r["order"].as_u64().unwrap();
        let n = p + 1;
        let npe = n * n * n;
        assert_eq!(r["nodes_per_element"].as_u64(), Some(npe), "p={p}");
        assert!(r["elements"].as_u64().expect("elements") > 0);
        for key in ["millis_full_matrix", "millis_sum_factored"] {
            let ms = r[key].as_f64().unwrap_or_else(|| panic!("missing {key}"));
            assert!(ms > 0.0, "p={p}: `{key}` not positive: {ms}");
        }
        assert!(r["factored_speedup"].as_f64().expect("speedup") > 0.0);
        // The flop model is exact: factored 90·npe + 30·n⁴ (three 1D
        // sweeps), full-matrix 90·npe + 30·npe² (dense per direction).
        assert_eq!(
            r["factored_divergence_flops"].as_u64(),
            Some(90 * npe + 30 * n.pow(4)),
            "p={p}: factored flop model drifted"
        );
        assert_eq!(
            r["full_matrix_divergence_flops"].as_u64(),
            Some(90 * npe + 30 * npe * npe),
            "p={p}: full-matrix flop model drifted"
        );
        // Both paths are schedule-independent at every order ...
        for key in [
            "factored_bitwise_vs_reference",
            "full_matrix_bitwise_vs_reference",
        ] {
            assert_eq!(r[key].as_bool(), Some(true), "p={p}: `{key}`");
        }
        // ... and agree with each other to rounding.
        let err = r["max_rel_error_full_vs_factored"].as_f64().expect("err");
        assert!(err <= 1e-12, "p={p}: paths diverge: {err}");
        // Acceptance: the factored path is ahead of the dense reference
        // from p=3 up. Wall-clock gated like the n=12 ladder above.
        if p >= 3 {
            let speedup = r["factored_speedup"].as_f64().unwrap();
            if std::env::var("REPRO_PERF_GATE").is_ok() {
                assert!(
                    speedup >= 1.0,
                    "sum-factored only {speedup:.2}x over full-matrix at p={p}"
                );
            } else if speedup < 1.0 {
                eprintln!(
                    "warning: sum-factored only {speedup:.2}x over full-matrix at \
                     p={p} (not enforced without REPRO_PERF_GATE)"
                );
            }
        }
    }
    // The crossover marker is derived from the rungs and must land by
    // p=3 under the perf gate.
    let crossover = doc["factored_crossover_order"].as_u64();
    if std::env::var("REPRO_PERF_GATE").is_ok() {
        let p = crossover.expect("factored path never overtook full-matrix");
        assert!(p <= 3, "factored crossover only at p={p}");
    }
}

#[test]
fn scenarios_json_schema() {
    let doc = repro_json("scenarios");

    assert!(doc["edge"].as_u64().is_some(), "missing `edge`");
    assert!(doc["steps"].as_u64().is_some(), "missing `steps`");
    assert!(doc["threads"].as_u64().is_some(), "missing `threads`");

    // Three strategy rows per scenario, in a fixed order, every one of
    // them within the 1e-12 equivalence bar.
    let rows = doc["rows"].as_array().expect("`rows` is an array");
    assert_eq!(rows.len() % 3, 0, "rows come in strategy triples");
    for triple in rows.chunks(3) {
        assert_eq!(triple[0]["strategy"].as_str(), Some("serial"));
        assert!(triple[1]["strategy"]
            .as_str()
            .expect("strategy string")
            .starts_with("chunked("));
        assert_eq!(triple[2]["strategy"].as_str(), Some("colored"));
        for r in triple {
            assert!(r["scenario"].as_str().is_some());
            assert!(r["steps"].as_u64().is_some());
            let dev = r["max_rel_dev_vs_serial"].as_f64().expect("numeric dev");
            assert!(
                dev <= 1e-12,
                "{:?}/{:?} deviates from serial: {dev}",
                r["scenario"],
                r["strategy"]
            );
        }
    }

    // Acceptance: at least the four canonical scenarios, each with its
    // strategies agreeing and its invariants passing.
    let summaries = doc["summaries"].as_array().expect("`summaries` array");
    assert!(summaries.len() >= 4, "fewer than 4 scenarios");
    assert_eq!(summaries.len() * 3, rows.len());
    for name in [
        "taylor-green-vortex",
        "lid-driven-cavity",
        "double-shear-layer",
        "acoustic-pulse",
    ] {
        assert!(
            summaries
                .iter()
                .any(|s| s["scenario"].as_str() == Some(name)),
            "scenario `{name}` missing"
        );
    }
    for s in summaries {
        let name = s["scenario"].as_str().expect("scenario name");
        assert!(s["description"].as_str().is_some());
        assert!(s["nodes"].as_u64().is_some());
        assert!(s["elements"].as_u64().is_some());
        assert!(s["dirichlet_nodes"].as_u64().is_some());
        assert!(s["dt"].as_f64().expect("dt") > 0.0);
        assert_eq!(s["strategies_agree"].as_bool(), Some(true), "{name}");
        assert_eq!(s["invariants_pass"].as_bool(), Some(true), "{name}");
        let invariants = s["invariants"].as_array().expect("invariants array");
        assert!(!invariants.is_empty(), "{name}: no invariants");
        for c in invariants {
            assert!(c["name"].as_str().is_some());
            assert!(c["value"].as_f64().is_some());
            assert!(c["bound"].as_f64().is_some());
            assert_eq!(c["passed"].as_bool(), Some(true), "{name}: {:?}", c["name"]);
        }
        // The per-scenario accelerator workload quote.
        let w = &s["workload"];
        for key in ["rkl_flops_per_stage", "rkl_bytes_per_stage"] {
            assert!(w[key].as_u64().expect(key) > 0, "{name}: `{key}`");
        }
        for key in ["arithmetic_intensity", "ddr_bound_gflops"] {
            let v = w[key].as_f64().unwrap_or_else(|| panic!("missing {key}"));
            assert!(v > 0.0, "{name}: `{key}` not positive: {v}");
        }
    }
    // The cavity is the only wall-bounded entry.
    let cavity = summaries
        .iter()
        .find(|s| s["scenario"].as_str() == Some("lid-driven-cavity"))
        .unwrap();
    assert!(cavity["dirichlet_nodes"].as_u64().unwrap() > 0);
}

#[test]
fn sharding_json_schema() {
    let doc = repro_json("sharding");

    assert!(doc["edge"].as_u64().is_some(), "missing `edge`");
    assert!(doc["steps"].as_u64().is_some(), "missing `steps`");
    assert!(doc["threads"].as_u64().is_some(), "missing `threads`");
    // PR-10: the study names the memory system that priced its quotes.
    assert_eq!(doc["memory_system"].as_str(), Some("u200-ddr4"));
    let counts: Vec<u64> = doc["shard_counts"]
        .as_array()
        .expect("`shard_counts` is an array")
        .iter()
        .map(|c| c.as_u64().expect("shard count"))
        .collect();
    assert_eq!(counts, vec![1, 2, 4, 8], "sweep drifted");

    // One summary per (scenario, effective shard count) — no duplicate
    // labels — and the four canonical scenarios must all be swept.
    let summaries = doc["summaries"].as_array().expect("`summaries` array");
    assert_eq!(summaries.len() % counts.len(), 0);
    for name in [
        "taylor-green-vortex",
        "lid-driven-cavity",
        "double-shear-layer",
        "acoustic-pulse",
    ] {
        let cells: Vec<u64> = summaries
            .iter()
            .filter(|s| s["scenario"].as_str() == Some(name))
            .map(|s| s["shard_count"].as_u64().expect("shard_count"))
            .collect();
        assert_eq!(
            cells.len(),
            counts.len(),
            "scenario `{name}` not fully swept"
        );
        let mut dedup = cells.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), cells.len(), "{name}: duplicate shard counts");
    }

    let rows = doc["rows"].as_array().expect("`rows` is an array");
    for s in summaries {
        let name = s["scenario"].as_str().expect("scenario name");
        let count = s["shard_count"].as_u64().expect("shard_count");
        let elements = s["elements"].as_u64().expect("elements");
        let nodes = s["nodes"].as_u64().expect("nodes");
        assert!(s["requested_shards"].as_u64().expect("requested") >= count);
        assert!(count <= elements, "{name}: count not clamped");
        assert!(s["ddr_bound_gflops"].as_f64().expect("roofline") > 0.0);

        for strategy in ["contiguous", "partitioned"] {
            let cell = &s[strategy];
            assert_eq!(cell["strategy"].as_str(), Some(strategy), "{name} ×{count}");

            // Acceptance: both strategies' trajectories are bitwise
            // identical to the serial reference AND across shard counts
            // (⇒ ≤1e-12 trivially).
            assert_eq!(
                cell["bitwise_vs_reference"].as_bool(),
                Some(true),
                "{name} {strategy}"
            );
            assert_eq!(
                cell["bitwise_across_shard_counts"].as_bool(),
                Some(true),
                "{name} {strategy}"
            );
            let dev = cell["max_rel_dev_vs_reference"].as_f64().expect("dev");
            assert!(dev <= 1e-12, "{name} ×{count} {strategy}: dev {dev}");
            let imbalance = cell["load_imbalance"].as_f64().expect("load_imbalance");
            assert!((1.0..2.0).contains(&imbalance), "{name}: {imbalance}");
            assert!(cell["element_imbalance"].as_f64().expect("elem imb") >= 1.0);
            // halo_fraction is a true fraction of unique halo nodes.
            let halo = cell["halo_fraction"].as_f64().expect("halo_fraction");
            assert!((0.0..=1.0).contains(&halo), "{name} {strategy}: {halo}");
            let entries = cell["reduction_entries"].as_u64().expect("entries");
            assert_eq!(entries == 0, halo == 0.0, "{name} {strategy}");
            assert!(cell["total_bytes_in"].as_u64().expect("bytes_in") > 0);
            assert!(cell["total_bytes_out"].as_u64().expect("bytes_out") > 0);
            assert!(
                cell["max_shard_makespan_cycles"]
                    .as_u64()
                    .expect("makespan")
                    > 0
            );
            assert!(cell["emulated_ii_worst"].as_f64().expect("worst II") > 0.0);

            // The cell's per-shard rows: cover every element exactly
            // once, owned-node sets complete, each with a
            // DataflowEmulated cycle/II quote.
            let cell_rows: Vec<&serde_json::Value> = rows
                .iter()
                .filter(|r| {
                    r["scenario"].as_str() == Some(name)
                        && r["shard_count"].as_u64() == Some(count)
                        && r["strategy"].as_str() == Some(strategy)
                })
                .collect();
            assert_eq!(cell_rows.len() as u64, count, "{name} ×{count} {strategy}");
            let covered: u64 = cell_rows
                .iter()
                .map(|r| r["elements"].as_u64().unwrap())
                .sum();
            assert_eq!(covered, elements, "{name} ×{count}: elements dropped");
            let owned: u64 = cell_rows
                .iter()
                .map(|r| r["owned_nodes"].as_u64().unwrap())
                .sum();
            assert_eq!(owned, nodes, "{name} ×{count}: owned sets incomplete");
            for r in &cell_rows {
                assert!(r["shard"].as_u64().is_some());
                assert!(r["halo_nodes"].as_u64().is_some());
                assert!(r["bytes_in"].as_u64().expect("shard bytes_in") > 0);
                assert!(r["bytes_out"].as_u64().expect("shard bytes_out") > 0);
                assert!(r["emulated_makespan_cycles"].as_u64().expect("makespan") > 0);
                assert!(r["emulated_ii"].as_f64().expect("emulated II") > 0.0);
                assert!(r["bottleneck_ii"].as_u64().expect("bottleneck II") > 0);
            }
        }

        // The tentpole acceptance gate: at ≥ 4 shards the graph
        // partition's halo fraction never exceeds the contiguous one.
        if count >= 4 {
            let c = s["contiguous"]["halo_fraction"].as_f64().unwrap();
            let p = s["partitioned"]["halo_fraction"].as_f64().unwrap();
            assert!(
                p <= c,
                "{name} ×{count}: partitioned halo {p} > contiguous {c}"
            );
        }
    }

    // PR-8: the MultiDevice overlap sweep. Same counts, both
    // strategies, per-(scenario, devices) phase timings.
    let dev_counts: Vec<u64> = doc["device_counts"]
        .as_array()
        .expect("`device_counts` is an array")
        .iter()
        .map(|c| c.as_u64().expect("device count"))
        .collect();
    assert_eq!(dev_counts, vec![1, 2, 4, 8], "device sweep drifted");
    let cells = doc["overlap_cells"].as_array().expect("`overlap_cells`");
    // 4 scenarios × 4 effective counts × 2 strategies on the 6³ meshes.
    assert_eq!(cells.len(), 4 * dev_counts.len() * 2, "overlap coverage");
    let overlap_rows = doc["overlap_rows"].as_array().expect("`overlap_rows`");
    for c in cells {
        let name = c["scenario"].as_str().expect("scenario");
        let devices = c["device_count"].as_u64().expect("device_count");
        let strategy = c["strategy"].as_str().expect("strategy");
        assert!(c["requested_devices"].as_u64().expect("requested") >= devices);

        // Acceptance: the overlapped exchange is bitwise identical to
        // the serial reference at every device count and strategy.
        assert_eq!(
            c["bitwise_vs_reference"].as_bool(),
            Some(true),
            "{name} ×{devices} {strategy}"
        );
        assert!(c["max_rel_dev_vs_reference"].as_f64().expect("dev") <= 1e-12);

        let frontier = c["frontier_cycles_total"].as_u64().expect("frontier");
        let interior = c["interior_cycles_total"].as_u64().expect("interior");
        let exchange = c["exchange_cycles_total"].as_u64().expect("exchange");
        let exposed = c["exposed_cycles_total"].as_u64().expect("exposed");
        assert!(frontier > 0 && interior > 0, "{name} ×{devices}");
        assert!(c["max_device_makespan_cycles"].as_u64().expect("makespan") > 0);
        let eff = c["emulated_overlap_efficiency"].as_f64().expect("eff");
        assert!((0.0..=1.0).contains(&eff), "{name} ×{devices}: {eff}");
        let measured_eff = c["measured_overlap_efficiency"].as_f64().expect("m-eff");
        assert!((0.0..=1.0).contains(&measured_eff));
        for key in [
            "measured_frontier_s",
            "measured_interior_s",
            "measured_wait_s",
            "measured_apply_s",
        ] {
            assert!(c[key].as_f64().expect(key) >= 0.0, "{name}: `{key}`");
        }

        // The classification is derived, not free-form: comm-bound iff
        // the exposed link cycles exceed the interior sweep.
        let bound = c["bound"].as_str().expect("bound");
        assert_eq!(
            bound,
            if exposed > interior {
                "comm-bound"
            } else {
                "compute-bound"
            },
            "{name} ×{devices} {strategy}"
        );

        if devices == 1 {
            assert_eq!(exchange, 0, "{name}: solo device crossed a link");
            assert_eq!(exposed, 0);
            assert_eq!(eff, 1.0);
            assert_eq!(bound, "compute-bound");
        } else {
            assert!(exchange > 0, "{name} ×{devices}: no link traffic");
            assert!(c["halo_records_total"].as_u64().expect("records") > 0);
        }
        // Acceptance: measurable overlap on ≥ 4 devices — the interior
        // sweep hides part of the halo exchange.
        if devices >= 4 {
            assert!(
                eff > 0.0,
                "{name} ×{devices} {strategy}: overlap efficiency {eff}"
            );
        }

        // Per-device rows: every element assembled exactly once, as
        // either frontier or interior.
        let cell_rows: Vec<&serde_json::Value> = overlap_rows
            .iter()
            .filter(|r| {
                r["scenario"].as_str() == Some(name)
                    && r["device_count"].as_u64() == Some(devices)
                    && r["strategy"].as_str() == Some(strategy)
            })
            .collect();
        assert_eq!(cell_rows.len() as u64, devices, "{name} ×{devices}");
        let covered: u64 = cell_rows
            .iter()
            .map(|r| {
                r["frontier_elements"].as_u64().unwrap() + r["interior_elements"].as_u64().unwrap()
            })
            .sum();
        assert_eq!(covered, 6 * 6 * 6, "{name} ×{devices}: elements dropped");
        for r in &cell_rows {
            assert!(r["device"].as_u64().is_some());
            assert!(r["neighbors"].as_u64().is_some());
            let sent = r["halo_records_sent"].as_u64().expect("records sent");
            assert_eq!(r["halo_bytes_sent"].as_u64(), Some(48 * sent));
            let makespan = r["makespan_cycles"].as_u64().expect("makespan");
            assert!(makespan >= r["exposed_cycles"].as_u64().unwrap());
            assert!(makespan >= r["apply_cycles"].as_u64().unwrap());
        }
    }

    // No silent truncation: the default sweep fits the 6³ meshes, so
    // the skip log must exist and be empty (entries, when present,
    // carry scenario/requested/effective/reason).
    let skipped = doc["skipped_device_sweeps"]
        .as_array()
        .expect("`skipped_device_sweeps`");
    assert!(
        skipped.is_empty(),
        "default sweep should run every cell: {skipped:?}"
    );
}

#[test]
fn banking_json_schema() {
    let doc = repro_json("banking");

    assert!(doc["edge"].as_u64().is_some(), "missing `edge`");
    let counts: Vec<u64> = doc["shard_counts"]
        .as_array()
        .expect("`shard_counts` is an array")
        .iter()
        .map(|c| c.as_u64().expect("shard count"))
        .collect();
    assert_eq!(counts, vec![1, 2, 4, 8], "sweep drifted");
    let batches = doc["batch_sizes"].as_array().expect("`batch_sizes`");
    assert!(!batches.is_empty());
    let systems: Vec<&str> = doc["systems"]
        .as_array()
        .expect("`systems`")
        .iter()
        .map(|s| s.as_str().expect("system name"))
        .collect();
    assert_eq!(systems, vec!["flat", "u200-ddr4", "u280-hbm2"]);
    let policies: Vec<&str> = doc["policies"]
        .as_array()
        .expect("`policies`")
        .iter()
        .map(|p| p.as_str().expect("policy name"))
        .collect();
    assert_eq!(policies, vec!["round-robin", "greedy", "optimized"]);

    // Full cross product: 4 scenarios × 4 counts × batches × 3 systems
    // × 3 policies on the 6³ meshes (216 elements, nothing clamps).
    let rows = doc["rows"].as_array().expect("`rows` is an array");
    assert_eq!(
        rows.len(),
        4 * counts.len() * batches.len() * systems.len() * policies.len(),
        "banking sweep coverage drifted"
    );
    for r in rows {
        let name = r["scenario"].as_str().expect("scenario");
        let banks = r["banks"].as_u64().expect("banks");
        assert!(r["shard_count"].as_u64().expect("shard_count") >= 1);
        assert!(r["batch_elements"].as_u64().is_some());
        assert!(r["banks_used"].as_u64().expect("banks_used") <= banks);
        assert_eq!(r["capacity_respected"].as_bool(), Some(true), "{name}");
        assert!(r["modeled_makespan_cycles"].as_u64().expect("modeled") > 0);
        let emulated = r["emulated_makespan_cycles"].as_u64().expect("emulated");
        assert!(emulated > 0, "{name}");

        // Acceptance gate 1: every 1-bank degenerate row reproduces the
        // unbanked backend's flat quote exactly — banking is a
        // scheduling overlay, and its degenerate case is the old model.
        if banks == 1 {
            assert_eq!(r["memory_system"].as_str(), Some("flat"));
            assert_eq!(
                r["matches_flat_quote"].as_bool(),
                Some(true),
                "{name}: 1-bank {} diverged from the flat quote ({emulated} vs {:?})",
                r["policy"],
                r["flat_quote_cycles"]
            );
            assert_eq!(r["bank_stall_cycles_total"].as_u64(), Some(0));
        }
    }

    // Acceptance gate 2: at 8 shards on the 32-bank HBM system the
    // optimized assignment strictly beats round-robin on DES makespan
    // for at least two registry scenarios.
    let wins = doc["hbm_win_scenarios"]
        .as_array()
        .expect("`hbm_win_scenarios`");
    assert!(
        wins.len() >= 2,
        "optimized beats round-robin in only {} scenarios: {wins:?}",
        wins.len()
    );
    for name in [
        "taylor-green-vortex",
        "lid-driven-cavity",
        "double-shear-layer",
        "acoustic-pulse",
    ] {
        let cycles = |policy: &str| -> u64 {
            rows.iter()
                .filter(|r| {
                    r["scenario"].as_str() == Some(name)
                        && r["shard_count"].as_u64() == Some(8)
                        && r["memory_system"].as_str() == Some("u280-hbm2")
                        && r["policy"].as_str() == Some(policy)
                })
                .map(|r| r["emulated_makespan_cycles"].as_u64().unwrap())
                .max()
                .unwrap_or_else(|| panic!("{name}: no 8-shard HBM rows"))
        };
        assert!(
            cycles("optimized") <= cycles("round-robin"),
            "{name}: optimized {} worse than round-robin {}",
            cycles("optimized"),
            cycles("round-robin")
        );
    }

    // The Pareto frontier exists, ranks only the physical multi-bank
    // systems (the contention-free flat baseline would trivially
    // dominate), and is truly non-dominated per cell.
    let frontier = doc["frontier"].as_array().expect("`frontier`");
    assert!(!frontier.is_empty());
    for p in frontier {
        assert!(p["banks"].as_u64().expect("banks") >= 2);
        assert!(p["aggregate_bw_gbps"].as_f64().expect("bw") > 0.0);
        let p_make = p["emulated_makespan_cycles"].as_u64().expect("makespan");
        for q in frontier {
            let same_cell = p["scenario"] == q["scenario"]
                && p["shard_count"] == q["shard_count"]
                && p["batch_elements"] == q["batch_elements"];
            if same_cell && !std::ptr::eq(p, q) {
                let dominates = q["banks"].as_u64().unwrap() <= p["banks"].as_u64().unwrap()
                    && q["emulated_makespan_cycles"].as_u64().unwrap() < p_make;
                assert!(!dominates, "{q:?} dominates frontier point {p:?}");
            }
        }
    }
}

#[test]
fn ensemble_json_schema() {
    let doc = repro_json("ensemble");

    assert!(doc["edge"].as_u64().is_some(), "missing `edge`");
    assert!(doc["steps"].as_u64().is_some(), "missing `steps`");
    assert!(doc["threads"].as_u64().is_some(), "missing `threads`");
    let counts: Vec<u64> = doc["member_counts"]
        .as_array()
        .expect("`member_counts` is an array")
        .iter()
        .map(|c| c.as_u64().expect("member count"))
        .collect();
    assert_eq!(counts, vec![1, 2, 4, 8], "member sweep drifted");

    // Throughput sweep: one row per member count, every member passing,
    // with the same-mesh savings ratio equal to the member count (N
    // members on one shared context hold its bytes exactly once).
    let scaling = doc["scaling"].as_array().expect("`scaling` is an array");
    assert_eq!(scaling.len(), counts.len());
    for (row, &members) in scaling.iter().zip(&counts) {
        assert_eq!(row["members"].as_u64(), Some(members));
        assert!(row["workers"].as_u64().expect("workers") >= 1);
        assert_eq!(row["contexts"].as_u64(), Some(1), "same-mesh sweep split");
        assert!(row["wall_s"].as_f64().expect("wall_s") >= 0.0);
        assert!(
            row["members_per_sec"].as_f64().expect("members_per_sec") > 0.0,
            "throughput must be positive"
        );
        let shared = row["shared_context_bytes"].as_u64().expect("shared bytes");
        let unshared = row["unshared_context_bytes"]
            .as_u64()
            .expect("unshared bytes");
        assert!(shared > 0);
        assert_eq!(unshared, shared * members, "memory accounting drifted");
        let ratio = row["memory_savings_ratio"].as_f64().expect("ratio");
        assert!(
            (ratio - members as f64).abs() < 1e-9,
            "savings ratio {ratio} != member count {members}"
        );
        assert_eq!(row["all_passed"].as_bool(), Some(true), "×{members}");
    }

    // Acceptance: the 8-member same-mesh sweep shares ≥ 2× memory.
    assert_eq!(doc["same_mesh_members"].as_u64(), Some(8));
    let savings = doc["same_mesh_savings_ratio"].as_f64().expect("savings");
    assert!(savings >= 2.0, "8-member sweep saved only {savings}x");

    // Registry × backend matrix: every scenario under the reference,
    // sharded, and dataflow-emulated backends, grouped onto exactly two
    // shared contexts (the periodic box and the walled cavity box).
    assert_eq!(doc["backend_contexts"].as_u64(), Some(2));
    let rows = doc["backend_rows"].as_array().expect("`backend_rows`");
    assert_eq!(rows.len() % 3, 0, "rows come in backend triples");
    for name in [
        "taylor-green-vortex",
        "lid-driven-cavity",
        "double-shear-layer",
        "acoustic-pulse",
    ] {
        let backends: Vec<&str> = rows
            .iter()
            .filter(|r| r["scenario"].as_str() == Some(name))
            .map(|r| r["backend"].as_str().expect("backend name"))
            .collect();
        assert_eq!(backends.len(), 3, "scenario `{name}` not fully served");
        assert!(backends.contains(&"reference(serial)"), "{backends:?}");
        assert!(
            backends.contains(&"multidevice(4, partitioned)"),
            "{backends:?}"
        );
        assert!(
            backends.contains(&"dataflow-emulated(2, contiguous)"),
            "{backends:?}"
        );
    }
    for r in rows {
        let name = r["scenario"].as_str().expect("scenario");
        assert!(r["dt"].as_f64().expect("dt") > 0.0, "{name}");
        assert!(r["kinetic_energy"].as_f64().expect("KE") > 0.0, "{name}");
        assert!(r["enstrophy"].as_f64().is_some(), "{name}");
        assert!(r["wall_ms"].as_f64().expect("wall_ms") >= 0.0, "{name}");
        assert_eq!(r["invariants_passed"].as_bool(), Some(true), "{name}");
    }

    // Acceptance: the declarative spec path is a description of the
    // imperative API, not a second code path — trajectories match
    // bitwise.
    assert_eq!(doc["spec_vs_setters_bitwise"].as_bool(), Some(true));
}

#[test]
fn table1_json_schema() {
    let doc = repro_json("table1");

    for design in ["vitis", "proposed"] {
        let row = &doc[design];
        assert!(
            row["design"].as_str().is_some(),
            "table1 `{design}` missing `design` name"
        );
        let fmax = row["fmax_mhz"].as_f64().expect("numeric fmax_mhz");
        assert!(fmax > 0.0);
        let util = row["utilization_percent"]
            .as_array()
            .expect("utilization_percent array");
        // Table I column order: FF / LUT / BRAM / URAM / DSP.
        assert_eq!(util.len(), 5);
        for u in util {
            let pct = u.as_f64().expect("numeric utilization");
            assert!(
                (0.0..=100.0).contains(&pct),
                "utilization out of range: {pct}"
            );
        }
    }

    for key in ["paper_vitis", "paper_proposed"] {
        let arr = doc[key]
            .as_array()
            .unwrap_or_else(|| panic!("missing `{key}`"));
        assert_eq!(arr.len(), 5);
    }
}
