//! Cached-vs-recompute and fused-vs-split RHS study: `repro geometry`.
//!
//! Measures one full viscous RKL residual assembly on TGV boxes along the
//! optimization ladder this repo climbed in PR 3:
//!
//! 1. `recompute+split` — the seed hot path: element Jacobians rebuilt
//!    from nodal coordinates on every evaluation, two weak-divergence
//!    contractions (convective then viscous).
//! 2. `cached+split` — same split kernels reading the precomputed
//!    [`GeometryCache`] slices: isolates the geometry-cache win.
//! 3. `cached+fused` — the production serial path: cached geometry plus
//!    the fused `F_c − F_v` single-contraction kernel.
//! 4. `cached+fused colored` — the production parallel path
//!    ([`AssemblyStrategy::Colored`]), whose result is bitwise identical
//!    across any worker/chunk granularity.
//!
//! Every path is cross-checked against the seed residual, the colored
//! path's bitwise schedule-independence is verified across chunk
//! granularities (the knob that subsumes thread count in the in-order
//! rayon stub), and the table reports the cache's memory footprint — the
//! space the optimization trades for the per-stage Jacobian rebuild.

use fem_mesh::coloring::ElementColoring;
use fem_mesh::generator::BoxMeshBuilder;
use fem_mesh::geometry::GeometryCache;
use fem_mesh::hex::{ElementGeometry, GeometryScratch};
use fem_mesh::HexMesh;
use fem_numerics::rk::StateOps;
use fem_numerics::tensor::HexBasis;
use fem_solver::kernels::{convective_flux, viscous_flux, weak_divergence, ElementWorkspace};
use fem_solver::parallel::{
    assemble_rhs_colored_with_chunk, assemble_rhs_into, assemble_rhs_split_into, AssemblyStrategy,
};
use fem_solver::state::{Conserved, Primitives};
use fem_solver::tgv::TgvConfig;
use serde::Serialize;
use std::time::Instant;

/// One (mesh size, RHS path) measurement.
#[derive(Debug, Clone, Serialize)]
pub struct GeometryRow {
    /// Elements per axis of the periodic TGV box.
    pub edge: usize,
    /// Total mesh nodes.
    pub nodes: usize,
    /// Path label (`recompute+split`, `cached+split`, `cached+fused`,
    /// `cached+fused colored`).
    pub path: String,
    /// Mean wall-clock milliseconds per full RHS assembly.
    pub millis_per_assembly: f64,
    /// Seed (`recompute+split`) time divided by this path's time.
    pub speedup_vs_seed: f64,
    /// Max abs deviation from the seed residual, relative to the seed
    /// max-norm (floored at 1): a correctness cross-check.
    pub max_rel_error_vs_seed: f64,
}

/// Per-mesh-size derived summary.
#[derive(Debug, Clone, Serialize)]
pub struct GeometrySummary {
    /// Elements per axis.
    pub edge: usize,
    /// Total mesh nodes.
    pub nodes: usize,
    /// Heap bytes held by the geometry cache for this mesh.
    pub cache_memory_bytes: usize,
    /// Speedup of cached geometry alone (split kernels on both sides).
    pub cached_over_recompute: f64,
    /// Speedup of the fused single contraction alone (cached geometry on
    /// both sides).
    pub fused_over_split: f64,
    /// Headline: the full cached+fused serial path over the seed path.
    pub cached_fused_over_seed: f64,
    /// Whether the colored path produced bitwise-identical residuals
    /// across all tested chunk granularities.
    pub colored_bitwise_stable: bool,
}

/// The full study plus the environment it was measured in.
#[derive(Debug, Clone, Serialize)]
pub struct GeometryStudy {
    /// Worker threads available to the rayon stub.
    pub threads: usize,
    /// Measurements, grouped by edge then path (fixed order, 4 per edge).
    pub rows: Vec<GeometryRow>,
    /// Per-edge derived speedups and the cache footprint.
    pub summaries: Vec<GeometrySummary>,
}

impl std::fmt::Display for GeometryStudy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Geometry cache + fused kernel: RHS assembly ladder ({} threads):",
            self.threads
        )?;
        writeln!(
            f,
            "  {:>5} {:>8} {:>22} {:>12} {:>9} {:>12}",
            "edge", "nodes", "path", "ms/assembly", "speedup", "max rel err"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:>5} {:>8} {:>22} {:>12.3} {:>8.2}x {:>12.2e}",
                r.edge,
                r.nodes,
                r.path,
                r.millis_per_assembly,
                r.speedup_vs_seed,
                r.max_rel_error_vs_seed
            )?;
        }
        for s in &self.summaries {
            writeln!(
                f,
                "  edge {:>2}: cache {:>8} B | cached/recompute {:.2}x | fused/split {:.2}x | total {:.2}x | colored bitwise stable: {}",
                s.edge,
                s.cache_memory_bytes,
                s.cached_over_recompute,
                s.fused_over_split,
                s.cached_fused_over_seed,
                s.colored_bitwise_stable
            )?;
        }
        Ok(())
    }
}

/// The seed hot path, reproduced verbatim: geometry rebuilt per element,
/// split convective + viscous contractions, serial element order.
fn assemble_seed_recompute_split(
    mesh: &HexMesh,
    basis: &HexBasis,
    gas: &fem_solver::gas::GasModel,
    conserved: &Conserved,
    prim: &Primitives,
    out: &mut Conserved,
) {
    let npe = mesh.nodes_per_element();
    let mut ws = ElementWorkspace::new(npe);
    let mut scratch = GeometryScratch::new(npe);
    let mut geom = ElementGeometry::with_capacity(npe);
    out.set_zero();
    for e in 0..mesh.num_elements() {
        mesh.fill_element_geometry(e, basis, &mut scratch, &mut geom)
            .expect("valid mesh geometry");
        ws.gather(mesh.element_nodes(e), conserved, prim);
        ws.zero_residuals();
        convective_flux(&mut ws);
        weak_divergence(&mut ws, basis, geom.view(), 1.0);
        if gas.mu > 0.0 {
            viscous_flux(&mut ws, gas, basis, geom.view());
            weak_divergence(&mut ws, basis, geom.view(), -1.0);
        }
        ws.scatter_add(mesh.element_nodes(e), out);
    }
}

fn max_rel_error(reference: &Conserved, candidate: &Conserved) -> f64 {
    let mut ref_flat = Vec::new();
    reference.for_each_field(|fld| ref_flat.extend_from_slice(fld));
    let mut cand_flat = Vec::new();
    candidate.for_each_field(|fld| cand_flat.extend_from_slice(fld));
    let scale = ref_flat.iter().fold(1.0f64, |m, &v| m.max(v.abs()));
    ref_flat
        .iter()
        .zip(&cand_flat)
        .map(|(a, b)| (a - b).abs() / scale)
        .fold(0.0, f64::max)
}

fn bits(c: &Conserved) -> Vec<u64> {
    let mut out = Vec::new();
    c.for_each_field(|f| out.extend(f.iter().map(|x| x.to_bits())));
    out
}

/// One labeled RHS-assembly path under measurement.
type AssemblyPath<'a> = (&'a str, Box<dyn Fn(&mut Conserved) + 'a>);

/// Runs the study: `reps` timed assemblies per path on a viscous TGV box
/// of each `edges` entry.
///
/// # Panics
///
/// Panics if `reps == 0` or mesh construction fails.
pub fn run_geometry_study(edges: &[usize], reps: usize) -> GeometryStudy {
    assert!(reps > 0, "reps");
    let threads = fem_solver::parallel::available_threads();
    let mut rows = Vec::new();
    let mut summaries = Vec::new();
    for &edge in edges {
        let mesh = BoxMeshBuilder::tgv_box(edge).build().expect("valid box");
        let basis = HexBasis::new(1).expect("valid basis");
        let cfg = TgvConfig::standard();
        let gas = cfg.gas();
        assert!(gas.mu > 0.0, "the study measures the viscous hot path");
        let conserved = cfg.initial_state(&mesh);
        let mut prim = Primitives::zeros(mesh.num_nodes());
        prim.update_from(&conserved, &gas);
        let geometry = GeometryCache::build(&mesh, &basis).expect("valid geometry");
        let coloring = ElementColoring::greedy(&mesh);

        let mut out = Conserved::zeros(mesh.num_nodes());
        let mut seed = Conserved::zeros(mesh.num_nodes());

        let paths: [AssemblyPath; 4] = [
            (
                "recompute+split",
                Box::new(|out: &mut Conserved| {
                    assemble_seed_recompute_split(&mesh, &basis, &gas, &conserved, &prim, out)
                }),
            ),
            (
                "cached+split",
                Box::new(|out: &mut Conserved| {
                    assemble_rhs_split_into(
                        &mesh,
                        &basis,
                        &gas,
                        &geometry,
                        &conserved,
                        &prim,
                        AssemblyStrategy::Serial,
                        None,
                        out,
                    )
                }),
            ),
            (
                "cached+fused",
                Box::new(|out: &mut Conserved| {
                    assemble_rhs_into(
                        &mesh,
                        &basis,
                        &gas,
                        &geometry,
                        &conserved,
                        &prim,
                        AssemblyStrategy::Serial,
                        None,
                        out,
                        None,
                    )
                }),
            ),
            (
                "cached+fused colored",
                Box::new(|out: &mut Conserved| {
                    assemble_rhs_into(
                        &mesh,
                        &basis,
                        &gas,
                        &geometry,
                        &conserved,
                        &prim,
                        AssemblyStrategy::Colored,
                        Some(&coloring),
                        out,
                        None,
                    )
                }),
            ),
        ];

        let mut times = [0.0f64; 4];
        for (i, (label, assemble)) in paths.iter().enumerate() {
            // Warm-up (also produces the correctness snapshot).
            assemble(&mut out);
            if i == 0 {
                seed.copy_from(&out);
            }
            let t0 = Instant::now();
            for _ in 0..reps {
                assemble(&mut out);
            }
            let ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;
            times[i] = ms;
            rows.push(GeometryRow {
                edge,
                nodes: mesh.num_nodes(),
                path: (*label).to_string(),
                millis_per_assembly: ms,
                speedup_vs_seed: if ms > 0.0 { times[0] / ms } else { 0.0 },
                max_rel_error_vs_seed: max_rel_error(&seed, &out),
            });
        }

        // Colored bitwise stability across chunk granularities — the
        // schedule knob that varies per-thread work assignment.
        let mut colored_bits: Option<Vec<u64>> = None;
        let mut stable = true;
        for chunk in [1usize, 7, 4096] {
            let mut c = Conserved::zeros(mesh.num_nodes());
            assemble_rhs_colored_with_chunk(
                &mesh, &basis, &gas, &geometry, &conserved, &prim, &coloring, chunk, &mut c, None,
            );
            let b = bits(&c);
            match &colored_bits {
                None => colored_bits = Some(b),
                Some(reference) => stable &= *reference == b,
            }
        }

        summaries.push(GeometrySummary {
            edge,
            nodes: mesh.num_nodes(),
            cache_memory_bytes: geometry.memory_bytes(),
            cached_over_recompute: times[0] / times[1].max(f64::MIN_POSITIVE),
            fused_over_split: times[1] / times[2].max(f64::MIN_POSITIVE),
            cached_fused_over_seed: times[0] / times[2].max(f64::MIN_POSITIVE),
            colored_bitwise_stable: stable,
        });
    }
    GeometryStudy {
        threads,
        rows,
        summaries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_study_is_consistent() {
        let study = run_geometry_study(&[4], 1);
        assert_eq!(study.rows.len(), 4);
        assert_eq!(study.summaries.len(), 1);
        assert!(study.threads >= 1);
        assert_eq!(study.rows[0].path, "recompute+split");
        assert!((study.rows[0].speedup_vs_seed - 1.0).abs() < 1e-12);
        for r in &study.rows {
            assert_eq!(r.edge, 4);
            assert!(r.millis_per_assembly > 0.0, "{}: no time", r.path);
            assert!(
                r.max_rel_error_vs_seed < 1e-12,
                "{}: rel err {}",
                r.path,
                r.max_rel_error_vs_seed
            );
        }
        let s = &study.summaries[0];
        // 4³ elements × 8 nodes × (72 + 8) B.
        assert_eq!(s.cache_memory_bytes, 64 * 8 * 80);
        assert!(s.colored_bitwise_stable);
        // The table serializes (the repro --json path).
        let json = serde_json::to_string(&study).unwrap();
        assert!(json.contains("\"summaries\""), "{json}");
        let shown = format!("{study}");
        assert!(shown.contains("cached+fused colored"), "{shown}");
    }
}
