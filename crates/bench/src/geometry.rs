//! Cached-vs-recompute and fused-vs-split RHS study: `repro geometry`.
//!
//! Measures one full viscous RKL residual assembly on TGV boxes along the
//! optimization ladder this repo climbed in PR 3:
//!
//! 1. `recompute+split` — the seed hot path: element Jacobians rebuilt
//!    from nodal coordinates on every evaluation, two weak-divergence
//!    contractions (convective then viscous).
//! 2. `cached+split` — same split kernels reading the precomputed
//!    [`GeometryCache`] slices: isolates the geometry-cache win.
//! 3. `cached+fused` — the production serial path: cached geometry plus
//!    the fused `F_c − F_v` single-contraction kernel.
//! 4. `cached+fused colored` — the production parallel path
//!    ([`AssemblyStrategy::Colored`]), whose result is bitwise identical
//!    across any worker/chunk granularity.
//!
//! Every path is cross-checked against the seed residual, the colored
//! path's bitwise schedule-independence is verified across chunk
//! granularities (the knob that subsumes thread count in the in-order
//! rayon stub), and the table reports the cache's memory footprint — the
//! space the optimization trades for the per-stage Jacobian rebuild.
//!
//! The study also climbs the **order ladder**: at basis orders `p = 1..=4`
//! it times one serial RHS assembly under each [`KernelPath`] — the
//! O(p⁴) sum-factored three-sweep contraction vs the O(p⁶) dense
//! full-matrix reference — locating the order where the factored path
//! overtakes, checking both paths' colored schedules bitwise against
//! their serial references, and bounding the full-vs-factored residual
//! deviation at 1e-12.

use fem_mesh::coloring::ElementColoring;
use fem_mesh::generator::BoxMeshBuilder;
use fem_mesh::geometry::GeometryCache;
use fem_mesh::hex::{ElementGeometry, GeometryScratch};
use fem_mesh::HexMesh;
use fem_numerics::rk::StateOps;
use fem_numerics::tensor::HexBasis;
use fem_solver::kernels::{
    convective_flux, viscous_flux, weak_divergence, ElementWorkspace, KernelOpCounts, KernelPath,
};
use fem_solver::parallel::{
    assemble_rhs_colored_with_chunk, assemble_rhs_into, assemble_rhs_split_into, AssemblyStrategy,
};
use fem_solver::state::{Conserved, Primitives};
use fem_solver::tgv::TgvConfig;
use serde::Serialize;
use std::time::Instant;

/// One (mesh size, RHS path) measurement.
#[derive(Debug, Clone, Serialize)]
pub struct GeometryRow {
    /// Elements per axis of the periodic TGV box.
    pub edge: usize,
    /// Total mesh nodes.
    pub nodes: usize,
    /// Path label (`recompute+split`, `cached+split`, `cached+fused`,
    /// `cached+fused colored`).
    pub path: String,
    /// Mean wall-clock milliseconds per full RHS assembly.
    pub millis_per_assembly: f64,
    /// Seed (`recompute+split`) time divided by this path's time.
    pub speedup_vs_seed: f64,
    /// Max abs deviation from the seed residual, relative to the seed
    /// max-norm (floored at 1): a correctness cross-check.
    pub max_rel_error_vs_seed: f64,
}

/// Per-mesh-size derived summary.
#[derive(Debug, Clone, Serialize)]
pub struct GeometrySummary {
    /// Elements per axis.
    pub edge: usize,
    /// Total mesh nodes.
    pub nodes: usize,
    /// Heap bytes held by the geometry cache for this mesh.
    pub cache_memory_bytes: usize,
    /// Speedup of cached geometry alone (split kernels on both sides).
    pub cached_over_recompute: f64,
    /// Speedup of the fused single contraction alone (cached geometry on
    /// both sides).
    pub fused_over_split: f64,
    /// Headline: the full cached+fused serial path over the seed path.
    pub cached_fused_over_seed: f64,
    /// Whether the colored path produced bitwise-identical residuals
    /// across all tested chunk granularities.
    pub colored_bitwise_stable: bool,
}

/// One order-ladder rung: sum-factored vs full-matrix weak divergence at
/// basis order `p` on a fixed TGV box.
#[derive(Debug, Clone, Serialize)]
pub struct OrderLadderRung {
    /// Basis order `p`.
    pub order: usize,
    /// Nodes per element, `(p+1)³`.
    pub nodes_per_element: usize,
    /// Elements in the ladder mesh.
    pub elements: usize,
    /// Mean wall-clock ms per serial RHS assembly, full-matrix path.
    pub millis_full_matrix: f64,
    /// Mean wall-clock ms per serial RHS assembly, sum-factored path.
    pub millis_sum_factored: f64,
    /// Full-matrix time over sum-factored time (> 1 ⇒ factored wins).
    pub factored_speedup: f64,
    /// Modeled weak-divergence flops per element, sum-factored: O(p⁴).
    pub factored_divergence_flops: usize,
    /// Modeled weak-divergence flops per element, full-matrix: O(p⁶).
    pub full_matrix_divergence_flops: usize,
    /// The colored sum-factored assembly reproduced the serial
    /// sum-factored reference bitwise at this order.
    pub factored_bitwise_vs_reference: bool,
    /// The colored full-matrix assembly reproduced the serial full-matrix
    /// result bitwise at this order.
    pub full_matrix_bitwise_vs_reference: bool,
    /// Max deviation of the full-matrix residual from the sum-factored
    /// reference, relative to the reference max-norm (floored at 1).
    pub max_rel_error_full_vs_factored: f64,
}

/// The full study plus the environment it was measured in.
#[derive(Debug, Clone, Serialize)]
pub struct GeometryStudy {
    /// Worker threads available to the rayon stub.
    pub threads: usize,
    /// Measurements, grouped by edge then path (fixed order, 4 per edge).
    pub rows: Vec<GeometryRow>,
    /// Per-edge derived speedups and the cache footprint.
    pub summaries: Vec<GeometrySummary>,
    /// Sum-factored vs full-matrix timings at `p = 1..=4`.
    pub order_ladder: Vec<OrderLadderRung>,
    /// Lowest order at which the sum-factored path beat the full-matrix
    /// path (`None` if it never did — a performance regression).
    pub factored_crossover_order: Option<usize>,
}

impl std::fmt::Display for GeometryStudy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Geometry cache + fused kernel: RHS assembly ladder ({} threads):",
            self.threads
        )?;
        writeln!(
            f,
            "  {:>5} {:>8} {:>22} {:>12} {:>9} {:>12}",
            "edge", "nodes", "path", "ms/assembly", "speedup", "max rel err"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:>5} {:>8} {:>22} {:>12.3} {:>8.2}x {:>12.2e}",
                r.edge,
                r.nodes,
                r.path,
                r.millis_per_assembly,
                r.speedup_vs_seed,
                r.max_rel_error_vs_seed
            )?;
        }
        for s in &self.summaries {
            writeln!(
                f,
                "  edge {:>2}: cache {:>8} B | cached/recompute {:.2}x | fused/split {:.2}x | total {:.2}x | colored bitwise stable: {}",
                s.edge,
                s.cache_memory_bytes,
                s.cached_over_recompute,
                s.fused_over_split,
                s.cached_fused_over_seed,
                s.colored_bitwise_stable
            )?;
        }
        writeln!(f, "Order ladder: sum-factored vs full-matrix contraction:")?;
        writeln!(
            f,
            "  {:>2} {:>5} {:>10} {:>10} {:>8} {:>10} {:>10} {:>8} {:>12}",
            "p",
            "npe",
            "ms full",
            "ms fact",
            "speedup",
            "fl flops",
            "fm flops",
            "bitwise",
            "max rel err"
        )?;
        for r in &self.order_ladder {
            writeln!(
                f,
                "  {:>2} {:>5} {:>10.3} {:>10.3} {:>7.2}x {:>10} {:>10} {:>8} {:>12.2e}",
                r.order,
                r.nodes_per_element,
                r.millis_full_matrix,
                r.millis_sum_factored,
                r.factored_speedup,
                r.factored_divergence_flops,
                r.full_matrix_divergence_flops,
                r.factored_bitwise_vs_reference && r.full_matrix_bitwise_vs_reference,
                r.max_rel_error_full_vs_factored
            )?;
        }
        match self.factored_crossover_order {
            Some(p) => writeln!(f, "  factored path ahead from p = {p}")?,
            None => writeln!(f, "  factored path never overtook full-matrix")?,
        }
        Ok(())
    }
}

/// The seed hot path, reproduced verbatim: geometry rebuilt per element,
/// split convective + viscous contractions, serial element order.
fn assemble_seed_recompute_split(
    mesh: &HexMesh,
    basis: &HexBasis,
    gas: &fem_solver::gas::GasModel,
    conserved: &Conserved,
    prim: &Primitives,
    out: &mut Conserved,
) {
    let npe = mesh.nodes_per_element();
    let mut ws = ElementWorkspace::new(npe);
    let mut scratch = GeometryScratch::new(npe);
    let mut geom = ElementGeometry::with_capacity(npe);
    out.set_zero();
    for e in 0..mesh.num_elements() {
        mesh.fill_element_geometry(e, basis, &mut scratch, &mut geom)
            .expect("valid mesh geometry");
        ws.gather(mesh.element_nodes(e), conserved, prim);
        ws.zero_residuals();
        convective_flux(&mut ws);
        weak_divergence(&mut ws, basis, geom.view(), 1.0);
        if gas.mu > 0.0 {
            viscous_flux(&mut ws, gas, basis, geom.view());
            weak_divergence(&mut ws, basis, geom.view(), -1.0);
        }
        ws.scatter_add(mesh.element_nodes(e), out);
    }
}

fn max_rel_error(reference: &Conserved, candidate: &Conserved) -> f64 {
    let mut ref_flat = Vec::new();
    reference.for_each_field(|fld| ref_flat.extend_from_slice(fld));
    let mut cand_flat = Vec::new();
    candidate.for_each_field(|fld| cand_flat.extend_from_slice(fld));
    let scale = ref_flat.iter().fold(1.0f64, |m, &v| m.max(v.abs()));
    ref_flat
        .iter()
        .zip(&cand_flat)
        .map(|(a, b)| (a - b).abs() / scale)
        .fold(0.0, f64::max)
}

fn bits(c: &Conserved) -> Vec<u64> {
    let mut out = Vec::new();
    c.for_each_field(|f| out.extend(f.iter().map(|x| x.to_bits())));
    out
}

/// One labeled RHS-assembly path under measurement.
type AssemblyPath<'a> = (&'a str, Box<dyn Fn(&mut Conserved) + 'a>);

/// Elements per axis of the order-ladder box — small, because the
/// full-matrix side grows as O(p⁶) per element.
const LADDER_EDGE: usize = 3;
/// Highest basis order on the ladder.
const LADDER_MAX_ORDER: usize = 4;

/// Times one serial RHS assembly under each [`KernelPath`] at orders
/// `p = 1..=4` on a viscous TGV box, cross-checking the full-matrix
/// residual against the sum-factored reference and both colored
/// schedules bitwise against their serial counterparts.
fn run_order_ladder(reps: usize) -> Vec<OrderLadderRung> {
    let mut rungs = Vec::new();
    for order in 1..=LADDER_MAX_ORDER {
        let mesh = BoxMeshBuilder::tgv_box(LADDER_EDGE)
            .order(order)
            .build()
            .expect("valid ladder box");
        let basis = HexBasis::new(order).expect("valid ladder basis");
        let cfg = TgvConfig::standard();
        let gas = cfg.gas();
        let conserved = cfg.initial_state(&mesh);
        let mut prim = Primitives::zeros(mesh.num_nodes());
        prim.update_from(&conserved, &gas);
        let geometry = GeometryCache::build(&mesh, &basis).expect("valid ladder geometry");
        let coloring = ElementColoring::greedy(&mesh);
        let counts = KernelOpCounts::for_basis(&basis);

        let mut serial = [
            Conserved::zeros(mesh.num_nodes()),
            Conserved::zeros(mesh.num_nodes()),
        ];
        let mut millis = [0.0f64; 2];
        let mut bitwise = [false; 2];
        for (i, path) in KernelPath::ALL.into_iter().enumerate() {
            let assemble = |strategy, coloring, out: &mut Conserved| {
                assemble_rhs_into(
                    &mesh, &basis, &gas, &geometry, &conserved, &prim, strategy, coloring, path,
                    out, None,
                )
            };
            // Warm-up doubles as the correctness snapshot.
            assemble(AssemblyStrategy::Serial, None, &mut serial[i]);
            let t0 = Instant::now();
            let mut out = Conserved::zeros(mesh.num_nodes());
            for _ in 0..reps {
                assemble(AssemblyStrategy::Serial, None, &mut out);
            }
            millis[i] = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;
            // Schedule independence: the colored scatter must reproduce
            // the serial result bitwise on this path too.
            assemble(AssemblyStrategy::Colored, Some(&coloring), &mut out);
            bitwise[i] = bits(&out) == bits(&serial[i]);
        }
        let [millis_factored, millis_full] = millis;
        rungs.push(OrderLadderRung {
            order,
            nodes_per_element: basis.nodes_per_element(),
            elements: mesh.num_elements(),
            millis_full_matrix: millis_full,
            millis_sum_factored: millis_factored,
            factored_speedup: millis_full / millis_factored.max(f64::MIN_POSITIVE),
            factored_divergence_flops: counts.divergence_flops_for(KernelPath::SumFactored),
            full_matrix_divergence_flops: counts.divergence_flops_for(KernelPath::FullMatrix),
            factored_bitwise_vs_reference: bitwise[0],
            full_matrix_bitwise_vs_reference: bitwise[1],
            max_rel_error_full_vs_factored: max_rel_error(&serial[0], &serial[1]),
        });
    }
    rungs
}

/// Runs the study: `reps` timed assemblies per path on a viscous TGV box
/// of each `edges` entry.
///
/// # Panics
///
/// Panics if `reps == 0` or mesh construction fails.
pub fn run_geometry_study(edges: &[usize], reps: usize) -> GeometryStudy {
    assert!(reps > 0, "reps");
    let threads = fem_solver::parallel::available_threads();
    let mut rows = Vec::new();
    let mut summaries = Vec::new();
    for &edge in edges {
        let mesh = BoxMeshBuilder::tgv_box(edge).build().expect("valid box");
        let basis = HexBasis::new(1).expect("valid basis");
        let cfg = TgvConfig::standard();
        let gas = cfg.gas();
        assert!(gas.mu > 0.0, "the study measures the viscous hot path");
        let conserved = cfg.initial_state(&mesh);
        let mut prim = Primitives::zeros(mesh.num_nodes());
        prim.update_from(&conserved, &gas);
        let geometry = GeometryCache::build(&mesh, &basis).expect("valid geometry");
        let coloring = ElementColoring::greedy(&mesh);

        let mut out = Conserved::zeros(mesh.num_nodes());
        let mut seed = Conserved::zeros(mesh.num_nodes());

        let paths: [AssemblyPath; 4] = [
            (
                "recompute+split",
                Box::new(|out: &mut Conserved| {
                    assemble_seed_recompute_split(&mesh, &basis, &gas, &conserved, &prim, out)
                }),
            ),
            (
                "cached+split",
                Box::new(|out: &mut Conserved| {
                    assemble_rhs_split_into(
                        &mesh,
                        &basis,
                        &gas,
                        &geometry,
                        &conserved,
                        &prim,
                        AssemblyStrategy::Serial,
                        None,
                        out,
                    )
                }),
            ),
            (
                "cached+fused",
                Box::new(|out: &mut Conserved| {
                    assemble_rhs_into(
                        &mesh,
                        &basis,
                        &gas,
                        &geometry,
                        &conserved,
                        &prim,
                        AssemblyStrategy::Serial,
                        None,
                        KernelPath::SumFactored,
                        out,
                        None,
                    )
                }),
            ),
            (
                "cached+fused colored",
                Box::new(|out: &mut Conserved| {
                    assemble_rhs_into(
                        &mesh,
                        &basis,
                        &gas,
                        &geometry,
                        &conserved,
                        &prim,
                        AssemblyStrategy::Colored,
                        Some(&coloring),
                        KernelPath::SumFactored,
                        out,
                        None,
                    )
                }),
            ),
        ];

        let mut times = [0.0f64; 4];
        for (i, (label, assemble)) in paths.iter().enumerate() {
            // Warm-up (also produces the correctness snapshot).
            assemble(&mut out);
            if i == 0 {
                seed.copy_from(&out);
            }
            let t0 = Instant::now();
            for _ in 0..reps {
                assemble(&mut out);
            }
            let ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;
            times[i] = ms;
            rows.push(GeometryRow {
                edge,
                nodes: mesh.num_nodes(),
                path: (*label).to_string(),
                millis_per_assembly: ms,
                speedup_vs_seed: if ms > 0.0 { times[0] / ms } else { 0.0 },
                max_rel_error_vs_seed: max_rel_error(&seed, &out),
            });
        }

        // Colored bitwise stability across chunk granularities — the
        // schedule knob that varies per-thread work assignment.
        let mut colored_bits: Option<Vec<u64>> = None;
        let mut stable = true;
        for chunk in [1usize, 7, 4096] {
            let mut c = Conserved::zeros(mesh.num_nodes());
            assemble_rhs_colored_with_chunk(
                &mesh,
                &basis,
                &gas,
                &geometry,
                &conserved,
                &prim,
                &coloring,
                chunk,
                KernelPath::SumFactored,
                &mut c,
                None,
            );
            let b = bits(&c);
            match &colored_bits {
                None => colored_bits = Some(b),
                Some(reference) => stable &= *reference == b,
            }
        }

        summaries.push(GeometrySummary {
            edge,
            nodes: mesh.num_nodes(),
            cache_memory_bytes: geometry.memory_bytes(),
            cached_over_recompute: times[0] / times[1].max(f64::MIN_POSITIVE),
            fused_over_split: times[1] / times[2].max(f64::MIN_POSITIVE),
            cached_fused_over_seed: times[0] / times[2].max(f64::MIN_POSITIVE),
            colored_bitwise_stable: stable,
        });
    }
    let order_ladder = run_order_ladder(reps);
    let factored_crossover_order = order_ladder
        .iter()
        .find(|r| r.factored_speedup > 1.0)
        .map(|r| r.order);
    GeometryStudy {
        threads,
        rows,
        summaries,
        order_ladder,
        factored_crossover_order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_study_is_consistent() {
        let study = run_geometry_study(&[4], 1);
        assert_eq!(study.rows.len(), 4);
        assert_eq!(study.summaries.len(), 1);
        assert!(study.threads >= 1);
        assert_eq!(study.rows[0].path, "recompute+split");
        assert!((study.rows[0].speedup_vs_seed - 1.0).abs() < 1e-12);
        for r in &study.rows {
            assert_eq!(r.edge, 4);
            assert!(r.millis_per_assembly > 0.0, "{}: no time", r.path);
            assert!(
                r.max_rel_error_vs_seed < 1e-12,
                "{}: rel err {}",
                r.path,
                r.max_rel_error_vs_seed
            );
        }
        let s = &study.summaries[0];
        // 4³ elements × 8 nodes × (72 + 8) B.
        assert_eq!(s.cache_memory_bytes, 64 * 8 * 80);
        assert!(s.colored_bitwise_stable);
        // The table serializes (the repro --json path).
        let json = serde_json::to_string(&study).unwrap();
        assert!(json.contains("\"summaries\""), "{json}");
        assert!(json.contains("\"order_ladder\""), "{json}");
        let shown = format!("{study}");
        assert!(shown.contains("cached+fused colored"), "{shown}");
        assert!(shown.contains("Order ladder"), "{shown}");
    }

    #[test]
    fn order_ladder_spans_the_orders_with_verified_rungs() {
        let study = run_geometry_study(&[4], 1);
        let ladder = &study.order_ladder;
        assert_eq!(
            ladder.iter().map(|r| r.order).collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
        for r in ladder {
            assert_eq!(r.nodes_per_element, (r.order + 1).pow(3));
            assert!(r.elements > 0);
            assert!(r.millis_sum_factored > 0.0, "p={}: no time", r.order);
            assert!(r.millis_full_matrix > 0.0, "p={}: no time", r.order);
            // Both contraction paths compute the same integrals...
            assert!(
                r.max_rel_error_full_vs_factored < 1e-12,
                "p={}: rel err {}",
                r.order,
                r.max_rel_error_full_vs_factored
            );
            // ...and both colored schedules are bitwise-deterministic.
            assert!(r.factored_bitwise_vs_reference, "p={}", r.order);
            assert!(r.full_matrix_bitwise_vs_reference, "p={}", r.order);
            // The flop model: factored O(p⁴) vs full-matrix O(p⁶), with
            // the contraction-term ratio exactly n² = (p+1)².
            let n = r.order + 1;
            let npe = n * n * n;
            assert_eq!(r.factored_divergence_flops, 90 * npe + 30 * n.pow(4));
            assert_eq!(r.full_matrix_divergence_flops, 90 * npe + 30 * npe * npe);
        }
        // Hard perf gates live behind REPRO_PERF_GATE in the repro tests;
        // here just sanity-check the derived speedups are finite.
        assert!(ladder.iter().all(|r| r.factored_speedup.is_finite()));
    }
}
