//! Cross-strategy scenario regression matrix: `repro scenarios`.
//!
//! Runs every entry of the solver's scenario registry
//! ([`fem_solver::scenarios::Scenario`]) under all three
//! [`AssemblyStrategy`] variants and reports:
//!
//! * **Equivalence** — for each RK step, the Chunked and Colored
//!   trajectories are re-launched from the serial state of that step and
//!   the per-field relative deviation after the step is recorded. The
//!   per-step resync keeps the comparison tight (grouping-order rounding
//!   does not accumulate), so every strategy must track serial at
//!   ≤ 1e-12 on every scenario — including the wall-bounded cavity whose
//!   Dirichlet zeroing rides inside the RK loop.
//! * **Invariants** — the scenario's physical checks (conservation, KE
//!   decay, wall adherence, pulse spreading) evaluated on the serial run.
//! * **Workload quotes** — the accelerator-side DDR traffic, FLOPs,
//!   arithmetic intensity and U200 roofline bound for the scenario mesh
//!   (via [`fem_accel::experiments::scenario_workload`]).
//!
//! The `scenario_matrix` integration suite asserts on this exact study,
//! and the CI `repro-artifacts` job gates its JSON output.

use fem_accel::experiments::{scenario_workload, ScenarioWorkload};
use fem_numerics::rk::StateOps;
use fem_solver::scenarios::Scenario;
use fem_solver::state::Conserved;
use fem_solver::AssemblyStrategy;
use serde::Serialize;

/// Maximum per-step relative deviation a strategy may show against the
/// serial reference (the acceptance bar of the regression matrix).
pub const STRATEGY_EQUIVALENCE_TOL: f64 = 1e-12;

/// One (scenario, strategy) cell of the matrix.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioRow {
    /// Scenario identifier.
    pub scenario: String,
    /// Strategy label (`serial`, `chunked(N)`, `colored`).
    pub strategy: String,
    /// RK steps compared.
    pub steps: usize,
    /// Worst per-field relative deviation from the serial state over all
    /// per-step resync comparisons (0 for the serial row itself; field
    /// scales floored at 1).
    pub max_rel_dev_vs_serial: f64,
}

/// One invariant check of a scenario, serialization-friendly.
#[derive(Debug, Clone, Serialize)]
pub struct InvariantRow {
    /// Check identifier.
    pub name: String,
    /// Comparison direction (`<=` or `>=`).
    pub op: String,
    /// Measured value.
    pub value: f64,
    /// Bound compared against.
    pub bound: f64,
    /// Whether the check passed.
    pub passed: bool,
}

/// Per-scenario outcome: equivalence verdict, invariants, workload quote.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioSummary {
    /// Scenario identifier.
    pub scenario: String,
    /// One-line description.
    pub description: String,
    /// Mesh nodes.
    pub nodes: usize,
    /// Mesh elements.
    pub elements: usize,
    /// Dirichlet-pinned nodes (0 for periodic scenarios).
    pub dirichlet_nodes: usize,
    /// Time step used.
    pub dt: f64,
    /// Whether every strategy stayed within
    /// [`STRATEGY_EQUIVALENCE_TOL`] of serial on every step.
    pub strategies_agree: bool,
    /// The scenario's invariant checks (evaluated on the serial run).
    pub invariants: Vec<InvariantRow>,
    /// Whether every invariant check passed.
    pub invariants_pass: bool,
    /// Accelerator workload quote for this scenario's mesh.
    pub workload: ScenarioWorkload,
}

/// The full cross-strategy scenario matrix.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioMatrix {
    /// Elements per axis of every scenario mesh.
    pub edge: usize,
    /// RK steps each scenario ran.
    pub steps: usize,
    /// Worker threads available to the rayon stub.
    pub threads: usize,
    /// (scenario × strategy) cells, strategies in fixed order
    /// (serial, chunked, colored) per scenario.
    pub rows: Vec<ScenarioRow>,
    /// Per-scenario verdicts.
    pub summaries: Vec<ScenarioSummary>,
}

impl std::fmt::Display for ScenarioMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Scenario regression matrix ({}³-element meshes, {} steps, {} threads):",
            self.edge, self.steps, self.threads
        )?;
        writeln!(
            f,
            "  {:>22} {:>14} {:>14}",
            "scenario", "strategy", "max rel dev"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:>22} {:>14} {:>14.2e}",
                r.scenario, r.strategy, r.max_rel_dev_vs_serial
            )?;
        }
        for s in &self.summaries {
            writeln!(
                f,
                "  {} — {} ({} nodes, {} pinned, dt {:.3e}): strategies {}, invariants {}",
                s.scenario,
                s.description,
                s.nodes,
                s.dirichlet_nodes,
                s.dt,
                if s.strategies_agree {
                    "agree"
                } else {
                    "DIVERGE"
                },
                if s.invariants_pass { "pass" } else { "FAIL" },
            )?;
            for c in &s.invariants {
                writeln!(
                    f,
                    "      [{}] {:<24} {:>12.4e} {} {:>10.3e}",
                    if c.passed { "ok" } else { "FAIL" },
                    c.name,
                    c.value,
                    c.op,
                    c.bound
                )?;
            }
            writeln!(
                f,
                "      workload: {:.1} MFLOP/stage, {:.1} MB/stage, AI {:.2} flop/B, DDR bound {:.0} GFLOP/s",
                s.workload.rkl_flops_per_stage as f64 / 1e6,
                s.workload.rkl_bytes_per_stage as f64 / 1e6,
                s.workload.arithmetic_intensity,
                s.workload.ddr_bound_gflops,
            )?;
        }
        Ok(())
    }
}

/// Worst per-field relative deviation between two states, with each
/// field's scale floored at 1 (near-cancelling fields otherwise compare
/// rounding noise against rounding noise).
pub(crate) fn max_rel_dev(reference: &Conserved, candidate: &Conserved) -> f64 {
    fn field_dev(x: &[f64], y: &[f64]) -> f64 {
        let scale = x.iter().fold(1.0f64, |m, &v| m.max(v.abs()));
        x.iter()
            .zip(y)
            .map(|(a, b)| (a - b).abs() / scale)
            .fold(0.0, f64::max)
    }
    let mut worst = field_dev(&reference.rho, &candidate.rho);
    for d in 0..3 {
        worst = worst.max(field_dev(&reference.mom[d], &candidate.mom[d]));
    }
    worst.max(field_dev(&reference.energy, &candidate.energy))
}

/// Runs the matrix: every registered scenario on an `edge`³-element mesh
/// for `steps` RK4 steps under serial, chunked and colored assembly.
///
/// # Panics
///
/// Panics if a scenario fails to build or a step blows up — both mean
/// the registry itself is broken, which the caller cannot recover from.
pub fn run_scenario_matrix(edge: usize, steps: usize) -> ScenarioMatrix {
    assert!(steps > 0, "steps");
    let threads = fem_solver::parallel::available_threads();
    let mut rows = Vec::new();
    let mut summaries = Vec::new();
    for scenario in Scenario::registry() {
        let name = scenario.name();
        let mut serial = scenario
            .simulation(edge)
            .unwrap_or_else(|e| panic!("{name}: build failed: {e}"));
        let dt = serial.suggest_dt(scenario.default_cfl());
        let start = serial.diagnostics();

        let parallel_strategies = [AssemblyStrategy::chunked_auto(), AssemblyStrategy::Colored];
        let mut others: Vec<(AssemblyStrategy, fem_solver::Simulation, f64)> = parallel_strategies
            .iter()
            .map(|&strategy| {
                let mut sim = scenario
                    .simulation(edge)
                    .unwrap_or_else(|e| panic!("{name}: build failed: {e}"));
                sim.set_assembly_strategy(strategy);
                (strategy, sim, 0.0f64)
            })
            .collect();

        for _ in 0..steps {
            let before = serial.conserved().clone();
            serial
                .step(dt)
                .unwrap_or_else(|e| panic!("{name}: serial step failed: {e}"));
            for (strategy, sim, dev) in &mut others {
                // Per-step resync: restart from the serial state so the
                // comparison measures one step's grouping error, not an
                // accumulated trajectory drift.
                sim.conserved_mut().copy_from(&before);
                sim.step(dt)
                    .unwrap_or_else(|e| panic!("{name}: {strategy} step failed: {e}"));
                *dev = dev.max(max_rel_dev(serial.conserved(), sim.conserved()));
            }
        }
        let end = serial.diagnostics();
        let report = scenario.check_invariants(&start, &end, &serial);

        rows.push(ScenarioRow {
            scenario: name.to_string(),
            strategy: AssemblyStrategy::Serial.to_string(),
            steps,
            max_rel_dev_vs_serial: 0.0,
        });
        let mut agree = true;
        for (strategy, _, dev) in &others {
            agree &= *dev <= STRATEGY_EQUIVALENCE_TOL;
            rows.push(ScenarioRow {
                scenario: name.to_string(),
                strategy: strategy.to_string(),
                steps,
                max_rel_dev_vs_serial: *dev,
            });
        }

        let mesh = serial.core().mesh();
        summaries.push(ScenarioSummary {
            scenario: name.to_string(),
            description: scenario.description().to_string(),
            nodes: mesh.num_nodes(),
            elements: mesh.num_elements(),
            dirichlet_nodes: serial
                .bc()
                .map_or(0, fem_solver::boundary::DirichletBc::len),
            dt,
            strategies_agree: agree,
            invariants_pass: report.all_passed(),
            invariants: report
                .checks()
                .iter()
                .map(|c| InvariantRow {
                    name: c.name.to_string(),
                    op: c.op.to_string(),
                    value: c.value,
                    bound: c.bound,
                    passed: c.passed,
                })
                .collect(),
            workload: scenario_workload(name, mesh),
        });
    }
    ScenarioMatrix {
        edge,
        steps,
        threads,
        rows,
        summaries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_runs_all_scenarios_and_strategies() {
        let m = run_scenario_matrix(4, 2);
        assert_eq!(m.summaries.len(), 4);
        assert_eq!(m.rows.len(), 12, "3 strategies per scenario");
        for triple in m.rows.chunks(3) {
            assert_eq!(triple[0].strategy, "serial");
            assert!(triple[1].strategy.starts_with("chunked("));
            assert_eq!(triple[2].strategy, "colored");
            for r in triple {
                assert!(
                    r.max_rel_dev_vs_serial <= STRATEGY_EQUIVALENCE_TOL,
                    "{} / {}: dev {}",
                    r.scenario,
                    r.strategy,
                    r.max_rel_dev_vs_serial
                );
            }
        }
        for s in &m.summaries {
            assert!(s.strategies_agree, "{}", s.scenario);
            assert!(!s.invariants.is_empty(), "{}", s.scenario);
            assert!(s.workload.rkl_flops_per_stage > 0);
            // Conservation invariants hold even at this tiny step count;
            // the evolution invariants need the longer scenario_matrix
            // runs, so all_passed is not asserted here.
            for c in &s.invariants {
                if c.name.ends_with("_drift_rel") {
                    assert!(c.passed, "{}: {} = {}", s.scenario, c.name, c.value);
                }
            }
        }
        // The cavity must actually pin nodes.
        let cavity = m
            .summaries
            .iter()
            .find(|s| s.scenario == "lid-driven-cavity")
            .unwrap();
        assert!(cavity.dirichlet_nodes > 0);
        // JSON serializes (the repro --json path).
        let json = serde_json::to_string(&m).unwrap();
        assert!(json.contains("\"summaries\""));
        let shown = format!("{m}");
        assert!(shown.contains("acoustic-pulse"), "{shown}");
    }
}
