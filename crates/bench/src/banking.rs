//! Banked-memory frontier study over the scenario registry:
//! `repro banking`.
//!
//! For every entry of the solver's scenario registry, every *effective*
//! shard count of the sweep (clamped to the element count and
//! deduplicated like `repro sharding`), and every streaming batch size,
//! the study builds the halo-minimizing
//! [`fem_mesh::partition::ShardPlan`], decomposes it into per-shard
//! memory streams ([`fem_solver::engine::shard_streams`]: 12 state
//! gathers, the geometry-cache slice, 5 RHS scatters per shard), and
//! routes the streams through three memory systems × three
//! bank-assignment policies:
//!
//! * systems — the 1-bank `flat` degenerate model (the pre-banking
//!   aggregate-bandwidth quote), the U200's 4-channel DDR4, and the
//!   u280-style 32-pseudo-channel HBM2 stack
//!   ([`fpga_platform::MemorySystem`]);
//! * policies — `round-robin` (what a shell linker does with no `--sp`
//!   flags), capacity-aware `greedy`, and the swap-refinement
//!   `optimized` assignment from
//!   [`fem_accel::optimizer::optimize_bank_assignment`].
//!
//! Each cell reports both the closed-form makespan bound
//! ([`fpga_platform::memory::modeled_makespan_cycles`]) and the DES
//! makespan from [`fem_solver::engine::emulate_plan_banked`], plus
//! per-bank port occupancy and stall totals. Two invariants are pinned
//! here and re-gated by `banking_json_schema` in `repro_json.rs` and the
//! CI `banking` job:
//!
//! 1. every 1-bank row's DES makespan **exactly equals** the flat quote
//!    of the unbanked [`fem_solver::engine::DataflowEmulatedBackend`]
//!    (banking is a scheduling overlay — the degenerate case collapses
//!    to the pre-banking model cycle-for-cycle);
//! 2. at ≥ 8 shards on the 32-bank HBM system the optimized assignment
//!    is **strictly faster** than round-robin on DES makespan for at
//!    least two registry scenarios.
//!
//! The study closes with the per-cell Pareto frontier over (bank count,
//! DES makespan): the non-dominated system × policy points that tell a
//! platform buyer how much banking actually purchases per scenario. The
//! 1-bank flat model is excluded from the frontier — it prices no port
//! contention at all, so it would trivially dominate; it exists to
//! calibrate the overlay, not to compete with buildable systems.

use fem_accel::optimizer::optimize_bank_assignment;
use fem_mesh::partition::ShardPlan;
use fem_solver::engine::{
    emulate_plan_banked, shard_compute_floors, shard_streams, DataflowEmulatedBackend,
    ExecutionBackend, PartitionStrategy,
};
use fem_solver::scenarios::Scenario;
use fpga_platform::memory::modeled_makespan_cycles;
use fpga_platform::{BankAssignment, MemorySystem};
use serde::Serialize;
use std::sync::Arc;

/// Shard counts the banking sweep requests per scenario.
pub const BANKING_SHARD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Streaming batch sizes (elements) the sweep crosses with the shard
/// counts — a small batch and an effectively-unbatched plan.
pub const BANKING_BATCH_SWEEP: [usize; 2] = [32, 4096];

/// Elements per axis of the sweep meshes (matches `repro sharding`).
pub const BANKING_EDGE: usize = 6;

/// One (scenario, shard count, batch, memory system, policy) cell.
#[derive(Debug, Clone, Serialize)]
pub struct BankingRow {
    /// Scenario identifier.
    pub scenario: String,
    /// Effective shard count of the plan.
    pub shard_count: usize,
    /// The shard count the sweep requested (≥ `shard_count`).
    pub requested_shards: usize,
    /// Streaming batch size (elements) of the plan.
    pub batch_elements: usize,
    /// Memory-system identifier ("flat" | "u200-ddr4" | "u280-hbm2").
    pub memory_system: String,
    /// Banks in the system.
    pub banks: usize,
    /// Assignment policy ("round-robin" | "greedy" | "optimized").
    pub policy: String,
    /// Banks carrying at least one stream under this assignment.
    pub banks_used: usize,
    /// Whether every bank's resident footprint fits its capacity.
    pub capacity_respected: bool,
    /// Closed-form makespan bound of the assignment (cycles).
    pub modeled_makespan_cycles: u64,
    /// DES makespan of the banked dataflow emulation (cycles).
    pub emulated_makespan_cycles: u64,
    /// Σ port-busy cycles over banks in the DES.
    pub bank_port_cycles_total: u64,
    /// Σ port-conflict stall cycles over banks in the DES.
    pub bank_stall_cycles_total: u64,
    /// The unbanked [`DataflowEmulatedBackend`] quote for this plan:
    /// the slowest per-shard flat DES makespan (cycles).
    pub flat_quote_cycles: u64,
    /// Whether `emulated_makespan_cycles == flat_quote_cycles` — must
    /// hold on every 1-bank row (the degenerate-model gate).
    pub matches_flat_quote: bool,
}

/// One non-dominated (system, policy) point of a cell's (banks, DES
/// makespan) Pareto frontier.
#[derive(Debug, Clone, Serialize)]
pub struct FrontierPoint {
    /// Scenario identifier.
    pub scenario: String,
    /// Effective shard count of the cell.
    pub shard_count: usize,
    /// Streaming batch size of the cell.
    pub batch_elements: usize,
    /// Memory-system identifier.
    pub memory_system: String,
    /// Assignment policy.
    pub policy: String,
    /// Banks in the system (the frontier's cost axis).
    pub banks: usize,
    /// Aggregate peak bandwidth of the system (GB/s), for context.
    pub aggregate_bw_gbps: f64,
    /// DES makespan (the frontier's performance axis, cycles).
    pub emulated_makespan_cycles: u64,
}

/// The full banking sweep.
#[derive(Debug, Clone, Serialize)]
pub struct BankingStudy {
    /// Elements per axis of every scenario mesh.
    pub edge: usize,
    /// The requested shard counts.
    pub shard_counts: Vec<usize>,
    /// The streaming batch sizes.
    pub batch_sizes: Vec<usize>,
    /// Memory systems swept, in bank-count order.
    pub systems: Vec<String>,
    /// Assignment policies swept.
    pub policies: Vec<String>,
    /// Partition strategy of every plan.
    pub strategy: String,
    /// All swept cells (scenario-major, then shard count, batch,
    /// system, policy).
    pub rows: Vec<BankingRow>,
    /// Per-cell Pareto frontiers over (banks, DES makespan).
    pub frontier: Vec<FrontierPoint>,
    /// Scenarios whose largest ≥ 8-shard HBM cell has the optimized
    /// assignment strictly beating round-robin on DES makespan — the
    /// tentpole gate requires at least two.
    pub hbm_win_scenarios: Vec<String>,
}

impl std::fmt::Display for BankingStudy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Banked-memory frontier ({}³-element meshes, shards {:?}, batches {:?}, {} plans):",
            self.edge, self.shard_counts, self.batch_sizes, self.strategy
        )?;
        writeln!(
            f,
            "  {:>22} {:>6} {:>6} {:>10} {:>12} {:>5} {:>10} {:>10} {:>8} {:>5}",
            "scenario",
            "shards",
            "batch",
            "system",
            "policy",
            "banks",
            "modeled",
            "emulated",
            "stalls",
            "flat="
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:>22} {:>6} {:>6} {:>10} {:>12} {:>5} {:>10} {:>10} {:>8} {:>5}",
                r.scenario,
                r.shard_count,
                r.batch_elements,
                r.memory_system,
                r.policy,
                r.banks_used,
                r.modeled_makespan_cycles,
                r.emulated_makespan_cycles,
                r.bank_stall_cycles_total,
                if r.matches_flat_quote { "yes" } else { "no" },
            )?;
        }
        writeln!(f, "  Pareto frontier (banks vs DES makespan):")?;
        for p in &self.frontier {
            writeln!(
                f,
                "  {:>22} ×{:<3} batch {:<5} {:>10}/{:<12} {:>3} banks @ {:>6.1} GB/s → {:>10} cyc",
                p.scenario,
                p.shard_count,
                p.batch_elements,
                p.memory_system,
                p.policy,
                p.banks,
                p.aggregate_bw_gbps,
                p.emulated_makespan_cycles,
            )?;
        }
        writeln!(
            f,
            "  optimized beats round-robin at ≥8 shards on HBM in: {:?}",
            self.hbm_win_scenarios
        )?;
        Ok(())
    }
}

/// Builds the assignment of `policy` for `streams` on `system`.
fn assign(
    policy: &str,
    streams: &[fpga_platform::MemoryStream],
    system: &MemorySystem,
    floors: &[u64],
) -> BankAssignment {
    match policy {
        "round-robin" => BankAssignment::round_robin(streams, system),
        "greedy" => BankAssignment::greedy(streams, system),
        "optimized" => optimize_bank_assignment(streams, system, floors),
        other => unreachable!("unknown policy {other}"),
    }
}

/// Runs the sweep: every registered scenario × every effective shard
/// count of `shard_counts` × every batch size × the three memory
/// systems × the three assignment policies, on `edge`³-element meshes
/// under the halo-minimizing graph partition.
///
/// # Panics
///
/// Panics if a scenario fails to build or a plan/emulation fails (a
/// broken registry the caller cannot recover from).
pub fn run_banking_study(
    edge: usize,
    shard_counts: &[usize],
    batch_sizes: &[usize],
) -> BankingStudy {
    assert!(!shard_counts.is_empty(), "shard counts");
    assert!(!batch_sizes.is_empty(), "batch sizes");
    let systems = [
        MemorySystem::u200_flat(),
        MemorySystem::u200_ddr(),
        MemorySystem::u280_hbm2(),
    ];
    let policies = ["round-robin", "greedy", "optimized"];
    let strategy = PartitionStrategy::Partitioned;
    let mut rows = Vec::new();
    let mut frontier = Vec::new();
    let mut hbm_win_scenarios = Vec::new();
    for scenario in Scenario::registry() {
        let name = scenario.name();
        let sim = scenario
            .simulation(edge)
            .unwrap_or_else(|e| panic!("{name}: build failed: {e}"));
        let mesh = sim.core().mesh();
        let geometry = sim.core().geometry();
        let npe = mesh.nodes_per_element() as u64;
        let elements = mesh.num_elements();

        // (round-robin, optimized) DES makespans of every ≥ 8-shard
        // HBM cell — the scenario "wins" when optimized is strictly
        // faster in all of them.
        let mut hbm_cells: Vec<(u64, u64)> = Vec::new();
        let mut seen_counts: Vec<usize> = Vec::new();
        for &requested in shard_counts {
            // The plan clamps the shard count to the element count;
            // sweep each effective value once (like `repro sharding`).
            let count = requested.min(elements).max(1);
            if seen_counts.contains(&count) {
                eprintln!("banking: {name}: skipping duplicate effective count {count}");
                continue;
            }
            seen_counts.push(count);
            for &batch in batch_sizes {
                let plan = Arc::new(
                    ShardPlan::with_strategy(mesh, count, batch, strategy)
                        .unwrap_or_else(|e| panic!("{name}: plan failed: {e}")),
                );
                // The pre-banking reference: the unbanked backend's
                // slowest per-shard DES quote.
                let flat_backend =
                    DataflowEmulatedBackend::with_plan(Arc::clone(&plan), mesh, geometry)
                        .unwrap_or_else(|e| panic!("{name}: flat backend failed: {e}"));
                let flat_quote = flat_backend
                    .shard_reports()
                    .iter()
                    .map(|r| r.makespan_cycles)
                    .max()
                    .unwrap_or(0);
                let streams = shard_streams(&plan, npe);
                let floors = shard_compute_floors(&plan, npe);

                let mut cell: Vec<(usize, u64, String, String, f64)> = Vec::new();
                let mut hbm_cell = (0u64, 0u64);
                for system in &systems {
                    for policy in policies {
                        let a = assign(policy, &streams, system, &floors);
                        let modeled = modeled_makespan_cycles(&streams, &a, &floors);
                        let banked = emulate_plan_banked(&plan, npe, system, &a)
                            .unwrap_or_else(|e| panic!("{name}: banked emulation failed: {e}"));
                        if system.name() == "u280-hbm2" {
                            if policy == "round-robin" {
                                hbm_cell.0 = banked.makespan_cycles;
                            }
                            if policy == "optimized" {
                                hbm_cell.1 = banked.makespan_cycles;
                            }
                        }
                        cell.push((
                            system.num_banks(),
                            banked.makespan_cycles,
                            system.name().to_string(),
                            policy.to_string(),
                            system.total_peak_bw() / 1e9,
                        ));
                        rows.push(BankingRow {
                            scenario: name.to_string(),
                            shard_count: count,
                            requested_shards: requested,
                            batch_elements: batch,
                            memory_system: system.name().to_string(),
                            banks: system.num_banks(),
                            policy: policy.to_string(),
                            banks_used: a.banks_used(),
                            capacity_respected: a.capacity_respected(&streams, system),
                            modeled_makespan_cycles: modeled,
                            emulated_makespan_cycles: banked.makespan_cycles,
                            bank_port_cycles_total: banked
                                .bank_stats
                                .iter()
                                .map(|b| b.reserved_cycles)
                                .sum(),
                            bank_stall_cycles_total: banked
                                .bank_stats
                                .iter()
                                .map(|b| b.stall_cycles)
                                .sum(),
                            flat_quote_cycles: flat_quote,
                            matches_flat_quote: banked.makespan_cycles == flat_quote,
                        });
                    }
                }
                if count >= 8 {
                    hbm_cells.push(hbm_cell);
                }
                // Non-dominated points: fewer banks and lower makespan.
                // The 1-bank flat model is a contention-free calibration
                // baseline, not a buildable design point — it would
                // trivially dominate every cell, so the frontier ranks
                // only the physical systems.
                cell.retain(|p| p.0 > 1);
                for (i, a) in cell.iter().enumerate() {
                    let dominated = cell.iter().enumerate().any(|(j, b)| {
                        j != i && b.0 <= a.0 && b.1 <= a.1 && (b.0 < a.0 || b.1 < a.1 || j < i)
                    });
                    if !dominated {
                        frontier.push(FrontierPoint {
                            scenario: name.to_string(),
                            shard_count: count,
                            batch_elements: batch,
                            memory_system: a.2.clone(),
                            policy: a.3.clone(),
                            banks: a.0,
                            aggregate_bw_gbps: a.4,
                            emulated_makespan_cycles: a.1,
                        });
                    }
                }
            }
        }
        if !hbm_cells.is_empty() && hbm_cells.iter().all(|&(rr, opt)| opt < rr) {
            hbm_win_scenarios.push(name.to_string());
        }
    }
    BankingStudy {
        edge,
        shard_counts: shard_counts.to_vec(),
        batch_sizes: batch_sizes.to_vec(),
        systems: systems.iter().map(|s| s.name().to_string()).collect(),
        policies: policies.iter().map(|p| p.to_string()).collect(),
        strategy: strategy.to_string(),
        rows,
        frontier,
        hbm_win_scenarios,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_pins_both_tentpole_gates() {
        let study = run_banking_study(BANKING_EDGE, &[1, 8], &[4096]);
        // 4 scenarios × 2 counts × 1 batch × 3 systems × 3 policies.
        assert_eq!(study.rows.len(), 4 * 2 * 3 * 3);
        for r in &study.rows {
            assert!(r.emulated_makespan_cycles > 0, "{r:?}");
            assert!(r.modeled_makespan_cycles > 0, "{r:?}");
            // The closed form lower-bounds the DES on multi-bank
            // systems (the 1-bank DES runs shards in parallel with no
            // port serialization, so the single-port sum overshoots).
            if r.banks > 1 {
                assert!(
                    r.modeled_makespan_cycles <= r.emulated_makespan_cycles,
                    "closed form must lower-bound the DES: {r:?}"
                );
            }
            assert!(r.banks_used <= r.banks);
            assert!(r.capacity_respected, "{r:?}");
            // Gate 1: the 1-bank degenerate rows reproduce the unbanked
            // backend's quote exactly, under every policy.
            if r.banks == 1 {
                assert!(
                    r.matches_flat_quote,
                    "{}: 1-bank {} diverged from flat quote ({} vs {})",
                    r.scenario, r.policy, r.emulated_makespan_cycles, r.flat_quote_cycles
                );
                assert_eq!(r.bank_stall_cycles_total, 0);
            }
        }
        // Gate 2: optimized strictly beats round-robin at 8 shards on
        // HBM for at least two scenarios (here: all four).
        assert!(
            study.hbm_win_scenarios.len() >= 2,
            "HBM wins: {:?}",
            study.hbm_win_scenarios
        );
        for scenario in ["taylor-green-vortex", "acoustic-pulse"] {
            let cycles = |policy: &str| {
                study
                    .rows
                    .iter()
                    .find(|r| {
                        r.scenario == scenario
                            && r.shard_count == 8
                            && r.memory_system == "u280-hbm2"
                            && r.policy == policy
                    })
                    .map(|r| r.emulated_makespan_cycles)
                    .unwrap()
            };
            assert!(
                cycles("optimized") < cycles("round-robin"),
                "{scenario}: optimized {} !< round-robin {}",
                cycles("optimized"),
                cycles("round-robin")
            );
        }
        // The frontier is per-cell non-dominated, never empty, and
        // ranks only the physical (multi-bank) systems.
        assert!(!study.frontier.is_empty());
        assert!(study.frontier.iter().all(|p| p.banks > 1));
        for p in &study.frontier {
            for q in &study.frontier {
                if p.scenario == q.scenario
                    && p.shard_count == q.shard_count
                    && p.batch_elements == q.batch_elements
                    && !std::ptr::eq(p, q)
                {
                    assert!(
                        !(q.banks <= p.banks
                            && q.emulated_makespan_cycles < p.emulated_makespan_cycles),
                        "{q:?} dominates frontier point {p:?}"
                    );
                }
            }
        }
        // JSON serializes (the repro --json path) and Display renders.
        let json = serde_json::to_string(&study).unwrap();
        assert!(json.contains("\"hbm_win_scenarios\""));
        assert!(json.contains("\"matches_flat_quote\""));
        let shown = format!("{study}");
        assert!(shown.contains("Pareto frontier"), "{shown}");
        assert!(shown.contains("u280-hbm2"), "{shown}");
    }
}
