//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro fig2        Fig 2: CPU execution-time breakdown (measured)
//! repro fig5        Fig 5: RK time vs mesh nodes, proposed vs Vitis
//! repro table1      Table I: resource utilization of both designs
//! repro table2      §IV-B: CPU-vs-FPGA latency and power
//! repro ablations   §III optimizations disabled one at a time
//! repro optimizer   §III-D optimization trace on the proposed design
//! repro scaling     future-work study: RKL units across SLRs
//! repro assembly    host-CPU chunked-vs-colored assembly scaling
//! repro geometry    cached-vs-recompute, fused-vs-split, and the sum-factored vs full-matrix order ladder
//! repro scenarios   cross-strategy regression matrix over the registry
//! repro sharding    shard + device sweep, contiguous vs graph-partitioned, with emulated II quotes and multi-device overlap timings
//! repro banking     banked-memory frontier: shard x batch x memory-system x assignment policy, flat vs DDR4 vs HBM2
//! repro ensemble    ensemble serving: throughput sweep, context sharing, registry x backend
//! repro all         everything above
//!
//! options: --json   machine-readable output
//! ```

use fem_accel::designs::proposed_design;
use fem_accel::experiments::{run_ablations, run_fig2, run_fig5, run_table1, run_table2, ExpError};
use fem_accel::optimizer::{optimize_design, OptimizerConfig};
use fem_accel::workload::RklWorkload;
use fem_bench::{emit, OutputMode, FIG2_MEASURED_EDGES, FIG2_MEASURED_STEPS};

fn print_optimizer_trace(mode: OutputMode) -> Result<(), ExpError> {
    let w = RklWorkload::with_nodes(4_200_000, 1);
    let mut d = proposed_design(&w);
    let steps = optimize_design(&mut d, &OptimizerConfig::for_u200_slr())?;
    match mode {
        OutputMode::Text => {
            println!("§III-D optimization trace (4.2M-node workload):");
            for s in &steps {
                println!(
                    "  [{:<14}] II {:>3} → {:>3}  {}",
                    s.task, s.ii_before, s.ii_after, s.action
                );
            }
            println!();
        }
        OutputMode::Json => {
            let rows: Vec<serde_json::Value> = steps
                .iter()
                .map(|s| {
                    serde_json::json!({
                        "task": s.task,
                        "action": s.action,
                        "ii_before": s.ii_before,
                        "ii_after": s.ii_after,
                    })
                })
                .collect();
            println!("{}", serde_json::to_string_pretty(&rows)?);
        }
    }
    Ok(())
}

fn run(cmd: &str, mode: OutputMode) -> Result<(), ExpError> {
    match cmd {
        "fig2" => emit(&run_fig2(&FIG2_MEASURED_EDGES, FIG2_MEASURED_STEPS)?, mode),
        "fig5" => emit(&run_fig5()?, mode),
        "table1" => emit(&run_table1()?, mode),
        "table2" => emit(&run_table2(4_200_000, None)?, mode),
        "ablations" => emit(&run_ablations(1_000_000)?, mode),
        "optimizer" => print_optimizer_trace(mode),
        "scaling" => emit(&fem_accel::scaling::run_scaling_study(4_200_000, 3)?, mode),
        "assembly" => emit(
            &fem_bench::assembly::run_assembly_scaling(&[6, 8, 10], 5),
            mode,
        ),
        "geometry" => emit(&fem_bench::geometry::run_geometry_study(&[8, 12], 5), mode),
        "scenarios" => emit(
            &fem_bench::scenarios::run_scenario_matrix(
                fem_bench::SCENARIO_MATRIX_EDGE,
                fem_bench::SCENARIO_MATRIX_STEPS,
            ),
            mode,
        ),
        "sharding" => emit(
            &fem_bench::sharding::run_sharding_study(
                fem_bench::sharding::SHARDING_EDGE,
                fem_bench::sharding::SHARDING_STEPS,
                &fem_bench::sharding::SHARD_SWEEP,
            ),
            mode,
        ),
        "banking" => emit(
            &fem_bench::banking::run_banking_study(
                fem_bench::banking::BANKING_EDGE,
                &fem_bench::banking::BANKING_SHARD_SWEEP,
                &fem_bench::banking::BANKING_BATCH_SWEEP,
            ),
            mode,
        ),
        "ensemble" => emit(
            &fem_bench::ensemble::run_ensemble_study(
                fem_bench::ensemble::ENSEMBLE_EDGE,
                fem_bench::ensemble::ENSEMBLE_STEPS,
                &fem_bench::ensemble::ENSEMBLE_MEMBER_COUNTS,
            ),
            mode,
        ),
        "all" => {
            for c in [
                "fig2",
                "fig5",
                "table1",
                "table2",
                "ablations",
                "optimizer",
                "scaling",
                "assembly",
                "geometry",
                "scenarios",
                "sharding",
                "banking",
                "ensemble",
            ] {
                run(c, mode)?;
            }
            Ok(())
        }
        other => {
            eprintln!("unknown experiment `{other}`");
            eprintln!(
                "usage: repro <fig2|fig5|table1|table2|ablations|optimizer|scaling|assembly|geometry|scenarios|sharding|banking|ensemble|all> [--json]"
            );
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = if args.iter().any(|a| a == "--json") {
        OutputMode::Json
    } else {
        OutputMode::Text
    };
    let cmd = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");
    if let Err(e) = run(cmd, mode) {
        eprintln!("experiment failed: {e}");
        std::process::exit(1);
    }
}
