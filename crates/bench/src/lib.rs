//! Shared helpers of the benchmark harness.
//!
//! The heavy lifting lives in `fem_accel::experiments`; this crate adds
//! the command-line `repro` binary (one subcommand per table/figure) and
//! the Criterion benches that measure the *real* Rust artifacts (solver
//! kernels, HLS scheduler, dataflow DES) on this machine.

#![deny(missing_docs)]

pub mod assembly;
pub mod banking;
pub mod ensemble;
pub mod geometry;
pub mod scenarios;
pub mod sharding;

use fem_accel::experiments::ExpError;
use serde::Serialize;

/// Output mode of the repro harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputMode {
    /// Human-readable tables.
    Text,
    /// Machine-readable JSON.
    Json,
}

/// Prints a result either as its `Display` table or as JSON.
///
/// # Errors
///
/// Propagates JSON serialization failures.
pub fn emit<T: std::fmt::Display + Serialize>(value: &T, mode: OutputMode) -> Result<(), ExpError> {
    match mode {
        OutputMode::Text => println!("{value}\n"),
        OutputMode::Json => println!("{}", serde_json::to_string_pretty(value)?),
    }
    Ok(())
}

/// Mesh edge sizes used for the measured (in-process) Fig 2 sweep.
/// 12³–24³ nodes keep the instrumented runs to seconds while showing the
/// same breakdown the paper measured at 1M–4M nodes.
pub const FIG2_MEASURED_EDGES: [usize; 3] = [12, 16, 20];

/// RK steps for the measured Fig 2 sweep.
pub const FIG2_MEASURED_STEPS: usize = 3;

/// Elements per axis of the `repro scenarios` regression-matrix meshes
/// (large enough to resolve the double shear layer's `δ = 0.8`).
pub const SCENARIO_MATRIX_EDGE: usize = 8;

/// RK steps of the `repro scenarios` matrix — enough for the evolution
/// invariants (KE decay, pulse spreading, cavity spin-up) to register.
pub const SCENARIO_MATRIX_STEPS: usize = 6;

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize)]
    struct Dummy {
        x: u32,
    }
    impl std::fmt::Display for Dummy {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "x={}", self.x)
        }
    }

    #[test]
    fn emit_does_not_fail() {
        emit(&Dummy { x: 3 }, OutputMode::Text).unwrap();
        emit(&Dummy { x: 3 }, OutputMode::Json).unwrap();
    }
}
