//! Chunked-vs-colored assembly scaling: the `repro assembly` table.
//!
//! Measures the wall-clock cost of one full RKL residual assembly under
//! each [`AssemblyStrategy`] over a small mesh sweep, and cross-checks
//! every parallel result against the serial reference. This is the
//! host-CPU companion to the paper's Fig 5 scaling study: it shows how
//! far multi-core assembly carries the software baseline before the
//! accelerator takes over.

use fem_mesh::coloring::ElementColoring;
use fem_mesh::generator::BoxMeshBuilder;
use fem_mesh::geometry::GeometryCache;
use fem_numerics::rk::StateOps;
use fem_numerics::tensor::HexBasis;
use fem_solver::kernels::KernelPath;
use fem_solver::parallel::{
    assemble_rhs_chunked_into, assemble_rhs_colored_into, AssemblyStrategy,
};
use fem_solver::state::{Conserved, Primitives};
use fem_solver::tgv::TgvConfig;
use serde::Serialize;
use std::time::Instant;

/// One (mesh size, strategy) measurement.
#[derive(Debug, Clone, Serialize)]
pub struct AssemblyScalingRow {
    /// Elements per axis of the periodic TGV box.
    pub edge: usize,
    /// Total mesh nodes.
    pub nodes: usize,
    /// Strategy label (`serial`, `chunked(N)`, `colored`).
    pub strategy: String,
    /// Mean wall-clock milliseconds per full RHS assembly.
    pub millis_per_assembly: f64,
    /// Serial time divided by this strategy's time.
    pub speedup_vs_serial: f64,
    /// Max abs deviation from the serial residual, relative to the
    /// serial max-norm (floored at 1): a correctness cross-check.
    pub max_rel_error_vs_serial: f64,
}

/// The full scaling table plus the environment it was measured in.
#[derive(Debug, Clone, Serialize)]
pub struct AssemblyScalingTable {
    /// Worker threads available to the rayon stub.
    pub threads: usize,
    /// Number of element colors per mesh edge size (greedy coloring).
    pub colors_by_edge: Vec<(usize, u32)>,
    /// Measurements, grouped by edge then strategy.
    pub rows: Vec<AssemblyScalingRow>,
}

impl std::fmt::Display for AssemblyScalingTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "RHS assembly scaling, chunked vs colored ({} threads):",
            self.threads
        )?;
        writeln!(
            f,
            "  {:>5} {:>8} {:>12} {:>12} {:>9} {:>12}",
            "edge", "nodes", "strategy", "ms/assembly", "speedup", "max rel err"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:>5} {:>8} {:>12} {:>12.3} {:>8.2}x {:>12.2e}",
                r.edge,
                r.nodes,
                r.strategy,
                r.millis_per_assembly,
                r.speedup_vs_serial,
                r.max_rel_error_vs_serial
            )?;
        }
        for (edge, colors) in &self.colors_by_edge {
            writeln!(f, "  coloring: edge {edge} -> {colors} colors")?;
        }
        Ok(())
    }
}

fn max_rel_error(reference: &Conserved, candidate: &Conserved) -> f64 {
    let mut ref_flat = Vec::new();
    reference.for_each_field(|fld| ref_flat.extend_from_slice(fld));
    let mut cand_flat = Vec::new();
    candidate.for_each_field(|fld| cand_flat.extend_from_slice(fld));
    let scale = ref_flat.iter().fold(1.0f64, |m, &v| m.max(v.abs()));
    ref_flat
        .iter()
        .zip(&cand_flat)
        .map(|(a, b)| (a - b).abs() / scale)
        .fold(0.0, f64::max)
}

/// Runs the scaling sweep: `reps` timed assemblies per strategy on a
/// periodic TGV box of each `edges` entry.
///
/// # Panics
///
/// Panics if `reps == 0` or mesh construction fails.
pub fn run_assembly_scaling(edges: &[usize], reps: usize) -> AssemblyScalingTable {
    assert!(reps > 0, "reps");
    let threads = fem_solver::parallel::available_threads();
    let mut rows = Vec::new();
    let mut colors_by_edge = Vec::new();
    for &edge in edges {
        let mesh = BoxMeshBuilder::tgv_box(edge).build().expect("valid box");
        let basis = HexBasis::new(1).expect("valid basis");
        let cfg = TgvConfig::standard();
        let gas = cfg.gas();
        let conserved = cfg.initial_state(&mesh);
        let mut prim = Primitives::zeros(mesh.num_nodes());
        prim.update_from(&conserved, &gas);
        let coloring = ElementColoring::greedy(&mesh);
        colors_by_edge.push((edge, coloring.num_colors()));
        let geometry = GeometryCache::build(&mesh, &basis).expect("valid geometry");

        let mut out = Conserved::zeros(mesh.num_nodes());
        let mut reference = Conserved::zeros(mesh.num_nodes());

        let strategies = [
            AssemblyStrategy::Serial,
            AssemblyStrategy::chunked_auto(),
            AssemblyStrategy::Colored,
        ];
        let mut serial_ms = 0.0;
        for strategy in strategies {
            let assemble = |out: &mut Conserved| match strategy {
                AssemblyStrategy::Serial => assemble_rhs_chunked_into(
                    &mesh,
                    &basis,
                    &gas,
                    &geometry,
                    &conserved,
                    &prim,
                    1,
                    KernelPath::SumFactored,
                    out,
                    None,
                ),
                AssemblyStrategy::Chunked { chunks } => assemble_rhs_chunked_into(
                    &mesh,
                    &basis,
                    &gas,
                    &geometry,
                    &conserved,
                    &prim,
                    chunks,
                    KernelPath::SumFactored,
                    out,
                    None,
                ),
                AssemblyStrategy::Colored => assemble_rhs_colored_into(
                    &mesh,
                    &basis,
                    &gas,
                    &geometry,
                    &conserved,
                    &prim,
                    &coloring,
                    KernelPath::SumFactored,
                    out,
                    None,
                ),
            };
            // Warm-up (also produces the correctness snapshot).
            assemble(&mut out);
            let t0 = Instant::now();
            for _ in 0..reps {
                assemble(&mut out);
            }
            let ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;
            if matches!(strategy, AssemblyStrategy::Serial) {
                serial_ms = ms;
                reference.copy_from(&out);
            }
            rows.push(AssemblyScalingRow {
                edge,
                nodes: mesh.num_nodes(),
                strategy: strategy.to_string(),
                millis_per_assembly: ms,
                speedup_vs_serial: if ms > 0.0 { serial_ms / ms } else { 0.0 },
                max_rel_error_vs_serial: max_rel_error(&reference, &out),
            });
        }
    }
    AssemblyScalingTable {
        threads,
        colors_by_edge,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_table_is_consistent() {
        let table = run_assembly_scaling(&[4], 1);
        assert_eq!(table.rows.len(), 3);
        assert_eq!(table.colors_by_edge, vec![(4, 8)]);
        assert!(table.threads >= 1);
        for r in &table.rows {
            assert_eq!(r.edge, 4);
            assert_eq!(r.nodes, 64);
            assert!(r.millis_per_assembly > 0.0, "{}: no time", r.strategy);
            assert!(
                r.max_rel_error_vs_serial < 1e-12,
                "{}: rel err {}",
                r.strategy,
                r.max_rel_error_vs_serial
            );
        }
        assert_eq!(table.rows[0].strategy, "serial");
        assert!((table.rows[0].speedup_vs_serial - 1.0).abs() < 1e-12);
        let shown = format!("{table}");
        assert!(shown.contains("colored"), "{shown}");
        // And it serializes (the repro --json path).
        let json = serde_json::to_string(&table).unwrap();
        assert!(json.contains("\"rows\""), "{json}");
    }
}
