//! Ensemble serving study: `repro ensemble`.
//!
//! Exercises the solver's [`fem_solver::EnsembleDriver`] the way a
//! parameter-exploration service would and reports three things:
//!
//! * **Throughput scaling** — an N-member same-mesh sweep (periodic
//!   scenarios with varying Reynolds number, amplitude, and per-member
//!   execution backend) run at each member count of the sweep:
//!   members/sec, wall time, and the measured context-sharing memory
//!   savings (N same-mesh members on one [`fem_mesh::SharedMeshContext`]
//!   hold its bytes once, so the savings ratio equals the member count).
//! * **Per-backend rows over the registry** — every scenario of
//!   [`fem_solver::Scenario::registry`] under the reference, multidevice,
//!   and dataflow-emulated backends, all served as *one* ensemble (two
//!   shared contexts: the periodic box and the walled cavity box), with
//!   per-member invariant verdicts and final KE/enstrophy.
//! * **Spec-vs-setters identity** — a declaratively specified member and
//!   its hand-configured twin advanced side by side and compared
//!   *bitwise*, pinning the contract that the [`fem_solver::spec`] layer
//!   is a description of the imperative API, not a second code path.
//!
//! The `ensemble_json_schema` test in `repro_json.rs` pins the JSON
//! shape and the CI `ensemble` job regenerates and gates the artifact
//! (positive throughput, savings ≥ 2× for the 8-member sweep, bitwise
//! identity) on every push.

use fem_solver::spec::{BackendSpec, SimulationSpec};
use fem_solver::{EnsembleDriver, Scenario, Simulation};
use serde::Serialize;

/// Member counts the throughput sweep serves.
pub const ENSEMBLE_MEMBER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Elements per axis of every ensemble member's mesh.
pub const ENSEMBLE_EDGE: usize = 6;

/// RK4 steps every ensemble member advances.
pub const ENSEMBLE_STEPS: usize = 2;

/// One member count of the same-mesh throughput sweep.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingRow {
    /// Members served.
    pub members: usize,
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Distinct shared mesh contexts (1 for the same-mesh sweep).
    pub contexts: usize,
    /// End-to-end wall seconds.
    pub wall_s: f64,
    /// Members served per wall second.
    pub members_per_sec: f64,
    /// Measured context memory-sharing ratio (private copies / shared).
    pub memory_savings_ratio: f64,
    /// Shared-context resident bytes (counted once).
    pub shared_context_bytes: usize,
    /// Resident bytes if every member held a private context copy.
    pub unshared_context_bytes: usize,
    /// Whether every member passed its scenario invariants.
    pub all_passed: bool,
}

/// One (scenario, backend) member of the registry ensemble.
#[derive(Debug, Clone, Serialize)]
pub struct BackendRow {
    /// Scenario identifier.
    pub scenario: String,
    /// Backend name as the backend itself reports it.
    pub backend: String,
    /// Time-step size the member ran at.
    pub dt: f64,
    /// Whether every scenario invariant passed.
    pub invariants_passed: bool,
    /// Final kinetic energy.
    pub kinetic_energy: f64,
    /// Final enstrophy.
    pub enstrophy: f64,
    /// Wall milliseconds spent on the member.
    pub wall_ms: f64,
}

/// The full ensemble serving study.
#[derive(Debug, Clone, Serialize)]
pub struct EnsembleStudy {
    /// Elements per axis of every member mesh.
    pub edge: usize,
    /// RK steps per member.
    pub steps: usize,
    /// Worker threads available to the driver.
    pub threads: usize,
    /// The swept member counts.
    pub member_counts: Vec<usize>,
    /// Throughput sweep rows (one per member count).
    pub scaling: Vec<ScalingRow>,
    /// Registry × backend member rows, served as one ensemble.
    pub backend_rows: Vec<BackendRow>,
    /// Contexts the registry ensemble grouped onto (periodic + walled).
    pub backend_contexts: usize,
    /// Member count of the largest same-mesh sweep.
    pub same_mesh_members: usize,
    /// Its measured memory-savings ratio (= member count when every
    /// member shares one context).
    pub same_mesh_savings_ratio: f64,
    /// Whether a spec-built member and its setter-configured twin
    /// produced bitwise identical trajectories.
    pub spec_vs_setters_bitwise: bool,
}

impl std::fmt::Display for EnsembleStudy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Ensemble serving ({}³-element meshes, {} steps/member, {} threads):",
            self.edge, self.steps, self.threads
        )?;
        writeln!(
            f,
            "  same-mesh throughput sweep (shared context, mixed backends):"
        )?;
        writeln!(
            f,
            "  {:>8} {:>8} {:>9} {:>10} {:>13} {:>13} {:>7}",
            "members", "workers", "wall [s]", "mem/sec", "ctx bytes", "saved", "passed"
        )?;
        for r in &self.scaling {
            writeln!(
                f,
                "  {:>8} {:>8} {:>9.3} {:>10.2} {:>13} {:>12.1}x {:>7}",
                r.members,
                r.workers,
                r.wall_s,
                r.members_per_sec,
                r.shared_context_bytes,
                r.memory_savings_ratio,
                if r.all_passed { "yes" } else { "NO" },
            )?;
        }
        writeln!(
            f,
            "  registry x backend matrix ({} members, {} shared contexts):",
            self.backend_rows.len(),
            self.backend_contexts
        )?;
        writeln!(
            f,
            "  {:>22} {:>26} {:>11} {:>12} {:>12} {:>9}",
            "scenario", "backend", "dt", "KE(final)", "enstrophy", "verdict"
        )?;
        for r in &self.backend_rows {
            writeln!(
                f,
                "  {:>22} {:>26} {:>11.3e} {:>12.5e} {:>12.5e} {:>9}",
                r.scenario,
                r.backend,
                r.dt,
                r.kinetic_energy,
                r.enstrophy,
                if r.invariants_passed { "ok" } else { "FAIL" },
            )?;
        }
        writeln!(
            f,
            "  {}-member same-mesh sweep shares one context: {:.1}x memory savings",
            self.same_mesh_members, self.same_mesh_savings_ratio
        )?;
        writeln!(
            f,
            "  spec-built vs setter-built trajectory: {}",
            if self.spec_vs_setters_bitwise {
                "bitwise identical"
            } else {
                "DIVERGED"
            }
        )
    }
}

/// The mixed same-mesh member list: periodic scenarios with varying
/// Reynolds/amplitude overrides and per-member backend selections, all
/// on one `edge`³ periodic box.
fn same_mesh_specs(edge: usize, steps: usize, members: usize) -> Vec<SimulationSpec> {
    let scenarios = [
        "taylor-green-vortex",
        "double-shear-layer",
        "acoustic-pulse",
    ];
    let backends = [
        BackendSpec::reference_serial(),
        BackendSpec {
            kind: "reference".to_string(),
            strategy: Some("colored".to_string()),
            shards: None,
            devices: None,
            kernel: None,
        },
        BackendSpec {
            kind: "sharded".to_string(),
            strategy: Some("contiguous".to_string()),
            shards: Some(2),
            devices: None,
            kernel: None,
        },
        BackendSpec {
            kind: "multidevice".to_string(),
            strategy: Some("partitioned".to_string()),
            shards: None,
            devices: Some(4),
            kernel: None,
        },
    ];
    (0..members)
        .map(|i| {
            let scenario = scenarios[i % scenarios.len()];
            // The inviscid pulse rejects a Reynolds override; vary its
            // amplitude instead.
            let reynolds = (scenario != "acoustic-pulse").then_some(200.0 + 100.0 * i as f64);
            SimulationSpec {
                scenario: scenario.to_string(),
                edge,
                steps,
                reynolds,
                amplitude: Some(0.8 + 0.1 * (i % 3) as f64),
                cfl: None,
                backend: backends[i % backends.len()].clone(),
            }
        })
        .collect()
}

/// Builds one spec two ways — declaratively and through the legacy
/// setters — and compares the 2-step trajectories bit for bit.
fn spec_vs_setters_bitwise(edge: usize, steps: usize) -> bool {
    let spec = SimulationSpec {
        scenario: "taylor-green-vortex".to_string(),
        edge,
        steps,
        reynolds: Some(250.0),
        amplitude: Some(1.1),
        cfl: None,
        backend: BackendSpec {
            kind: "sharded".to_string(),
            strategy: Some("partitioned".to_string()),
            shards: Some(2),
            devices: None,
            kernel: None,
        },
    };
    let mut from_spec = spec.build().expect("spec member builds");
    let dt = from_spec.suggest_dt(spec.effective_cfl().expect("cfl"));
    from_spec.advance(steps, dt).expect("spec member steps");

    let scenario = spec.resolve_scenario().expect("scenario resolves");
    let mesh = scenario.mesh(edge).expect("mesh builds");
    let initial = scenario.initial_state(&mesh);
    let mut by_hand =
        Simulation::new(mesh, scenario.gas(), initial).expect("hand-built member builds");
    by_hand
        .set_backend(spec.backend.to_select().expect("backend resolves"))
        .expect("backend installs");
    by_hand.advance(steps, dt).expect("hand-built member steps");

    from_spec.conserved().to_bit_vec() == by_hand.conserved().to_bit_vec()
}

/// Runs the study: the same-mesh throughput sweep at each member count,
/// the registry × backend ensemble, and the spec-vs-setters identity
/// check.
///
/// # Panics
///
/// Panics if a member spec fails to resolve or a sweep fails to run (a
/// broken registry or driver the caller cannot recover from).
pub fn run_ensemble_study(edge: usize, steps: usize, member_counts: &[usize]) -> EnsembleStudy {
    assert!(steps > 0, "steps");
    assert!(!member_counts.is_empty(), "member counts");
    let threads = fem_solver::parallel::available_threads();
    let driver = EnsembleDriver::new();

    // ---- Same-mesh throughput sweep. ----
    let max_members = member_counts.iter().copied().max().unwrap_or(1);
    let specs = same_mesh_specs(edge, steps, max_members);
    let mut scaling = Vec::new();
    let mut same_mesh_savings_ratio = 0.0;
    for &members in member_counts {
        let members = members.min(max_members).max(1);
        let report = driver
            .run(&specs[..members])
            .unwrap_or_else(|e| panic!("{members}-member sweep failed: {e}"));
        assert_eq!(report.contexts, 1, "same-mesh sweep split its context");
        if members == max_members {
            same_mesh_savings_ratio = report.memory_savings_ratio;
        }
        scaling.push(ScalingRow {
            members,
            workers: report.workers,
            contexts: report.contexts,
            wall_s: report.wall_s,
            members_per_sec: report.members_per_sec,
            memory_savings_ratio: report.memory_savings_ratio,
            shared_context_bytes: report.shared_context_bytes,
            unshared_context_bytes: report.unshared_context_bytes,
            all_passed: report.all_passed(),
        });
    }

    // ---- Registry × backend ensemble. ----
    let backends = [
        BackendSpec::reference_serial(),
        BackendSpec {
            kind: "multidevice".to_string(),
            strategy: Some("partitioned".to_string()),
            shards: None,
            devices: Some(4),
            kernel: None,
        },
        BackendSpec {
            kind: "dataflow-emulated".to_string(),
            strategy: Some("contiguous".to_string()),
            shards: Some(2),
            devices: None,
            kernel: None,
        },
    ];
    let registry_specs: Vec<SimulationSpec> = Scenario::registry()
        .iter()
        .flat_map(|s| {
            backends.iter().map(|b| SimulationSpec {
                scenario: s.name().to_string(),
                edge,
                steps,
                reynolds: None,
                amplitude: None,
                cfl: None,
                backend: b.clone(),
            })
        })
        .collect();
    let registry_report = driver
        .run(&registry_specs)
        .unwrap_or_else(|e| panic!("registry ensemble failed: {e}"));
    let backend_rows: Vec<BackendRow> = registry_report
        .members
        .iter()
        .map(|m| {
            assert!(
                m.error.is_none(),
                "{} under {}: {:?}",
                m.scenario,
                m.backend,
                m.error
            );
            BackendRow {
                scenario: m.scenario.clone(),
                backend: m.backend.clone(),
                dt: m.dt,
                invariants_passed: m.invariants_passed,
                kinetic_energy: m.kinetic_energy,
                enstrophy: m.enstrophy,
                wall_ms: m.wall_ms,
            }
        })
        .collect();

    EnsembleStudy {
        edge,
        steps,
        threads,
        member_counts: member_counts.to_vec(),
        scaling,
        backend_rows,
        backend_contexts: registry_report.contexts,
        same_mesh_members: max_members,
        same_mesh_savings_ratio,
        spec_vs_setters_bitwise: spec_vs_setters_bitwise(edge, steps),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_serves_sweeps_and_pins_the_contracts() {
        let study = run_ensemble_study(4, 1, &[1, 2, 4]);
        assert_eq!(study.scaling.len(), 3);
        for row in &study.scaling {
            assert!(row.all_passed, "members={}", row.members);
            assert_eq!(row.contexts, 1);
            assert!(row.members_per_sec > 0.0);
            assert!(
                (row.memory_savings_ratio - row.members as f64).abs() < 1e-12,
                "same-mesh savings must equal the member count, got {} for {}",
                row.memory_savings_ratio,
                row.members
            );
            assert_eq!(
                row.unshared_context_bytes,
                row.shared_context_bytes * row.members
            );
        }
        assert_eq!(study.same_mesh_members, 4);
        assert!(study.same_mesh_savings_ratio >= 2.0);
        // Registry × 3 backends, grouped onto periodic + walled boxes.
        assert_eq!(study.backend_rows.len(), 4 * 3);
        assert_eq!(study.backend_contexts, 2);
        for row in &study.backend_rows {
            assert!(
                row.invariants_passed,
                "{} under {}",
                row.scenario, row.backend
            );
            assert!(row.dt > 0.0);
        }
        assert!(study.spec_vs_setters_bitwise);

        // JSON serializes (the repro --json path) and Display renders.
        let json = serde_json::to_string(&study).unwrap();
        assert!(json.contains("\"scaling\""));
        assert!(json.contains("\"same_mesh_savings_ratio\""));
        assert!(json.contains("\"spec_vs_setters_bitwise\""));
        let shown = format!("{study}");
        assert!(shown.contains("bitwise identical"), "{shown}");
        assert!(shown.contains("multidevice(4, partitioned)"), "{shown}");
        assert!(shown.contains("memory savings"), "{shown}");
    }
}
