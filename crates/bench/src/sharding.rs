//! Shard-count sweep over the scenario registry: `repro sharding`.
//!
//! For every entry of the solver's scenario registry and every *effective*
//! shard count of the sweep (requested counts are clamped to the element
//! count and deduplicated, so no cell is reported twice under different
//! labels), the study runs the cell under **both**
//! [`fem_solver::engine::PartitionStrategy`] variants side by side:
//!
//! * reads each backend's [`fem_mesh::partition::ShardPlan`] and reports
//!   per-shard DDR traffic (bytes in/out), owned/halo node split, the
//!   plan-level streamed-bytes load imbalance, the unique-halo fraction
//!   (`halo_fraction`, a true fraction in `0 ..= 1`) and the cross-shard
//!   reduction volume (`reduction_entries`, the per-sharing-shard record
//!   count that can exceed the node count);
//! * runs the simulation for a few RK4 steps under the
//!   [`fem_solver::engine::DataflowEmulatedBackend`] and checks the
//!   trajectory is **bitwise identical** to the serial reference — the
//!   engine's shard determinism guarantee — and bitwise stable across
//!   the whole shard-count sweep, per strategy;
//! * attaches the per-shard accelerator cycle emulation
//!   ([`fem_solver::engine::ShardCycleReport`]: DES makespan, observed
//!   II, bottleneck task II) plus the scenario's DDR roofline bound from
//!   [`fem_accel::experiments::scenario_workload`].
//!
//! The `sharding_json_schema` test in `repro_json.rs` pins the JSON
//! shape — including the gate that the graph partitioner's halo fraction
//! never exceeds the contiguous one at ≥ 4 shards — and the CI
//! `sharding` job regenerates and gates the artifact on every push.

use crate::scenarios::max_rel_dev;
use fem_accel::experiments::scenario_workload;
use fem_solver::engine::{BackendSelect, PartitionStrategy};
use fem_solver::scenarios::Scenario;
use fem_solver::Simulation;
use serde::Serialize;

/// Shard counts the study sweeps.
pub const SHARD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Elements per axis of the sweep meshes.
pub const SHARDING_EDGE: usize = 6;

/// RK4 steps per (scenario, shard count) cell.
pub const SHARDING_STEPS: usize = 2;

/// One shard of one (scenario, shard count, strategy) cell.
#[derive(Debug, Clone, Serialize)]
pub struct ShardRow {
    /// Scenario identifier.
    pub scenario: String,
    /// Effective shard count of the plan this shard belongs to.
    pub shard_count: usize,
    /// Partition strategy of the plan ("contiguous" | "partitioned").
    pub strategy: String,
    /// Shard index within the plan.
    pub shard: usize,
    /// Elements the shard streams.
    pub elements: usize,
    /// Nodes the shard owns (accumulates during the reduction).
    pub owned_nodes: usize,
    /// Halo nodes the shard forwards to their owners.
    pub halo_nodes: usize,
    /// DDR bytes the shard reads per RK stage.
    pub bytes_in: u64,
    /// DDR bytes the shard writes per RK stage.
    pub bytes_out: u64,
    /// Emulated stage makespan of the shard (cycles).
    pub emulated_makespan_cycles: u64,
    /// Emulated steady-state initiation interval (cycles/element).
    pub emulated_ii: f64,
    /// II of the emulated bottleneck task.
    pub bottleneck_ii: u64,
}

/// One partition strategy's metrics for a (scenario, shard count) cell.
#[derive(Debug, Clone, Serialize)]
pub struct StrategyCell {
    /// Strategy identifier ("contiguous" | "partitioned").
    pub strategy: String,
    /// Largest per-shard streamed DDR traffic over the mean (1.0 =
    /// balanced) — weighted by what the DES actually schedules.
    pub load_imbalance: f64,
    /// Largest shard element count over the mean (1.0 = balanced).
    pub element_imbalance: f64,
    /// Unique halo (frontier) nodes over mesh nodes — a true fraction,
    /// always within `0 ..= 1`.
    pub halo_fraction: f64,
    /// Cross-shard reduction volume: shared-node records summed over
    /// shards. A node shared by k non-owner shards counts k times, so
    /// this can exceed the node count (the quantity the pre-fix
    /// `halo_fraction` mistakenly divided by `nodes`).
    pub reduction_entries: u64,
    /// Aggregate DDR bytes read per RK stage over all shards.
    pub total_bytes_in: u64,
    /// Aggregate DDR bytes written per RK stage over all shards.
    pub total_bytes_out: u64,
    /// Worst per-field relative deviation of the sharded trajectory from
    /// the serial reference (0 when bitwise identical).
    pub max_rel_dev_vs_reference: f64,
    /// Whether the sharded trajectory is bit-for-bit the reference one.
    pub bitwise_vs_reference: bool,
    /// Whether this cell's trajectory is bit-for-bit identical to the
    /// sweep's first shard count under the same strategy.
    pub bitwise_across_shard_counts: bool,
    /// Slowest emulated shard makespan (cycles) — the stage critical
    /// path of a shard-parallel device.
    pub max_shard_makespan_cycles: u64,
    /// Worst emulated per-shard II (cycles/element).
    pub emulated_ii_worst: f64,
}

/// Per-(scenario, shard count) verdict: both strategies side by side.
#[derive(Debug, Clone, Serialize)]
pub struct ShardingSummary {
    /// Scenario identifier.
    pub scenario: String,
    /// Effective shard count of this cell (`plan.num_shards()`).
    pub shard_count: usize,
    /// The shard count the sweep requested (can exceed `shard_count` on
    /// meshes with fewer elements; such duplicates are swept once).
    pub requested_shards: usize,
    /// Mesh elements.
    pub elements: usize,
    /// Mesh nodes.
    pub nodes: usize,
    /// The contiguous-range baseline.
    pub contiguous: StrategyCell,
    /// The halo-minimizing graph partition.
    pub partitioned: StrategyCell,
    /// The scenario's U200 DDR roofline bound (GFLOP/s) for context.
    pub ddr_bound_gflops: f64,
}

/// The full shard-count sweep.
#[derive(Debug, Clone, Serialize)]
pub struct ShardingStudy {
    /// Elements per axis of every scenario mesh.
    pub edge: usize,
    /// RK steps per cell.
    pub steps: usize,
    /// Worker threads available to the shard scheduler.
    pub threads: usize,
    /// The requested shard counts.
    pub shard_counts: Vec<usize>,
    /// Per-shard rows (scenario-major, then shard count, then strategy,
    /// then shard).
    pub rows: Vec<ShardRow>,
    /// Per-(scenario, shard count) verdicts.
    pub summaries: Vec<ShardingSummary>,
}

impl std::fmt::Display for ShardingStudy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Shard-count sweep ({}³-element meshes, {} steps, shards {:?}, {} threads):",
            self.edge, self.steps, self.shard_counts, self.threads
        )?;
        for s in &self.summaries {
            for cell in [&s.contiguous, &s.partitioned] {
                writeln!(
                    f,
                    "  {:>22} ×{:<3} {:<11} DDR-imbalance {:.3}  halo {:>5.1}%  red {:>5}  \
                     DDR {:>6.2} MB/stage  worst II {:>6.1}  {} vs serial, {} across counts",
                    s.scenario,
                    s.shard_count,
                    cell.strategy,
                    cell.load_imbalance,
                    100.0 * cell.halo_fraction,
                    cell.reduction_entries,
                    (cell.total_bytes_in + cell.total_bytes_out) as f64 / 1e6,
                    cell.emulated_ii_worst,
                    if cell.bitwise_vs_reference {
                        "bitwise"
                    } else {
                        "DIVERGED"
                    },
                    if cell.bitwise_across_shard_counts {
                        "bitwise"
                    } else {
                        "UNSTABLE"
                    },
                )?;
            }
        }
        writeln!(f, "  per-shard detail:")?;
        writeln!(
            f,
            "  {:>22} {:>6} {:>11} {:>5} {:>6} {:>7} {:>6} {:>10} {:>8}",
            "scenario", "count", "strategy", "shard", "elems", "owned", "halo", "makespan", "II"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:>22} {:>6} {:>11} {:>5} {:>6} {:>7} {:>6} {:>10} {:>8.1}",
                r.scenario,
                r.shard_count,
                r.strategy,
                r.shard,
                r.elements,
                r.owned_nodes,
                r.halo_nodes,
                r.emulated_makespan_cycles,
                r.emulated_ii,
            )?;
        }
        Ok(())
    }
}

/// Runs one (scenario, shard count, strategy) cell and appends its
/// per-shard rows; `first_bits` carries the strategy's first-swept-count
/// trajectory for the across-counts stability check.
#[allow(clippy::too_many_arguments)]
fn run_strategy_cell(
    scenario: &Scenario,
    edge: usize,
    steps: usize,
    dt: f64,
    count: usize,
    strategy: PartitionStrategy,
    reference: &Simulation,
    ref_bits: &[u64],
    first_bits: &mut Option<Vec<u64>>,
    rows: &mut Vec<ShardRow>,
) -> StrategyCell {
    let name = scenario.name();
    let mut sim = scenario
        .simulation(edge)
        .unwrap_or_else(|e| panic!("{name}: build failed: {e}"));
    sim.set_backend(BackendSelect::DataflowEmulated {
        shards: count,
        strategy,
    })
    .unwrap_or_else(|e| panic!("{name}: backend build failed: {e}"));
    sim.advance(steps, dt)
        .unwrap_or_else(|e| panic!("{name}: sharded({count}, {strategy}) run failed: {e}"));
    let bits = sim.conserved().to_bit_vec();
    let bitwise_vs_reference = bits == ref_bits;
    let bitwise_across_shard_counts = match &first_bits {
        Some(b) => **b == bits,
        None => {
            *first_bits = Some(bits.clone());
            true
        }
    };
    let dev = max_rel_dev(reference.conserved(), sim.conserved());

    let plan = sim
        .backend()
        .shard_plan()
        .expect("dataflow-emulated backend carries a shard plan");
    assert_eq!(plan.num_shards(), count, "{name}: effective count drifted");
    let reports = sim.shard_reports();
    assert_eq!(reports.len(), plan.num_shards(), "{name}: report count");
    for (shard, rep) in plan.shards().iter().zip(reports) {
        rows.push(ShardRow {
            scenario: name.to_string(),
            shard_count: count,
            strategy: strategy.to_string(),
            shard: shard.index(),
            elements: shard.num_elements(),
            owned_nodes: shard.owned_nodes().len(),
            halo_nodes: shard.shared_nodes().len(),
            bytes_in: shard.bytes_in() as u64,
            bytes_out: shard.bytes_out() as u64,
            emulated_makespan_cycles: rep.makespan_cycles,
            emulated_ii: rep.observed_ii,
            bottleneck_ii: rep.bottleneck_ii,
        });
    }
    StrategyCell {
        strategy: strategy.to_string(),
        load_imbalance: plan.load_imbalance(),
        element_imbalance: plan.element_imbalance(),
        halo_fraction: plan.halo_fraction(),
        reduction_entries: plan.halo_entries() as u64,
        total_bytes_in: plan.total_bytes_in() as u64,
        total_bytes_out: plan.total_bytes_out() as u64,
        max_rel_dev_vs_reference: dev,
        bitwise_vs_reference,
        bitwise_across_shard_counts,
        max_shard_makespan_cycles: reports.iter().map(|r| r.makespan_cycles).max().unwrap_or(0),
        emulated_ii_worst: reports.iter().map(|r| r.observed_ii).fold(0.0, f64::max),
    }
}

/// Runs the sweep: every registered scenario × every effective shard
/// count of `shard_counts` × both partition strategies, `steps` RK4
/// steps each, on `edge`³-element meshes.
///
/// # Panics
///
/// Panics if a scenario fails to build or a step blows up (a broken
/// registry the caller cannot recover from).
pub fn run_sharding_study(edge: usize, steps: usize, shard_counts: &[usize]) -> ShardingStudy {
    assert!(steps > 0, "steps");
    assert!(!shard_counts.is_empty(), "shard counts");
    let threads = fem_solver::parallel::available_threads();
    let mut rows = Vec::new();
    let mut summaries = Vec::new();
    for scenario in Scenario::registry() {
        let name = scenario.name();
        let mut reference = scenario
            .simulation(edge)
            .unwrap_or_else(|e| panic!("{name}: build failed: {e}"));
        let dt = reference.suggest_dt(scenario.default_cfl());
        reference
            .advance(steps, dt)
            .unwrap_or_else(|e| panic!("{name}: serial run failed: {e}"));
        let ref_bits = reference.conserved().to_bit_vec();
        let mesh_elements = reference.core().mesh().num_elements();
        let mesh_nodes = reference.core().mesh().num_nodes();
        let workload = scenario_workload(name, reference.core().mesh());

        let mut first_contiguous: Option<Vec<u64>> = None;
        let mut first_partitioned: Option<Vec<u64>> = None;
        let mut seen_counts: Vec<usize> = Vec::new();
        for &requested in shard_counts {
            // The plan clamps the shard count to the element count;
            // label the cell with the effective value and sweep each
            // effective count once.
            let count = requested.min(mesh_elements).max(1);
            if seen_counts.contains(&count) {
                continue;
            }
            seen_counts.push(count);
            let contiguous = run_strategy_cell(
                &scenario,
                edge,
                steps,
                dt,
                count,
                PartitionStrategy::Contiguous,
                &reference,
                &ref_bits,
                &mut first_contiguous,
                &mut rows,
            );
            let partitioned = run_strategy_cell(
                &scenario,
                edge,
                steps,
                dt,
                count,
                PartitionStrategy::Partitioned,
                &reference,
                &ref_bits,
                &mut first_partitioned,
                &mut rows,
            );
            summaries.push(ShardingSummary {
                scenario: name.to_string(),
                shard_count: count,
                requested_shards: requested,
                elements: mesh_elements,
                nodes: mesh_nodes,
                contiguous,
                partitioned,
                ddr_bound_gflops: workload.ddr_bound_gflops,
            });
        }
    }
    ShardingStudy {
        edge,
        steps,
        threads,
        shard_counts: shard_counts.to_vec(),
        rows,
        summaries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_registry_stays_bitwise_and_dedups() {
        // 4³ = 64 elements: 100 clamps to 64, and the second 64 request
        // is a duplicate the sweep must drop.
        let study = run_sharding_study(4, 1, &[1, 3, 100, 64]);
        assert_eq!(study.summaries.len(), 4 * 3, "dedup failed");
        for s in &study.summaries {
            assert!(matches!(s.shard_count, 1 | 3 | 64), "{}", s.shard_count);
            assert!(s.requested_shards >= s.shard_count);
            for cell in [&s.contiguous, &s.partitioned] {
                assert!(
                    cell.bitwise_vs_reference,
                    "{} ×{} {}",
                    s.scenario, s.shard_count, cell.strategy
                );
                assert!(
                    cell.bitwise_across_shard_counts,
                    "{} ×{} {}",
                    s.scenario, s.shard_count, cell.strategy
                );
                assert_eq!(cell.max_rel_dev_vs_reference, 0.0);
                assert!(cell.load_imbalance >= 1.0);
                assert!(cell.element_imbalance >= 1.0);
                assert!((0.0..=1.0).contains(&cell.halo_fraction));
                let cell_rows: Vec<&ShardRow> = study
                    .rows
                    .iter()
                    .filter(|r| {
                        r.scenario == s.scenario
                            && r.shard_count == s.shard_count
                            && r.strategy == cell.strategy
                    })
                    .collect();
                assert_eq!(cell_rows.len(), s.shard_count);
                let covered: usize = cell_rows.iter().map(|r| r.elements).sum();
                assert_eq!(covered, s.elements, "{}: shards drop elements", s.scenario);
                let owned: usize = cell_rows.iter().map(|r| r.owned_nodes).sum();
                assert_eq!(owned, s.nodes, "{}: owned sets incomplete", s.scenario);
                let entries: usize = cell_rows.iter().map(|r| r.halo_nodes).sum();
                assert_eq!(entries as u64, cell.reduction_entries);
                for r in &cell_rows {
                    assert!(r.emulated_makespan_cycles > 0);
                    assert!(r.emulated_ii > 0.0);
                }
            }
            // The tentpole gate: the graph partition never produces a
            // larger halo than the contiguous baseline.
            assert!(
                s.partitioned.halo_fraction <= s.contiguous.halo_fraction,
                "{} ×{}: partitioned {} > contiguous {}",
                s.scenario,
                s.shard_count,
                s.partitioned.halo_fraction,
                s.contiguous.halo_fraction
            );
            assert!(s.ddr_bound_gflops > 0.0);
        }
        // Single-shard cells carry no halo.
        for s in study.summaries.iter().filter(|s| s.shard_count == 1) {
            assert_eq!(s.contiguous.halo_fraction, 0.0, "{}", s.scenario);
            assert_eq!(s.partitioned.halo_fraction, 0.0, "{}", s.scenario);
            assert_eq!(s.contiguous.reduction_entries, 0);
        }
        // JSON serializes (the repro --json path) and Display renders.
        let json = serde_json::to_string(&study).unwrap();
        assert!(json.contains("\"summaries\""));
        assert!(json.contains("\"reduction_entries\""));
        let shown = format!("{study}");
        assert!(shown.contains("acoustic-pulse"), "{shown}");
        assert!(shown.contains("partitioned"), "{shown}");
    }
}
