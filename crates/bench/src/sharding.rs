//! Shard-count sweep over the scenario registry: `repro sharding`.
//!
//! For every entry of the solver's scenario registry and every *effective*
//! shard count of the sweep (requested counts are clamped to the element
//! count and deduplicated, so no cell is reported twice under different
//! labels), the study runs the cell under **both**
//! [`fem_solver::engine::PartitionStrategy`] variants side by side:
//!
//! * reads each backend's [`fem_mesh::partition::ShardPlan`] and reports
//!   per-shard DDR traffic (bytes in/out), owned/halo node split, the
//!   plan-level streamed-bytes load imbalance, the unique-halo fraction
//!   (`halo_fraction`, a true fraction in `0 ..= 1`) and the cross-shard
//!   reduction volume (`reduction_entries`, the per-sharing-shard record
//!   count that can exceed the node count);
//! * runs the simulation for a few RK4 steps under the
//!   [`fem_solver::engine::DataflowEmulatedBackend`] and checks the
//!   trajectory is **bitwise identical** to the serial reference — the
//!   engine's shard determinism guarantee — and bitwise stable across
//!   the whole shard-count sweep, per strategy;
//! * attaches the per-shard accelerator cycle emulation
//!   ([`fem_solver::engine::ShardCycleReport`]: DES makespan, observed
//!   II, bottleneck task II) plus the scenario's DDR roofline bound from
//!   [`fem_accel::experiments::scenario_workload`].
//!
//! The study then repeats the sweep over *device* counts under the
//! [`fem_solver::engine::MultiDeviceBackend`]: every effective count ×
//! both strategies runs the decentralized overlapped halo exchange,
//! checks it too is bitwise identical to the serial reference, and
//! reports per-(scenario, devices) phase timings ([`OverlapCell`]) —
//! emulated frontier/interior/exchange/exposed cycles from the
//! inter-device link DES, measured wall-clock phase seconds from the
//! device workers, the resulting overlap efficiencies, and a
//! compute-bound vs comm-bound classification. Requested counts are
//! clamped and deduplicated exactly like shard counts, and every clamp
//! or skip is logged to stderr *and* recorded in
//! [`ShardingStudy::skipped_device_sweeps`] — no silent truncation.
//!
//! The `sharding_json_schema` test in `repro_json.rs` pins the JSON
//! shape — including the gate that the graph partitioner's halo fraction
//! never exceeds the contiguous one at ≥ 4 shards, that every overlap
//! cell stays bitwise, and that overlap efficiency is positive on ≥ 4
//! devices — and the CI `sharding` job regenerates and gates the
//! artifact on every push.

use crate::scenarios::max_rel_dev;
use fem_accel::experiments::scenario_workload;
use fem_solver::engine::{BackendSelect, PartitionStrategy};
use fem_solver::scenarios::Scenario;
use fem_solver::Simulation;
use serde::Serialize;

/// Shard counts the study sweeps (the MultiDevice overlap sweep reuses
/// the same grid as device counts).
pub const SHARD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Elements per axis of the sweep meshes.
pub const SHARDING_EDGE: usize = 6;

/// RK4 steps per (scenario, shard count) cell.
pub const SHARDING_STEPS: usize = 2;

/// One shard of one (scenario, shard count, strategy) cell.
#[derive(Debug, Clone, Serialize)]
pub struct ShardRow {
    /// Scenario identifier.
    pub scenario: String,
    /// Effective shard count of the plan this shard belongs to.
    pub shard_count: usize,
    /// Partition strategy of the plan ("contiguous" | "partitioned").
    pub strategy: String,
    /// Shard index within the plan.
    pub shard: usize,
    /// Elements the shard streams.
    pub elements: usize,
    /// Nodes the shard owns (accumulates during the reduction).
    pub owned_nodes: usize,
    /// Halo nodes the shard forwards to their owners.
    pub halo_nodes: usize,
    /// DDR bytes the shard reads per RK stage.
    pub bytes_in: u64,
    /// DDR bytes the shard writes per RK stage.
    pub bytes_out: u64,
    /// Emulated stage makespan of the shard (cycles).
    pub emulated_makespan_cycles: u64,
    /// Emulated steady-state initiation interval (cycles/element).
    pub emulated_ii: f64,
    /// II of the emulated bottleneck task.
    pub bottleneck_ii: u64,
}

/// One partition strategy's metrics for a (scenario, shard count) cell.
#[derive(Debug, Clone, Serialize)]
pub struct StrategyCell {
    /// Strategy identifier ("contiguous" | "partitioned").
    pub strategy: String,
    /// Largest per-shard streamed DDR traffic over the mean (1.0 =
    /// balanced) — weighted by what the DES actually schedules.
    pub load_imbalance: f64,
    /// Largest shard element count over the mean (1.0 = balanced).
    pub element_imbalance: f64,
    /// Unique halo (frontier) nodes over mesh nodes — a true fraction,
    /// always within `0 ..= 1`.
    pub halo_fraction: f64,
    /// Cross-shard reduction volume: shared-node records summed over
    /// shards. A node shared by k non-owner shards counts k times, so
    /// this can exceed the node count (the quantity the pre-fix
    /// `halo_fraction` mistakenly divided by `nodes`).
    pub reduction_entries: u64,
    /// Aggregate DDR bytes read per RK stage over all shards.
    pub total_bytes_in: u64,
    /// Aggregate DDR bytes written per RK stage over all shards.
    pub total_bytes_out: u64,
    /// Worst per-field relative deviation of the sharded trajectory from
    /// the serial reference (0 when bitwise identical).
    pub max_rel_dev_vs_reference: f64,
    /// Whether the sharded trajectory is bit-for-bit the reference one.
    pub bitwise_vs_reference: bool,
    /// Whether this cell's trajectory is bit-for-bit identical to the
    /// sweep's first shard count under the same strategy.
    pub bitwise_across_shard_counts: bool,
    /// Slowest emulated shard makespan (cycles) — the stage critical
    /// path of a shard-parallel device.
    pub max_shard_makespan_cycles: u64,
    /// Worst emulated per-shard II (cycles/element).
    pub emulated_ii_worst: f64,
}

/// Per-(scenario, shard count) verdict: both strategies side by side.
#[derive(Debug, Clone, Serialize)]
pub struct ShardingSummary {
    /// Scenario identifier.
    pub scenario: String,
    /// Effective shard count of this cell (`plan.num_shards()`).
    pub shard_count: usize,
    /// The shard count the sweep requested (can exceed `shard_count` on
    /// meshes with fewer elements; such duplicates are swept once).
    pub requested_shards: usize,
    /// Mesh elements.
    pub elements: usize,
    /// Mesh nodes.
    pub nodes: usize,
    /// The contiguous-range baseline.
    pub contiguous: StrategyCell,
    /// The halo-minimizing graph partition.
    pub partitioned: StrategyCell,
    /// The scenario's U200 DDR roofline bound (GFLOP/s) for context.
    pub ddr_bound_gflops: f64,
}

/// One device of one (scenario, device count, strategy) overlap cell —
/// straight out of [`fem_solver::engine::DeviceExchangeReport`].
#[derive(Debug, Clone, Serialize)]
pub struct DevicePhaseRow {
    /// Scenario identifier.
    pub scenario: String,
    /// Effective device count of the plan this device belongs to.
    pub device_count: usize,
    /// Partition strategy of the plan ("contiguous" | "partitioned").
    pub strategy: String,
    /// Device index within the plan.
    pub device: usize,
    /// Neighboring devices this one exchanges halos with.
    pub neighbors: usize,
    /// Elements touching a frontier node (assembled first, records
    /// posted to neighbor mailboxes before the interior sweep).
    pub frontier_elements: usize,
    /// Elements whose nodes the device owns outright (assembled while
    /// the halo exchange is in flight).
    pub interior_elements: usize,
    /// Halo records posted to other devices this step.
    pub halo_records_sent: usize,
    /// Bytes those records occupy on the inter-device links.
    pub halo_bytes_sent: u64,
    /// Emulated frontier-assembly latency (link-clock cycles).
    pub frontier_cycles: u64,
    /// Emulated interior-sweep latency (cycles) — the window that hides
    /// the exchange.
    pub interior_cycles: u64,
    /// Emulated inbound link occupancy (cycles): PCIe latency plus
    /// chunked bandwidth for every neighbor's halo buffer.
    pub exchange_cycles: u64,
    /// Exposed (non-overlapped) communication: cycles the frontier
    /// finalization stalls after the interior sweep has finished.
    pub exposed_cycles: u64,
    /// Emulated owner-apply latency (cycles).
    pub apply_cycles: u64,
    /// Emulated device makespan (cycles).
    pub makespan_cycles: u64,
}

/// Per-(scenario, device count, strategy) verdict of the MultiDevice
/// overlapped halo exchange.
#[derive(Debug, Clone, Serialize)]
pub struct OverlapCell {
    /// Scenario identifier.
    pub scenario: String,
    /// Effective device count (`plan.num_shards()`).
    pub device_count: usize,
    /// The device count the sweep requested for this cell.
    pub requested_devices: usize,
    /// Partition strategy ("contiguous" | "partitioned").
    pub strategy: String,
    /// Whether the multi-device trajectory is bit-for-bit the serial
    /// reference one — the backend's determinism guarantee.
    pub bitwise_vs_reference: bool,
    /// Worst per-field relative deviation vs the reference (0 when
    /// bitwise).
    pub max_rel_dev_vs_reference: f64,
    /// Σ frontier-assembly cycles over devices.
    pub frontier_cycles_total: u64,
    /// Σ interior-sweep cycles over devices.
    pub interior_cycles_total: u64,
    /// Σ inbound link cycles over devices.
    pub exchange_cycles_total: u64,
    /// Σ exposed (non-overlapped) communication cycles over devices.
    pub exposed_cycles_total: u64,
    /// Σ halo records crossing links.
    pub halo_records_total: usize,
    /// Slowest emulated device makespan (cycles).
    pub max_device_makespan_cycles: u64,
    /// Fraction of link traffic hidden behind the interior sweep in the
    /// DES: `1 − exposed/exchange` (1.0 when nothing crosses a link).
    pub emulated_overlap_efficiency: f64,
    /// Measured wall-clock seconds the workers spent assembling
    /// frontier elements (summed over devices and RK stages).
    pub measured_frontier_s: f64,
    /// Measured seconds in the interior sweep — work done while halos
    /// were in flight.
    pub measured_interior_s: f64,
    /// Measured seconds blocked draining neighbor mailboxes after the
    /// interior sweep.
    pub measured_wait_s: f64,
    /// Measured seconds applying owned contributions in element order.
    pub measured_apply_s: f64,
    /// Measured overlap: `interior / (interior + wait)` (1.0 when both
    /// are zero).
    pub measured_overlap_efficiency: f64,
    /// "comm-bound" when exposed link cycles exceed the interior sweep
    /// that hides them, "compute-bound" otherwise.
    pub bound: String,
}

/// A requested device count the sweep did not run as its own cell —
/// recorded (and logged to stderr) so nothing is silently truncated.
#[derive(Debug, Clone, Serialize)]
pub struct SkippedDeviceSweep {
    /// Scenario identifier.
    pub scenario: String,
    /// The device count the sweep requested.
    pub requested_devices: usize,
    /// What the request clamps to on this mesh.
    pub effective_devices: usize,
    /// Why the cell was skipped.
    pub reason: String,
}

/// The full shard-count sweep.
#[derive(Debug, Clone, Serialize)]
pub struct ShardingStudy {
    /// Elements per axis of every scenario mesh.
    pub edge: usize,
    /// RK steps per cell.
    pub steps: usize,
    /// Worker threads available to the shard scheduler.
    pub threads: usize,
    /// Memory system whose channels priced the DDR-traffic quotes and
    /// roofline bounds (`repro banking` sweeps the alternatives).
    pub memory_system: String,
    /// The requested shard counts.
    pub shard_counts: Vec<usize>,
    /// The requested device counts of the MultiDevice overlap sweep.
    pub device_counts: Vec<usize>,
    /// Per-shard rows (scenario-major, then shard count, then strategy,
    /// then shard).
    pub rows: Vec<ShardRow>,
    /// Per-(scenario, shard count) verdicts.
    pub summaries: Vec<ShardingSummary>,
    /// Per-device phase rows of the MultiDevice overlap sweep.
    pub overlap_rows: Vec<DevicePhaseRow>,
    /// Per-(scenario, device count, strategy) overlap verdicts.
    pub overlap_cells: Vec<OverlapCell>,
    /// Requested device counts that did not run as their own cell.
    pub skipped_device_sweeps: Vec<SkippedDeviceSweep>,
}

impl std::fmt::Display for ShardingStudy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Shard-count sweep ({}³-element meshes, {} steps, shards {:?}, {} threads, {} memory):",
            self.edge, self.steps, self.shard_counts, self.threads, self.memory_system
        )?;
        for s in &self.summaries {
            for cell in [&s.contiguous, &s.partitioned] {
                writeln!(
                    f,
                    "  {:>22} ×{:<3} {:<11} DDR-imbalance {:.3}  halo {:>5.1}%  red {:>5}  \
                     DDR {:>6.2} MB/stage  worst II {:>6.1}  {} vs serial, {} across counts",
                    s.scenario,
                    s.shard_count,
                    cell.strategy,
                    cell.load_imbalance,
                    100.0 * cell.halo_fraction,
                    cell.reduction_entries,
                    (cell.total_bytes_in + cell.total_bytes_out) as f64 / 1e6,
                    cell.emulated_ii_worst,
                    if cell.bitwise_vs_reference {
                        "bitwise"
                    } else {
                        "DIVERGED"
                    },
                    if cell.bitwise_across_shard_counts {
                        "bitwise"
                    } else {
                        "UNSTABLE"
                    },
                )?;
            }
        }
        writeln!(
            f,
            "  multi-device overlap (devices {:?}):",
            self.device_counts
        )?;
        for c in &self.overlap_cells {
            writeln!(
                f,
                "  {:>22} ×{:<3} {:<11} exch {:>8} cyc  exposed {:>8} cyc  \
                 eff {:>5.2} (measured {:>5.2})  {:<13} {} vs serial",
                c.scenario,
                c.device_count,
                c.strategy,
                c.exchange_cycles_total,
                c.exposed_cycles_total,
                c.emulated_overlap_efficiency,
                c.measured_overlap_efficiency,
                c.bound,
                if c.bitwise_vs_reference {
                    "bitwise"
                } else {
                    "DIVERGED"
                },
            )?;
        }
        for s in &self.skipped_device_sweeps {
            writeln!(
                f,
                "  skipped {:>22} @ {} devices: {}",
                s.scenario, s.requested_devices, s.reason
            )?;
        }
        writeln!(f, "  per-device detail:")?;
        writeln!(
            f,
            "  {:>22} {:>6} {:>11} {:>6} {:>5} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "scenario",
            "count",
            "strategy",
            "device",
            "nbrs",
            "frontier",
            "interior",
            "exchange",
            "exposed",
            "makespan"
        )?;
        for r in &self.overlap_rows {
            writeln!(
                f,
                "  {:>22} {:>6} {:>11} {:>6} {:>5} {:>8} {:>8} {:>8} {:>8} {:>8}",
                r.scenario,
                r.device_count,
                r.strategy,
                r.device,
                r.neighbors,
                r.frontier_elements,
                r.interior_elements,
                r.exchange_cycles,
                r.exposed_cycles,
                r.makespan_cycles,
            )?;
        }
        writeln!(f, "  per-shard detail:")?;
        writeln!(
            f,
            "  {:>22} {:>6} {:>11} {:>5} {:>6} {:>7} {:>6} {:>10} {:>8}",
            "scenario", "count", "strategy", "shard", "elems", "owned", "halo", "makespan", "II"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:>22} {:>6} {:>11} {:>5} {:>6} {:>7} {:>6} {:>10} {:>8.1}",
                r.scenario,
                r.shard_count,
                r.strategy,
                r.shard,
                r.elements,
                r.owned_nodes,
                r.halo_nodes,
                r.emulated_makespan_cycles,
                r.emulated_ii,
            )?;
        }
        Ok(())
    }
}

/// Runs one (scenario, shard count, strategy) cell and appends its
/// per-shard rows; `first_bits` carries the strategy's first-swept-count
/// trajectory for the across-counts stability check.
#[allow(clippy::too_many_arguments)]
fn run_strategy_cell(
    scenario: &Scenario,
    edge: usize,
    steps: usize,
    dt: f64,
    count: usize,
    strategy: PartitionStrategy,
    reference: &Simulation,
    ref_bits: &[u64],
    first_bits: &mut Option<Vec<u64>>,
    rows: &mut Vec<ShardRow>,
) -> StrategyCell {
    let name = scenario.name();
    let mut sim = scenario
        .simulation(edge)
        .unwrap_or_else(|e| panic!("{name}: build failed: {e}"));
    sim.set_backend(BackendSelect::DataflowEmulated {
        shards: count,
        strategy,
    })
    .unwrap_or_else(|e| panic!("{name}: backend build failed: {e}"));
    sim.advance(steps, dt)
        .unwrap_or_else(|e| panic!("{name}: sharded({count}, {strategy}) run failed: {e}"));
    let bits = sim.conserved().to_bit_vec();
    let bitwise_vs_reference = bits == ref_bits;
    let bitwise_across_shard_counts = match &first_bits {
        Some(b) => **b == bits,
        None => {
            *first_bits = Some(bits.clone());
            true
        }
    };
    let dev = max_rel_dev(reference.conserved(), sim.conserved());

    let plan = sim
        .backend()
        .shard_plan()
        .expect("dataflow-emulated backend carries a shard plan");
    assert_eq!(plan.num_shards(), count, "{name}: effective count drifted");
    let reports = sim.shard_reports();
    assert_eq!(reports.len(), plan.num_shards(), "{name}: report count");
    for (shard, rep) in plan.shards().iter().zip(reports) {
        rows.push(ShardRow {
            scenario: name.to_string(),
            shard_count: count,
            strategy: strategy.to_string(),
            shard: shard.index(),
            elements: shard.num_elements(),
            owned_nodes: shard.owned_nodes().len(),
            halo_nodes: shard.shared_nodes().len(),
            bytes_in: shard.bytes_in() as u64,
            bytes_out: shard.bytes_out() as u64,
            emulated_makespan_cycles: rep.makespan_cycles,
            emulated_ii: rep.observed_ii,
            bottleneck_ii: rep.bottleneck_ii,
        });
    }
    StrategyCell {
        strategy: strategy.to_string(),
        load_imbalance: plan.load_imbalance(),
        element_imbalance: plan.element_imbalance(),
        halo_fraction: plan.halo_fraction(),
        reduction_entries: plan.halo_entries() as u64,
        total_bytes_in: plan.total_bytes_in() as u64,
        total_bytes_out: plan.total_bytes_out() as u64,
        max_rel_dev_vs_reference: dev,
        bitwise_vs_reference,
        bitwise_across_shard_counts,
        max_shard_makespan_cycles: reports.iter().map(|r| r.makespan_cycles).max().unwrap_or(0),
        emulated_ii_worst: reports.iter().map(|r| r.observed_ii).fold(0.0, f64::max),
    }
}

/// Runs one (scenario, device count, strategy) cell under the
/// [`fem_solver::engine::MultiDeviceBackend`], appends its per-device
/// phase rows, and returns the cell's overlap verdict.
#[allow(clippy::too_many_arguments)]
fn run_overlap_cell(
    scenario: &Scenario,
    edge: usize,
    steps: usize,
    dt: f64,
    devices: usize,
    requested: usize,
    strategy: PartitionStrategy,
    reference: &Simulation,
    ref_bits: &[u64],
    rows: &mut Vec<DevicePhaseRow>,
) -> OverlapCell {
    let name = scenario.name();
    let mut sim = scenario
        .simulation(edge)
        .unwrap_or_else(|e| panic!("{name}: build failed: {e}"));
    sim.set_backend(BackendSelect::MultiDevice { devices, strategy })
        .unwrap_or_else(|e| panic!("{name}: multidevice backend build failed: {e}"));
    sim.advance(steps, dt)
        .unwrap_or_else(|e| panic!("{name}: multidevice({devices}, {strategy}) run failed: {e}"));
    let bits = sim.conserved().to_bit_vec();
    let bitwise_vs_reference = bits == ref_bits;
    let dev = max_rel_dev(reference.conserved(), sim.conserved());

    let reports = sim.exchange_reports().to_vec();
    assert_eq!(reports.len(), devices, "{name}: exchange report count");
    let measured = sim.measured_device_phases();
    assert_eq!(measured.len(), devices, "{name}: phase report count");
    for r in &reports {
        rows.push(DevicePhaseRow {
            scenario: name.to_string(),
            device_count: devices,
            strategy: strategy.to_string(),
            device: r.device,
            neighbors: r.neighbors,
            frontier_elements: r.frontier_elements,
            interior_elements: r.interior_elements,
            halo_records_sent: r.halo_records_sent,
            halo_bytes_sent: r.halo_bytes_sent,
            frontier_cycles: r.frontier_cycles,
            interior_cycles: r.interior_cycles,
            exchange_cycles: r.exchange_cycles,
            exposed_cycles: r.exposed_cycles,
            apply_cycles: r.apply_cycles,
            makespan_cycles: r.makespan_cycles,
        });
    }
    let frontier_total: u64 = reports.iter().map(|r| r.frontier_cycles).sum();
    let interior_total: u64 = reports.iter().map(|r| r.interior_cycles).sum();
    let exchange_total: u64 = reports.iter().map(|r| r.exchange_cycles).sum();
    let exposed_total: u64 = reports.iter().map(|r| r.exposed_cycles).sum();
    let emulated_overlap_efficiency = if exchange_total == 0 {
        1.0
    } else {
        1.0 - exposed_total as f64 / exchange_total as f64
    };
    let measured_frontier_s: f64 = measured.iter().map(|m| m.frontier_s).sum();
    let measured_interior_s: f64 = measured.iter().map(|m| m.interior_s).sum();
    let measured_wait_s: f64 = measured.iter().map(|m| m.wait_s).sum();
    let measured_apply_s: f64 = measured.iter().map(|m| m.apply_s).sum();
    let measured_overlap_efficiency = if measured_interior_s + measured_wait_s <= 0.0 {
        1.0
    } else {
        measured_interior_s / (measured_interior_s + measured_wait_s)
    };
    let bound = if exposed_total > interior_total {
        "comm-bound"
    } else {
        "compute-bound"
    };
    OverlapCell {
        scenario: name.to_string(),
        device_count: devices,
        requested_devices: requested,
        strategy: strategy.to_string(),
        bitwise_vs_reference,
        max_rel_dev_vs_reference: dev,
        frontier_cycles_total: frontier_total,
        interior_cycles_total: interior_total,
        exchange_cycles_total: exchange_total,
        exposed_cycles_total: exposed_total,
        halo_records_total: reports.iter().map(|r| r.halo_records_sent).sum(),
        max_device_makespan_cycles: reports.iter().map(|r| r.makespan_cycles).max().unwrap_or(0),
        emulated_overlap_efficiency,
        measured_frontier_s,
        measured_interior_s,
        measured_wait_s,
        measured_apply_s,
        measured_overlap_efficiency,
        bound: bound.to_string(),
    }
}

/// Runs the sweep: every registered scenario × every effective shard
/// count of `shard_counts` × both partition strategies, `steps` RK4
/// steps each, on `edge`³-element meshes — then the MultiDevice overlap
/// sweep over the same counts.
///
/// # Panics
///
/// Panics if a scenario fails to build or a step blows up (a broken
/// registry the caller cannot recover from).
pub fn run_sharding_study(edge: usize, steps: usize, shard_counts: &[usize]) -> ShardingStudy {
    assert!(steps > 0, "steps");
    assert!(!shard_counts.is_empty(), "shard counts");
    let threads = fem_solver::parallel::available_threads();
    let mut rows = Vec::new();
    let mut summaries = Vec::new();
    let mut overlap_rows = Vec::new();
    let mut overlap_cells = Vec::new();
    let mut skipped_device_sweeps = Vec::new();
    for scenario in Scenario::registry() {
        let name = scenario.name();
        let mut reference = scenario
            .simulation(edge)
            .unwrap_or_else(|e| panic!("{name}: build failed: {e}"));
        let dt = reference.suggest_dt(scenario.default_cfl());
        reference
            .advance(steps, dt)
            .unwrap_or_else(|e| panic!("{name}: serial run failed: {e}"));
        let ref_bits = reference.conserved().to_bit_vec();
        let mesh_elements = reference.core().mesh().num_elements();
        let mesh_nodes = reference.core().mesh().num_nodes();
        let workload = scenario_workload(name, reference.core().mesh());

        let mut first_contiguous: Option<Vec<u64>> = None;
        let mut first_partitioned: Option<Vec<u64>> = None;
        let mut seen_counts: Vec<usize> = Vec::new();
        for &requested in shard_counts {
            // The plan clamps the shard count to the element count;
            // label the cell with the effective value and sweep each
            // effective count once.
            let count = requested.min(mesh_elements).max(1);
            if seen_counts.contains(&count) {
                continue;
            }
            seen_counts.push(count);
            let contiguous = run_strategy_cell(
                &scenario,
                edge,
                steps,
                dt,
                count,
                PartitionStrategy::Contiguous,
                &reference,
                &ref_bits,
                &mut first_contiguous,
                &mut rows,
            );
            let partitioned = run_strategy_cell(
                &scenario,
                edge,
                steps,
                dt,
                count,
                PartitionStrategy::Partitioned,
                &reference,
                &ref_bits,
                &mut first_partitioned,
                &mut rows,
            );
            summaries.push(ShardingSummary {
                scenario: name.to_string(),
                shard_count: count,
                requested_shards: requested,
                elements: mesh_elements,
                nodes: mesh_nodes,
                contiguous,
                partitioned,
                ddr_bound_gflops: workload.ddr_bound_gflops,
            });
        }

        // The MultiDevice overlap sweep over the same counts. Requests
        // are clamped to the element count and deduplicated like the
        // shard sweep, but never silently: every request that does not
        // run as its own cell is logged to stderr and recorded in the
        // study (stdout carries the JSON artifact, so the log must not
        // go there).
        let mut seen_devices: Vec<usize> = Vec::new();
        for &requested in shard_counts {
            let devices = requested.min(mesh_elements).max(1);
            if seen_devices.contains(&devices) {
                let reason = if devices < requested {
                    format!(
                        "the {mesh_elements}-element mesh clamps {requested} devices \
                         to {devices}, a count already swept"
                    )
                } else {
                    format!("effective device count {devices} already swept")
                };
                eprintln!("sharding: {name}: skipping {requested}-device cell — {reason}");
                skipped_device_sweeps.push(SkippedDeviceSweep {
                    scenario: name.to_string(),
                    requested_devices: requested,
                    effective_devices: devices,
                    reason,
                });
                continue;
            }
            seen_devices.push(devices);
            if devices < requested {
                eprintln!(
                    "sharding: {name}: clamping {requested} devices to {devices} \
                     ({mesh_elements}-element mesh)"
                );
            }
            for strategy in [
                PartitionStrategy::Contiguous,
                PartitionStrategy::Partitioned,
            ] {
                overlap_cells.push(run_overlap_cell(
                    &scenario,
                    edge,
                    steps,
                    dt,
                    devices,
                    requested,
                    strategy,
                    &reference,
                    &ref_bits,
                    &mut overlap_rows,
                ));
            }
        }
    }
    ShardingStudy {
        edge,
        steps,
        threads,
        memory_system: fpga_platform::u200::U200::new()
            .memory_system()
            .name()
            .to_string(),
        shard_counts: shard_counts.to_vec(),
        device_counts: shard_counts.to_vec(),
        rows,
        summaries,
        overlap_rows,
        overlap_cells,
        skipped_device_sweeps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_registry_stays_bitwise_and_dedups() {
        // 4³ = 64 elements: 100 clamps to 64, and the second 64 request
        // is a duplicate the sweep must drop.
        let study = run_sharding_study(4, 1, &[1, 3, 100, 64]);
        assert_eq!(study.summaries.len(), 4 * 3, "dedup failed");
        for s in &study.summaries {
            assert!(matches!(s.shard_count, 1 | 3 | 64), "{}", s.shard_count);
            assert!(s.requested_shards >= s.shard_count);
            for cell in [&s.contiguous, &s.partitioned] {
                assert!(
                    cell.bitwise_vs_reference,
                    "{} ×{} {}",
                    s.scenario, s.shard_count, cell.strategy
                );
                assert!(
                    cell.bitwise_across_shard_counts,
                    "{} ×{} {}",
                    s.scenario, s.shard_count, cell.strategy
                );
                assert_eq!(cell.max_rel_dev_vs_reference, 0.0);
                assert!(cell.load_imbalance >= 1.0);
                assert!(cell.element_imbalance >= 1.0);
                assert!((0.0..=1.0).contains(&cell.halo_fraction));
                let cell_rows: Vec<&ShardRow> = study
                    .rows
                    .iter()
                    .filter(|r| {
                        r.scenario == s.scenario
                            && r.shard_count == s.shard_count
                            && r.strategy == cell.strategy
                    })
                    .collect();
                assert_eq!(cell_rows.len(), s.shard_count);
                let covered: usize = cell_rows.iter().map(|r| r.elements).sum();
                assert_eq!(covered, s.elements, "{}: shards drop elements", s.scenario);
                let owned: usize = cell_rows.iter().map(|r| r.owned_nodes).sum();
                assert_eq!(owned, s.nodes, "{}: owned sets incomplete", s.scenario);
                let entries: usize = cell_rows.iter().map(|r| r.halo_nodes).sum();
                assert_eq!(entries as u64, cell.reduction_entries);
                for r in &cell_rows {
                    assert!(r.emulated_makespan_cycles > 0);
                    assert!(r.emulated_ii > 0.0);
                }
            }
            // The tentpole gate: the graph partition never produces a
            // larger halo than the contiguous baseline.
            assert!(
                s.partitioned.halo_fraction <= s.contiguous.halo_fraction,
                "{} ×{}: partitioned {} > contiguous {}",
                s.scenario,
                s.shard_count,
                s.partitioned.halo_fraction,
                s.contiguous.halo_fraction
            );
            assert!(s.ddr_bound_gflops > 0.0);
        }
        // Single-shard cells carry no halo.
        for s in study.summaries.iter().filter(|s| s.shard_count == 1) {
            assert_eq!(s.contiguous.halo_fraction, 0.0, "{}", s.scenario);
            assert_eq!(s.partitioned.halo_fraction, 0.0, "{}", s.scenario);
            assert_eq!(s.contiguous.reduction_entries, 0);
        }
        // The MultiDevice overlap sweep covers the same effective
        // counts × both strategies and stays bitwise everywhere.
        assert_eq!(study.overlap_cells.len(), 4 * 3 * 2, "overlap dedup");
        for c in &study.overlap_cells {
            assert!(matches!(c.device_count, 1 | 3 | 64), "{}", c.device_count);
            assert!(c.requested_devices >= c.device_count);
            assert!(
                c.bitwise_vs_reference,
                "{} ×{} {}",
                c.scenario, c.device_count, c.strategy
            );
            assert_eq!(c.max_rel_dev_vs_reference, 0.0);
            assert!((0.0..=1.0).contains(&c.emulated_overlap_efficiency));
            assert!((0.0..=1.0).contains(&c.measured_overlap_efficiency));
            assert!(c.measured_frontier_s >= 0.0 && c.measured_apply_s >= 0.0);
            assert!(
                c.bound == "comm-bound" || c.bound == "compute-bound",
                "{}",
                c.bound
            );
            assert_eq!(
                c.bound == "comm-bound",
                c.exposed_cycles_total > c.interior_cycles_total,
                "{} ×{} {}: bound label inconsistent",
                c.scenario,
                c.device_count,
                c.strategy
            );
            let cell_rows: Vec<&DevicePhaseRow> = study
                .overlap_rows
                .iter()
                .filter(|r| {
                    r.scenario == c.scenario
                        && r.device_count == c.device_count
                        && r.strategy == c.strategy
                })
                .collect();
            assert_eq!(cell_rows.len(), c.device_count);
            let covered: usize = cell_rows
                .iter()
                .map(|r| r.frontier_elements + r.interior_elements)
                .sum();
            assert_eq!(covered, 64, "{}: devices drop elements", c.scenario);
            for r in &cell_rows {
                assert_eq!(r.halo_bytes_sent, 48 * r.halo_records_sent as u64);
                assert!(r.makespan_cycles >= r.exposed_cycles);
            }
            if c.device_count == 1 {
                // A solo device exchanges nothing: fully compute-bound.
                assert_eq!(c.exchange_cycles_total, 0, "{}", c.scenario);
                assert_eq!(c.exposed_cycles_total, 0);
                assert_eq!(c.halo_records_total, 0);
                assert_eq!(c.emulated_overlap_efficiency, 1.0);
                assert_eq!(c.bound, "compute-bound");
            } else {
                // Multi-device cells cross links, and the interior
                // sweep hides part of the traffic.
                assert!(c.exchange_cycles_total > 0, "{}", c.scenario);
                assert!(c.exposed_cycles_total > 0, "{}", c.scenario);
                assert!(
                    c.emulated_overlap_efficiency > 0.0,
                    "{} ×{} {}: no overlap",
                    c.scenario,
                    c.device_count,
                    c.strategy
                );
            }
        }
        // 100 clamps to 64 and *runs* (recorded via the cell's
        // requested_devices field); the later literal-64 request then
        // duplicates it and must be skipped — and recorded, per
        // scenario, not dropped.
        assert_eq!(study.skipped_device_sweeps.len(), 4, "skip log");
        for s in &study.skipped_device_sweeps {
            assert_eq!(s.requested_devices, 64, "{s:?}");
            assert_eq!(s.effective_devices, 64);
            assert!(!s.reason.is_empty());
        }
        assert!(study
            .overlap_cells
            .iter()
            .any(|c| c.requested_devices == 100 && c.device_count == 64));
        // The study records which memory system priced its DDR quotes.
        assert_eq!(study.memory_system, "u200-ddr4");
        // JSON serializes (the repro --json path) and Display renders.
        let json = serde_json::to_string(&study).unwrap();
        assert!(json.contains("\"memory_system\""));
        assert!(json.contains("\"summaries\""));
        assert!(json.contains("\"reduction_entries\""));
        assert!(json.contains("\"overlap_cells\""));
        assert!(json.contains("\"emulated_overlap_efficiency\""));
        assert!(json.contains("\"skipped_device_sweeps\""));
        let shown = format!("{study}");
        assert!(shown.contains("acoustic-pulse"), "{shown}");
        assert!(shown.contains("partitioned"), "{shown}");
        assert!(shown.contains("multi-device overlap"), "{shown}");
        assert!(shown.contains("skipped"), "{shown}");
    }
}
