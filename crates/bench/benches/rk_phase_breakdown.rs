//! Fig 2 bench: wall-clock phase breakdown of the reference solver.
//!
//! Measures one RK4 step of the instrumented solver at several mesh
//! sizes and reports the per-phase split alongside the paper's numbers
//! (the `repro fig2` harness prints the full table).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fem_mesh::generator::BoxMeshBuilder;
use fem_numerics::rk::StateOps;
use fem_solver::driver::Simulation;
use fem_solver::profile::Phase;
use fem_solver::tgv::TgvConfig;

fn bench_rk_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("rk_step");
    group.sample_size(10);
    for edge in [8usize, 12, 16] {
        let mesh = BoxMeshBuilder::tgv_box(edge).build().unwrap();
        // Criterion repeats the step thousands of times; a well-resolved
        // Reynolds number keeps the long pseudo-trajectory stable, and a
        // blow-up (under-resolved turbulence is chaotic) just resets the
        // state rather than aborting the bench.
        let cfg = TgvConfig::new(0.1, 200.0);
        let initial = cfg.initial_state(&mesh);
        let nodes = mesh.num_nodes();
        let mut sim = Simulation::new(mesh, cfg.gas(), initial.clone()).unwrap();
        let dt = sim.suggest_dt(0.25);
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
            b.iter(|| {
                if sim.step(dt).is_err() {
                    sim.conserved_mut().copy_from(&initial);
                }
            });
        });
    }
    group.finish();
}

fn report_breakdown(_c: &mut Criterion) {
    // Not a statistical benchmark: prints the measured Fig 2 shape once
    // so `cargo bench` output contains the phase split.
    let mesh = BoxMeshBuilder::tgv_box(16).build().unwrap();
    let cfg = TgvConfig::standard();
    let initial = cfg.initial_state(&mesh);
    let mut sim = Simulation::new(mesh, cfg.gas(), initial).unwrap();
    sim.set_profiling(true);
    let dt = sim.suggest_dt(0.3);
    for _ in 0..3 {
        sim.step(dt).unwrap();
        sim.diagnostics();
    }
    println!("\nmeasured Fig 2 breakdown (16³ nodes):");
    println!("{}", sim.profiler());
    println!("paper: RK(Diffusion) 39.20 | RK(Convection) 21.04 | RK(Other) 16.13 | Non-RK 23.63");
    let diff = sim.profiler().total(Phase::RkDiffusion);
    assert!(diff.as_nanos() > 0);
}

criterion_group!(benches, bench_rk_step, report_breakdown);
criterion_main!(benches);
