//! Ablation bench: evaluates every §III optimization toggle and prints
//! the modeled slowdowns (shape check for the DESIGN.md ablation index).

use criterion::{criterion_group, criterion_main, Criterion};
use fem_accel::experiments::run_ablations;

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("run_ablations_200k", |b| {
        b.iter(|| run_ablations(200_000).unwrap());
    });
    group.finish();

    let r = run_ablations(200_000).unwrap();
    println!("\n{r}");
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
