//! Benchmarks of the dataflow discrete-event simulator and its analytic
//! shortcut — the substrate behind the Fig 5 timing numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hls_dataflow::analytic::analytic_makespan;
use hls_dataflow::network::{ChannelKind, Network, NetworkBuilder};
use hls_dataflow::sim::simulate;

fn rkl_like_network(tokens: u64) -> Network {
    let mut b = NetworkBuilder::new();
    let c1 = b.channel("load_compute", 8, ChannelKind::Fifo);
    let c2 = b.channel("compute_store", 8, ChannelKind::Fifo);
    b.task("load", 8, 21, vec![], vec![c1]);
    b.task("compute", 32, 96, vec![c1], vec![c2]);
    b.task("store", 8, 21, vec![c2], vec![]);
    b.build(tokens).unwrap()
}

fn bench_des(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataflow_des");
    for tokens in [1_000u64, 10_000, 100_000] {
        let net = rkl_like_network(tokens);
        group.throughput(Throughput::Elements(tokens));
        group.bench_with_input(BenchmarkId::from_parameter(tokens), &net, |b, net| {
            b.iter(|| simulate(net).unwrap().makespan);
        });
    }
    group.finish();

    let net = rkl_like_network(4_200_000);
    c.bench_function("analytic_makespan_4.2M", |b| {
        b.iter(|| analytic_makespan(&net));
    });
}

criterion_group!(benches, bench_des);
criterion_main!(benches);
