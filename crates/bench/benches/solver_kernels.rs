//! Micro-benchmarks of the FEM element kernels — the code the paper's
//! profiling (Fig 2) identifies as the hotspots (diffusion 39.2%,
//! convection 21.04%).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fem_mesh::coloring::ElementColoring;
use fem_mesh::generator::BoxMeshBuilder;
use fem_mesh::geometry::GeometryCache;
use fem_mesh::hex::{ElementGeometry, GeometryScratch};
use fem_numerics::tensor::HexBasis;
use fem_solver::kernels::{
    convective_flux, fused_flux, viscous_flux, weak_divergence, ElementWorkspace, KernelOps,
    KernelPath,
};
use fem_solver::parallel::{assemble_rhs_chunked_into, assemble_rhs_colored_into};
use fem_solver::state::{Conserved, Primitives};
use fem_solver::tgv::TgvConfig;

fn bench_kernels(c: &mut Criterion) {
    let mesh = BoxMeshBuilder::tgv_box(8).build().unwrap();
    let basis = HexBasis::new(1).unwrap();
    let cfg = TgvConfig::standard();
    let gas = cfg.gas();
    let conserved = cfg.initial_state(&mesh);
    let mut prim = Primitives::zeros(mesh.num_nodes());
    prim.update_from(&conserved, &gas);
    let npe = mesh.nodes_per_element();
    let mut ws = ElementWorkspace::new(npe);
    let mut scratch = GeometryScratch::new(npe);
    let mut geom = ElementGeometry::with_capacity(npe);
    mesh.fill_element_geometry(0, &basis, &mut scratch, &mut geom)
        .unwrap();
    ws.gather(mesh.element_nodes(0), &conserved, &prim);

    let mut group = c.benchmark_group("element_kernels");
    group.throughput(Throughput::Elements(1));
    group.bench_function("convective_flux", |b| {
        b.iter(|| convective_flux(&mut ws));
    });
    group.bench_function("viscous_flux", |b| {
        b.iter(|| viscous_flux(&mut ws, &gas, &basis, geom.view()));
    });
    group.bench_function("fused_flux", |b| {
        b.iter(|| fused_flux(&mut ws, &gas, &basis, geom.view()));
    });
    group.bench_function("weak_divergence", |b| {
        b.iter(|| {
            ws.zero_residuals();
            weak_divergence(&mut ws, &basis, geom.view(), 1.0);
        });
    });
    group.bench_function("geometry", |b| {
        b.iter(|| {
            mesh.fill_element_geometry(0, &basis, &mut scratch, &mut geom)
                .unwrap()
        });
    });
    group.bench_function("full_element_rkl_fused", |b| {
        let cache = GeometryCache::build(&mesh, &basis).unwrap();
        b.iter(|| {
            let g = cache.element(0);
            ws.gather(mesh.element_nodes(0), &conserved, &prim);
            ws.zero_residuals();
            fused_flux(&mut ws, &gas, &basis, g);
            weak_divergence(&mut ws, &basis, g, 1.0);
        });
    });
    group.bench_function("full_element_rkl_split_recompute", |b| {
        b.iter(|| {
            mesh.fill_element_geometry(0, &basis, &mut scratch, &mut geom)
                .unwrap();
            ws.gather(mesh.element_nodes(0), &conserved, &prim);
            ws.zero_residuals();
            convective_flux(&mut ws);
            weak_divergence(&mut ws, &basis, geom.view(), 1.0);
            viscous_flux(&mut ws, &gas, &basis, geom.view());
            weak_divergence(&mut ws, &basis, geom.view(), -1.0);
        });
    });
    group.finish();
}

/// Full-mesh RHS assembly, one strategy per benchmark: the serial
/// baseline, chunked private-partials, and color-parallel in-place
/// scatter (the paper's scatter-hazard resolution on a multi-core host).
/// All strategies stream the precomputed geometry cache.
fn bench_assembly_strategies(c: &mut Criterion) {
    let mesh = BoxMeshBuilder::tgv_box(8).build().unwrap();
    let basis = HexBasis::new(1).unwrap();
    let cfg = TgvConfig::standard();
    let gas = cfg.gas();
    let conserved = cfg.initial_state(&mesh);
    let mut prim = Primitives::zeros(mesh.num_nodes());
    prim.update_from(&conserved, &gas);
    let coloring = ElementColoring::greedy(&mesh);
    let geometry = GeometryCache::build(&mesh, &basis).unwrap();
    let threads = fem_solver::parallel::available_threads();
    let mut out = Conserved::zeros(mesh.num_nodes());

    let mut group = c.benchmark_group("assembly_strategies");
    group.throughput(Throughput::Elements(mesh.num_elements() as u64));
    group.bench_function("serial", |b| {
        b.iter(|| {
            assemble_rhs_chunked_into(
                &mesh,
                &basis,
                &gas,
                &geometry,
                &conserved,
                &prim,
                1,
                KernelPath::SumFactored,
                &mut out,
                None,
            )
        });
    });
    group.bench_function("chunked", |b| {
        b.iter(|| {
            assemble_rhs_chunked_into(
                &mesh,
                &basis,
                &gas,
                &geometry,
                &conserved,
                &prim,
                threads,
                KernelPath::SumFactored,
                &mut out,
                None,
            )
        });
    });
    group.bench_function("colored", |b| {
        b.iter(|| {
            assemble_rhs_colored_into(
                &mesh,
                &basis,
                &gas,
                &geometry,
                &conserved,
                &prim,
                &coloring,
                KernelPath::SumFactored,
                &mut out,
                None,
            )
        });
    });
    group.finish();
}

/// The PR-3 optimization ladder at full-mesh granularity: seed
/// recompute+split vs cached+split vs cached+fused, plus the one-time
/// cache construction cost it amortizes away.
fn bench_geometry_cache(c: &mut Criterion) {
    let mesh = BoxMeshBuilder::tgv_box(8).build().unwrap();
    let basis = HexBasis::new(1).unwrap();
    let cfg = TgvConfig::standard();
    let gas = cfg.gas();
    let conserved = cfg.initial_state(&mesh);
    let mut prim = Primitives::zeros(mesh.num_nodes());
    prim.update_from(&conserved, &gas);
    let geometry = GeometryCache::build(&mesh, &basis).unwrap();
    let npe = mesh.nodes_per_element();
    let mut out = Conserved::zeros(mesh.num_nodes());

    let mut group = c.benchmark_group("geometry_cache");
    group.throughput(Throughput::Elements(mesh.num_elements() as u64));
    group.bench_function("build", |b| {
        b.iter(|| GeometryCache::build(&mesh, &basis).unwrap());
    });
    group.bench_function("rhs_recompute_split", |b| {
        let mut ws = ElementWorkspace::new(npe);
        let mut scratch = GeometryScratch::new(npe);
        let mut geom = ElementGeometry::with_capacity(npe);
        let mut rhs = Conserved::zeros(mesh.num_nodes());
        b.iter(|| {
            for e in 0..mesh.num_elements() {
                mesh.fill_element_geometry(e, &basis, &mut scratch, &mut geom)
                    .unwrap();
                ws.gather(mesh.element_nodes(e), &conserved, &prim);
                ws.zero_residuals();
                convective_flux(&mut ws);
                weak_divergence(&mut ws, &basis, geom.view(), 1.0);
                viscous_flux(&mut ws, &gas, &basis, geom.view());
                weak_divergence(&mut ws, &basis, geom.view(), -1.0);
                ws.scatter_add(mesh.element_nodes(e), &mut rhs);
            }
        });
    });
    group.bench_function("rhs_cached_split", |b| {
        b.iter(|| {
            fem_solver::parallel::assemble_rhs_split_into(
                &mesh,
                &basis,
                &gas,
                &geometry,
                &conserved,
                &prim,
                fem_solver::parallel::AssemblyStrategy::Serial,
                None,
                &mut out,
            )
        });
    });
    group.bench_function("rhs_cached_fused", |b| {
        b.iter(|| {
            assemble_rhs_chunked_into(
                &mesh,
                &basis,
                &gas,
                &geometry,
                &conserved,
                &prim,
                1,
                KernelPath::SumFactored,
                &mut out,
                None,
            )
        });
    });
    group.finish();
}

/// The PR-9 order ladder at single-element granularity: the O(p⁴)
/// sum-factored weak divergence vs the O(p⁶) dense full-matrix reference
/// at basis orders p = 1..4 (dense operators materialized outside the
/// timed loop, as `KernelOps::resolve` does per assembly sweep).
fn bench_kernel_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_paths");
    group.throughput(Throughput::Elements(1));
    for order in 1..=4usize {
        let mesh = BoxMeshBuilder::tgv_box(3).order(order).build().unwrap();
        let basis = HexBasis::new(order).unwrap();
        let cfg = TgvConfig::standard();
        let gas = cfg.gas();
        let conserved = cfg.initial_state(&mesh);
        let mut prim = Primitives::zeros(mesh.num_nodes());
        prim.update_from(&conserved, &gas);
        let cache = GeometryCache::build(&mesh, &basis).unwrap();
        let mut ws = ElementWorkspace::new(mesh.nodes_per_element());
        ws.gather(mesh.element_nodes(0), &conserved, &prim);
        fused_flux(&mut ws, &gas, &basis, cache.element(0));
        for path in KernelPath::ALL {
            let ops = KernelOps::resolve(path, &basis);
            group.bench_function(format!("p{order}_{path}"), |b| {
                b.iter(|| {
                    ws.zero_residuals();
                    ops.weak_divergence(&mut ws, &basis, cache.element(0), 1.0);
                });
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_kernels,
    bench_assembly_strategies,
    bench_geometry_cache,
    bench_kernel_paths
);
criterion_main!(benches);
