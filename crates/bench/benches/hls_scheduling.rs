//! Benchmarks of the HLS model itself: scheduling the paper's kernels
//! and running the §III-D optimizer (the EDA-tool cost of the flow).

use criterion::{criterion_group, criterion_main, Criterion};
use fem_accel::designs::{proposed_design, vitis_baseline_design};
use fem_accel::optimizer::{optimize_design, OptimizerConfig};
use fem_accel::workload::RklWorkload;
use hls_kernel::resources::estimate_resources;
use hls_kernel::schedule::schedule_kernel;

fn bench_scheduling(c: &mut Criterion) {
    let w = RklWorkload::with_nodes(4_200_000, 1);
    let proposed = proposed_design(&w);
    let baseline = vitis_baseline_design(&w);

    c.bench_function("schedule_proposed_compute", |b| {
        b.iter(|| schedule_kernel(&proposed.rkl_tasks[1]).unwrap());
    });
    c.bench_function("schedule_baseline_all_tasks", |b| {
        b.iter(|| {
            for k in &baseline.rkl_tasks {
                schedule_kernel(k).unwrap();
            }
        });
    });
    c.bench_function("estimate_resources_proposed", |b| {
        let s = schedule_kernel(&proposed.rkl_tasks[1]).unwrap();
        b.iter(|| estimate_resources(&proposed.rkl_tasks[1], &s));
    });
    let mut group = c.benchmark_group("optimizer");
    group.sample_size(10);
    group.bench_function("optimize_proposed_design", |b| {
        b.iter(|| {
            let mut d = proposed_design(&w);
            optimize_design(&mut d, &OptimizerConfig::for_u200_slr()).unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_scheduling);
criterion_main!(benches);
