//! Fig 5 bench: evaluates the whole design→optimize→estimate pipeline
//! across the paper's mesh sizes, printing the modeled RK-method times
//! alongside the bench statistics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fem_accel::designs::{proposed_design, vitis_baseline_design};
use fem_accel::optimizer::{optimize_design, OptimizerConfig};
use fem_accel::perf::{estimate_performance, PerfOptions};
use fem_accel::workload::RklWorkload;
use fem_mesh::generator::FIG5_MESH_SIZES;

fn bench_fig5_pipeline(c: &mut Criterion) {
    let opts = PerfOptions {
        host_in_the_loop: false,
        des_element_threshold: 0, // analytic everywhere: bench the model
        ..Default::default()
    };
    let mut group = c.benchmark_group("fig5_model");
    group.sample_size(10);
    for (label, nodes) in FIG5_MESH_SIZES {
        group.bench_with_input(BenchmarkId::from_parameter(label), &nodes, |b, &nodes| {
            b.iter(|| {
                let w = RklWorkload::with_nodes(nodes, 1);
                let mut p = proposed_design(&w);
                optimize_design(&mut p, &OptimizerConfig::for_u200_slr()).unwrap();
                let base = vitis_baseline_design(&w);
                let rp = estimate_performance(&p, &opts).unwrap();
                let rb = estimate_performance(&base, &opts).unwrap();
                (rp.rk_method_seconds, rb.rk_method_seconds)
            });
        });
    }
    group.finish();

    // Print the modeled Fig 5 series once.
    println!("\nmodeled Fig 5 series (RK-method seconds, 20 RK4 steps):");
    for (label, nodes) in FIG5_MESH_SIZES {
        let w = RklWorkload::with_nodes(nodes, 1);
        let mut p = proposed_design(&w);
        optimize_design(&mut p, &OptimizerConfig::for_u200_slr()).unwrap();
        let base = vitis_baseline_design(&w);
        let rp = estimate_performance(&p, &opts).unwrap();
        let rb = estimate_performance(&base, &opts).unwrap();
        println!(
            "  {label:>5}: proposed {:>8.3} s | vitis {:>8.3} s | speedup {:.2}x",
            rp.rk_method_seconds,
            rb.rk_method_seconds,
            rb.rk_method_seconds / rp.rk_method_seconds
        );
    }
}

criterion_group!(benches, bench_fig5_pipeline);
criterion_main!(benches);
