//! Benchmarks of the banked-memory dataflow emulation: the flat
//! (1-bank degenerate) per-shard DES against the multi-bank
//! port-arbitrated DES, over a TGV shard sweep — the substrate behind
//! `repro banking`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fem_accel::optimizer::optimize_bank_assignment;
use fem_mesh::partition::{PartitionStrategy, ShardPlan};
use fem_mesh::BoxMeshBuilder;
use fem_solver::engine::{emulate_plan_banked, shard_compute_floors, shard_streams};
use fpga_platform::{BankAssignment, MemorySystem};

fn bench_banked_emulation(c: &mut Criterion) {
    let mesh = BoxMeshBuilder::tgv_box(8).build().unwrap();
    let npe = mesh.nodes_per_element() as u64;
    let elements = mesh.num_elements() as u64;
    let flat = MemorySystem::u200_flat();
    let hbm = MemorySystem::u280_hbm2();

    let mut group = c.benchmark_group("memory_banking");
    for shards in [1usize, 4, 8] {
        let plan =
            ShardPlan::with_strategy(&mesh, shards, usize::MAX, PartitionStrategy::Partitioned)
                .unwrap();
        let streams = shard_streams(&plan, npe);
        let floors = shard_compute_floors(&plan, npe);
        group.throughput(Throughput::Elements(elements));

        let a_flat = BankAssignment::round_robin(&streams, &flat);
        group.bench_with_input(BenchmarkId::new("flat", shards), &plan, |b, plan| {
            b.iter(|| {
                emulate_plan_banked(plan, npe, &flat, &a_flat)
                    .unwrap()
                    .makespan_cycles
            });
        });

        let a_hbm = BankAssignment::round_robin(&streams, &hbm);
        group.bench_with_input(BenchmarkId::new("hbm_rr", shards), &plan, |b, plan| {
            b.iter(|| {
                emulate_plan_banked(plan, npe, &hbm, &a_hbm)
                    .unwrap()
                    .makespan_cycles
            });
        });

        group.bench_with_input(BenchmarkId::new("hbm_optimize", shards), &plan, |b, _| {
            b.iter(|| optimize_bank_assignment(&streams, &hbm, &floors).banks_used());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_banked_emulation);
criterion_main!(benches);
