//! Legendre polynomials `P_n` and derivatives via the three-term recurrence.
//!
//! These are the kernels behind the GLL quadrature rule construction in
//! [`crate::quadrature`]: the interior GLL nodes are the roots of
//! `P'_{n-1}` and the weights involve `P_{n-1}` evaluated at the nodes.

/// Evaluates the Legendre polynomial `P_n(x)`.
///
/// Uses the stable three-term recurrence
/// `(k+1) P_{k+1}(x) = (2k+1) x P_k(x) - k P_{k-1}(x)`.
///
/// # Example
///
/// ```
/// use fem_numerics::legendre::legendre;
/// // P_2(x) = (3x² - 1)/2
/// assert!((legendre(2, 0.5) - (-0.125)).abs() < 1e-15);
/// ```
pub fn legendre(n: usize, x: f64) -> f64 {
    legendre_with_derivative(n, x).0
}

/// Evaluates `P_n(x)` together with its first derivative `P'_n(x)`.
///
/// The derivative uses the standard relation
/// `(x² - 1) P'_n(x) = n (x P_n(x) - P_{n-1}(x))`, with a recurrence-based
/// fallback at the endpoints `x = ±1` where the relation degenerates.
pub fn legendre_with_derivative(n: usize, x: f64) -> (f64, f64) {
    if n == 0 {
        return (1.0, 0.0);
    }
    if n == 1 {
        return (x, 1.0);
    }
    let mut p_prev = 1.0; // P_0
    let mut p = x; // P_1
    for k in 1..n {
        let kf = k as f64;
        let p_next = ((2.0 * kf + 1.0) * x * p - kf * p_prev) / (kf + 1.0);
        p_prev = p;
        p = p_next;
    }
    let nf = n as f64;
    let denom = x * x - 1.0;
    let dp = if denom.abs() > 1e-12 {
        nf * (x * p - p_prev) / denom
    } else {
        // At x = ±1: P'_n(±1) = (±1)^{n-1} n(n+1)/2.
        let sign = if x > 0.0 || n % 2 == 1 { 1.0 } else { -1.0 };
        sign * nf * (nf + 1.0) / 2.0
    };
    (p, dp)
}

/// Evaluates `q(x) = P'_n(x)` and `q'(x) = P''_n(x)`.
///
/// Used by the Newton iteration for interior GLL nodes, which are the roots
/// of `P'_{n}`. The second derivative comes from the Legendre ODE
/// `(1 - x²) P''_n = 2x P'_n - n(n+1) P_n`.
pub fn legendre_derivative_pair(n: usize, x: f64) -> (f64, f64) {
    let (p, dp) = legendre_with_derivative(n, x);
    let nf = n as f64;
    let one_minus_x2 = 1.0 - x * x;
    if one_minus_x2.abs() > 1e-12 {
        let ddp = (2.0 * x * dp - nf * (nf + 1.0) * p) / one_minus_x2;
        (dp, ddp)
    } else {
        // Endpoint second derivative (rarely needed: Newton stays interior).
        let sign = if x > 0.0 || n.is_multiple_of(2) {
            1.0
        } else {
            -1.0
        };
        let ddp = sign * (nf - 1.0) * nf * (nf + 1.0) * (nf + 2.0) / 8.0;
        (dp, ddp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn low_order_values_match_closed_forms() {
        for &x in &[-1.0, -0.7, -0.2, 0.0, 0.3, 0.9, 1.0] {
            assert_close(legendre(0, x), 1.0, 1e-15);
            assert_close(legendre(1, x), x, 1e-15);
            assert_close(legendre(2, x), 0.5 * (3.0 * x * x - 1.0), 1e-14);
            assert_close(legendre(3, x), 0.5 * (5.0 * x * x * x - 3.0 * x), 1e-14);
            assert_close(
                legendre(4, x),
                (35.0 * x.powi(4) - 30.0 * x * x + 3.0) / 8.0,
                1e-14,
            );
        }
    }

    #[test]
    fn endpoint_identities() {
        for n in 0..12 {
            assert_close(legendre(n, 1.0), 1.0, 1e-13);
            let expect = if n % 2 == 0 { 1.0 } else { -1.0 };
            assert_close(legendre(n, -1.0), expect, 1e-13);
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let h = 1e-6;
        for n in 1..10 {
            for &x in &[-0.9, -0.35, 0.0, 0.41, 0.88] {
                let (_, dp) = legendre_with_derivative(n, x);
                let fd = (legendre(n, x + h) - legendre(n, x - h)) / (2.0 * h);
                assert_close(dp, fd, 1e-6);
            }
        }
    }

    #[test]
    fn derivative_at_endpoints() {
        for n in 1..10 {
            let nf = n as f64;
            let (_, dp) = legendre_with_derivative(n, 1.0);
            assert_close(dp, nf * (nf + 1.0) / 2.0, 1e-11);
            let (_, dm) = legendre_with_derivative(n, -1.0);
            let sign = if n % 2 == 1 { 1.0 } else { -1.0 };
            assert_close(dm, sign * nf * (nf + 1.0) / 2.0, 1e-11);
        }
    }

    #[test]
    fn second_derivative_matches_finite_difference() {
        let h = 1e-5;
        for n in 2..9 {
            for &x in &[-0.8, -0.25, 0.1, 0.6] {
                let (_, ddp) = legendre_derivative_pair(n, x);
                let (_, d_hi) = legendre_with_derivative(n, x + h);
                let (_, d_lo) = legendre_with_derivative(n, x - h);
                let fd = (d_hi - d_lo) / (2.0 * h);
                assert_close(ddp, fd, 1e-5);
            }
        }
    }

    #[test]
    fn legendre_ode_is_satisfied() {
        // (1-x²) P''_n - 2x P'_n + n(n+1) P_n = 0
        for n in 2..10 {
            for &x in &[-0.9, -0.4, 0.2, 0.7] {
                let (p, dp) = legendre_with_derivative(n, x);
                let (_, ddp) = legendre_derivative_pair(n, x);
                let nf = n as f64;
                let residual = (1.0 - x * x) * ddp - 2.0 * x * dp + nf * (nf + 1.0) * p;
                assert!(residual.abs() < 1e-9, "n={n} x={x} residual={residual}");
            }
        }
    }
}
