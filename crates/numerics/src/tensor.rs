//! Tensor-product index arithmetic for hexahedral spectral elements.
//!
//! A hexahedral element of polynomial order `p` carries `(p+1)³` nodes laid
//! out on the tensor product of 1D GLL nodes. Derivatives along each
//! reference direction are 1D differentiation-matrix applications along the
//! corresponding index line — the structure the accelerator's
//! "COMPUTE Gradients" stage exploits.

use crate::lagrange::LagrangeBasis;
use crate::linalg::Vec3;
use crate::quadrature::GllRule;
use crate::NumericsError;

/// Node numbering and reference-space operators of a hexahedral element
/// of a given polynomial order.
///
/// Nodes are numbered lexicographically: `flat = i + n*(j + n*k)` where
/// `i/j/k` run along reference directions ξ/η/ζ and `n = order + 1`.
///
/// # Example
///
/// ```
/// use fem_numerics::tensor::HexBasis;
/// let hex = HexBasis::new(1).unwrap(); // trilinear, 8 nodes
/// assert_eq!(hex.nodes_per_element(), 8);
/// assert_eq!(hex.flat_index(1, 1, 1), 7);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HexBasis {
    order: usize,
    rule: GllRule,
    basis: LagrangeBasis,
    /// 1D differentiation matrix, row-major `(n × n)`.
    dmat: Vec<f64>,
}

impl HexBasis {
    /// Largest supported polynomial order, pinned by the quadrature layer:
    /// an order-`p` basis needs a `(p+1)`-point GLL rule, so the ceiling is
    /// [`GllRule::MAX_POINTS`]` - 1`.
    pub const MAX_ORDER: usize = GllRule::MAX_POINTS - 1;

    /// Builds the hex basis of polynomial order `order ≥ 1` on GLL nodes.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::OrderTooLow`] if `order == 0` and
    /// [`NumericsError::OrderTooHigh`] if
    /// `order > `[`MAX_ORDER`](Self::MAX_ORDER). Both speak in *order*
    /// terms — what the caller asked for — not the node counts the
    /// downstream `GllRule`/`LagrangeBasis` checks would quote.
    pub fn new(order: usize) -> Result<Self, NumericsError> {
        if order == 0 {
            // Report the order actually requested and the order floor —
            // not the node counts GllRule/LagrangeBasis would quote.
            return Err(NumericsError::OrderTooLow {
                requested: 0,
                minimum: 1,
            });
        }
        if order > Self::MAX_ORDER {
            // Same principle for the ceiling: name the order maximum, not
            // the (order+1)-node quadrature cap GllRule would report.
            return Err(NumericsError::OrderTooHigh {
                requested: order,
                maximum: Self::MAX_ORDER,
            });
        }
        let rule = GllRule::new(order + 1)?;
        let basis = LagrangeBasis::new(rule.points().to_vec())?;
        let dmat = basis.differentiation_matrix();
        Ok(HexBasis {
            order,
            rule,
            basis,
            dmat,
        })
    }

    /// Polynomial order `p`.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Nodes per direction, `n = p + 1`.
    pub fn nodes_per_dim(&self) -> usize {
        self.order + 1
    }

    /// Total nodes per element, `n³`.
    pub fn nodes_per_element(&self) -> usize {
        let n = self.nodes_per_dim();
        n * n * n
    }

    /// The underlying 1D GLL rule.
    pub fn rule(&self) -> &GllRule {
        &self.rule
    }

    /// The underlying 1D Lagrange basis.
    pub fn basis(&self) -> &LagrangeBasis {
        &self.basis
    }

    /// The 1D differentiation matrix, row-major.
    pub fn dmat(&self) -> &[f64] {
        &self.dmat
    }

    /// The 1D GLL points — one factor of the tensor-product node layout.
    ///
    /// Together with [`weights_1d`](Self::weights_1d),
    /// [`dmat`](Self::dmat), and the
    /// [`flat_index`](Self::flat_index)/[`ijk`](Self::ijk) map, this is the
    /// complete tensor-product structure a sum-factorized kernel needs: the
    /// 3D operator never has to be materialized, because every directional
    /// derivative is the 1D matrix applied along one index line.
    pub fn points_1d(&self) -> &[f64] {
        self.rule.points()
    }

    /// The 1D GLL quadrature weights; the 3D weight at `(i, j, k)` is the
    /// product `w_i w_j w_k` (see [`weight_3d`](Self::weight_3d)).
    pub fn weights_1d(&self) -> &[f64] {
        self.rule.weights()
    }

    /// Lexicographic flattening `(i, j, k) → flat`.
    pub fn flat_index(&self, i: usize, j: usize, k: usize) -> usize {
        let n = self.nodes_per_dim();
        debug_assert!(i < n && j < n && k < n);
        i + n * (j + n * k)
    }

    /// Inverse of [`flat_index`](Self::flat_index).
    pub fn ijk(&self, flat: usize) -> (usize, usize, usize) {
        let n = self.nodes_per_dim();
        let i = flat % n;
        let j = (flat / n) % n;
        let k = flat / (n * n);
        (i, j, k)
    }

    /// 3D quadrature weight at node `(i, j, k)`: `w_i w_j w_k`.
    pub fn weight_3d(&self, i: usize, j: usize, k: usize) -> f64 {
        let w = self.rule.weights();
        w[i] * w[j] * w[k]
    }

    /// Reference coordinates `(ξ, η, ζ)` of node `(i, j, k)`.
    pub fn ref_coords(&self, i: usize, j: usize, k: usize) -> Vec3 {
        let x = self.rule.points();
        Vec3::new(x[i], x[j], x[k])
    }

    /// Gradient of a nodal scalar field in *reference* coordinates at every
    /// node: `out[q] = (∂f/∂ξ, ∂f/∂η, ∂f/∂ζ)` at node `q`.
    ///
    /// `field` and `out` are indexed by flat node index.
    ///
    /// # Panics
    ///
    /// Panics if slices are not `nodes_per_element()` long.
    pub fn reference_gradient(&self, field: &[f64], out: &mut [Vec3]) {
        let n = self.nodes_per_dim();
        let nn = self.nodes_per_element();
        assert_eq!(field.len(), nn, "field length");
        assert_eq!(out.len(), nn, "output length");
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let mut g = Vec3::ZERO;
                    for m in 0..n {
                        g.x += self.dmat[i * n + m] * field[self.flat_index(m, j, k)];
                        g.y += self.dmat[j * n + m] * field[self.flat_index(i, m, k)];
                        g.z += self.dmat[k * n + m] * field[self.flat_index(i, j, m)];
                    }
                    out[self.flat_index(i, j, k)] = g;
                }
            }
        }
    }

    /// Number of fused multiply-add pairs in one `reference_gradient` call:
    /// `3 n⁴` MACs per scalar field. Used by the performance model.
    pub fn gradient_mac_count(&self) -> usize {
        let n = self.nodes_per_dim();
        3 * n * n * n * n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn order_zero_is_rejected() {
        assert!(HexBasis::new(0).is_err());
    }

    #[test]
    fn order_zero_error_reports_the_actual_request() {
        // Regression: the error used to quote the node counts of the
        // downstream GllRule check (requested 1, minimum 2) instead of
        // the order the caller actually asked for.
        match HexBasis::new(0) {
            Err(NumericsError::OrderTooLow { requested, minimum }) => {
                assert_eq!(requested, 0);
                assert_eq!(minimum, 1);
            }
            other => panic!("expected OrderTooLow, got {other:?}"),
        }
        // GllRule and LagrangeBasis already report their actual inputs.
        match crate::quadrature::GllRule::new(1) {
            Err(NumericsError::OrderTooLow { requested, minimum }) => {
                assert_eq!(requested, 1);
                assert_eq!(minimum, 2);
            }
            other => panic!("expected OrderTooLow, got {other:?}"),
        }
        match crate::lagrange::LagrangeBasis::new(vec![0.5]) {
            Err(NumericsError::OrderTooLow { requested, minimum }) => {
                assert_eq!(requested, 1);
                assert_eq!(minimum, 2);
            }
            other => panic!("expected OrderTooLow, got {other:?}"),
        }
    }

    #[test]
    fn order_above_maximum_error_reports_the_actual_maximum() {
        // Regression, mirror of the order-zero fix: before the cap landed,
        // an over-order request either ran unbounded or would have quoted
        // the downstream GllRule node-count limit. The error must speak in
        // order terms: the order requested and the order maximum.
        match HexBasis::new(HexBasis::MAX_ORDER + 1) {
            Err(NumericsError::OrderTooHigh { requested, maximum }) => {
                assert_eq!(requested, HexBasis::MAX_ORDER + 1);
                assert_eq!(maximum, HexBasis::MAX_ORDER);
            }
            other => panic!("expected OrderTooHigh, got {other:?}"),
        }
        // Far past the cap the message still names the same maximum.
        match HexBasis::new(10_000) {
            Err(NumericsError::OrderTooHigh { requested, maximum }) => {
                assert_eq!(requested, 10_000);
                assert_eq!(maximum, HexBasis::MAX_ORDER);
            }
            other => panic!("expected OrderTooHigh, got {other:?}"),
        }
        // The boundary order itself constructs.
        assert!(HexBasis::new(HexBasis::MAX_ORDER).is_ok());
    }

    #[test]
    fn tensor_structure_accessors_expose_the_1d_factors() {
        let hex = HexBasis::new(3).unwrap();
        assert_eq!(hex.points_1d(), hex.rule().points());
        assert_eq!(hex.weights_1d(), hex.rule().weights());
        let w = hex.weights_1d();
        for k in 0..hex.nodes_per_dim() {
            for j in 0..hex.nodes_per_dim() {
                for i in 0..hex.nodes_per_dim() {
                    assert_eq!(hex.weight_3d(i, j, k), w[i] * w[j] * w[k]);
                }
            }
        }
    }

    #[test]
    fn index_roundtrip() {
        let hex = HexBasis::new(3).unwrap();
        for flat in 0..hex.nodes_per_element() {
            let (i, j, k) = hex.ijk(flat);
            assert_eq!(hex.flat_index(i, j, k), flat);
        }
    }

    #[test]
    fn weights_sum_to_reference_volume() {
        for order in 1..5 {
            let hex = HexBasis::new(order).unwrap();
            let n = hex.nodes_per_dim();
            let mut total = 0.0;
            for k in 0..n {
                for j in 0..n {
                    for i in 0..n {
                        total += hex.weight_3d(i, j, k);
                    }
                }
            }
            assert!((total - 8.0).abs() < 1e-11, "order {order}: {total}");
        }
    }

    #[test]
    fn gradient_of_linear_field_is_constant() {
        let hex = HexBasis::new(2).unwrap();
        let nn = hex.nodes_per_element();
        let n = hex.nodes_per_dim();
        let mut field = vec![0.0; nn];
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let p = hex.ref_coords(i, j, k);
                    field[hex.flat_index(i, j, k)] = 2.0 * p.x - 3.0 * p.y + 0.5 * p.z + 1.0;
                }
            }
        }
        let mut grad = vec![Vec3::ZERO; nn];
        hex.reference_gradient(&field, &mut grad);
        for g in grad {
            assert!((g - Vec3::new(2.0, -3.0, 0.5)).norm() < 1e-12);
        }
    }

    #[test]
    fn gradient_of_trilinear_product_field() {
        // f = ξηζ, ∂f = (ηζ, ξζ, ξη): trilinear, exact at order ≥ 1.
        let hex = HexBasis::new(1).unwrap();
        let nn = hex.nodes_per_element();
        let n = hex.nodes_per_dim();
        let mut field = vec![0.0; nn];
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let p = hex.ref_coords(i, j, k);
                    field[hex.flat_index(i, j, k)] = p.x * p.y * p.z;
                }
            }
        }
        let mut grad = vec![Vec3::ZERO; nn];
        hex.reference_gradient(&field, &mut grad);
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let p = hex.ref_coords(i, j, k);
                    let g = grad[hex.flat_index(i, j, k)];
                    let exact = Vec3::new(p.y * p.z, p.x * p.z, p.x * p.y);
                    assert!((g - exact).norm() < 1e-12);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "field length")]
    fn gradient_panics_on_wrong_length() {
        let hex = HexBasis::new(1).unwrap();
        let mut out = vec![Vec3::ZERO; 8];
        hex.reference_gradient(&[0.0; 4], &mut out);
    }

    proptest! {
        /// Gradient is exact for random polynomials of per-direction degree ≤ p.
        #[test]
        fn prop_gradient_exact_for_tensor_polynomials(
            order in 1usize..4,
            ax in -2.0f64..2.0,
            ay in -2.0f64..2.0,
            az in -2.0f64..2.0,
        ) {
            let hex = HexBasis::new(order).unwrap();
            let n = hex.nodes_per_dim();
            let nn = hex.nodes_per_element();
            let p = order as i32;
            let f = |v: Vec3| ax * v.x.powi(p) + ay * v.y.powi(p) + az * v.z.powi(p);
            let df = |v: Vec3| {
                let pf = p as f64;
                Vec3::new(
                    ax * pf * v.x.powi(p - 1),
                    ay * pf * v.y.powi(p - 1),
                    az * pf * v.z.powi(p - 1),
                )
            };
            let mut field = vec![0.0; nn];
            for k in 0..n {
                for j in 0..n {
                    for i in 0..n {
                        field[hex.flat_index(i, j, k)] = f(hex.ref_coords(i, j, k));
                    }
                }
            }
            let mut grad = vec![Vec3::ZERO; nn];
            hex.reference_gradient(&field, &mut grad);
            for k in 0..n {
                for j in 0..n {
                    for i in 0..n {
                        let g = grad[hex.flat_index(i, j, k)];
                        let exact = df(hex.ref_coords(i, j, k));
                        prop_assert!((g - exact).norm() < 1e-10);
                    }
                }
            }
        }

        /// Gradient is linear in the field.
        #[test]
        fn prop_gradient_linear(
            field_a in proptest::collection::vec(-3.0f64..3.0, 8),
            field_b in proptest::collection::vec(-3.0f64..3.0, 8),
            s in -2.0f64..2.0,
        ) {
            let hex = HexBasis::new(1).unwrap();
            let combined: Vec<f64> = field_a
                .iter()
                .zip(&field_b)
                .map(|(a, b)| a + s * b)
                .collect();
            let mut ga = vec![Vec3::ZERO; 8];
            let mut gb = vec![Vec3::ZERO; 8];
            let mut gc = vec![Vec3::ZERO; 8];
            hex.reference_gradient(&field_a, &mut ga);
            hex.reference_gradient(&field_b, &mut gb);
            hex.reference_gradient(&combined, &mut gc);
            for q in 0..8 {
                prop_assert!((gc[q] - (ga[q] + s * gb[q])).norm() < 1e-10);
            }
        }
    }
}
