//! Small dense linear algebra for 3D element geometry and flux tensors.
//!
//! Element Jacobians, the viscous stress tensor τ and momentum flux tensors
//! are all 3×3; this module provides the handful of operations the solver
//! kernels need, with no allocation.

use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Neg, Sub};

/// A 3-component vector (velocity, coordinates, gradients of scalars).
///
/// # Example
///
/// ```
/// use fem_numerics::linalg::Vec3;
/// let u = Vec3::new(1.0, 2.0, 3.0);
/// let v = Vec3::new(-1.0, 0.5, 2.0);
/// assert_eq!(u.dot(v), 6.0);
/// assert_eq!((u + v).x, 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a vector from components.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Dot product.
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Squared Euclidean norm.
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Cross product.
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * other.z - self.z * other.y,
            y: self.z * other.x - self.x * other.z,
            z: self.x * other.y - self.y * other.x,
        }
    }

    /// Outer product `self ⊗ other` (used for the momentum flux ρ u⊗u).
    pub fn outer(self, other: Vec3) -> Mat3 {
        Mat3::from_rows(self.x * other, self.y * other, self.z * other)
    }

    /// Component access by axis index 0..3.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= 3`.
    pub fn component(self, axis: usize) -> f64 {
        match axis {
            0 => self.x,
            1 => self.y,
            2 => self.z,
            _ => panic!("axis {axis} out of range for Vec3"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

/// A 3×3 matrix, row-major (Jacobians, stress tensors, velocity gradients).
///
/// # Example
///
/// ```
/// use fem_numerics::linalg::{Mat3, Vec3};
/// let j = Mat3::diagonal(2.0, 4.0, 0.5);
/// assert_eq!(j.det(), 4.0);
/// let inv = j.inverse().unwrap();
/// let v = inv.mul_vec(Vec3::new(2.0, 4.0, 0.5));
/// assert!((v - Vec3::new(1.0, 1.0, 1.0)).norm() < 1e-14);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Mat3 {
    /// Row-major entries `m[r][c]`.
    pub m: [[f64; 3]; 3],
}

impl Mat3 {
    /// The zero matrix.
    pub const ZERO: Mat3 = Mat3 { m: [[0.0; 3]; 3] };

    /// The identity matrix.
    pub const IDENTITY: Mat3 = Mat3 {
        m: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
    };

    /// Builds from three row vectors.
    pub fn from_rows(r0: Vec3, r1: Vec3, r2: Vec3) -> Self {
        Mat3 {
            m: [[r0.x, r0.y, r0.z], [r1.x, r1.y, r1.z], [r2.x, r2.y, r2.z]],
        }
    }

    /// Builds a diagonal matrix.
    pub fn diagonal(a: f64, b: f64, c: f64) -> Self {
        Mat3 {
            m: [[a, 0.0, 0.0], [0.0, b, 0.0], [0.0, 0.0, c]],
        }
    }

    /// Row `r` as a vector.
    pub fn row(&self, r: usize) -> Vec3 {
        Vec3::new(self.m[r][0], self.m[r][1], self.m[r][2])
    }

    /// Column `c` as a vector.
    pub fn col(&self, c: usize) -> Vec3 {
        Vec3::new(self.m[0][c], self.m[1][c], self.m[2][c])
    }

    /// Determinant.
    pub fn det(&self) -> f64 {
        let m = &self.m;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    /// Matrix inverse, or `None` when singular (|det| < 1e-300).
    pub fn inverse(&self) -> Option<Mat3> {
        let d = self.det();
        if d.abs() < 1e-300 {
            return None;
        }
        let m = &self.m;
        let inv_det = 1.0 / d;
        let mut out = Mat3::ZERO;
        out.m[0][0] = (m[1][1] * m[2][2] - m[1][2] * m[2][1]) * inv_det;
        out.m[0][1] = (m[0][2] * m[2][1] - m[0][1] * m[2][2]) * inv_det;
        out.m[0][2] = (m[0][1] * m[1][2] - m[0][2] * m[1][1]) * inv_det;
        out.m[1][0] = (m[1][2] * m[2][0] - m[1][0] * m[2][2]) * inv_det;
        out.m[1][1] = (m[0][0] * m[2][2] - m[0][2] * m[2][0]) * inv_det;
        out.m[1][2] = (m[0][2] * m[1][0] - m[0][0] * m[1][2]) * inv_det;
        out.m[2][0] = (m[1][0] * m[2][1] - m[1][1] * m[2][0]) * inv_det;
        out.m[2][1] = (m[0][1] * m[2][0] - m[0][0] * m[2][1]) * inv_det;
        out.m[2][2] = (m[0][0] * m[1][1] - m[0][1] * m[1][0]) * inv_det;
        Some(out)
    }

    /// Transpose.
    pub fn transpose(&self) -> Mat3 {
        let mut out = Mat3::ZERO;
        for r in 0..3 {
            for c in 0..3 {
                out.m[r][c] = self.m[c][r];
            }
        }
        out
    }

    /// Matrix-vector product.
    pub fn mul_vec(&self, v: Vec3) -> Vec3 {
        Vec3::new(self.row(0).dot(v), self.row(1).dot(v), self.row(2).dot(v))
    }

    /// Matrix-matrix product.
    pub fn mul_mat(&self, o: &Mat3) -> Mat3 {
        let mut out = Mat3::ZERO;
        for r in 0..3 {
            for c in 0..3 {
                out.m[r][c] = (0..3).map(|k| self.m[r][k] * o.m[k][c]).sum();
            }
        }
        out
    }

    /// Trace (used for ∇·u in the viscous stress).
    pub fn trace(&self) -> f64 {
        self.m[0][0] + self.m[1][1] + self.m[2][2]
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.m.iter().flatten().map(|&x| x * x).sum::<f64>().sqrt()
    }
}

impl Add for Mat3 {
    type Output = Mat3;
    fn add(self, o: Mat3) -> Mat3 {
        let mut out = Mat3::ZERO;
        for r in 0..3 {
            for c in 0..3 {
                out.m[r][c] = self.m[r][c] + o.m[r][c];
            }
        }
        out
    }
}

impl Sub for Mat3 {
    type Output = Mat3;
    fn sub(self, o: Mat3) -> Mat3 {
        let mut out = Mat3::ZERO;
        for r in 0..3 {
            for c in 0..3 {
                out.m[r][c] = self.m[r][c] - o.m[r][c];
            }
        }
        out
    }
}

impl Mul<f64> for Mat3 {
    type Output = Mat3;
    fn mul(self, s: f64) -> Mat3 {
        let mut out = Mat3::ZERO;
        for r in 0..3 {
            for c in 0..3 {
                out.m[r][c] = self.m[r][c] * s;
            }
        }
        out
    }
}

impl Mul<Mat3> for f64 {
    type Output = Mat3;
    fn mul(self, m: Mat3) -> Mat3 {
        m * self
    }
}

impl Index<(usize, usize)> for Mat3 {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.m[r][c]
    }
}

impl IndexMut<(usize, usize)> for Mat3 {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.m[r][c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn vec3_basic_ops() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, -5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, -3.0, 9.0));
        assert_eq!(a - b, Vec3::new(-3.0, 7.0, -3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert_eq!(a.dot(b), 12.0);
        assert!((a.norm() - 14.0f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn cross_product_is_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-2.0, 0.5, 4.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
        assert_eq!(
            Vec3::new(1.0, 0.0, 0.0).cross(Vec3::new(0.0, 1.0, 0.0)),
            Vec3::new(0.0, 0.0, 1.0)
        );
    }

    #[test]
    fn outer_product_entries() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        let o = a.outer(b);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(o[(r, c)], a.component(r) * b.component(c));
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn component_out_of_range_panics() {
        Vec3::ZERO.component(3);
    }

    #[test]
    fn identity_behaves() {
        let v = Vec3::new(3.0, -1.0, 2.0);
        assert_eq!(Mat3::IDENTITY.mul_vec(v), v);
        assert_eq!(Mat3::IDENTITY.det(), 1.0);
        assert_eq!(Mat3::IDENTITY.trace(), 3.0);
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let singular = Mat3::from_rows(
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(2.0, 4.0, 6.0),
            Vec3::new(0.0, 1.0, 0.0),
        );
        assert!(singular.inverse().is_none());
    }

    #[test]
    fn transpose_involutive() {
        let m = Mat3::from_rows(
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(4.0, 5.0, 6.0),
            Vec3::new(7.0, 8.0, 10.0),
        );
        assert_eq!(m.transpose().transpose(), m);
    }

    fn arb_mat3() -> impl Strategy<Value = Mat3> {
        proptest::collection::vec(-10.0f64..10.0, 9).prop_map(|v| {
            Mat3::from_rows(
                Vec3::new(v[0], v[1], v[2]),
                Vec3::new(v[3], v[4], v[5]),
                Vec3::new(v[6], v[7], v[8]),
            )
        })
    }

    proptest! {
        #[test]
        fn prop_inverse_roundtrip(m in arb_mat3()) {
            prop_assume!(m.det().abs() > 1e-3);
            let inv = m.inverse().unwrap();
            let prod = m.mul_mat(&inv);
            let err = (prod - Mat3::IDENTITY).frobenius_norm();
            prop_assert!(err < 1e-9, "err = {err}");
        }

        #[test]
        fn prop_det_multiplicative(a in arb_mat3(), b in arb_mat3()) {
            let lhs = a.mul_mat(&b).det();
            let rhs = a.det() * b.det();
            prop_assert!((lhs - rhs).abs() < 1e-6 * (1.0 + rhs.abs()));
        }

        #[test]
        fn prop_matvec_distributes(a in arb_mat3(), v in proptest::collection::vec(-5.0f64..5.0, 6)) {
            let x = Vec3::new(v[0], v[1], v[2]);
            let y = Vec3::new(v[3], v[4], v[5]);
            let lhs = a.mul_vec(x + y);
            let rhs = a.mul_vec(x) + a.mul_vec(y);
            prop_assert!((lhs - rhs).norm() < 1e-9);
        }

        #[test]
        fn prop_trace_of_outer_is_dot(v in proptest::collection::vec(-5.0f64..5.0, 6)) {
            let a = Vec3::new(v[0], v[1], v[2]);
            let b = Vec3::new(v[3], v[4], v[5]);
            prop_assert!((a.outer(b).trace() - a.dot(b)).abs() < 1e-12);
        }
    }
}
