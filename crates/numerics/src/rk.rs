//! Explicit Runge-Kutta time integration.
//!
//! The paper integrates the semi-discrete FEM system with the classical
//! fourth-order Runge-Kutta method (RK4, §II-B). The integrator here is
//! generic over a [`StateOps`] vector space so the solver can drive its
//! multi-field solution state through it, while tests exercise scalar ODEs.

/// Vector-space operations an ODE state must support.
///
/// Implemented for `Vec<f64>` and usable for any struct-of-arrays state.
pub trait StateOps: Clone {
    /// Returns a zero state with the same shape as `self`.
    fn zeros_like(&self) -> Self;
    /// Copies `other` into `self` (shapes must match).
    fn copy_from(&mut self, other: &Self);
    /// `self += a * x`.
    fn axpy(&mut self, a: f64, x: &Self);
    /// `self *= a`.
    fn scale(&mut self, a: f64);
}

impl StateOps for Vec<f64> {
    fn zeros_like(&self) -> Self {
        vec![0.0; self.len()]
    }

    fn copy_from(&mut self, other: &Self) {
        debug_assert_eq!(self.len(), other.len());
        self.copy_from_slice(other);
    }

    fn axpy(&mut self, a: f64, x: &Self) {
        debug_assert_eq!(self.len(), x.len());
        for (s, &v) in self.iter_mut().zip(x) {
            *s += a * v;
        }
    }

    fn scale(&mut self, a: f64) {
        for s in self.iter_mut() {
            *s *= a;
        }
    }
}

/// A right-hand-side provider `dy/dt = f(t, y)`.
pub trait OdeSystem {
    /// The state type being integrated.
    type State: StateOps;

    /// Evaluates the RHS into `dydt`.
    ///
    /// The solver's implementation of this is exactly the paper's RKL step:
    /// diffusion + convection residual evaluation, preceded by the RKU-style
    /// primitive-variable update.
    fn rhs(&mut self, t: f64, y: &Self::State, dydt: &mut Self::State);
}

/// Butcher tableau of an explicit Runge-Kutta scheme.
///
/// `a` is the strictly lower-triangular stage matrix stored by rows
/// (row `i` has `i` entries), `b` the output weights, `c` the abscissae.
///
/// # Example
///
/// ```
/// use fem_numerics::rk::ButcherTableau;
/// let rk4 = ButcherTableau::rk4();
/// assert_eq!(rk4.stages(), 4);
/// assert!(rk4.is_consistent());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ButcherTableau {
    /// Scheme name for reporting.
    name: &'static str,
    a: Vec<Vec<f64>>,
    b: Vec<f64>,
    c: Vec<f64>,
    order: usize,
}

impl ButcherTableau {
    /// Forward Euler (1 stage, order 1).
    pub fn euler() -> Self {
        ButcherTableau {
            name: "euler",
            a: vec![vec![]],
            b: vec![1.0],
            c: vec![0.0],
            order: 1,
        }
    }

    /// Heun's method (2 stages, order 2).
    pub fn heun2() -> Self {
        ButcherTableau {
            name: "heun2",
            a: vec![vec![], vec![1.0]],
            b: vec![0.5, 0.5],
            c: vec![0.0, 1.0],
            order: 2,
        }
    }

    /// Kutta's third-order method (3 stages, order 3).
    pub fn kutta3() -> Self {
        ButcherTableau {
            name: "kutta3",
            a: vec![vec![], vec![0.5], vec![-1.0, 2.0]],
            b: vec![1.0 / 6.0, 2.0 / 3.0, 1.0 / 6.0],
            c: vec![0.0, 0.5, 1.0],
            order: 3,
        }
    }

    /// The classical RK4 scheme used by the paper (4 stages, order 4).
    pub fn rk4() -> Self {
        ButcherTableau {
            name: "rk4",
            a: vec![vec![], vec![0.5], vec![0.0, 0.5], vec![0.0, 0.0, 1.0]],
            b: vec![1.0 / 6.0, 1.0 / 3.0, 1.0 / 3.0, 1.0 / 6.0],
            c: vec![0.0, 0.5, 0.5, 1.0],
            order: 4,
        }
    }

    /// Scheme name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of stages.
    pub fn stages(&self) -> usize {
        self.b.len()
    }

    /// Formal order of accuracy.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Stage matrix row `i` (length `i`).
    pub fn a_row(&self, i: usize) -> &[f64] {
        &self.a[i]
    }

    /// Output weights.
    pub fn b(&self) -> &[f64] {
        &self.b
    }

    /// Abscissae.
    pub fn c(&self) -> &[f64] {
        &self.c
    }

    /// Checks the row-sum condition `c_i = Σ_j a_ij` and `Σ b_i = 1`.
    pub fn is_consistent(&self) -> bool {
        let b_ok = (self.b.iter().sum::<f64>() - 1.0).abs() < 1e-12;
        let c_ok = self
            .a
            .iter()
            .zip(&self.c)
            .all(|(row, &ci)| (row.iter().sum::<f64>() - ci).abs() < 1e-12);
        b_ok && c_ok
    }
}

/// An explicit Runge-Kutta integrator with preallocated stage storage.
///
/// # Example
///
/// Integrate `dy/dt = -y` and compare against `e^{-t}`:
///
/// ```
/// use fem_numerics::rk::{ButcherTableau, ExplicitRk, OdeSystem};
///
/// struct Decay;
/// impl OdeSystem for Decay {
///     type State = Vec<f64>;
///     fn rhs(&mut self, _t: f64, y: &Vec<f64>, dydt: &mut Vec<f64>) {
///         dydt[0] = -y[0];
///     }
/// }
///
/// let mut rk = ExplicitRk::new(ButcherTableau::rk4(), &vec![1.0f64]);
/// let mut y = vec![1.0];
/// let mut sys = Decay;
/// let dt = 0.01;
/// for step in 0..100 {
///     rk.step(&mut sys, step as f64 * dt, dt, &mut y);
/// }
/// assert!((y[0] - (-1.0f64).exp()).abs() < 1e-10);
/// ```
#[derive(Debug, Clone)]
pub struct ExplicitRk<S: StateOps> {
    tableau: ButcherTableau,
    stage_derivatives: Vec<S>,
    stage_state: S,
}

impl<S: StateOps> ExplicitRk<S> {
    /// Creates an integrator; `prototype` fixes the state shape for the
    /// preallocated stage buffers.
    pub fn new(tableau: ButcherTableau, prototype: &S) -> Self {
        let stage_derivatives = (0..tableau.stages())
            .map(|_| prototype.zeros_like())
            .collect();
        ExplicitRk {
            tableau,
            stage_derivatives,
            stage_state: prototype.zeros_like(),
        }
    }

    /// The tableau in use.
    pub fn tableau(&self) -> &ButcherTableau {
        &self.tableau
    }

    /// Advances `y` from `t` to `t + dt` in place.
    pub fn step<Sys: OdeSystem<State = S>>(
        &mut self,
        system: &mut Sys,
        t: f64,
        dt: f64,
        y: &mut S,
    ) {
        let stages = self.tableau.stages();
        for i in 0..stages {
            self.stage_state.copy_from(y);
            let a_row = self.tableau.a[i].clone();
            for (j, &aij) in a_row.iter().enumerate() {
                if aij != 0.0 {
                    self.stage_state.axpy(dt * aij, &self.stage_derivatives[j]);
                }
            }
            let ti = t + self.tableau.c[i] * dt;
            system.rhs(ti, &self.stage_state, &mut self.stage_derivatives[i]);
        }
        for i in 0..stages {
            let bi = self.tableau.b[i];
            if bi != 0.0 {
                y.axpy(dt * bi, &self.stage_derivatives[i]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    struct Decay {
        lambda: f64,
    }

    impl OdeSystem for Decay {
        type State = Vec<f64>;
        fn rhs(&mut self, _t: f64, y: &Vec<f64>, dydt: &mut Vec<f64>) {
            for (d, &v) in dydt.iter_mut().zip(y) {
                *d = -self.lambda * v;
            }
        }
    }

    struct Oscillator;

    impl OdeSystem for Oscillator {
        type State = Vec<f64>;
        fn rhs(&mut self, _t: f64, y: &Vec<f64>, dydt: &mut Vec<f64>) {
            dydt[0] = y[1];
            dydt[1] = -y[0];
        }
    }

    #[test]
    fn all_tableaus_are_consistent() {
        for t in [
            ButcherTableau::euler(),
            ButcherTableau::heun2(),
            ButcherTableau::kutta3(),
            ButcherTableau::rk4(),
        ] {
            assert!(t.is_consistent(), "{} inconsistent", t.name());
            assert_eq!(t.a.len(), t.stages());
            assert_eq!(t.c().len(), t.stages());
            for (i, row) in t.a.iter().enumerate() {
                assert_eq!(row.len(), i, "{}: row {i} length", t.name());
            }
        }
    }

    fn integrate_decay(tableau: ButcherTableau, dt: f64, t_end: f64) -> f64 {
        let mut sys = Decay { lambda: 1.0 };
        let mut y = vec![1.0];
        let mut rk = ExplicitRk::new(tableau, &y);
        let steps = (t_end / dt).round() as usize;
        for s in 0..steps {
            rk.step(&mut sys, s as f64 * dt, dt, &mut y);
        }
        y[0]
    }

    #[test]
    fn observed_convergence_orders() {
        // Halving dt should reduce error by ~2^order.
        for tableau in [
            ButcherTableau::euler(),
            ButcherTableau::heun2(),
            ButcherTableau::kutta3(),
            ButcherTableau::rk4(),
        ] {
            let order = tableau.order() as f64;
            let exact = (-1.0f64).exp();
            let e1 = (integrate_decay(tableau.clone(), 0.1, 1.0) - exact).abs();
            let e2 = (integrate_decay(tableau.clone(), 0.05, 1.0) - exact).abs();
            let observed = (e1 / e2).log2();
            assert!(
                (observed - order).abs() < 0.35,
                "{}: observed order {observed}, expected {order}",
                tableau.name()
            );
        }
    }

    #[test]
    fn rk4_conserves_oscillator_energy_well() {
        let mut sys = Oscillator;
        let mut y = vec![1.0, 0.0];
        let mut rk = ExplicitRk::new(ButcherTableau::rk4(), &y);
        let dt = 0.01;
        for s in 0..10_000 {
            rk.step(&mut sys, s as f64 * dt, dt, &mut y);
        }
        let energy = y[0] * y[0] + y[1] * y[1];
        assert!((energy - 1.0).abs() < 1e-8, "energy drift: {energy}");
    }

    #[test]
    fn vec_state_ops() {
        let a = vec![1.0, 2.0, 3.0];
        let mut b = a.zeros_like();
        assert_eq!(b, vec![0.0; 3]);
        b.copy_from(&a);
        assert_eq!(b, a);
        b.axpy(2.0, &a);
        assert_eq!(b, vec![3.0, 6.0, 9.0]);
        b.scale(0.5);
        assert_eq!(b, vec![1.5, 3.0, 4.5]);
    }

    #[test]
    fn rk4_fourth_order_on_scalar_nonlinear_ode() {
        // y' = -y², y(0) = 1 has the exact solution y(t) = 1/(1+t). A
        // nonlinear right-hand side exercises all four stages (for linear
        // ODEs some order conditions collapse). Fit the convergence slope
        // over three dt halvings: RK4 must show ~4th order.
        struct Riccati;
        impl OdeSystem for Riccati {
            type State = Vec<f64>;
            fn rhs(&mut self, _t: f64, y: &Vec<f64>, dydt: &mut Vec<f64>) {
                dydt[0] = -y[0] * y[0];
            }
        }
        let integrate = |dt: f64| -> f64 {
            let mut sys = Riccati;
            let mut y = vec![1.0];
            let mut rk = ExplicitRk::new(ButcherTableau::rk4(), &y);
            let steps = (1.0 / dt).round() as usize;
            for s in 0..steps {
                rk.step(&mut sys, s as f64 * dt, dt, &mut y);
            }
            y[0]
        };
        let exact = 0.5; // 1/(1+1)
        let errs: Vec<f64> = [0.1, 0.05, 0.025]
            .iter()
            .map(|&dt| (integrate(dt) - exact).abs())
            .collect();
        for pair in errs.windows(2) {
            let observed = (pair[0] / pair[1]).log2();
            // 0.4 of slack absorbs the higher-order terms still visible
            // at dt = 0.1 on this problem.
            assert!(
                (observed - 4.0).abs() < 0.4,
                "observed order {observed}, errors {errs:?}"
            );
        }
    }

    proptest! {
        /// Linearity of the flow for the scalar linear ODE: integrating a
        /// scaled initial condition scales the result.
        #[test]
        fn prop_linear_ode_flow_is_linear(scale in 0.1f64..10.0, lambda in 0.1f64..3.0) {
            let mut sys = Decay { lambda };
            let dt = 0.02;
            let mut y1 = vec![1.0];
            let mut y2 = vec![scale];
            let mut rk = ExplicitRk::new(ButcherTableau::rk4(), &y1);
            for s in 0..50 {
                rk.step(&mut sys, s as f64 * dt, dt, &mut y1);
            }
            let mut rk2 = ExplicitRk::new(ButcherTableau::rk4(), &y2);
            for s in 0..50 {
                rk2.step(&mut sys, s as f64 * dt, dt, &mut y2);
            }
            prop_assert!((y2[0] - scale * y1[0]).abs() < 1e-10 * scale.max(1.0));
        }

        /// RK4 on decay stays within the analytic solution's envelope.
        #[test]
        fn prop_rk4_decay_accurate(lambda in 0.1f64..5.0) {
            let mut sys = Decay { lambda };
            let mut y = vec![1.0];
            let dt = 0.01;
            let mut rk = ExplicitRk::new(ButcherTableau::rk4(), &y);
            for s in 0..100 {
                rk.step(&mut sys, s as f64 * dt, dt, &mut y);
            }
            let exact = (-lambda).exp();
            prop_assert!((y[0] - exact).abs() < 1e-7);
        }
    }
}
