//! Gauss-Lobatto-Legendre (GLL) quadrature rules.
//!
//! The paper (§II-B) evaluates the FEM weak-form integrals with GLL
//! quadrature, which places quadrature points at the element nodes of a
//! spectral element (endpoints included). An `n`-point GLL rule integrates
//! polynomials up to degree `2n - 3` exactly on `[-1, 1]`.

use crate::legendre::{legendre, legendre_derivative_pair};
use crate::NumericsError;

/// Maximum Newton iterations when locating interior GLL nodes.
const MAX_NEWTON_ITERS: usize = 100;
/// Convergence threshold on the Newton update.
const NEWTON_TOL: f64 = 1e-15;

/// An `n`-point Gauss-Lobatto-Legendre quadrature rule on `[-1, 1]`.
///
/// Nodes are the endpoints `±1` together with the roots of `P'_{n-1}`;
/// weights are `w_i = 2 / (n (n-1) P_{n-1}(x_i)²)`.
///
/// # Example
///
/// ```
/// use fem_numerics::quadrature::GllRule;
/// let rule = GllRule::new(4).unwrap();
/// assert_eq!(rule.len(), 4);
/// // Weights sum to the length of the interval.
/// let total: f64 = rule.weights().iter().sum();
/// assert!((total - 2.0).abs() < 1e-13);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GllRule {
    points: Vec<f64>,
    weights: Vec<f64>,
}

impl GllRule {
    /// Largest supported point count. The Newton solve and the Legendre
    /// recurrences stay well-conditioned far beyond any order the solver
    /// uses, but the weight formula `2/(n(n-1)P²)` starts losing digits as
    /// `P_{n-1}(±1) = 1` meets interior values of order `1/√n`; 32 points
    /// (order 31) leaves a wide safety margin over the p ≤ 4 ladder.
    pub const MAX_POINTS: usize = 32;

    /// Builds the `n`-point GLL rule.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::OrderTooLow`] if `n < 2` (Lobatto rules need
    /// both endpoints), [`NumericsError::OrderTooHigh`] if
    /// `n > `[`MAX_POINTS`](Self::MAX_POINTS) — the error names the actual
    /// maximum, not a generic failure — and [`NumericsError::NewtonDiverged`]
    /// if root finding fails (not observed for any supported order).
    pub fn new(n: usize) -> Result<Self, NumericsError> {
        if n < 2 {
            return Err(NumericsError::OrderTooLow {
                requested: n,
                minimum: 2,
            });
        }
        if n > Self::MAX_POINTS {
            return Err(NumericsError::OrderTooHigh {
                requested: n,
                maximum: Self::MAX_POINTS,
            });
        }
        let mut points = vec![0.0; n];
        points[0] = -1.0;
        points[n - 1] = 1.0;
        // Interior nodes: roots of P'_{n-1}, seeded from Chebyshev-Lobatto.
        for (i, point) in points.iter_mut().enumerate().take(n - 1).skip(1) {
            let mut x = -(std::f64::consts::PI * i as f64 / (n - 1) as f64).cos();
            let mut converged = false;
            for _ in 0..MAX_NEWTON_ITERS {
                let (q, dq) = legendre_derivative_pair(n - 1, x);
                let dx = q / dq;
                x -= dx;
                if dx.abs() < NEWTON_TOL {
                    converged = true;
                    break;
                }
            }
            if !converged {
                let (q, _) = legendre_derivative_pair(n - 1, x);
                return Err(NumericsError::NewtonDiverged {
                    node: i,
                    residual: q.abs(),
                });
            }
            *point = x;
        }
        // Symmetrize to kill round-off drift: x_i = -x_{n-1-i}.
        for i in 0..n / 2 {
            let avg = 0.5 * (points[i] - points[n - 1 - i]);
            points[i] = avg;
            points[n - 1 - i] = -avg;
        }
        if n % 2 == 1 {
            points[n / 2] = 0.0;
        }
        let nf = n as f64;
        let weights = points
            .iter()
            .map(|&x| {
                let p = legendre(n - 1, x);
                2.0 / (nf * (nf - 1.0) * p * p)
            })
            .collect();
        Ok(GllRule { points, weights })
    }

    /// The quadrature points, sorted ascending, endpoints included.
    pub fn points(&self) -> &[f64] {
        &self.points
    }

    /// The quadrature weights, matching [`points`](Self::points) by index.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of points in the rule.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the rule is empty (never true for a constructed rule).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Highest polynomial degree integrated exactly: `2n - 3`.
    pub fn exact_degree(&self) -> usize {
        2 * self.len() - 3
    }

    /// Integrates `f` over `[-1, 1]` with this rule.
    ///
    /// # Example
    ///
    /// ```
    /// use fem_numerics::quadrature::GllRule;
    /// let rule = GllRule::new(5).unwrap();
    /// let integral = rule.integrate(|x| x.powi(6));
    /// assert!((integral - 2.0 / 7.0).abs() < 1e-12);
    /// ```
    pub fn integrate<F: FnMut(f64) -> f64>(&self, mut f: F) -> f64 {
        self.points
            .iter()
            .zip(&self.weights)
            .map(|(&x, &w)| w * f(x))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_order_below_two() {
        assert!(matches!(
            GllRule::new(1),
            Err(NumericsError::OrderTooLow { .. })
        ));
        assert!(matches!(
            GllRule::new(0),
            Err(NumericsError::OrderTooLow { .. })
        ));
    }

    #[test]
    fn rejects_order_above_the_cap_naming_the_maximum() {
        // Regression: there used to be no upper bound at all — absurd
        // requests ground through the Newton solve instead of failing
        // with a diagnosable error naming the supported range.
        match GllRule::new(GllRule::MAX_POINTS + 1) {
            Err(NumericsError::OrderTooHigh { requested, maximum }) => {
                assert_eq!(requested, GllRule::MAX_POINTS + 1);
                assert_eq!(maximum, GllRule::MAX_POINTS);
            }
            other => panic!("expected OrderTooHigh, got {other:?}"),
        }
        // The boundary itself still constructs.
        assert!(GllRule::new(GllRule::MAX_POINTS).is_ok());
    }

    #[test]
    fn two_point_rule_is_trapezoid() {
        let rule = GllRule::new(2).unwrap();
        assert_eq!(rule.points(), &[-1.0, 1.0]);
        assert!((rule.weights()[0] - 1.0).abs() < 1e-15);
        assert!((rule.weights()[1] - 1.0).abs() < 1e-15);
    }

    #[test]
    fn three_point_rule_matches_reference() {
        let rule = GllRule::new(3).unwrap();
        let expect_pts = [-1.0, 0.0, 1.0];
        let expect_wts = [1.0 / 3.0, 4.0 / 3.0, 1.0 / 3.0];
        for i in 0..3 {
            assert!((rule.points()[i] - expect_pts[i]).abs() < 1e-14);
            assert!((rule.weights()[i] - expect_wts[i]).abs() < 1e-14);
        }
    }

    #[test]
    fn five_point_rule_matches_reference() {
        // Reference values from Abramowitz & Stegun 25.4.33.
        let rule = GllRule::new(5).unwrap();
        let sqrt_3_7 = (3.0f64 / 7.0).sqrt();
        let expect_pts = [-1.0, -sqrt_3_7, 0.0, sqrt_3_7, 1.0];
        let expect_wts = [0.1, 49.0 / 90.0, 32.0 / 45.0, 49.0 / 90.0, 0.1];
        for i in 0..5 {
            assert!((rule.points()[i] - expect_pts[i]).abs() < 1e-13);
            assert!((rule.weights()[i] - expect_wts[i]).abs() < 1e-13);
        }
    }

    #[test]
    fn points_are_symmetric_and_sorted() {
        for n in 2..=12 {
            let rule = GllRule::new(n).unwrap();
            for i in 0..n {
                assert!(
                    (rule.points()[i] + rule.points()[n - 1 - i]).abs() < 1e-14,
                    "asymmetry at order {n}"
                );
                if i > 0 {
                    assert!(rule.points()[i] > rule.points()[i - 1]);
                }
            }
        }
    }

    #[test]
    fn weights_positive_and_sum_to_two() {
        for n in 2..=16 {
            let rule = GllRule::new(n).unwrap();
            assert!(rule.weights().iter().all(|&w| w > 0.0));
            let sum: f64 = rule.weights().iter().sum();
            assert!((sum - 2.0).abs() < 1e-12, "order {n}: sum {sum}");
        }
    }

    #[test]
    fn integrates_monomials_exactly_up_to_2n_minus_3() {
        for n in 2..=10 {
            let rule = GllRule::new(n).unwrap();
            for degree in 0..=rule.exact_degree() {
                let integral = rule.integrate(|x| x.powi(degree as i32));
                let exact = if degree % 2 == 1 {
                    0.0
                } else {
                    2.0 / (degree as f64 + 1.0)
                };
                assert!(
                    (integral - exact).abs() < 1e-11,
                    "n={n} degree={degree}: {integral} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn degree_2n_minus_2_is_not_exact() {
        // Lobatto rules lose exactly one degree vs Gauss; the first even
        // monomial above the exactness bound must show an error.
        for n in 2..=8 {
            let rule = GllRule::new(n).unwrap();
            let degree = (rule.exact_degree() + 1).next_multiple_of(2);
            let integral = rule.integrate(|x| x.powi(degree as i32));
            let exact = 2.0 / (degree as f64 + 1.0);
            assert!(
                (integral - exact).abs() > 1e-6,
                "n={n} unexpectedly exact at degree {degree}"
            );
        }
    }

    proptest! {
        /// Random polynomials up to the exactness bound integrate exactly.
        #[test]
        fn prop_random_polynomials_integrate_exactly(
            n in 2usize..9,
            coeffs in proptest::collection::vec(-10.0f64..10.0, 1..12),
        ) {
            let rule = GllRule::new(n).unwrap();
            let degree = (coeffs.len() - 1).min(rule.exact_degree());
            let coeffs = &coeffs[..=degree];
            let integral = rule.integrate(|x| {
                coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
            });
            let exact: f64 = coeffs
                .iter()
                .enumerate()
                .map(|(k, &c)| if k % 2 == 0 { 2.0 * c / (k as f64 + 1.0) } else { 0.0 })
                .sum();
            prop_assert!((integral - exact).abs() < 1e-9 * (1.0 + exact.abs()));
        }

        /// The rule is linear in the integrand.
        #[test]
        fn prop_integration_is_linear(
            n in 2usize..10,
            a in -5.0f64..5.0,
            b in -5.0f64..5.0,
        ) {
            let rule = GllRule::new(n).unwrap();
            let f = |x: f64| x.sin();
            let g = |x: f64| (2.0 * x).cos();
            let lhs = rule.integrate(|x| a * f(x) + b * g(x));
            let rhs = a * rule.integrate(f) + b * rule.integrate(g);
            prop_assert!((lhs - rhs).abs() < 1e-10);
        }
    }
}
