//! Lagrange interpolation bases and spectral differentiation matrices.
//!
//! A spectral element represents a field inside an element as a Lagrange
//! interpolant through the GLL nodes (the paper's trial functions
//! `x_e = Σ x_i N_i`, §II-B). Differentiating the interpolant at the nodes is
//! a dense matrix-vector product with the differentiation matrix `D`, where
//! `D[i][j] = N_j'(x_i)` — this is the "COMPUTE Gradients" stage of the
//! accelerator's node pipeline.

use crate::NumericsError;

/// A 1D Lagrange basis over a set of strictly increasing nodes.
///
/// # Example
///
/// ```
/// use fem_numerics::lagrange::LagrangeBasis;
/// // Basis on the 3-point GLL nodes {-1, 0, 1}.
/// let basis = LagrangeBasis::new(vec![-1.0, 0.0, 1.0]).unwrap();
/// // Cardinal property: N_j(x_i) = δ_ij.
/// let vals = basis.eval(0.0);
/// assert!((vals[1] - 1.0).abs() < 1e-14);
/// assert!(vals[0].abs() < 1e-14 && vals[2].abs() < 1e-14);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LagrangeBasis {
    nodes: Vec<f64>,
    /// Barycentric weights b_j = 1 / Π_{k≠j} (x_j - x_k).
    bary: Vec<f64>,
}

impl LagrangeBasis {
    /// Builds a Lagrange basis through `nodes`.
    ///
    /// # Errors
    ///
    /// * [`NumericsError::OrderTooLow`] if fewer than two nodes are given.
    /// * [`NumericsError::NodesNotSorted`] if nodes are not strictly
    ///   increasing (which also rules out duplicates).
    pub fn new(nodes: Vec<f64>) -> Result<Self, NumericsError> {
        if nodes.len() < 2 {
            return Err(NumericsError::OrderTooLow {
                requested: nodes.len(),
                minimum: 2,
            });
        }
        if nodes.windows(2).any(|w| w[0] >= w[1]) {
            return Err(NumericsError::NodesNotSorted);
        }
        let n = nodes.len();
        let mut bary = vec![1.0; n];
        for j in 0..n {
            for k in 0..n {
                if k != j {
                    bary[j] /= nodes[j] - nodes[k];
                }
            }
        }
        Ok(LagrangeBasis { nodes, bary })
    }

    /// The interpolation nodes.
    pub fn nodes(&self) -> &[f64] {
        &self.nodes
    }

    /// Number of basis functions (= number of nodes).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the basis is empty (never true for a constructed basis).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Evaluates all basis functions at `x` (barycentric form, stable even
    /// very close to a node).
    pub fn eval(&self, x: f64) -> Vec<f64> {
        let n = self.len();
        let mut vals = vec![0.0; n];
        // Exact hit on a node: cardinal property.
        for j in 0..n {
            if (x - self.nodes[j]).abs() < 1e-14 {
                vals[j] = 1.0;
                return vals;
            }
        }
        let mut denom = 0.0;
        for ((v, &b), &node) in vals.iter_mut().zip(&self.bary).zip(&self.nodes) {
            let term = b / (x - node);
            *v = term;
            denom += term;
        }
        for v in &mut vals {
            *v /= denom;
        }
        vals
    }

    /// Evaluates the derivative of every basis function at `x`.
    ///
    /// Uses the product-rule form on top of [`eval`](Self::eval); exact node
    /// hits fall back to the differentiation-matrix row.
    pub fn eval_derivative(&self, x: f64) -> Vec<f64> {
        let n = self.len();
        for i in 0..n {
            if (x - self.nodes[i]).abs() < 1e-14 {
                return self.derivative_row(i);
            }
        }
        (0..n).map(|j| self.derivative_via_products(j, x)).collect()
    }

    /// Direct product-rule evaluation of `N_j'(x)`; O(n²) but exact.
    fn derivative_via_products(&self, j: usize, x: f64) -> f64 {
        let n = self.len();
        let mut total = 0.0;
        for m in 0..n {
            if m == j {
                continue;
            }
            let mut prod = 1.0;
            for k in 0..n {
                if k != j && k != m {
                    prod *= (x - self.nodes[k]) / (self.nodes[j] - self.nodes[k]);
                }
            }
            total += prod / (self.nodes[j] - self.nodes[m]);
        }
        total
    }

    /// Row `i` of the differentiation matrix: `N_j'(x_i)` for all `j`.
    fn derivative_row(&self, i: usize) -> Vec<f64> {
        let n = self.len();
        let mut row = vec![0.0; n];
        for (j, r) in row.iter_mut().enumerate() {
            if j != i {
                *r = (self.bary[j] / self.bary[i]) / (self.nodes[i] - self.nodes[j]);
            }
        }
        // Diagonal from the "negative sum trick" (rows of D sum to zero
        // because constants have zero derivative).
        row[i] = -row.iter().sum::<f64>();
        row
    }

    /// The full differentiation matrix `D` with `D[i][j] = N_j'(x_i)`,
    /// row-major.
    ///
    /// Applying `D` to nodal values of a function yields nodal values of its
    /// derivative, exactly for polynomials of degree `< n`.
    ///
    /// # Example
    ///
    /// ```
    /// use fem_numerics::lagrange::LagrangeBasis;
    /// let basis = LagrangeBasis::new(vec![-1.0, 0.0, 1.0]).unwrap();
    /// let d = basis.differentiation_matrix();
    /// // Differentiate f(x) = x² at the nodes: f' = 2x.
    /// let f = [1.0, 0.0, 1.0];
    /// for i in 0..3 {
    ///     let df: f64 = (0..3).map(|j| d[i * 3 + j] * f[j]).sum();
    ///     assert!((df - 2.0 * basis.nodes()[i]).abs() < 1e-13);
    /// }
    /// ```
    pub fn differentiation_matrix(&self) -> Vec<f64> {
        let n = self.len();
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            let row = self.derivative_row(i);
            d[i * n..(i + 1) * n].copy_from_slice(&row);
        }
        d
    }

    /// Interpolates nodal values `f` to the point `x`.
    pub fn interpolate(&self, f: &[f64], x: f64) -> f64 {
        assert_eq!(f.len(), self.len(), "nodal value count must match basis");
        self.eval(x).iter().zip(f).map(|(n, v)| n * v).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadrature::GllRule;
    use proptest::prelude::*;

    #[test]
    fn rejects_bad_nodes() {
        assert!(matches!(
            LagrangeBasis::new(vec![0.0]),
            Err(NumericsError::OrderTooLow { .. })
        ));
        assert!(matches!(
            LagrangeBasis::new(vec![0.0, 0.0]),
            Err(NumericsError::NodesNotSorted)
        ));
        assert!(matches!(
            LagrangeBasis::new(vec![1.0, -1.0]),
            Err(NumericsError::NodesNotSorted)
        ));
    }

    #[test]
    fn cardinal_property_at_nodes() {
        let basis = LagrangeBasis::new(GllRule::new(6).unwrap().points().to_vec()).unwrap();
        for (i, &xi) in basis.nodes().iter().enumerate() {
            let vals = basis.eval(xi);
            for (j, &v) in vals.iter().enumerate() {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((v - expect).abs() < 1e-13, "i={i} j={j} v={v}");
            }
        }
    }

    #[test]
    fn partition_of_unity_off_nodes() {
        let basis = LagrangeBasis::new(GllRule::new(5).unwrap().points().to_vec()).unwrap();
        for &x in &[-0.93, -0.51, -0.17, 0.05, 0.33, 0.78, 0.99] {
            let sum: f64 = basis.eval(x).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "x={x} sum={sum}");
        }
    }

    #[test]
    fn differentiation_matrix_rows_sum_to_zero() {
        for n in 2..9 {
            let basis = LagrangeBasis::new(GllRule::new(n).unwrap().points().to_vec()).unwrap();
            let d = basis.differentiation_matrix();
            for i in 0..n {
                let row_sum: f64 = d[i * n..(i + 1) * n].iter().sum();
                assert!(row_sum.abs() < 1e-12);
            }
        }
    }

    #[test]
    fn differentiates_polynomials_exactly() {
        let n = 5;
        let basis = LagrangeBasis::new(GllRule::new(n).unwrap().points().to_vec()).unwrap();
        let d = basis.differentiation_matrix();
        // f(x) = 3x⁴ - 2x² + x, f'(x) = 12x³ - 4x + 1 (degree 4 < n = 5 ✓)
        let f: Vec<f64> = basis
            .nodes()
            .iter()
            .map(|&x| 3.0 * x.powi(4) - 2.0 * x * x + x)
            .collect();
        for i in 0..n {
            let df: f64 = (0..n).map(|j| d[i * n + j] * f[j]).sum();
            let x = basis.nodes()[i];
            let exact = 12.0 * x.powi(3) - 4.0 * x + 1.0;
            assert!((df - exact).abs() < 1e-11, "i={i}: {df} vs {exact}");
        }
    }

    #[test]
    fn derivative_off_nodes_matches_finite_difference() {
        let basis = LagrangeBasis::new(GllRule::new(4).unwrap().points().to_vec()).unwrap();
        let h = 1e-6;
        for &x in &[-0.77, -0.2, 0.44, 0.9] {
            let derivs = basis.eval_derivative(x);
            let hi = basis.eval(x + h);
            let lo = basis.eval(x - h);
            for j in 0..basis.len() {
                let fd = (hi[j] - lo[j]) / (2.0 * h);
                assert!((derivs[j] - fd).abs() < 1e-6, "j={j}");
            }
        }
    }

    proptest! {
        /// Interpolation reproduces polynomials of degree < n at random points.
        #[test]
        fn prop_interpolation_reproduces_polynomials(
            n in 3usize..8,
            coeffs in proptest::collection::vec(-3.0f64..3.0, 1..6),
            x in -1.0f64..1.0,
        ) {
            let rule = GllRule::new(n).unwrap();
            let basis = LagrangeBasis::new(rule.points().to_vec()).unwrap();
            let degree = (coeffs.len() - 1).min(n - 1);
            let coeffs = &coeffs[..=degree];
            let poly = |x: f64| coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c);
            let nodal: Vec<f64> = basis.nodes().iter().map(|&t| poly(t)).collect();
            let interp = basis.interpolate(&nodal, x);
            prop_assert!((interp - poly(x)).abs() < 1e-10);
        }

        /// D applied twice equals the second-derivative for low-degree polys.
        #[test]
        fn prop_differentiation_matrix_composes(n in 4usize..8, a in -2.0f64..2.0) {
            let rule = GllRule::new(n).unwrap();
            let basis = LagrangeBasis::new(rule.points().to_vec()).unwrap();
            let d = basis.differentiation_matrix();
            // f = a x³, f'' = 6 a x; degree 3 ≤ n-1 and f' has degree 2 ≤ n-1.
            let f: Vec<f64> = basis.nodes().iter().map(|&x| a * x.powi(3)).collect();
            let df: Vec<f64> = (0..n)
                .map(|i| (0..n).map(|j| d[i * n + j] * f[j]).sum())
                .collect();
            for i in 0..n {
                let ddf: f64 = (0..n).map(|j| d[i * n + j] * df[j]).sum();
                prop_assert!((ddf - 6.0 * a * basis.nodes()[i]).abs() < 1e-9);
            }
        }
    }
}
