//! Numerical foundations for the FEM-based CFD accelerator reproduction.
//!
//! This crate provides the building blocks that the spectral finite-element
//! solver ([`fem-solver`]) and the mesh layer ([`fem-mesh`]) are built on:
//!
//! * [`legendre`] — Legendre polynomials and their derivatives,
//! * [`quadrature`] — Gauss-Lobatto-Legendre (GLL) quadrature rules of
//!   arbitrary order (the paper integrates the weak form with GLL, §II-B),
//! * [`lagrange`] — 1D Lagrange interpolation bases on arbitrary node sets
//!   with spectral differentiation matrices,
//! * [`tensor`] — tensor-product index arithmetic for 3D hexahedral elements,
//! * [`linalg`] — small dense linear algebra (`Vec3`, `Mat3`) used for
//!   element Jacobians and flux tensors,
//! * [`rk`] — explicit Runge-Kutta integrators (Butcher tableaus; the paper
//!   uses classical RK4, §II-B).
//!
//! # Example
//!
//! Integrate a cubic exactly with a 2-point GLL rule per direction:
//!
//! ```
//! use fem_numerics::quadrature::GllRule;
//!
//! let rule = GllRule::new(3).unwrap();
//! let integral: f64 = rule
//!     .points()
//!     .iter()
//!     .zip(rule.weights())
//!     .map(|(&x, &w)| w * (x * x * x + x * x))
//!     .sum();
//! // ∫_{-1}^{1} x³ + x² dx = 2/3
//! assert!((integral - 2.0 / 3.0).abs() < 1e-13);
//! ```
//!
//! [`fem-solver`]: ../fem_solver/index.html
//! [`fem-mesh`]: ../fem_mesh/index.html

#![deny(missing_docs)]

pub mod lagrange;
pub mod legendre;
pub mod linalg;
pub mod quadrature;
pub mod rk;
pub mod tensor;

pub use lagrange::LagrangeBasis;
pub use linalg::{Mat3, Vec3};
pub use quadrature::GllRule;
pub use rk::{ButcherTableau, ExplicitRk, OdeSystem, StateOps};

/// Errors produced by the numerics layer.
#[derive(Debug, Clone, PartialEq)]
pub enum NumericsError {
    /// A quadrature rule or basis was requested with fewer than two nodes.
    OrderTooLow {
        /// The number of nodes requested.
        requested: usize,
        /// The minimum number of nodes supported.
        minimum: usize,
    },
    /// A quadrature rule or basis was requested beyond the supported range.
    OrderTooHigh {
        /// The order (or node count) requested.
        requested: usize,
        /// The maximum supported by the implementation.
        maximum: usize,
    },
    /// Newton iteration for quadrature nodes failed to converge.
    NewtonDiverged {
        /// Index of the node that failed to converge.
        node: usize,
        /// Residual magnitude when iteration stopped.
        residual: f64,
    },
    /// Input nodes for a Lagrange basis were not strictly increasing.
    NodesNotSorted,
    /// Input nodes for a Lagrange basis contained duplicates.
    DuplicateNodes,
}

impl std::fmt::Display for NumericsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NumericsError::OrderTooLow { requested, minimum } => write!(
                f,
                "requested {requested} nodes but at least {minimum} are required"
            ),
            NumericsError::OrderTooHigh { requested, maximum } => write!(
                f,
                "requested {requested} but at most {maximum} is supported"
            ),
            NumericsError::NewtonDiverged { node, residual } => write!(
                f,
                "newton iteration for node {node} stalled with residual {residual:e}"
            ),
            NumericsError::NodesNotSorted => write!(f, "basis nodes must be strictly increasing"),
            NumericsError::DuplicateNodes => write!(f, "basis nodes must be distinct"),
        }
    }
}

impl std::error::Error for NumericsError {}
