//! Functional verification of the accelerator's task decomposition.
//!
//! Timing models say the dataflow design is *fast*; this module proves it
//! is *right*: the Load → Compute(Diffusion⊕Convection, the fused
//! single-contraction stage) → Store task pipeline, fed element tokens
//! exactly like the hardware (geometric factors streamed from the
//! precomputed cache, not rebuilt per element), computes bit-identical
//! residuals to the monolithic reference solver, and a whole accelerated
//! RK4 run reproduces the reference trajectory bit-for-bit.

use fem_mesh::geometry::GeometryCache;
use fem_mesh::HexMesh;
use fem_numerics::rk::OdeSystem;
use fem_numerics::tensor::HexBasis;
use fem_solver::engine::{AssemblyContext, BackendCapabilities, ExecutionBackend};
use fem_solver::gas::GasModel;
use fem_solver::kernels::{
    convective_flux, fused_flux, weak_divergence, ElementWorkspace, KernelOps, KernelPath,
};
use fem_solver::profile::{Phase, PhaseProfiler};
use fem_solver::state::{Conserved, Primitives};
use hls_dataflow::functional::StagedPipeline;
use std::cell::RefCell;
use std::time::Instant;

/// An element token flowing through the functional pipeline: the element
/// id and its gathered workspace (geometry is read from the shared
/// precomputed cache, like the hardware streams γ-factors from DDR).
pub struct ElementToken {
    /// Element id.
    pub element: usize,
    /// Per-element workspace (fields after Load, residuals after
    /// Compute).
    pub ws: ElementWorkspace,
}

/// Computes one RKL residual sweep through the staged task pipeline
/// (LOAD Element → COMPUTE fused Diffusion ⊕ Convection → STORE Element
/// Contribution), assembling the RHS into `out` (overwriting it; not yet
/// mass-scaled). Geometry streams from `geometry` — the pipeline never
/// rebuilds it. The stages *borrow* the sweep context and the output
/// buffer (no per-sweep allocation of the result). The weak-divergence
/// contraction dispatches on `kernel`, resolved once per sweep like every
/// host backend does (the full-matrix path materializes its dense
/// operators here, before any token flows).
///
/// # Panics
///
/// Panics if the state, geometry cache or output does not match the
/// mesh.
#[allow(clippy::too_many_arguments)]
pub fn staged_stage_residual_into(
    mesh: &HexMesh,
    basis: &HexBasis,
    gas: &GasModel,
    geometry: &GeometryCache,
    conserved: &Conserved,
    primitives: &Primitives,
    kernel: KernelPath,
    out: &mut Conserved,
) {
    assert_eq!(conserved.len(), mesh.num_nodes());
    assert_eq!(geometry.num_elements(), mesh.num_elements());
    assert_eq!(out.len(), mesh.num_nodes());
    let npe = mesh.nodes_per_element();
    let kernel = KernelOps::resolve(kernel, basis);
    out.set_zero();
    let rhs = RefCell::new(out);

    let mut pipeline: StagedPipeline<ElementToken> = StagedPipeline::new();
    // LOAD Element: gather node data (paper step 1; geometry arrives as
    // precomputed factors, not a per-element rebuild).
    pipeline.stage("load_element", move |mut tok: ElementToken| {
        tok.ws
            .gather(mesh.element_nodes(tok.element), conserved, primitives);
        tok.ws.zero_residuals();
        tok
    });
    // COMPUTE Diffusion ⊕ Convection (merged module, paper step 2):
    // fused net flux, one contraction.
    pipeline.stage("compute_diff_conv", move |mut tok: ElementToken| {
        let geom = geometry.element(tok.element);
        if gas.mu > 0.0 {
            fused_flux(&mut tok.ws, gas, basis, geom);
        } else {
            convective_flux(&mut tok.ws);
        }
        kernel.weak_divergence(&mut tok.ws, basis, geom, 1.0);
        tok
    });
    // STORE Element Contribution (paper step 3).
    let rhs_store = &rhs;
    pipeline.stage("store_element", move |tok: ElementToken| {
        let mut guard = rhs_store.borrow_mut();
        tok.ws
            .scatter_add(mesh.element_nodes(tok.element), &mut guard);
        tok
    });

    for e in 0..mesh.num_elements() {
        pipeline.process(ElementToken {
            element: e,
            ws: ElementWorkspace::new(npe),
        });
    }
}

/// Allocating wrapper over [`staged_stage_residual_into`] on the default
/// sum-factored kernel path, returning the assembled RHS.
///
/// # Panics
///
/// Panics if the state or geometry cache does not match the mesh.
pub fn staged_stage_residual(
    mesh: &HexMesh,
    basis: &HexBasis,
    gas: &GasModel,
    geometry: &GeometryCache,
    conserved: &Conserved,
    primitives: &Primitives,
) -> Conserved {
    let mut rhs = Conserved::zeros(mesh.num_nodes());
    staged_stage_residual_into(
        mesh,
        basis,
        gas,
        geometry,
        conserved,
        primitives,
        KernelPath::SumFactored,
        &mut rhs,
    );
    rhs
}

/// The monolithic reference: the same sweep as one fused element loop
/// (what the reference CPU solver's serial hot path does).
pub fn monolithic_stage_residual(
    mesh: &HexMesh,
    basis: &HexBasis,
    gas: &GasModel,
    geometry: &GeometryCache,
    conserved: &Conserved,
    primitives: &Primitives,
) -> Conserved {
    let npe = mesh.nodes_per_element();
    let mut ws = ElementWorkspace::new(npe);
    let mut rhs = Conserved::zeros(mesh.num_nodes());
    for e in 0..mesh.num_elements() {
        let geom = geometry.element(e);
        ws.gather(mesh.element_nodes(e), conserved, primitives);
        ws.zero_residuals();
        if gas.mu > 0.0 {
            fused_flux(&mut ws, gas, basis, geom);
        } else {
            convective_flux(&mut ws);
        }
        weak_divergence(&mut ws, basis, geom, 1.0);
        ws.scatter_add(mesh.element_nodes(e), &mut rhs);
    }
    rhs
}

/// An RHS provider that evaluates the residual *through the accelerator's
/// staged pipeline* — drop-in replacement for the solver core, used to
/// prove whole-trajectory equivalence.
pub struct StagedRhs {
    mesh: HexMesh,
    basis: HexBasis,
    gas: GasModel,
    geometry: GeometryCache,
    primitives: Primitives,
    lumped_mass: Vec<f64>,
}

impl StagedRhs {
    /// Builds the staged RHS for a mesh/gas pair, precomputing the
    /// geometry cache and assembling the lumped mass from it like the
    /// reference solver does.
    ///
    /// # Panics
    ///
    /// Panics on invalid meshes (inverted elements).
    pub fn new(mesh: HexMesh, gas: GasModel) -> Self {
        let basis = HexBasis::new(mesh.order()).expect("valid order");
        let geometry = GeometryCache::build(&mesh, &basis).expect("valid mesh geometry");
        let mut lumped_mass = vec![0.0; mesh.num_nodes()];
        for e in 0..mesh.num_elements() {
            let det_w = geometry.det_w(e);
            for (q, &n) in mesh.element_nodes(e).iter().enumerate() {
                lumped_mass[n as usize] += det_w[q];
            }
        }
        let primitives = Primitives::zeros(mesh.num_nodes());
        StagedRhs {
            mesh,
            basis,
            gas,
            geometry,
            primitives,
            lumped_mass,
        }
    }
}

impl OdeSystem for StagedRhs {
    type State = Conserved;

    fn rhs(&mut self, _t: f64, y: &Conserved, dydt: &mut Conserved) {
        // RKU: primitive update.
        self.primitives.update_from(y, &self.gas);
        // RKL through the staged pipeline.
        staged_stage_residual_into(
            &self.mesh,
            &self.basis,
            &self.gas,
            &self.geometry,
            y,
            &self.primitives,
            KernelPath::SumFactored,
            dydt,
        );
        let apply = |dst: &mut [f64], mass: &[f64]| {
            for (v, &m) in dst.iter_mut().zip(mass) {
                *v /= m;
            }
        };
        apply(&mut dydt.rho, &self.lumped_mass);
        for d in 0..3 {
            apply(&mut dydt.mom[d], &self.lumped_mass);
        }
        apply(&mut dydt.energy, &self.lumped_mass);
    }
}

/// The staged Load → Compute → Store task pipeline registered as a
/// solver [`ExecutionBackend`] — the external-backend registration path
/// ([`fem_solver::driver::Simulation::set_custom_backend`]) exercised by
/// the accelerator's functional model itself. Every RHS evaluation
/// routes the element tokens through [`staged_stage_residual`], so a
/// `Simulation` running on this backend *is* the accelerated solver at
/// functional fidelity (and bit-identical to the reference, as the tests
/// below pin).
#[derive(Debug, Default)]
pub struct StagedBackend;

impl ExecutionBackend for StagedBackend {
    fn name(&self) -> String {
        "staged-dataflow".to_string()
    }

    fn capabilities(&self) -> BackendCapabilities {
        BackendCapabilities {
            shards: 1,
            parallel: false,
            deterministic_across_widths: true,
            emulates_accelerator: true,
        }
    }

    fn assemble_rhs(
        &mut self,
        ctx: &AssemblyContext<'_>,
        conserved: &Conserved,
        prim: &Primitives,
        out: &mut Conserved,
        profiler: Option<&mut PhaseProfiler>,
    ) {
        let t0 = profiler.is_some().then(Instant::now);
        staged_stage_residual_into(
            ctx.mesh,
            ctx.basis,
            ctx.gas,
            ctx.geometry,
            conserved,
            prim,
            ctx.kernel,
            out,
        );
        if let (Some(t0), Some(p)) = (t0, profiler) {
            // The staged sweep is timed as a whole — its Load/Compute/
            // Store stages are not separated — so the elapsed time is
            // charged to the fused compute phases (half convection, half
            // diffusion when viscous; all convection when inviscid).
            // This is coarser than the reference convention, which
            // charges gather/scatter to RK(Other) and the fused flux
            // wholly to RK(Diffusion); compare Fig-2 breakdowns across
            // backends with that in mind.
            let elapsed = t0.elapsed();
            if ctx.gas.mu > 0.0 {
                p.add(Phase::RkConvection, elapsed / 2);
                p.add(Phase::RkDiffusion, elapsed / 2);
            } else {
                p.add(Phase::RkConvection, elapsed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fem_mesh::generator::BoxMeshBuilder;
    use fem_numerics::rk::{ButcherTableau, ExplicitRk};
    use fem_solver::driver::Simulation;
    use fem_solver::tgv::TgvConfig;

    fn setup() -> (
        HexMesh,
        HexBasis,
        GasModel,
        GeometryCache,
        Conserved,
        Primitives,
    ) {
        let mesh = BoxMeshBuilder::tgv_box(5).build().unwrap();
        let basis = HexBasis::new(1).unwrap();
        let cfg = TgvConfig::standard();
        let gas = cfg.gas();
        let conserved = cfg.initial_state(&mesh);
        let mut primitives = Primitives::zeros(mesh.num_nodes());
        primitives.update_from(&conserved, &gas);
        let geometry = GeometryCache::build(&mesh, &basis).unwrap();
        (mesh, basis, gas, geometry, conserved, primitives)
    }

    #[test]
    fn staged_residual_is_bit_identical_to_monolithic() {
        let (mesh, basis, gas, geometry, conserved, primitives) = setup();
        let staged = staged_stage_residual(&mesh, &basis, &gas, &geometry, &conserved, &primitives);
        let mono =
            monolithic_stage_residual(&mesh, &basis, &gas, &geometry, &conserved, &primitives);
        let mut checked = 0;
        let fields = |c: &Conserved| {
            let mut v: Vec<Vec<f64>> = Vec::new();
            c.for_each_field(|f| v.push(f.to_vec()));
            v
        };
        for (a, b) in fields(&staged).iter().zip(fields(&mono).iter()) {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits(), "bitwise mismatch");
                checked += 1;
            }
        }
        assert_eq!(checked, 5 * mesh.num_nodes());
    }

    #[test]
    fn inviscid_path_matches_too() {
        let (mesh, basis, _, geometry, conserved, primitives) = setup();
        let gas = GasModel::air(0.0);
        let staged = staged_stage_residual(&mesh, &basis, &gas, &geometry, &conserved, &primitives);
        let mono =
            monolithic_stage_residual(&mesh, &basis, &gas, &geometry, &conserved, &primitives);
        staged.for_each_field(|_| {});
        let mut a = Vec::new();
        staged.for_each_field(|f| a.extend_from_slice(f));
        let mut b = Vec::new();
        mono.for_each_field(|f| b.extend_from_slice(f));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn staged_backend_plugs_into_the_driver_and_tracks_it_bitwise() {
        // The custom-backend registration path: a Simulation whose RHS is
        // assembled by the staged pipeline reproduces the reference
        // trajectory bit-for-bit (same RK loop, same lumped mass, same
        // blow-up detection — only the assembly engine is swapped).
        let mesh = BoxMeshBuilder::tgv_box(4).build().unwrap();
        let cfg = TgvConfig::new(0.2, 400.0);
        let initial = cfg.initial_state(&mesh);

        let mut reference = Simulation::new(mesh.clone(), cfg.gas(), initial.clone()).unwrap();
        let dt = reference.suggest_dt(0.4);
        reference.advance(5, dt).unwrap();

        let mut accelerated = Simulation::new(mesh, cfg.gas(), initial).unwrap();
        accelerated.set_custom_backend(Box::new(StagedBackend));
        assert_eq!(accelerated.backend().name(), "staged-dataflow");
        assert!(accelerated.backend().capabilities().emulates_accelerator);
        accelerated.advance(5, dt).unwrap();

        assert_eq!(
            accelerated.conserved().to_bit_vec(),
            reference.conserved().to_bit_vec(),
            "staged backend diverged from the reference driver"
        );
    }

    #[test]
    fn staged_backend_honors_the_full_matrix_kernel_path() {
        // The staged pipeline dispatches `ctx.kernel` like every host
        // backend: under the full-matrix path it must track the reference
        // driver's full-matrix trajectory bitwise (same serial element
        // order, same dense contraction), and that trajectory must
        // actually differ in bits from the sum-factored one (the knob is
        // live, not decorative).
        let mesh = BoxMeshBuilder::tgv_box(4).build().unwrap();
        let cfg = TgvConfig::new(0.2, 400.0);
        let initial = cfg.initial_state(&mesh);

        let mut reference = Simulation::builder(mesh.clone(), cfg.gas(), initial.clone())
            .kernel_path(KernelPath::FullMatrix)
            .build()
            .unwrap();
        let dt = reference.suggest_dt(0.4);
        reference.advance(3, dt).unwrap();

        let mut accelerated = Simulation::builder(mesh.clone(), cfg.gas(), initial.clone())
            .kernel_path(KernelPath::FullMatrix)
            .build()
            .unwrap();
        accelerated.set_custom_backend(Box::new(StagedBackend));
        accelerated.advance(3, dt).unwrap();
        assert_eq!(
            accelerated.conserved().to_bit_vec(),
            reference.conserved().to_bit_vec(),
            "staged full-matrix run diverged from the reference driver"
        );

        let mut factored = Simulation::new(mesh, cfg.gas(), initial).unwrap();
        factored.advance(3, dt).unwrap();
        assert_ne!(
            accelerated.conserved().to_bit_vec(),
            factored.conserved().to_bit_vec(),
            "full-matrix and sum-factored trajectories should differ in bits"
        );
    }

    #[test]
    fn accelerated_rk4_trajectory_matches_reference_solver() {
        let mesh = BoxMeshBuilder::tgv_box(4).build().unwrap();
        let cfg = TgvConfig::new(0.2, 400.0);
        let gas = cfg.gas();
        let initial = cfg.initial_state(&mesh);

        // Reference: the solver driver.
        let mut reference = Simulation::new(mesh.clone(), gas, initial.clone()).unwrap();
        let dt = reference.suggest_dt(0.4);
        reference.advance(5, dt).unwrap();

        // Accelerated functional model: same RK4 over the staged RHS.
        let mut staged_sys = StagedRhs::new(mesh, gas);
        let mut state = initial;
        let mut rk = ExplicitRk::new(ButcherTableau::rk4(), &state);
        for s in 0..5 {
            rk.step(&mut staged_sys, s as f64 * dt, dt, &mut state);
        }

        let mut a = Vec::new();
        state.for_each_field(|f| a.extend_from_slice(f));
        let mut b = Vec::new();
        reference
            .conserved()
            .for_each_field(|f| b.extend_from_slice(f));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "trajectory diverged: {x:e} vs {y:e}"
            );
        }
    }
}
