//! Calibration constants and paper reference values.
//!
//! Everything that ties the *dimensionless* model outputs (cycles, op
//! counts, resource vectors) to *reported physical numbers* lives here,
//! with provenance. The reproduction philosophy (DESIGN.md §5): shapes —
//! who wins, by what factor, where growth kinks — emerge from the models;
//! these constants pin absolute scale and provide the paper's reported
//! values for side-by-side tables.

/// Fig 2 reference breakdown: RK(Diffusion), RK(Convection), RK(Other),
/// Non-RK, in percent.
pub const PAPER_FIG2_BREAKDOWN: [f64; 4] = [39.2, 21.04, 16.13, 23.63];

/// Fig 2 companion statement: the RK method averages 76.5% of total
/// execution time.
pub const PAPER_RK_FRACTION_PERCENT: f64 = 76.5;

/// Fig 5 headline: average speedup of the proposed design over the
/// Vitis-HLS optimized design.
pub const PAPER_FIG5_AVG_SPEEDUP: f64 = 7.9;

/// Fig 5 scaling statement: execution time grows 3.4× from the 1.4M-node
/// mesh to the 4.2M-node mesh (for both designs).
pub const PAPER_FIG5_GROWTH_1P4M_TO_4P2M: f64 = 3.4;

/// §IV-A clock frequencies: proposed vs Vitis-optimized.
pub const PAPER_FMAX_PROPOSED_MHZ: f64 = 150.0;
/// §IV-A baseline clock.
pub const PAPER_FMAX_VITIS_MHZ: f64 = 100.0;

/// Table I reference utilization (FF%, LUT%, BRAM%, URAM%, DSP%).
pub const PAPER_TABLE1_VITIS: [f64; 5] = [17.19, 27.68, 22.96, 0.73, 9.17];
/// Table I proposed-design row.
pub const PAPER_TABLE1_PROPOSED: [f64; 5] = [25.29, 41.15, 43.98, 11.77, 18.23];

/// §IV-B: end-to-end latency reduction vs the Xeon Silver 4210 at 4.2M
/// nodes (45%).
pub const PAPER_CPU_LATENCY_REDUCTION: f64 = 0.45;

/// §IV-B power: CPU average package power (W).
pub const PAPER_CPU_POWER_W: f64 = 120.42;
/// §IV-B power: FPGA core application (W).
pub const PAPER_FPGA_CORE_W: f64 = 32.4;
/// §IV-B power: FPGA peripherals (W).
pub const PAPER_FPGA_PERIPHERALS_W: f64 = 30.7;
/// §IV-B power: rest of the system (W).
pub const PAPER_FPGA_REST_W: f64 = 1.7;
/// §IV-B headline power ratio (CPU / FPGA), as reported.
pub const PAPER_POWER_RATIO: f64 = 3.64;

/// RK4 steps assumed for absolute execution times (the paper does not
/// state its step count; Fig 5's shape is step-count invariant).
pub const DEFAULT_RK_STEPS: usize = 20;

/// RK4 stages per step.
pub const RK_STAGES: usize = 4;

/// Fraction of CPU execution time outside the RK method (Fig 2:
/// Non-RK = 23.63%); the host keeps running this part in the
/// accelerated system (§III: "The remaining computations are handled by
/// the host CPU").
pub const NON_RK_FRACTION: f64 = 0.2363;

/// Calibration of the CPU baseline's per-element cost.
///
/// Default comes from the roofline model; `from_measurement` replaces it
/// with a wall-clock measurement of the Rust reference solver so Fig 5 /
/// Table II can be re-anchored on the host machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuCalibration {
    /// Seconds per element per RK stage (RKL work).
    pub seconds_per_element_stage: f64,
}

impl CpuCalibration {
    /// Roofline-derived default for the Xeon Silver 4210 on order-1
    /// elements.
    pub fn roofline_default(workload: &crate::workload::RklWorkload) -> Self {
        let cpu = fpga_platform::cpu::CpuModel::xeon_silver_4210();
        let per_elem_flops = workload.rkl_flops_per_stage() / workload.num_elements.max(1) as u64;
        let per_elem_bytes = workload.bytes_in_per_element() + workload.bytes_out_per_element();
        CpuCalibration {
            seconds_per_element_stage: cpu.time_seconds(per_elem_flops, per_elem_bytes),
        }
    }

    /// Anchors the calibration on a measured stage time for a mesh of
    /// `num_elements`.
    ///
    /// # Panics
    ///
    /// Panics if `num_elements == 0` or the measurement is non-positive.
    pub fn from_measurement(num_elements: usize, measured_stage_seconds: f64) -> Self {
        assert!(num_elements > 0, "element count");
        assert!(measured_stage_seconds > 0.0, "measurement must be positive");
        CpuCalibration {
            seconds_per_element_stage: measured_stage_seconds / num_elements as f64,
        }
    }

    /// CPU time of one full RK stage (RKL sweep) for `num_elements`.
    pub fn stage_seconds(&self, num_elements: usize) -> f64 {
        self.seconds_per_element_stage * num_elements as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::RklWorkload;

    #[test]
    fn paper_constants_are_internally_consistent() {
        let rk: f64 = PAPER_FIG2_BREAKDOWN[..3].iter().sum();
        assert!((rk - PAPER_RK_FRACTION_PERCENT).abs() < 0.5);
        let total: f64 = PAPER_FIG2_BREAKDOWN.iter().sum();
        assert!((total - 100.0).abs() < 0.1);
        // The reported power ratio sits between core-only and
        // core+rest+peripheral interpretations.
        let core_only = PAPER_CPU_POWER_W / PAPER_FPGA_CORE_W;
        let with_everything =
            PAPER_CPU_POWER_W / (PAPER_FPGA_CORE_W + PAPER_FPGA_PERIPHERALS_W + PAPER_FPGA_REST_W);
        assert!(PAPER_POWER_RATIO < core_only);
        assert!(PAPER_POWER_RATIO > with_everything);
    }

    #[test]
    fn roofline_default_is_sub_microsecond_per_element() {
        let w = RklWorkload::with_nodes(1_000_000, 1);
        let cal = CpuCalibration::roofline_default(&w);
        assert!(
            cal.seconds_per_element_stage > 1e-8 && cal.seconds_per_element_stage < 1e-5,
            "{}",
            cal.seconds_per_element_stage
        );
    }

    #[test]
    fn measurement_anchoring() {
        let cal = CpuCalibration::from_measurement(1000, 2.0e-3);
        assert!((cal.seconds_per_element_stage - 2.0e-6).abs() < 1e-15);
        assert!((cal.stage_seconds(5000) - 1.0e-2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "measurement must be positive")]
    fn bad_measurement_panics() {
        CpuCalibration::from_measurement(10, 0.0);
    }
}
