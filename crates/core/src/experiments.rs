//! Experiment drivers: one function per table/figure of the paper, plus
//! the ablation studies. Each returns a serializable result struct with
//! a `Display` that prints the paper-vs-reproduction comparison.

use crate::calibration::{
    self, CpuCalibration, PAPER_FIG2_BREAKDOWN, PAPER_FIG5_AVG_SPEEDUP,
    PAPER_FIG5_GROWTH_1P4M_TO_4P2M, PAPER_TABLE1_PROPOSED, PAPER_TABLE1_VITIS,
};
use crate::designs::{build_design, proposed_design, vitis_baseline_design, DesignConfig};
use crate::optimizer::{optimize_design, region_resources, OptimizerConfig};
use crate::perf::{
    cpu_end_to_end_seconds, estimate_performance, fpga_end_to_end_seconds, PerfOptions,
};
use crate::workload::RklWorkload;
use fem_mesh::generator::{BoxMeshBuilder, FIG5_MESH_SIZES};
use fem_solver::driver::Simulation;
use fem_solver::tgv::TgvConfig;
use fpga_platform::power::FpgaPowerModel;
use fpga_platform::u200::U200;
use hls_kernel::resources::estimate_resources;
use hls_kernel::schedule::schedule_kernel;
use serde::Serialize;

/// Error type of the experiment layer.
pub type ExpError = Box<dyn std::error::Error>;

// ---------------------------------------------------------------- Fig 2

/// One measured mesh size of the Fig 2 reproduction.
#[derive(Debug, Clone, Serialize)]
pub struct Fig2Row {
    /// Mesh nodes.
    pub nodes: usize,
    /// Breakdown percentages (RK-Diffusion, RK-Convection, RK-Other,
    /// Non-RK).
    pub breakdown_percent: [f64; 4],
    /// Fraction of time inside the RK method.
    pub rk_fraction_percent: f64,
}

/// The Fig 2 reproduction: measured execution-time breakdown of the
/// reference solver.
#[derive(Debug, Clone, Serialize)]
pub struct Fig2Result {
    /// Per-size measurements.
    pub rows: Vec<Fig2Row>,
    /// Average across sizes.
    pub average_percent: [f64; 4],
    /// The paper's reported breakdown.
    pub paper_percent: [f64; 4],
}

/// Runs the instrumented solver on `mesh_edges`-element TGV boxes and
/// measures the Fig 2 phase breakdown.
///
/// # Errors
///
/// Propagates solver failures (unstable dt cannot occur: the driver picks
/// a CFL-safe step).
pub fn run_fig2(mesh_edges: &[usize], steps: usize) -> Result<Fig2Result, ExpError> {
    let mut rows = Vec::new();
    for &n in mesh_edges {
        let mesh = BoxMeshBuilder::tgv_box(n).build()?;
        let cfg = TgvConfig::standard();
        let initial = cfg.initial_state(&mesh);
        let nodes = mesh.num_nodes();
        let mut sim = Simulation::new(mesh, cfg.gas(), initial)?;
        sim.set_profiling(true);
        let dt = sim.suggest_dt(0.4);
        for _ in 0..steps {
            sim.step(dt)?;
            // The non-RK phase of the paper's code: per-step diagnostics
            // and solution post-processing on the host.
            sim.diagnostics();
        }
        rows.push(Fig2Row {
            nodes,
            breakdown_percent: sim.profiler().breakdown_percent(),
            rk_fraction_percent: 100.0 * sim.profiler().rk_fraction(),
        });
    }
    let mut average = [0.0; 4];
    for r in &rows {
        for (a, b) in average.iter_mut().zip(r.breakdown_percent) {
            *a += b / rows.len() as f64;
        }
    }
    Ok(Fig2Result {
        rows,
        average_percent: average,
        paper_percent: PAPER_FIG2_BREAKDOWN,
    })
}

impl std::fmt::Display for Fig2Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Fig 2 — execution time breakdown (percent)")?;
        writeln!(
            f,
            "{:>10} {:>14} {:>15} {:>10} {:>8} {:>8}",
            "nodes", "RK(Diffusion)", "RK(Convection)", "RK(Other)", "Non-RK", "RK frac"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>10} {:>14.2} {:>15.2} {:>10.2} {:>8.2} {:>8.2}",
                r.nodes,
                r.breakdown_percent[0],
                r.breakdown_percent[1],
                r.breakdown_percent[2],
                r.breakdown_percent[3],
                r.rk_fraction_percent
            )?;
        }
        writeln!(
            f,
            "{:>10} {:>14.2} {:>15.2} {:>10.2} {:>8.2}",
            "average",
            self.average_percent[0],
            self.average_percent[1],
            self.average_percent[2],
            self.average_percent[3]
        )?;
        write!(
            f,
            "{:>10} {:>14.2} {:>15.2} {:>10.2} {:>8.2}   (paper)",
            "paper",
            self.paper_percent[0],
            self.paper_percent[1],
            self.paper_percent[2],
            self.paper_percent[3]
        )
    }
}

// ---------------------------------------------------------------- Fig 5

/// One mesh size of the Fig 5 reproduction.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5Row {
    /// Size label from the paper's x-axis.
    pub label: String,
    /// Actual node count used.
    pub nodes: usize,
    /// Proposed design: RK-method seconds.
    pub proposed_seconds: f64,
    /// Vitis baseline: RK-method seconds.
    pub vitis_seconds: f64,
    /// Speedup (vitis / proposed).
    pub speedup: f64,
    /// Proposed clock (MHz).
    pub proposed_fmax: f64,
    /// Baseline clock (MHz).
    pub vitis_fmax: f64,
}

/// The Fig 5 reproduction.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5Result {
    /// Per-size rows.
    pub rows: Vec<Fig5Row>,
    /// Geometric-mean speedup across sizes.
    pub avg_speedup: f64,
    /// Growth of proposed time from the 1.4M mesh to the 4.2M mesh.
    pub growth_1p4_to_4p2_proposed: f64,
    /// Growth of baseline time from the 1.4M mesh to the 4.2M mesh.
    pub growth_1p4_to_4p2_vitis: f64,
    /// Paper's reported average speedup (7.9×).
    pub paper_avg_speedup: f64,
    /// Paper's reported growth (3.4×).
    pub paper_growth: f64,
}

/// Regenerates Fig 5: RK-method execution time vs mesh size for the
/// proposed and Vitis-optimized designs.
///
/// # Errors
///
/// Propagates scheduling/estimation failures.
pub fn run_fig5() -> Result<Fig5Result, ExpError> {
    let opts = PerfOptions {
        host_in_the_loop: false,
        ..Default::default()
    };
    let mut rows = Vec::new();
    for (label, target) in FIG5_MESH_SIZES {
        let b = BoxMeshBuilder::with_node_budget(target);
        let nodes = b.node_count();
        let w = RklWorkload::with_nodes(nodes, 1);
        let mut proposed = proposed_design(&w);
        optimize_design(&mut proposed, &OptimizerConfig::for_u200_slr())?;
        let baseline = vitis_baseline_design(&w);
        let rp = estimate_performance(&proposed, &opts)?;
        let rb = estimate_performance(&baseline, &opts)?;
        rows.push(Fig5Row {
            label: label.to_string(),
            nodes,
            proposed_seconds: rp.rk_method_seconds,
            vitis_seconds: rb.rk_method_seconds,
            speedup: rb.rk_method_seconds / rp.rk_method_seconds,
            proposed_fmax: rp.fmax_mhz,
            vitis_fmax: rb.fmax_mhz,
        });
    }
    let avg_speedup = (rows.iter().map(|r| r.speedup.ln()).sum::<f64>() / rows.len() as f64).exp();
    let by_label = |l: &str| rows.iter().find(|r| r.label == l).expect("size present");
    let growth_p = by_label("4.2M").proposed_seconds / by_label("1.4M").proposed_seconds;
    let growth_v = by_label("4.2M").vitis_seconds / by_label("1.4M").vitis_seconds;
    Ok(Fig5Result {
        rows,
        avg_speedup,
        growth_1p4_to_4p2_proposed: growth_p,
        growth_1p4_to_4p2_vitis: growth_v,
        paper_avg_speedup: PAPER_FIG5_AVG_SPEEDUP,
        paper_growth: PAPER_FIG5_GROWTH_1P4M_TO_4P2M,
    })
}

impl std::fmt::Display for Fig5Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig 5 — RK method execution time vs mesh nodes ({} RK4 steps)",
            calibration::DEFAULT_RK_STEPS
        )?;
        writeln!(
            f,
            "{:>7} {:>10} {:>14} {:>14} {:>9} {:>9} {:>9}",
            "size", "nodes", "proposed [s]", "vitis [s]", "speedup", "f_prop", "f_vitis"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>7} {:>10} {:>14.3} {:>14.3} {:>9.2} {:>7.0}MHz {:>7.0}MHz",
                r.label,
                r.nodes,
                r.proposed_seconds,
                r.vitis_seconds,
                r.speedup,
                r.proposed_fmax,
                r.vitis_fmax
            )?;
        }
        writeln!(
            f,
            "average speedup: {:.2}×   (paper: {:.1}×)",
            self.avg_speedup, self.paper_avg_speedup
        )?;
        write!(
            f,
            "1.4M → 4.2M growth: proposed {:.2}×, vitis {:.2}×   (paper: {:.1}×)",
            self.growth_1p4_to_4p2_proposed, self.growth_1p4_to_4p2_vitis, self.paper_growth
        )
    }
}

// -------------------------------------------------------------- Table I

/// One design row of Table I.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Design name.
    pub design: String,
    /// Achieved clock (MHz).
    pub fmax_mhz: f64,
    /// FF / LUT / BRAM / URAM / DSP percent (Table I column order).
    pub utilization_percent: [f64; 5],
}

/// The Table I reproduction.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Result {
    /// Vitis baseline row.
    pub vitis: Table1Row,
    /// Proposed design row.
    pub proposed: Table1Row,
    /// Paper's baseline row.
    pub paper_vitis: [f64; 5],
    /// Paper's proposed row.
    pub paper_proposed: [f64; 5],
}

fn design_utilization(
    design: &crate::designs::AcceleratorDesign,
) -> Result<([f64; 5], f64), ExpError> {
    let device = U200::new();
    let rkl = region_resources(design)?;
    let rku_s = schedule_kernel(&design.rku)?;
    let rku = estimate_resources(&design.rku, &rku_s);
    let total = rkl + rku;
    let u = device.utilization_percent(&total);
    let placements = fpga_platform::fmax::place_two(rkl, rku, design.config.slr_split);
    let fmax =
        fpga_platform::fmax::achievable_fmax_mhz(&device, &placements, design.config.slr_split);
    Ok(([u.ff, u.lut, u.bram, u.uram, u.dsp], fmax))
}

/// Regenerates Table I: post-P&R-style utilization of both designs.
///
/// # Errors
///
/// Propagates scheduling failures.
pub fn run_table1() -> Result<Table1Result, ExpError> {
    let w = RklWorkload::with_nodes(4_200_000, 1);
    let mut proposed = proposed_design(&w);
    optimize_design(&mut proposed, &OptimizerConfig::for_u200_slr())?;
    let baseline = vitis_baseline_design(&w);
    let (pu, pf) = design_utilization(&proposed)?;
    let (bu, bf) = design_utilization(&baseline)?;
    Ok(Table1Result {
        vitis: Table1Row {
            design: format!("Vitis Opt.@{bf:.0}MHz"),
            fmax_mhz: bf,
            utilization_percent: bu,
        },
        proposed: Table1Row {
            design: format!("Proposed@{pf:.0}MHz"),
            fmax_mhz: pf,
            utilization_percent: pu,
        },
        paper_vitis: PAPER_TABLE1_VITIS,
        paper_proposed: PAPER_TABLE1_PROPOSED,
    })
}

impl std::fmt::Display for Table1Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Table I — post-P&R resource utilization percentages")?;
        writeln!(
            f,
            "{:<24} {:>7} {:>7} {:>7} {:>7} {:>7}",
            "design", "FF%", "LUT%", "BRAM%", "URAM%", "DSP%"
        )?;
        for (row, paper) in [
            (&self.vitis, &self.paper_vitis),
            (&self.proposed, &self.paper_proposed),
        ] {
            let u = row.utilization_percent;
            writeln!(
                f,
                "{:<24} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>7.2}",
                row.design, u[0], u[1], u[2], u[3], u[4]
            )?;
            writeln!(
                f,
                "{:<24} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>7.2}",
                "  (paper)", paper[0], paper[1], paper[2], paper[3], paper[4]
            )?;
        }
        Ok(())
    }
}

// ------------------------------------------------------------- Table II

/// The §IV-B CPU-vs-FPGA comparison.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Result {
    /// Mesh nodes (the paper uses 4.2M).
    pub nodes: usize,
    /// CPU end-to-end seconds.
    pub cpu_seconds: f64,
    /// Accelerated-system end-to-end seconds.
    pub fpga_seconds: f64,
    /// Latency reduction `1 − fpga/cpu` (paper: 45%).
    pub latency_reduction: f64,
    /// CPU package power (W).
    pub cpu_power_w: f64,
    /// FPGA core power (W).
    pub fpga_core_w: f64,
    /// FPGA peripheral power (W).
    pub fpga_peripherals_w: f64,
    /// FPGA rest-of-card power (W).
    pub fpga_rest_w: f64,
    /// Power ratio CPU / (core + rest) — brackets the paper's 3.64×.
    pub power_ratio_core_rest: f64,
    /// Power ratio CPU / total card power.
    pub power_ratio_total: f64,
    /// Energy-to-solution ratio CPU / FPGA (whole-card power).
    pub energy_ratio: f64,
    /// Energy-delay-product ratio CPU / FPGA.
    pub edp_ratio: f64,
    /// Paper's reported latency reduction.
    pub paper_latency_reduction: f64,
    /// Paper's reported power ratio.
    pub paper_power_ratio: f64,
}

/// Regenerates the §IV-B comparison at `nodes` mesh nodes with the given
/// CPU calibration (pass `None` for the roofline default).
///
/// # Errors
///
/// Propagates scheduling/estimation failures.
pub fn run_table2(nodes: usize, cal: Option<CpuCalibration>) -> Result<Table2Result, ExpError> {
    let w = RklWorkload::with_nodes(nodes, 1);
    let cal = cal.unwrap_or_else(|| CpuCalibration::roofline_default(&w));
    let mut proposed = proposed_design(&w);
    optimize_design(&mut proposed, &OptimizerConfig::for_u200_slr())?;
    let opts = PerfOptions::default();
    let report = estimate_performance(&proposed, &opts)?;
    let cpu_s = cpu_end_to_end_seconds(&w, &cal, opts.rk_steps);
    let fpga_s = fpga_end_to_end_seconds(&report, &w, &cal, opts.rk_steps);
    let power_model = FpgaPowerModel::default();
    let power = power_model.breakdown(&report.resources, report.fmax_mhz, 4);
    let cpu = fpga_platform::cpu::CpuModel::xeon_silver_4210();
    let energy =
        fpga_platform::energy::EnergyComparison::new(cpu_s, cpu.package_power_w, fpga_s, &power);
    Ok(Table2Result {
        nodes,
        cpu_seconds: cpu_s,
        fpga_seconds: fpga_s,
        latency_reduction: 1.0 - fpga_s / cpu_s,
        cpu_power_w: cpu.package_power_w,
        fpga_core_w: power.core_w,
        fpga_peripherals_w: power.peripherals_w,
        fpga_rest_w: power.rest_w,
        power_ratio_core_rest: cpu.package_power_w / (power.core_w + power.rest_w),
        power_ratio_total: cpu.package_power_w / power.total_w(),
        energy_ratio: energy.energy_ratio(),
        edp_ratio: energy.edp_ratio(),
        paper_latency_reduction: calibration::PAPER_CPU_LATENCY_REDUCTION,
        paper_power_ratio: calibration::PAPER_POWER_RATIO,
    })
}

impl std::fmt::Display for Table2Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "§IV-B — end-to-end comparison vs Xeon Silver 4210 ({} nodes)",
            self.nodes
        )?;
        writeln!(f, "  CPU  end-to-end : {:>10.2} s", self.cpu_seconds)?;
        writeln!(f, "  FPGA end-to-end : {:>10.2} s", self.fpga_seconds)?;
        writeln!(
            f,
            "  latency reduction: {:>9.1}%   (paper: {:.0}%)",
            100.0 * self.latency_reduction,
            100.0 * self.paper_latency_reduction
        )?;
        writeln!(
            f,
            "  CPU power: {:.2} W | FPGA: core {:.1} + periph {:.1} + rest {:.1} W",
            self.cpu_power_w, self.fpga_core_w, self.fpga_peripherals_w, self.fpga_rest_w
        )?;
        writeln!(
            f,
            "  power ratio: {:.2}× (core+rest) / {:.2}× (total)   (paper: {:.2}×)",
            self.power_ratio_core_rest, self.power_ratio_total, self.paper_power_ratio
        )?;
        write!(
            f,
            "  energy-to-solution: {:.2}× less | EDP: {:.2}× better",
            self.energy_ratio, self.edp_ratio
        )
    }
}

// ------------------------------------------------------------ Ablations

/// One ablation configuration's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct AblationRow {
    /// Configuration name.
    pub name: String,
    /// RK-method seconds.
    pub rk_method_seconds: f64,
    /// Slowdown vs the full proposed design.
    pub slowdown_vs_proposed: f64,
    /// Achieved clock (MHz).
    pub fmax_mhz: f64,
    /// DSP usage (hardware-cost indicator).
    pub dsp: u64,
}

/// The ablation study over the paper's §III optimizations.
#[derive(Debug, Clone, Serialize)]
pub struct AblationResult {
    /// Mesh nodes used.
    pub nodes: usize,
    /// Rows (first = full proposed design).
    pub rows: Vec<AblationRow>,
}

/// Runs the ablations: each §III optimization disabled in isolation.
///
/// # Errors
///
/// Propagates scheduling/estimation failures.
pub fn run_ablations(nodes: usize) -> Result<AblationResult, ExpError> {
    /// A named tweak disabling one §III optimization.
    type Ablation = (&'static str, Box<dyn Fn(&mut DesignConfig)>);
    let w = RklWorkload::with_nodes(nodes, 1);
    let opts = PerfOptions {
        host_in_the_loop: false,
        ..Default::default()
    };
    let variants: Vec<Ablation> = vec![
        ("proposed (full)", Box::new(|_| {})),
        (
            "no task-level pipelining",
            Box::new(|c| c.task_level_pipelining = false),
        ),
        (
            "single AXI bundle",
            Box::new(|c| c.bundle_per_array = false),
        ),
        (
            "coupled RKU interfaces",
            Box::new(|c| c.decoupled_update_interfaces = false),
        ),
        ("RKL+RKU on one SLR", Box::new(|c| c.slr_split = false)),
        (
            "separate diff/conv modules",
            Box::new(|c| c.merged_diff_conv = false),
        ),
        (
            "unrestructured accumulation",
            Box::new(|c| c.restructured_accumulation = false),
        ),
        ("no URAM binding", Box::new(|c| c.use_uram = false)),
    ];
    let mut rows = Vec::new();
    let mut base_time = None;
    for (name, tweak) in variants {
        let mut cfg = DesignConfig::proposed();
        tweak(&mut cfg);
        let mut design = build_design(name, &w, cfg)?;
        optimize_design(&mut design, &OptimizerConfig::for_u200_slr())?;
        let r = estimate_performance(&design, &opts)?;
        let base = *base_time.get_or_insert(r.rk_method_seconds);
        rows.push(AblationRow {
            name: name.to_string(),
            rk_method_seconds: r.rk_method_seconds,
            slowdown_vs_proposed: r.rk_method_seconds / base,
            fmax_mhz: r.fmax_mhz,
            dsp: r.resources.dsp,
        });
    }
    Ok(AblationResult { nodes, rows })
}

impl std::fmt::Display for AblationResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Ablations — each §III optimization disabled in isolation ({} nodes)",
            self.nodes
        )?;
        writeln!(
            f,
            "{:<30} {:>12} {:>10} {:>9} {:>7}",
            "configuration", "RK time [s]", "slowdown", "fmax", "DSP"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<30} {:>12.3} {:>9.2}× {:>6.0}MHz {:>7}",
                r.name, r.rk_method_seconds, r.slowdown_vs_proposed, r.fmax_mhz, r.dsp
            )?;
        }
        Ok(())
    }
}

// --------------------------------------------------- scenario workloads

/// Elements per streaming batch of the footprint quote: sized so one
/// batch's node payloads fit comfortably in the U200's on-chip batch
/// buffers (≈ 0.5 MB of field data at the Fig 4 array set).
pub const STREAM_BATCH_ELEMENTS: usize = 512;

/// Accelerator-side quote for one registered solver scenario: the DDR
/// traffic and FLOPs one RKL stage moves for that workload's mesh, the
/// resulting arithmetic intensity, and the roofline bound the U200's
/// four DDR channels put on it. This is how batching/sharding studies
/// compare scenarios without running the solver.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioWorkload {
    /// Scenario identifier (from the solver registry).
    pub scenario: String,
    /// Mesh nodes.
    pub nodes: usize,
    /// Mesh elements.
    pub elements: usize,
    /// f64 FLOPs of one RKL stage.
    pub rkl_flops_per_stage: u64,
    /// DDR bytes of one RKL stage.
    pub rkl_bytes_per_stage: u64,
    /// FLOPs per DDR byte (roofline x-coordinate).
    pub arithmetic_intensity: f64,
    /// Streaming-compute ceiling (GFLOP/s) implied by the U200's four
    /// DDR channels at the effective FEM-gather efficiency.
    pub ddr_bound_gflops: f64,
    /// Host↔card bytes per time step when the host runs the non-RK phase.
    pub host_transfer_bytes_per_step: u64,
    /// Elements per streaming batch the footprint below was computed at.
    pub streaming_batch_elements: usize,
    /// DDR bytes read per RK stage by the batched Load-Element pipeline
    /// ([`fem_mesh::partition::streaming_footprint`]; shared nodes
    /// between batches are re-read, so this ≥ the unique-node payload).
    pub streaming_bytes_in_per_stage: u64,
    /// DDR bytes written back per RK stage by the batched pipeline.
    pub streaming_bytes_out_per_stage: u64,
    /// Peak unique-node footprint of any batch (on-chip buffer sizing).
    pub peak_batch_nodes: usize,
    /// Bytes of precomputed geometric factors the mesh carries
    /// (`J⁻ᵀ` + `det(J)·w` per element node) — pinned to
    /// [`fem_mesh::geometry::GeometryCache::memory_bytes`] by test so
    /// the two memory accountings cannot drift.
    pub geometry_cache_bytes: u64,
}

/// Quotes the accelerator workload of one scenario mesh (an element-free
/// mesh yields a zero-traffic quote).
pub fn scenario_workload(name: &str, mesh: &fem_mesh::HexMesh) -> ScenarioWorkload {
    let w = RklWorkload::from_mesh(mesh);
    let device = U200::new();
    // Aggregate off-chip bandwidth from the platform's banked memory
    // system (no hard-coded channel count — a device model with a
    // different bank layout reprices every roofline quote).
    let bw = device.memory_system().total_peak_bw() * fpga_platform::axi::DDR_EFFICIENCY;
    let batch = STREAM_BATCH_ELEMENTS.min(mesh.num_elements()).max(1);
    let footprint = fem_mesh::partition::streaming_footprint(mesh, batch)
        .expect("positive batch size cannot fail");
    let geometry_cache_bytes = (mesh.num_elements() * mesh.nodes_per_element()) as u64
        * fem_mesh::geometry::GeometryCache::BYTES_PER_ELEMENT_NODE as u64;
    ScenarioWorkload {
        scenario: name.to_string(),
        nodes: w.num_nodes,
        elements: w.num_elements,
        rkl_flops_per_stage: w.rkl_flops_per_stage(),
        rkl_bytes_per_stage: w.rkl_bytes_per_stage(),
        arithmetic_intensity: w.rkl_arithmetic_intensity(),
        ddr_bound_gflops: w.rkl_arithmetic_intensity() * bw / 1e9,
        host_transfer_bytes_per_step: w.host_transfer_bytes_per_step(),
        streaming_batch_elements: batch,
        streaming_bytes_in_per_stage: footprint.bytes_in as u64,
        streaming_bytes_out_per_stage: footprint.bytes_out as u64,
        peak_batch_nodes: footprint.peak_batch_nodes,
        geometry_cache_bytes,
    }
}

/// Quotes every scenario of the solver registry on `edge`-element meshes.
///
/// # Errors
///
/// Propagates mesh-generation failures.
pub fn run_scenario_workloads(edge: usize) -> Result<Vec<ScenarioWorkload>, ExpError> {
    let mut out = Vec::new();
    for scenario in fem_solver::scenarios::Scenario::registry() {
        let mesh = scenario.mesh(edge)?;
        out.push(scenario_workload(scenario.name(), &mesh));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_breakdown_sums_to_hundred_and_rk_dominates() {
        let r = run_fig2(&[8], 2).unwrap();
        let sum: f64 = r.average_percent.iter().sum();
        assert!((sum - 100.0).abs() < 1e-6);
        // Diffusion should be the largest RK phase, as in the paper.
        assert!(
            r.average_percent[0] > r.average_percent[1],
            "diffusion {}% vs convection {}%",
            r.average_percent[0],
            r.average_percent[1]
        );
        // The RK method dominates.
        assert!(r.rows[0].rk_fraction_percent > 50.0);
    }

    #[test]
    fn fig5_speedup_in_band_and_growth_matches() {
        let r = run_fig5().unwrap();
        assert_eq!(r.rows.len(), 6);
        assert!(
            (4.0..=14.0).contains(&r.avg_speedup),
            "avg speedup {:.2}",
            r.avg_speedup
        );
        // Paper: 3.4× from 1.4M → 4.2M (node ratio 3.0, mild superlinearity).
        assert!(
            (2.5..=4.0).contains(&r.growth_1p4_to_4p2_proposed),
            "growth {:.2}",
            r.growth_1p4_to_4p2_proposed
        );
        // Proposed always wins, at every size.
        for row in &r.rows {
            assert!(row.speedup > 1.0, "{}: {}", row.label, row.speedup);
            assert!(row.proposed_fmax > row.vitis_fmax);
        }
    }

    #[test]
    fn table1_shape_matches_paper() {
        let r = run_table1().unwrap();
        let p = r.proposed.utilization_percent;
        let v = r.vitis.utilization_percent;
        // Proposed uses more FF/LUT/URAM/DSP (the paper's 1.5–1.9× and
        // the 16.8× URAM jump); BRAM may trade against URAM in our
        // binding, so it only has to stay in the same league.
        for i in [0usize, 1, 3, 4] {
            assert!(
                p[i] >= v[i],
                "column {i}: proposed {:.2} < vitis {:.2}",
                p[i],
                v[i]
            );
        }
        assert!(
            p[2] >= 0.5 * v[2],
            "BRAM: proposed {:.2} ≪ vitis {:.2}",
            p[2],
            v[2]
        );
        // URAM blows up relatively (paper: 0.73% → 11.77%).
        assert!(p[3] > 5.0 * v[3].max(0.1), "URAM {} vs {}", p[3], v[3]);
        // Clocks: 150-ish vs 100-ish.
        assert!(r.proposed.fmax_mhz > r.vitis.fmax_mhz);
        // Nothing exceeds the device.
        for x in p.iter().chain(v.iter()) {
            assert!(*x < 100.0);
        }
    }

    #[test]
    fn table2_reduction_and_power_in_band() {
        let r = run_table2(4_200_000, None).unwrap();
        assert!(
            (0.30..=0.70).contains(&r.latency_reduction),
            "latency reduction {:.2} outside band (paper 0.45)",
            r.latency_reduction
        );
        // The paper's reported 3.64× sits between the whole-card ratio
        // and the core+rest ratio (its exact denominator is ambiguous);
        // our two interpretations must bracket it.
        assert!(
            r.power_ratio_core_rest > r.power_ratio_total,
            "core+rest ratio should exceed total ratio"
        );
        assert!(
            r.power_ratio_total <= r.paper_power_ratio + 0.5
                && r.paper_power_ratio <= r.power_ratio_core_rest + 0.5,
            "paper ratio {:.2} not bracketed by [{:.2}, {:.2}]",
            r.paper_power_ratio,
            r.power_ratio_total,
            r.power_ratio_core_rest
        );
    }

    #[test]
    fn scenario_workloads_cover_the_registry() {
        let quotes = run_scenario_workloads(6).unwrap();
        assert_eq!(quotes.len(), 4);
        // The walled cavity has (edge+1)³ nodes, the periodic boxes edge³
        // — the registry must not collapse to one mesh shape.
        let nodes: Vec<usize> = quotes.iter().map(|q| q.nodes).collect();
        assert!(nodes.contains(&216), "periodic 6³: {nodes:?}");
        assert!(nodes.contains(&343), "walled 7³: {nodes:?}");
        for q in &quotes {
            assert!(q.rkl_flops_per_stage > 0);
            assert!(q.rkl_bytes_per_stage > 0);
            assert!(q.arithmetic_intensity > 0.0);
            assert!(
                q.ddr_bound_gflops > q.arithmetic_intensity,
                "{}: DDR bound below 1 GB/s?",
                q.scenario
            );
            assert!(q.host_transfer_bytes_per_step > 0);
            // The batched streaming footprint rides along: re-reads can
            // only add to the unique-node payload, and the peak batch
            // fits in the whole mesh.
            assert!(q.streaming_batch_elements > 0);
            assert!(
                q.streaming_bytes_in_per_stage
                    >= (q.nodes * fem_mesh::HexMesh::bytes_per_node()) as u64,
                "{}: footprint under-counts",
                q.scenario
            );
            assert!(q.streaming_bytes_out_per_stage > 0);
            assert!(q.peak_batch_nodes > 0 && q.peak_batch_nodes <= q.nodes);
        }
    }

    #[test]
    fn workload_memory_accountings_cannot_drift() {
        // The quote's geometry-byte and streaming-footprint numbers must
        // match the real artifacts: the built GeometryCache and the
        // partition module's footprint, recomputed here independently.
        use fem_numerics::tensor::HexBasis;
        for scenario in fem_solver::scenarios::Scenario::registry() {
            let mesh = scenario.mesh(5).unwrap();
            let q = scenario_workload(scenario.name(), &mesh);
            let basis = HexBasis::new(mesh.order()).unwrap();
            let cache = fem_mesh::geometry::GeometryCache::build(&mesh, &basis).unwrap();
            assert_eq!(
                q.geometry_cache_bytes,
                cache.memory_bytes() as u64,
                "{}: geometry accounting drifted",
                scenario.name()
            );
            let fp = fem_mesh::partition::streaming_footprint(&mesh, q.streaming_batch_elements)
                .unwrap();
            assert_eq!(q.streaming_bytes_in_per_stage, fp.bytes_in as u64);
            assert_eq!(q.streaming_bytes_out_per_stage, fp.bytes_out as u64);
            assert_eq!(q.peak_batch_nodes, fp.peak_batch_nodes);
        }
    }

    #[test]
    fn ablations_show_every_optimization_matters() {
        let r = run_ablations(200_000).unwrap();
        assert_eq!(r.rows[0].slowdown_vs_proposed, 1.0);
        // Removing TLP or bundling must hurt.
        for name in ["no task-level pipelining", "single AXI bundle"] {
            let row = r.rows.iter().find(|x| x.name == name).unwrap();
            assert!(
                row.slowdown_vs_proposed > 1.2,
                "{name}: slowdown only {:.2}",
                row.slowdown_vs_proposed
            );
        }
        // Same-SLR packing costs clock speed.
        let slr = r
            .rows
            .iter()
            .find(|x| x.name == "RKL+RKU on one SLR")
            .unwrap();
        assert!(slr.fmax_mhz < r.rows[0].fmax_mhz);
        // Separate diff/conv costs DSPs.
        let sep = r
            .rows
            .iter()
            .find(|x| x.name == "separate diff/conv modules")
            .unwrap();
        assert!(sep.dsp > r.rows[0].dsp);
    }
}
