//! The §III-D iterative directive optimizer.
//!
//! > "the HLS optimization directives are applied each time to the task
//! > exposing the highest latency criticality. [...] This procedure is
//! > repeated until no further optimization could be achieved, either due
//! > to unresolved dependencies or resource over-utilization, which would
//! > result in lower clock frequencies."
//!
//! Concretely, each iteration:
//!
//! 1. schedules every task and picks the one with the largest latency;
//! 2. inspects what bounds its pipelined loop's initiation interval:
//!    * **memory ports** → double the array's partition factor,
//!    * **AXI contention** → move an array to its own bundle (§III-C),
//!    * **recurrence** → unresolvable, task done,
//!    * **target met** → request a lower II;
//! 3. accepts the change only if the region still fits the resource
//!    budget (the §III-D stop condition), otherwise reverts and marks
//!    the task finished.

use crate::designs::AcceleratorDesign;
use hls_kernel::directives::{set_partition, set_pipeline};
use hls_kernel::ir::{ArrayKind, Kernel, Partition};
use hls_kernel::resources::{estimate_resources, ResourceUsage};
use hls_kernel::schedule::{schedule_kernel, IiBound};
use hls_kernel::HlsError;
use std::collections::BTreeSet;

/// One accepted (or terminal) optimization step, for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptStep {
    /// Task the step applied to.
    pub task: String,
    /// Human-readable action.
    pub action: String,
    /// Critical loop II before.
    pub ii_before: u32,
    /// Critical loop II after (unchanged for terminal steps).
    pub ii_after: u32,
    /// Region resource usage after the step.
    pub resources_after: ResourceUsage,
}

/// Optimizer policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptimizerConfig {
    /// Resource budget for the whole RKL task region (one SLR's worth,
    /// derated for P&R headroom — exceeding it "would result in lower
    /// clock frequencies", §III-D).
    pub budget: ResourceUsage,
    /// Safety cap on optimizer iterations.
    pub max_steps: usize,
    /// Maximum partition factor the optimizer will request.
    pub max_partition: u32,
}

impl OptimizerConfig {
    /// The default RKL-region budget: 45% of one U200 SLR for routed
    /// logic (LUT/FF/DSP — the headroom that keeps the design routable
    /// at 150 MHz) and 70% for the hard RAM blocks (BRAM/URAM columns
    /// route locally and tolerate much higher fill).
    pub fn for_u200_slr() -> Self {
        let dev = fpga_platform::u200::U200::new();
        let slr = dev.slr_resources();
        OptimizerConfig {
            budget: ResourceUsage {
                lut: slr.lut * 45 / 100,
                ff: slr.ff * 45 / 100,
                dsp: slr.dsp * 45 / 100,
                bram18k: slr.bram18k * 70 / 100,
                uram: slr.uram * 70 / 100,
            },
            max_steps: 200,
            max_partition: 128,
        }
    }
}

/// Total resources of the RKL task region.
pub fn region_resources(design: &AcceleratorDesign) -> Result<ResourceUsage, HlsError> {
    let mut total = ResourceUsage::ZERO;
    for k in &design.rkl_tasks {
        let s = schedule_kernel(k)?;
        total += estimate_resources(k, &s);
    }
    Ok(total)
}

/// Critical-loop info of one kernel: (label, ii, bound, latency).
fn critical_pipelined_loop(k: &Kernel) -> Result<Option<(String, u32, IiBound, u64)>, HlsError> {
    let s = schedule_kernel(k)?;
    Ok(s.loops
        .iter()
        .filter(|l| l.ii.is_some())
        .max_by_key(|l| l.latency)
        .map(|l| {
            (
                l.label.clone(),
                l.ii.unwrap(),
                l.bound.clone().unwrap_or(IiBound::Target),
                l.latency,
            )
        }))
}

/// Runs the §III-D loop on `design`'s RKL tasks in place.
///
/// Returns the accepted steps (including terminal "stopped because ..."
/// entries) for reporting.
///
/// # Errors
///
/// Propagates scheduling errors (the design is restored on any accepted
/// path; a schedule failure indicates an invalid input design).
pub fn optimize_design(
    design: &mut AcceleratorDesign,
    cfg: &OptimizerConfig,
) -> Result<Vec<OptStep>, HlsError> {
    let mut steps = Vec::new();
    let mut done: BTreeSet<String> = BTreeSet::new();
    for _ in 0..cfg.max_steps {
        // 1. Most latency-critical unfinished task.
        let mut critical: Option<(usize, String, u32, IiBound, u64)> = None;
        for (idx, k) in design.rkl_tasks.iter().enumerate() {
            if done.contains(k.name()) {
                continue;
            }
            if let Some((label, ii, bound, latency)) = critical_pipelined_loop(k)? {
                if critical.as_ref().is_none_or(|c| latency > c.4) {
                    critical = Some((idx, label, ii, bound, latency));
                }
            } else {
                done.insert(k.name().to_string());
            }
        }
        let Some((idx, label, ii_before, bound, _)) = critical else {
            break;
        };
        let name = design.rkl_tasks[idx].name().to_string();

        // 2./3. Apply the bound-specific action, accept only if the
        // region still fits.
        let snapshot = design.rkl_tasks[idx].clone();
        let action: String;
        match &bound {
            IiBound::MemoryPorts(array) => {
                let k = &mut design.rkl_tasks[idx];
                let current = match &k.array(array).expect("scheduler names a real array").kind {
                    ArrayKind::OnChip { partition, .. } => *partition,
                    ArrayKind::Axi { .. } => unreachable!("AXI arrays bound via AxiContention"),
                };
                let next = match current {
                    Partition::None => Partition::Cyclic(2),
                    Partition::Cyclic(f) | Partition::Block(f) => {
                        if f * 2 > cfg.max_partition {
                            done.insert(name.clone());
                            steps.push(OptStep {
                                task: name,
                                action: format!("stop: partition cap on `{array}`"),
                                ii_before,
                                ii_after: ii_before,
                                resources_after: region_resources(design)?,
                            });
                            continue;
                        }
                        Partition::Cyclic(f * 2)
                    }
                    Partition::Complete => {
                        done.insert(name.clone());
                        continue;
                    }
                };
                set_partition(k, array, next)?;
                action = format!("array_partition `{array}` → {next:?}");
            }
            IiBound::AxiContention(bundle) => {
                if !design.config.bundle_per_array {
                    // The configuration forbids per-array interfaces (the
                    // ablation / Vitis-default situation): contention is
                    // irreducible.
                    done.insert(name.clone());
                    steps.push(OptStep {
                        task: name,
                        action: format!(
                            "stop: bundle `{bundle}` contended but per-array interfaces disabled"
                        ),
                        ii_before,
                        ii_after: ii_before,
                        resources_after: region_resources(design)?,
                    });
                    continue;
                }
                // Move one array off the contended bundle onto a fresh one.
                let k = &mut design.rkl_tasks[idx];
                let victim = k
                    .arrays()
                    .filter(|a| matches!(&a.kind, ArrayKind::Axi { bundle: b } if b == bundle))
                    .nth(1)
                    .map(|a| a.name.clone());
                match victim {
                    Some(victim) => {
                        let fresh = format!("gmem_split_{}", steps.len());
                        hls_kernel::directives::assign_bundle(k, &victim, &fresh)?;
                        action = format!("interface `{victim}` → bundle `{fresh}`");
                    }
                    None => {
                        // A single array saturates its own bundle: beats
                        // are irreducible.
                        done.insert(name.clone());
                        steps.push(OptStep {
                            task: name,
                            action: format!("stop: bundle `{bundle}` carries one array"),
                            ii_before,
                            ii_after: ii_before,
                            resources_after: region_resources(design)?,
                        });
                        continue;
                    }
                }
            }
            IiBound::Recurrence(through) => {
                done.insert(name.clone());
                steps.push(OptStep {
                    task: name,
                    action: format!("stop: unresolved dependence ({through})"),
                    ii_before,
                    ii_after: ii_before,
                    resources_after: region_resources(design)?,
                });
                continue;
            }
            IiBound::Target => {
                if ii_before <= 1 {
                    done.insert(name.clone());
                    steps.push(OptStep {
                        task: name,
                        action: "stop: II = 1 reached".into(),
                        ii_before,
                        ii_after: ii_before,
                        resources_after: region_resources(design)?,
                    });
                    continue;
                }
                set_pipeline(&mut design.rkl_tasks[idx], &label, ii_before - 1)?;
                action = format!("pipeline target {} → {}", ii_before, ii_before - 1);
            }
        }

        // Resource gate.
        let after = region_resources(design)?;
        let (_, ii_after, _, _) =
            critical_pipelined_loop(&design.rkl_tasks[idx])?.expect("loop still present");
        let improved_or_neutral = ii_after <= ii_before;
        if after.fits_in(&cfg.budget) && improved_or_neutral {
            steps.push(OptStep {
                task: name,
                action,
                ii_before,
                ii_after,
                resources_after: after,
            });
            continue;
        }
        // A partition step may unlock a large II drop whose replicated
        // operators blow the budget; keep the partition but clamp the
        // pipeline target one notch below the previous II so hardware
        // grows gradually (the paper applies directives incrementally).
        if matches!(&bound, IiBound::MemoryPorts(_)) && ii_before > 1 {
            set_pipeline(&mut design.rkl_tasks[idx], &label, ii_before - 1)?;
            let after2 = region_resources(design)?;
            let (_, ii_after2, _, _) =
                critical_pipelined_loop(&design.rkl_tasks[idx])?.expect("loop still present");
            if after2.fits_in(&cfg.budget) && ii_after2 <= ii_before {
                steps.push(OptStep {
                    task: name,
                    action: format!("{action} + pipeline target {}", ii_before - 1),
                    ii_before,
                    ii_after: ii_after2,
                    resources_after: after2,
                });
                continue;
            }
        }
        design.rkl_tasks[idx] = snapshot;
        done.insert(name.clone());
        steps.push(OptStep {
            task: name,
            action: format!("stop: `{action}` would exceed the resource budget"),
            ii_before,
            ii_after: ii_before,
            resources_after: region_resources(design)?,
        });
    }
    Ok(steps)
}

// -------------------------------------------------- bank assignment

/// Swap-refinement bank-assignment optimizer.
///
/// Seeds with the better of round-robin and capacity-aware greedy on the
/// modeled makespan
/// ([`fpga_platform::memory::modeled_makespan_cycles`]), then — in the
/// spirit of the KL-style positive-gain refinement the partitioner uses —
/// repeatedly applies the best single-stream move or pair swap that
/// strictly lowers the modeled makespan without breaking a bank's
/// capacity, until no improving move remains. Because the seed includes
/// round-robin and only strictly-improving moves are accepted, the
/// result is **never worse than round-robin on the modeled makespan**
/// (property-tested); the emulated-makespan win on real plans is gated
/// in CI by the `repro banking` study.
pub fn optimize_bank_assignment(
    streams: &[fpga_platform::MemoryStream],
    system: &fpga_platform::MemorySystem,
    group_floor_cycles: &[u64],
) -> fpga_platform::BankAssignment {
    use fpga_platform::memory::modeled_makespan_cycles;
    use fpga_platform::BankAssignment;

    let rr = BankAssignment::round_robin(streams, system);
    let greedy = BankAssignment::greedy(streams, system);
    let cost = |a: &BankAssignment| modeled_makespan_cycles(streams, a, group_floor_cycles);
    let mut best = if cost(&greedy) <= cost(&rr) {
        greedy
    } else {
        rr
    };
    let banks = best.banks;
    if banks <= 1 || streams.is_empty() {
        return best;
    }

    let beats: Vec<u64> = streams.iter().map(|s| s.total_beats()).collect();
    let mut bank_beats = best.bank_beats(streams);
    let mut bank_bytes = vec![0u64; banks];
    for (s, &b) in streams.iter().zip(&best.bank_of) {
        bank_bytes[b] += s.resident_bytes;
    }
    let cap = |b: usize| system.bank(b).capacity_bytes;
    // Floors the bank balancing can never undercut.
    let floor = group_floor_cycles
        .iter()
        .copied()
        .max()
        .unwrap_or(0)
        .max(beats.iter().copied().max().unwrap_or(0));

    // Lexicographic objective: (max bank load, banks tied at that max).
    // A move is accepted when it strictly lowers this key — either the
    // makespan itself drops, or one of several tied critical banks
    // drains. The key strictly decreases on every accepted move, so the
    // refinement terminates.
    let key_of = |loads: &[u64]| {
        let max = *loads.iter().max().expect("banks >= 1");
        let ties = loads.iter().filter(|&&l| l == max).count();
        (max, ties)
    };
    // Key of `loads` with banks a/b overridden (candidate evaluation
    // without mutating).
    let key_with = |loads: &[u64], a: (usize, u64), b: (usize, u64)| {
        let mut max = 0u64;
        let mut ties = 0usize;
        for (bk, &l0) in loads.iter().enumerate() {
            let l = if bk == a.0 {
                a.1
            } else if bk == b.0 {
                b.1
            } else {
                l0
            };
            match l.cmp(&max) {
                std::cmp::Ordering::Greater => {
                    max = l;
                    ties = 1;
                }
                std::cmp::Ordering::Equal => ties += 1,
                std::cmp::Ordering::Less => {}
            }
        }
        (max, ties)
    };

    loop {
        let cur_key = key_of(&bank_beats);
        if cur_key.0 <= floor {
            break; // already at the bank-independent bound
        }
        // Best single-stream move off a critical bank.
        let mut move_best: Option<((u64, usize), usize, usize)> = None;
        for (i, s) in streams.iter().enumerate() {
            let src = best.bank_of[i];
            if bank_beats[src] < cur_key.0 {
                continue; // only moves off a critical bank can help
            }
            for dst in 0..banks {
                if dst == src || bank_bytes[dst] + s.resident_bytes > cap(dst) {
                    continue;
                }
                let key = key_with(
                    &bank_beats,
                    (src, bank_beats[src] - beats[i]),
                    (dst, bank_beats[dst] + beats[i]),
                );
                if key < cur_key && move_best.as_ref().is_none_or(|m| key < m.0) {
                    move_best = Some((key, i, dst));
                }
            }
        }
        if let Some((_, i, dst)) = move_best {
            let src = best.bank_of[i];
            bank_beats[src] -= beats[i];
            bank_beats[dst] += beats[i];
            bank_bytes[src] -= streams[i].resident_bytes;
            bank_bytes[dst] += streams[i].resident_bytes;
            best.bank_of[i] = dst;
            continue;
        }
        // No single move helps: best capacity-feasible pair swap across
        // a critical bank.
        let mut swap_best: Option<((u64, usize), usize, usize)> = None;
        for i in 0..streams.len() {
            for j in (i + 1)..streams.len() {
                let (bi, bj) = (best.bank_of[i], best.bank_of[j]);
                if bi == bj || (bank_beats[bi] < cur_key.0 && bank_beats[bj] < cur_key.0) {
                    continue;
                }
                let (ri, rj) = (streams[i].resident_bytes, streams[j].resident_bytes);
                if bank_bytes[bi] - ri + rj > cap(bi) || bank_bytes[bj] - rj + ri > cap(bj) {
                    continue;
                }
                let key = key_with(
                    &bank_beats,
                    (bi, bank_beats[bi] - beats[i] + beats[j]),
                    (bj, bank_beats[bj] - beats[j] + beats[i]),
                );
                if key < cur_key && swap_best.as_ref().is_none_or(|s| key < s.0) {
                    swap_best = Some((key, i, j));
                }
            }
        }
        let Some((_, i, j)) = swap_best else { break };
        let (bi, bj) = (best.bank_of[i], best.bank_of[j]);
        bank_beats[bi] = bank_beats[bi] - beats[i] + beats[j];
        bank_beats[bj] = bank_beats[bj] - beats[j] + beats[i];
        bank_bytes[bi] = bank_bytes[bi] - streams[i].resident_bytes + streams[j].resident_bytes;
        bank_bytes[bj] = bank_bytes[bj] - streams[j].resident_bytes + streams[i].resident_bytes;
        best.bank_of.swap(i, j);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::{proposed_design, vitis_baseline_design};
    use crate::workload::RklWorkload;

    fn optimized() -> (AcceleratorDesign, Vec<OptStep>) {
        let w = RklWorkload::with_nodes(100_000, 1);
        let mut d = proposed_design(&w);
        let steps = optimize_design(&mut d, &OptimizerConfig::for_u200_slr()).unwrap();
        (d, steps)
    }

    #[test]
    fn optimizer_reduces_compute_ii() {
        let w = RklWorkload::with_nodes(100_000, 1);
        let d0 = proposed_design(&w);
        let ii0 = critical_pipelined_loop(&d0.rkl_tasks[1])
            .unwrap()
            .unwrap()
            .1;
        let (d, steps) = optimized();
        let ii1 = critical_pipelined_loop(&d.rkl_tasks[1]).unwrap().unwrap().1;
        assert!(ii1 < ii0, "optimizer must reduce compute II: {ii0} → {ii1}");
        assert!(!steps.is_empty());
    }

    #[test]
    fn optimized_region_fits_budget() {
        let (d, _) = optimized();
        let cfg = OptimizerConfig::for_u200_slr();
        let r = region_resources(&d).unwrap();
        assert!(
            r.fits_in(&cfg.budget),
            "optimized region {r} exceeds budget {}",
            cfg.budget
        );
    }

    #[test]
    fn optimizer_reports_stop_reasons() {
        let (_, steps) = optimized();
        assert!(
            steps.iter().any(|s| s.action.starts_with("stop:")),
            "each task should end with a terminal step"
        );
        // Partitioning actions appear (the §III-D array_partition lever).
        assert!(
            steps.iter().any(|s| s.action.contains("array_partition")),
            "expected partitioning steps, got: {:?}",
            steps.iter().map(|s| &s.action).collect::<Vec<_>>()
        );
    }

    #[test]
    fn smaller_budget_stops_earlier() {
        let w = RklWorkload::with_nodes(100_000, 1);
        let gen_ii = |frac: u64| {
            let mut d = proposed_design(&w);
            let mut cfg = OptimizerConfig::for_u200_slr();
            cfg.budget = ResourceUsage {
                lut: cfg.budget.lut * frac / 100,
                ff: cfg.budget.ff * frac / 100,
                dsp: cfg.budget.dsp * frac / 100,
                bram18k: cfg.budget.bram18k * frac / 100,
                uram: cfg.budget.uram * frac / 100,
            };
            optimize_design(&mut d, &cfg).unwrap();
            critical_pipelined_loop(&d.rkl_tasks[1]).unwrap().unwrap().1
        };
        let tight = gen_ii(40);
        let loose = gen_ii(100);
        assert!(
            loose <= tight,
            "looser budget must allow equal or lower II ({loose} vs {tight})"
        );
    }

    mod banks {
        use super::super::optimize_bank_assignment;
        use fpga_platform::memory::modeled_makespan_cycles;
        use fpga_platform::{BankAssignment, MemoryStream, MemorySystem};
        use proptest::prelude::*;

        fn streams(seed: u64, n: usize) -> Vec<MemoryStream> {
            (0..n)
                .map(|i| MemoryStream {
                    label: format!("s{i}"),
                    group: i % 8,
                    beats_per_token: 1 + (seed * 7 + i as u64 * 13) % 10,
                    tokens: 10 + (i as u64 % 40),
                    resident_bytes: 64,
                })
                .collect()
        }

        #[test]
        fn optimizer_spreads_heavy_streams_apart() {
            // Round-robin on 4 banks puts both heavy streams (indices 0
            // and 4) on bank 0; the optimizer must separate them.
            let sys = MemorySystem::u200_ddr();
            let mut st = streams(0, 8);
            for s in st.iter_mut() {
                s.beats_per_token = 1;
            }
            st[0].beats_per_token = 10;
            st[4].beats_per_token = 10;
            let rr = BankAssignment::round_robin(&st, &sys);
            let opt = optimize_bank_assignment(&st, &sys, &[0]);
            assert_ne!(opt.bank_of[0], opt.bank_of[4]);
            assert!(
                modeled_makespan_cycles(&st, &opt, &[0]) < modeled_makespan_cycles(&st, &rr, &[0])
            );
        }

        #[test]
        fn optimizer_respects_tight_capacity() {
            // Two resident-heavy streams only fit one per bank.
            let sys = MemorySystem::u280_hbm2();
            let cap = sys.bank(0).capacity_bytes;
            let mut st = streams(3, 6);
            st[0].resident_bytes = cap - 1;
            st[1].resident_bytes = cap - 1;
            let opt = optimize_bank_assignment(&st, &sys, &[0]);
            assert!(opt.capacity_respected(&st, &sys));
            assert_ne!(opt.bank_of[0], opt.bank_of[1]);
        }

        proptest! {
            /// The optimizer is never worse than round-robin on the
            /// modeled makespan (seeded best-of, improving moves only).
            #[test]
            fn prop_never_worse_than_round_robin(
                seed in 0u64..500,
                n in 1usize..60,
                hbm in proptest::bool::ANY,
                floor in 0u64..200,
            ) {
                let sys = if hbm { MemorySystem::u280_hbm2() } else { MemorySystem::u200_ddr() };
                let st = streams(seed, n);
                let floors = vec![floor];
                let rr = BankAssignment::round_robin(&st, &sys);
                let opt = optimize_bank_assignment(&st, &sys, &floors);
                prop_assert_eq!(opt.bank_of.len(), st.len());
                prop_assert!(opt.bank_of.iter().all(|&b| b < sys.num_banks()));
                prop_assert!(
                    modeled_makespan_cycles(&st, &opt, &floors)
                        <= modeled_makespan_cycles(&st, &rr, &floors)
                );
            }
        }
    }

    #[test]
    fn baseline_is_not_touched_by_convention() {
        // The baseline design keeps the Vitis-default directives; running
        // the optimizer on it is possible but the Fig 5 comparison never
        // does. This test just documents that both paths schedule.
        let w = RklWorkload::with_nodes(50_000, 1);
        let d = vitis_baseline_design(&w);
        assert!(region_resources(&d).is_ok());
    }
}
