//! The §III-D iterative directive optimizer.
//!
//! > "the HLS optimization directives are applied each time to the task
//! > exposing the highest latency criticality. [...] This procedure is
//! > repeated until no further optimization could be achieved, either due
//! > to unresolved dependencies or resource over-utilization, which would
//! > result in lower clock frequencies."
//!
//! Concretely, each iteration:
//!
//! 1. schedules every task and picks the one with the largest latency;
//! 2. inspects what bounds its pipelined loop's initiation interval:
//!    * **memory ports** → double the array's partition factor,
//!    * **AXI contention** → move an array to its own bundle (§III-C),
//!    * **recurrence** → unresolvable, task done,
//!    * **target met** → request a lower II;
//! 3. accepts the change only if the region still fits the resource
//!    budget (the §III-D stop condition), otherwise reverts and marks
//!    the task finished.

use crate::designs::AcceleratorDesign;
use hls_kernel::directives::{set_partition, set_pipeline};
use hls_kernel::ir::{ArrayKind, Kernel, Partition};
use hls_kernel::resources::{estimate_resources, ResourceUsage};
use hls_kernel::schedule::{schedule_kernel, IiBound};
use hls_kernel::HlsError;
use std::collections::BTreeSet;

/// One accepted (or terminal) optimization step, for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptStep {
    /// Task the step applied to.
    pub task: String,
    /// Human-readable action.
    pub action: String,
    /// Critical loop II before.
    pub ii_before: u32,
    /// Critical loop II after (unchanged for terminal steps).
    pub ii_after: u32,
    /// Region resource usage after the step.
    pub resources_after: ResourceUsage,
}

/// Optimizer policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptimizerConfig {
    /// Resource budget for the whole RKL task region (one SLR's worth,
    /// derated for P&R headroom — exceeding it "would result in lower
    /// clock frequencies", §III-D).
    pub budget: ResourceUsage,
    /// Safety cap on optimizer iterations.
    pub max_steps: usize,
    /// Maximum partition factor the optimizer will request.
    pub max_partition: u32,
}

impl OptimizerConfig {
    /// The default RKL-region budget: 45% of one U200 SLR for routed
    /// logic (LUT/FF/DSP — the headroom that keeps the design routable
    /// at 150 MHz) and 70% for the hard RAM blocks (BRAM/URAM columns
    /// route locally and tolerate much higher fill).
    pub fn for_u200_slr() -> Self {
        let dev = fpga_platform::u200::U200::new();
        let slr = dev.slr_resources();
        OptimizerConfig {
            budget: ResourceUsage {
                lut: slr.lut * 45 / 100,
                ff: slr.ff * 45 / 100,
                dsp: slr.dsp * 45 / 100,
                bram18k: slr.bram18k * 70 / 100,
                uram: slr.uram * 70 / 100,
            },
            max_steps: 200,
            max_partition: 128,
        }
    }
}

/// Total resources of the RKL task region.
pub fn region_resources(design: &AcceleratorDesign) -> Result<ResourceUsage, HlsError> {
    let mut total = ResourceUsage::ZERO;
    for k in &design.rkl_tasks {
        let s = schedule_kernel(k)?;
        total += estimate_resources(k, &s);
    }
    Ok(total)
}

/// Critical-loop info of one kernel: (label, ii, bound, latency).
fn critical_pipelined_loop(k: &Kernel) -> Result<Option<(String, u32, IiBound, u64)>, HlsError> {
    let s = schedule_kernel(k)?;
    Ok(s.loops
        .iter()
        .filter(|l| l.ii.is_some())
        .max_by_key(|l| l.latency)
        .map(|l| {
            (
                l.label.clone(),
                l.ii.unwrap(),
                l.bound.clone().unwrap_or(IiBound::Target),
                l.latency,
            )
        }))
}

/// Runs the §III-D loop on `design`'s RKL tasks in place.
///
/// Returns the accepted steps (including terminal "stopped because ..."
/// entries) for reporting.
///
/// # Errors
///
/// Propagates scheduling errors (the design is restored on any accepted
/// path; a schedule failure indicates an invalid input design).
pub fn optimize_design(
    design: &mut AcceleratorDesign,
    cfg: &OptimizerConfig,
) -> Result<Vec<OptStep>, HlsError> {
    let mut steps = Vec::new();
    let mut done: BTreeSet<String> = BTreeSet::new();
    for _ in 0..cfg.max_steps {
        // 1. Most latency-critical unfinished task.
        let mut critical: Option<(usize, String, u32, IiBound, u64)> = None;
        for (idx, k) in design.rkl_tasks.iter().enumerate() {
            if done.contains(k.name()) {
                continue;
            }
            if let Some((label, ii, bound, latency)) = critical_pipelined_loop(k)? {
                if critical.as_ref().is_none_or(|c| latency > c.4) {
                    critical = Some((idx, label, ii, bound, latency));
                }
            } else {
                done.insert(k.name().to_string());
            }
        }
        let Some((idx, label, ii_before, bound, _)) = critical else {
            break;
        };
        let name = design.rkl_tasks[idx].name().to_string();

        // 2./3. Apply the bound-specific action, accept only if the
        // region still fits.
        let snapshot = design.rkl_tasks[idx].clone();
        let action: String;
        match &bound {
            IiBound::MemoryPorts(array) => {
                let k = &mut design.rkl_tasks[idx];
                let current = match &k.array(array).expect("scheduler names a real array").kind {
                    ArrayKind::OnChip { partition, .. } => *partition,
                    ArrayKind::Axi { .. } => unreachable!("AXI arrays bound via AxiContention"),
                };
                let next = match current {
                    Partition::None => Partition::Cyclic(2),
                    Partition::Cyclic(f) | Partition::Block(f) => {
                        if f * 2 > cfg.max_partition {
                            done.insert(name.clone());
                            steps.push(OptStep {
                                task: name,
                                action: format!("stop: partition cap on `{array}`"),
                                ii_before,
                                ii_after: ii_before,
                                resources_after: region_resources(design)?,
                            });
                            continue;
                        }
                        Partition::Cyclic(f * 2)
                    }
                    Partition::Complete => {
                        done.insert(name.clone());
                        continue;
                    }
                };
                set_partition(k, array, next)?;
                action = format!("array_partition `{array}` → {next:?}");
            }
            IiBound::AxiContention(bundle) => {
                if !design.config.bundle_per_array {
                    // The configuration forbids per-array interfaces (the
                    // ablation / Vitis-default situation): contention is
                    // irreducible.
                    done.insert(name.clone());
                    steps.push(OptStep {
                        task: name,
                        action: format!(
                            "stop: bundle `{bundle}` contended but per-array interfaces disabled"
                        ),
                        ii_before,
                        ii_after: ii_before,
                        resources_after: region_resources(design)?,
                    });
                    continue;
                }
                // Move one array off the contended bundle onto a fresh one.
                let k = &mut design.rkl_tasks[idx];
                let victim = k
                    .arrays()
                    .filter(|a| matches!(&a.kind, ArrayKind::Axi { bundle: b } if b == bundle))
                    .nth(1)
                    .map(|a| a.name.clone());
                match victim {
                    Some(victim) => {
                        let fresh = format!("gmem_split_{}", steps.len());
                        hls_kernel::directives::assign_bundle(k, &victim, &fresh)?;
                        action = format!("interface `{victim}` → bundle `{fresh}`");
                    }
                    None => {
                        // A single array saturates its own bundle: beats
                        // are irreducible.
                        done.insert(name.clone());
                        steps.push(OptStep {
                            task: name,
                            action: format!("stop: bundle `{bundle}` carries one array"),
                            ii_before,
                            ii_after: ii_before,
                            resources_after: region_resources(design)?,
                        });
                        continue;
                    }
                }
            }
            IiBound::Recurrence(through) => {
                done.insert(name.clone());
                steps.push(OptStep {
                    task: name,
                    action: format!("stop: unresolved dependence ({through})"),
                    ii_before,
                    ii_after: ii_before,
                    resources_after: region_resources(design)?,
                });
                continue;
            }
            IiBound::Target => {
                if ii_before <= 1 {
                    done.insert(name.clone());
                    steps.push(OptStep {
                        task: name,
                        action: "stop: II = 1 reached".into(),
                        ii_before,
                        ii_after: ii_before,
                        resources_after: region_resources(design)?,
                    });
                    continue;
                }
                set_pipeline(&mut design.rkl_tasks[idx], &label, ii_before - 1)?;
                action = format!("pipeline target {} → {}", ii_before, ii_before - 1);
            }
        }

        // Resource gate.
        let after = region_resources(design)?;
        let (_, ii_after, _, _) =
            critical_pipelined_loop(&design.rkl_tasks[idx])?.expect("loop still present");
        let improved_or_neutral = ii_after <= ii_before;
        if after.fits_in(&cfg.budget) && improved_or_neutral {
            steps.push(OptStep {
                task: name,
                action,
                ii_before,
                ii_after,
                resources_after: after,
            });
            continue;
        }
        // A partition step may unlock a large II drop whose replicated
        // operators blow the budget; keep the partition but clamp the
        // pipeline target one notch below the previous II so hardware
        // grows gradually (the paper applies directives incrementally).
        if matches!(&bound, IiBound::MemoryPorts(_)) && ii_before > 1 {
            set_pipeline(&mut design.rkl_tasks[idx], &label, ii_before - 1)?;
            let after2 = region_resources(design)?;
            let (_, ii_after2, _, _) =
                critical_pipelined_loop(&design.rkl_tasks[idx])?.expect("loop still present");
            if after2.fits_in(&cfg.budget) && ii_after2 <= ii_before {
                steps.push(OptStep {
                    task: name,
                    action: format!("{action} + pipeline target {}", ii_before - 1),
                    ii_before,
                    ii_after: ii_after2,
                    resources_after: after2,
                });
                continue;
            }
        }
        design.rkl_tasks[idx] = snapshot;
        done.insert(name.clone());
        steps.push(OptStep {
            task: name,
            action: format!("stop: `{action}` would exceed the resource budget"),
            ii_before,
            ii_after: ii_before,
            resources_after: region_resources(design)?,
        });
    }
    Ok(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::{proposed_design, vitis_baseline_design};
    use crate::workload::RklWorkload;

    fn optimized() -> (AcceleratorDesign, Vec<OptStep>) {
        let w = RklWorkload::with_nodes(100_000, 1);
        let mut d = proposed_design(&w);
        let steps = optimize_design(&mut d, &OptimizerConfig::for_u200_slr()).unwrap();
        (d, steps)
    }

    #[test]
    fn optimizer_reduces_compute_ii() {
        let w = RklWorkload::with_nodes(100_000, 1);
        let d0 = proposed_design(&w);
        let ii0 = critical_pipelined_loop(&d0.rkl_tasks[1])
            .unwrap()
            .unwrap()
            .1;
        let (d, steps) = optimized();
        let ii1 = critical_pipelined_loop(&d.rkl_tasks[1]).unwrap().unwrap().1;
        assert!(ii1 < ii0, "optimizer must reduce compute II: {ii0} → {ii1}");
        assert!(!steps.is_empty());
    }

    #[test]
    fn optimized_region_fits_budget() {
        let (d, _) = optimized();
        let cfg = OptimizerConfig::for_u200_slr();
        let r = region_resources(&d).unwrap();
        assert!(
            r.fits_in(&cfg.budget),
            "optimized region {r} exceeds budget {}",
            cfg.budget
        );
    }

    #[test]
    fn optimizer_reports_stop_reasons() {
        let (_, steps) = optimized();
        assert!(
            steps.iter().any(|s| s.action.starts_with("stop:")),
            "each task should end with a terminal step"
        );
        // Partitioning actions appear (the §III-D array_partition lever).
        assert!(
            steps.iter().any(|s| s.action.contains("array_partition")),
            "expected partitioning steps, got: {:?}",
            steps.iter().map(|s| &s.action).collect::<Vec<_>>()
        );
    }

    #[test]
    fn smaller_budget_stops_earlier() {
        let w = RklWorkload::with_nodes(100_000, 1);
        let gen_ii = |frac: u64| {
            let mut d = proposed_design(&w);
            let mut cfg = OptimizerConfig::for_u200_slr();
            cfg.budget = ResourceUsage {
                lut: cfg.budget.lut * frac / 100,
                ff: cfg.budget.ff * frac / 100,
                dsp: cfg.budget.dsp * frac / 100,
                bram18k: cfg.budget.bram18k * frac / 100,
                uram: cfg.budget.uram * frac / 100,
            };
            optimize_design(&mut d, &cfg).unwrap();
            critical_pipelined_loop(&d.rkl_tasks[1]).unwrap().unwrap().1
        };
        let tight = gen_ii(40);
        let loose = gen_ii(100);
        assert!(
            loose <= tight,
            "looser budget must allow equal or lower II ({loose} vs {tight})"
        );
    }

    #[test]
    fn baseline_is_not_touched_by_convention() {
        // The baseline design keeps the Vitis-default directives; running
        // the optimizer on it is possible but the Fig 5 comparison never
        // does. This test just documents that both paths schedule.
        let w = RklWorkload::with_nodes(50_000, 1);
        let d = vitis_baseline_design(&w);
        assert!(region_resources(&d).is_ok());
    }
}
