//! Future-work scaling study: multiple RKL compute units across SLRs.
//!
//! The paper closes with "paving the way for tackling even more
//! challenging CFD simulations"; the natural next step on a U200 is to
//! replicate the RKL pipeline per SLR and split the element stream. This
//! module models that design point: per-unit workload sharding, SLR
//! placements (one RKL per SLR, RKU co-located with the last), the
//! congestion/SLL clock implications, and the DDR ceiling shared by all
//! units.

use crate::designs::{proposed_design, AcceleratorDesign};
use crate::optimizer::{optimize_design, region_resources, OptimizerConfig};
use crate::perf::{estimate_performance, PerfOptions};
use crate::workload::RklWorkload;
use fpga_platform::fmax::achievable_fmax_mhz;
use fpga_platform::u200::{Placement, SlrId, U200};
use hls_kernel::resources::estimate_resources;
use hls_kernel::schedule::schedule_kernel;
use serde::Serialize;

/// One design point of the scaling study.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingPoint {
    /// RKL compute units instantiated (1..=3, one per SLR).
    pub compute_units: usize,
    /// Achieved kernel clock (MHz).
    pub fmax_mhz: f64,
    /// RK-method seconds for the full run.
    pub rk_method_seconds: f64,
    /// Speedup vs the single-unit proposed design.
    pub speedup_vs_single: f64,
    /// Total DSP cost.
    pub dsp: u64,
    /// Whether the DDR bandwidth ceiling (not compute) set the rate.
    pub ddr_bound: bool,
}

/// The full study result.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingStudy {
    /// Mesh nodes.
    pub nodes: usize,
    /// Design points for 1..=max_units compute units.
    pub points: Vec<ScalingPoint>,
}

/// Builds one optimized RKL unit for a shard of the workload.
fn optimized_shard(nodes: usize, units: usize) -> AcceleratorDesign {
    let w = RklWorkload::with_nodes(nodes / units, 1);
    let mut d = proposed_design(&w);
    optimize_design(&mut d, &OptimizerConfig::for_u200_slr()).expect("valid design");
    d
}

/// Runs the scaling study at `nodes` mesh nodes for 1..=`max_units`
/// compute units (capped at the 3 SLRs of the U200).
///
/// # Errors
///
/// Propagates estimation failures.
pub fn run_scaling_study(
    nodes: usize,
    max_units: usize,
) -> Result<ScalingStudy, Box<dyn std::error::Error>> {
    let device = U200::new();
    let opts = PerfOptions {
        host_in_the_loop: false,
        des_element_threshold: 0,
        ..Default::default()
    };
    let mut points = Vec::new();
    let mut single_time = None;
    for units in 1..=max_units.min(3) {
        let shard = optimized_shard(nodes, units);
        let shard_perf = estimate_performance(&shard, &opts)?;

        // Placement: prefer the shell-free SLRs (0 and 2) for RKL units,
        // give RKU a free SLR while one exists, and only co-locate it
        // when all three SLRs carry compute units.
        let rkl_res = region_resources(&shard)?;
        let rku_sched = schedule_kernel(&shard.rku)?;
        let rku_res = estimate_resources(&shard.rku, &rku_sched);
        let rkl_slrs: &[SlrId] = match units {
            1 => &[SlrId::Slr0],
            2 => &[SlrId::Slr0, SlrId::Slr2],
            _ => &[SlrId::Slr0, SlrId::Slr2, SlrId::Slr1],
        };
        let rku_slr = match units {
            1 => SlrId::Slr2,
            2 => SlrId::Slr1,
            _ => SlrId::Slr2, // co-located: no SLR left
        };
        let mut placements: Vec<Placement> = rkl_slrs
            .iter()
            .enumerate()
            .map(|(i, &slr)| Placement {
                kernel: format!("RKL{i}"),
                slr,
                usage: rkl_res,
            })
            .collect();
        placements.push(Placement {
            kernel: "RKU".into(),
            slr: rku_slr,
            usage: rku_res,
        });
        let fmax = achievable_fmax_mhz(&device, &placements, true);

        // Per-stage kernel time: the shard's cycle count at the new clock.
        let shard_cycles = shard_perf.rkl_cycles_per_stage + shard_perf.rku_cycles_per_stage;
        let kernel_seconds = shard_cycles as f64 / (fmax * 1.0e6);
        // DDR ceiling: all units share the memory system's banks.
        let w_total = RklWorkload::with_nodes(nodes, 1);
        let total_bytes = w_total.rkl_bytes_per_stage() + w_total.rku_bytes_per_stage();
        let ddr_seconds = total_bytes as f64
            / (device.memory_system().total_peak_bw() * fpga_platform::axi::DDR_EFFICIENCY);
        let stage_seconds = kernel_seconds.max(ddr_seconds);
        let rk_method_seconds = stage_seconds
            * crate::calibration::RK_STAGES as f64
            * crate::calibration::DEFAULT_RK_STEPS as f64;
        let single = *single_time.get_or_insert(rk_method_seconds);
        points.push(ScalingPoint {
            compute_units: units,
            fmax_mhz: fmax,
            rk_method_seconds,
            speedup_vs_single: single / rk_method_seconds,
            dsp: (rkl_res.dsp * units as u64) + rku_res.dsp,
            ddr_bound: ddr_seconds > kernel_seconds,
        });
    }
    Ok(ScalingStudy { nodes, points })
}

impl std::fmt::Display for ScalingStudy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Future-work scaling: RKL compute units across SLRs ({} nodes)",
            self.nodes
        )?;
        writeln!(
            f,
            "{:>6} {:>8} {:>14} {:>10} {:>8} {:>10}",
            "units", "fmax", "RK time [s]", "speedup", "DSP", "DDR-bound"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:>6} {:>6.0}MHz {:>14.3} {:>9.2}× {:>8} {:>10}",
                p.compute_units,
                p.fmax_mhz,
                p.rk_method_seconds,
                p.speedup_vs_single,
                p.dsp,
                if p.ddr_bound { "yes" } else { "no" }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_units_scale_well_and_cost_hardware() {
        let study = run_scaling_study(2_000_000, 3).unwrap();
        assert_eq!(study.points.len(), 3);
        let s2 = study.points[1].speedup_vs_single;
        assert!((1.7..=2.1).contains(&s2), "2-unit speedup {s2:.2}");
        // Hardware cost grows with units.
        assert!(study.points[2].dsp > study.points[0].dsp);
        // Single-unit point is consistent with the Fig 5 clock.
        assert_eq!(study.points[0].fmax_mhz, 150.0);
    }

    #[test]
    fn third_unit_pays_a_clock_penalty() {
        // With all three SLRs occupied, RKU co-location and the shell SLR
        // cost clock speed — the study's design finding: the third unit
        // buys less than the second.
        let study = run_scaling_study(4_200_000, 3).unwrap();
        let s2 = study.points[1].speedup_vs_single;
        let s3 = study.points[2].speedup_vs_single;
        assert!(study.points[2].fmax_mhz < study.points[0].fmax_mhz);
        assert!(
            s3 - s2 < s2 - 1.0,
            "third unit should add less than the second ({s2:.2} → {s3:.2})"
        );
        assert!(s3 >= 1.0, "3 units must not lose to 1 ({s3:.2})");
    }

    #[test]
    fn display_lists_every_point() {
        let study = run_scaling_study(500_000, 2).unwrap();
        let s = format!("{study}");
        assert!(s.contains("units"));
        assert!(s.lines().count() >= 4);
    }
}
