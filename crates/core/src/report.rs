//! The full design report: everything a reviewer needs about one
//! accelerator configuration on one page — schedules, resources,
//! placement, clock, power, DDR demand, and the generated HLS C++.

use crate::designs::AcceleratorDesign;
use crate::perf::{estimate_performance, PerfOptions, PerformanceReport};
use fpga_platform::power::{FpgaPowerBreakdown, FpgaPowerModel};
use fpga_platform::u200::U200;
use hls_kernel::report::{comparison_table, KernelReport};
use std::fmt::Write as _;

/// A complete design review document.
#[derive(Debug, Clone)]
pub struct DesignReport {
    /// Design name.
    pub name: String,
    /// Per-task synthesis-style reports (RKL tasks then RKU).
    pub kernels: Vec<KernelReport>,
    /// Performance estimate.
    pub performance: PerformanceReport,
    /// Power breakdown at the achieved clock.
    pub power: FpgaPowerBreakdown,
    /// Utilization percentages (FF/LUT/BRAM/URAM/DSP).
    pub utilization: [f64; 5],
}

impl DesignReport {
    /// Assembles the report for `design`.
    ///
    /// # Errors
    ///
    /// Propagates scheduling/estimation failures.
    pub fn generate(
        design: &AcceleratorDesign,
        opts: &PerfOptions,
    ) -> Result<DesignReport, Box<dyn std::error::Error>> {
        let mut kernels = Vec::new();
        for k in &design.rkl_tasks {
            kernels.push(KernelReport::generate(k)?);
        }
        kernels.push(KernelReport::generate(&design.rku)?);
        let performance = estimate_performance(design, opts)?;
        let power =
            FpgaPowerModel::default().breakdown(&performance.resources, performance.fmax_mhz, 4);
        let device = U200::new();
        let u = device.utilization_percent(&performance.resources);
        Ok(DesignReport {
            name: design.name.clone(),
            kernels,
            performance,
            power,
            utilization: [u.ff, u.lut, u.bram, u.uram, u.dsp],
        })
    }

    /// Renders the full text document, optionally appending the
    /// generated HLS C++ of every task.
    pub fn render(&self, design: &AcceleratorDesign, with_code: bool) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "==================================================");
        let _ = writeln!(out, " design report: {}", self.name);
        let _ = writeln!(out, "==================================================");
        let _ = writeln!(out, "\n-- kernels --");
        out.push_str(&comparison_table(&self.kernels));
        let _ = writeln!(out, "\n-- per-loop schedules --");
        for k in &self.kernels {
            let _ = writeln!(out, "{k}");
        }
        let _ = writeln!(out, "\n-- performance --");
        let p = &self.performance;
        let _ = writeln!(
            out,
            "clock: {:.0} MHz | bottleneck: {}",
            p.fmax_mhz, p.bottleneck
        );
        for t in &p.tasks {
            let _ = writeln!(
                out,
                "  {:<16} {:>5} cycles/element ({} after interconnect contention)",
                t.name, t.cycles_per_element, t.effective_cycles_per_element
            );
        }
        let _ = writeln!(
            out,
            "stage {:.4e} s | step {:.4e} s | RK method {:.3} s",
            p.stage_seconds, p.step_seconds, p.rk_method_seconds
        );
        let _ = writeln!(out, "\n-- utilization (FF/LUT/BRAM/URAM/DSP %) --");
        let _ = writeln!(
            out,
            "{:.2} / {:.2} / {:.2} / {:.2} / {:.2}",
            self.utilization[0],
            self.utilization[1],
            self.utilization[2],
            self.utilization[3],
            self.utilization[4]
        );
        let _ = writeln!(out, "\n-- power --\n{}", self.power);
        if with_code {
            let _ = writeln!(out, "\n-- generated HLS C++ --");
            for k in &design.rkl_tasks {
                out.push_str(&hls_kernel::codegen::emit_cpp(k));
                out.push('\n');
            }
            out.push_str(&hls_kernel::codegen::emit_cpp(&design.rku));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::{proposed_design, vitis_baseline_design};
    use crate::optimizer::{optimize_design, OptimizerConfig};
    use crate::workload::RklWorkload;

    fn opts() -> PerfOptions {
        PerfOptions {
            host_in_the_loop: false,
            des_element_threshold: 0,
            ..Default::default()
        }
    }

    #[test]
    fn report_has_all_sections() {
        let w = RklWorkload::with_nodes(100_000, 1);
        let mut d = proposed_design(&w);
        optimize_design(&mut d, &OptimizerConfig::for_u200_slr()).unwrap();
        let r = DesignReport::generate(&d, &opts()).unwrap();
        let text = r.render(&d, true);
        for needle in [
            "design report: proposed",
            "-- kernels --",
            "-- per-loop schedules --",
            "-- performance --",
            "-- utilization",
            "-- power --",
            "-- generated HLS C++ --",
            "void load_element(",
            "void diff_conv(",
            "void store_element(",
            "void rku(",
            "pragma HLS pipeline",
        ] {
            assert!(text.contains(needle), "missing `{needle}`");
        }
        // 3 RKL tasks + RKU.
        assert_eq!(r.kernels.len(), 4);
    }

    #[test]
    fn baseline_report_shows_single_bundle() {
        let w = RklWorkload::with_nodes(50_000, 1);
        let d = vitis_baseline_design(&w);
        let r = DesignReport::generate(&d, &opts()).unwrap();
        let text = r.render(&d, true);
        assert!(text.contains("bundle=gmem port="));
        assert!(!text.contains("bundle=gmem_0"));
    }
}
