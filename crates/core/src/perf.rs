//! End-to-end performance estimation.
//!
//! Chains every model: HLS schedules give each task's per-element cycle
//! cost; cross-task AXI bundle sharing inflates the memory-bound tasks;
//! the dataflow model (DES for small meshes, the validated analytic
//! steady-state formula for paper-scale meshes) turns task IIs into an
//! RKL stage makespan; the placement + congestion model picks the clock;
//! DDR bandwidth bounds the streaming rate; PCIe and the host's non-RK
//! share complete the end-to-end time.

use crate::calibration::{CpuCalibration, NON_RK_FRACTION, RK_STAGES};
use crate::designs::AcceleratorDesign;
use crate::optimizer::region_resources;
use fpga_platform::axi::{transfer_seconds, ChannelMap};
use fpga_platform::fmax::{achievable_fmax_mhz, place_two};
use fpga_platform::u200::U200;
use hls_dataflow::analytic::analytic_makespan;
use hls_dataflow::network::{ChannelKind, NetworkBuilder};
use hls_dataflow::sim::simulate;
use hls_kernel::ir::ArrayKind;
use hls_kernel::resources::{estimate_resources, ResourceUsage};
use hls_kernel::schedule::schedule_kernel;
use hls_kernel::HlsError;
use std::collections::BTreeMap;

/// Estimation options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfOptions {
    /// RK4 steps of the simulated run.
    pub rk_steps: usize,
    /// Use the discrete-event simulator when the element count is at or
    /// below this (above it, the property-tested analytic model).
    pub des_element_threshold: usize,
    /// Include per-step host↔card transfers (the host executes the
    /// non-RK phase between steps).
    pub host_in_the_loop: bool,
}

impl Default for PerfOptions {
    fn default() -> Self {
        PerfOptions {
            rk_steps: crate::calibration::DEFAULT_RK_STEPS,
            des_element_threshold: 50_000,
            host_in_the_loop: true,
        }
    }
}

/// Per-task performance facts.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskPerf {
    /// Task name.
    pub name: String,
    /// Cycles per element from the kernel schedule alone.
    pub cycles_per_element: u64,
    /// Cycles per element after cross-task AXI bundle contention.
    pub effective_cycles_per_element: u64,
    /// Pipeline fill latency (cycles).
    pub fill_latency: u64,
}

/// The complete performance estimate of a design.
#[derive(Debug, Clone, PartialEq)]
pub struct PerformanceReport {
    /// Design name.
    pub design: String,
    /// Achievable kernel clock (MHz).
    pub fmax_mhz: f64,
    /// Per-task breakdown.
    pub tasks: Vec<TaskPerf>,
    /// Name of the bottleneck RKL task.
    pub bottleneck: String,
    /// RKL cycles per stage (dataflow makespan, or sequential sum).
    pub rkl_cycles_per_stage: u64,
    /// RKU cycles per stage.
    pub rku_cycles_per_stage: u64,
    /// Seconds per RK stage (kernel time vs DDR streaming, whichever
    /// binds).
    pub stage_seconds: f64,
    /// Seconds per RK4 step (4 stages + host transfers if enabled).
    pub step_seconds: f64,
    /// Seconds for the whole run (`rk_steps` steps + initial PCIe load).
    pub total_seconds: f64,
    /// RK-method-only seconds for the whole run (the Fig 5 metric).
    pub rk_method_seconds: f64,
    /// Combined resource usage (RKL region + RKU).
    pub resources: ResourceUsage,
    /// Whether the timing came from the DES (true) or the analytic model.
    pub used_des: bool,
}

/// Per-element cycle cost of one task kernel.
fn per_element_cycles(design: &AcceleratorDesign, task_idx: usize) -> Result<(u64, u64), HlsError> {
    let k = &design.rkl_tasks[task_idx];
    let s = schedule_kernel(k)?;
    let elements = design.workload.num_elements as u64;
    let total = s.total_latency_cycles;
    let per_elem = total.div_ceil(elements.max(1));
    // Fill latency: depth of the deepest pipelined loop.
    let fill = s
        .loops
        .iter()
        .filter(|l| l.ii.is_some())
        .map(|l| l.depth as u64)
        .max()
        .unwrap_or(1);
    Ok((per_elem.max(1), fill))
}

/// Total AXI beats per bundle over one whole stage of one kernel,
/// walking the loop nest with ancestor trip multiplicity.
fn axi_beats_total(k: &hls_kernel::ir::Kernel) -> BTreeMap<String, u64> {
    fn walk(
        k: &hls_kernel::ir::Kernel,
        lp: &hls_kernel::ir::Loop,
        mult: u64,
        out: &mut BTreeMap<String, u64>,
    ) {
        let m = mult * lp.trip_count;
        for a in &lp.accesses {
            if let Some(decl) = k.array(&a.array) {
                if let ArrayKind::Axi { bundle } = &decl.kind {
                    *out.entry(bundle.clone()).or_insert(0) += a.count * m;
                }
            }
        }
        for inner in &lp.inner {
            walk(k, inner, m, out);
        }
    }
    let mut out = BTreeMap::new();
    for lp in k.body() {
        walk(k, lp, 1, &mut out);
    }
    out
}

/// Per-element AXI beats of each bundle across all RKL tasks.
fn bundle_beats_per_element(design: &AcceleratorDesign) -> Result<BTreeMap<String, u64>, HlsError> {
    let mut beats: BTreeMap<String, u64> = BTreeMap::new();
    let elements = design.workload.num_elements as u64;
    for k in &design.rkl_tasks {
        for (bundle, total) in axi_beats_total(k) {
            *beats.entry(bundle).or_insert(0) += total.div_ceil(elements.max(1));
        }
    }
    Ok(beats)
}

/// DDR bytes per RKL stage, grouped by bundle.
fn bundle_bytes_per_stage(design: &AcceleratorDesign) -> Vec<u64> {
    let w = &design.workload;
    let mut by_bundle: BTreeMap<String, u64> = BTreeMap::new();
    for k in &design.rkl_tasks {
        for a in k.arrays() {
            if let ArrayKind::Axi { bundle } = &a.kind {
                // Each streamed array moves one f64 per element node.
                let bytes = (w.num_elements * w.nodes_per_element * 8) as u64;
                *by_bundle.entry(bundle.clone()).or_insert(0) += bytes;
            }
        }
    }
    by_bundle.into_values().collect()
}

/// Estimates the performance of `design`.
///
/// # Errors
///
/// Propagates HLS scheduling errors and dataflow design-rule violations
/// (neither occurs for designs produced by [`crate::designs`]).
pub fn estimate_performance(
    design: &AcceleratorDesign,
    opts: &PerfOptions,
) -> Result<PerformanceReport, Box<dyn std::error::Error>> {
    let device = U200::new();
    let w = &design.workload;
    let elements = w.num_elements as u64;

    // ---- Per-task cycle costs with cross-task bundle contention. ----
    let beats = bundle_beats_per_element(design)?;
    let mut tasks = Vec::new();
    for (idx, k) in design.rkl_tasks.iter().enumerate() {
        let (own, fill) = per_element_cycles(design, idx)?;
        // A task is at least as slow as the total per-element demand on
        // every bundle it touches (the interconnect time-multiplexes
        // concurrent tasks).
        let mut eff = own;
        for a in k.arrays() {
            if let ArrayKind::Axi { bundle } = &a.kind {
                if let Some(&b) = beats.get(bundle) {
                    eff = eff.max(b);
                }
            }
        }
        tasks.push(TaskPerf {
            name: k.name().to_string(),
            cycles_per_element: own,
            effective_cycles_per_element: eff,
            fill_latency: fill,
        });
    }

    // ---- RKL stage makespan (cycles). ----
    let (rkl_cycles, used_des) = if design.config.task_level_pipelining {
        // Dataflow pipeline of the tasks in order.
        let mut b = NetworkBuilder::new();
        let n = tasks.len();
        let mut chans = Vec::new();
        for i in 0..n - 1 {
            // Element tokens stream through FIFOs deep enough to cover
            // the deepest task pipeline's in-flight tokens (the batch
            // ping-pong buffers of §III-B hold many elements; at element
            // granularity they behave as a stream with slack).
            chans.push(b.channel(format!("stream_{i}"), 8, ChannelKind::Fifo));
        }
        for (i, t) in tasks.iter().enumerate() {
            let inputs = if i == 0 { vec![] } else { vec![chans[i - 1]] };
            let outputs = if i + 1 == n { vec![] } else { vec![chans[i]] };
            b.task(
                &t.name,
                t.effective_cycles_per_element,
                t.effective_cycles_per_element + t.fill_latency,
                inputs,
                outputs,
            );
        }
        let net = b.build(elements)?;
        if w.num_elements <= opts.des_element_threshold {
            (simulate(&net)?.makespan, true)
        } else {
            (analytic_makespan(&net), false)
        }
    } else {
        // No TLP: each element traverses every task sequentially.
        let per_elem: u64 = tasks.iter().map(|t| t.effective_cycles_per_element).sum();
        (per_elem * elements, false)
    };
    let bottleneck = tasks
        .iter()
        .max_by_key(|t| t.effective_cycles_per_element)
        .map(|t| t.name.clone())
        .unwrap_or_default();

    // ---- RKU cycles. ----
    let rku_schedule = schedule_kernel(&design.rku)?;
    let rku_cycles = rku_schedule.total_latency_cycles;

    // ---- Resources, placement, clock. ----
    let rkl_res = region_resources(design)?;
    let rku_res = estimate_resources(&design.rku, &rku_schedule);
    let placements = place_two(rkl_res, rku_res, design.config.slr_split);
    let fmax = achievable_fmax_mhz(&device, &placements, design.config.slr_split);
    let cycle = 1.0 / (fmax * 1.0e6);

    // ---- Seconds per stage: kernel cycles vs DDR streaming. ----
    let bundle_bytes = bundle_bytes_per_stage(design);
    let map = if design.config.bundle_per_array {
        ChannelMap::round_robin(bundle_bytes.len(), &device)
    } else {
        ChannelMap::single_channel(bundle_bytes.len())
    };
    let ddr_seconds = transfer_seconds(&bundle_bytes, &map, &device, fmax);
    let rkl_seconds = (rkl_cycles as f64 * cycle).max(ddr_seconds);
    let rku_bytes = design.workload.rku_bytes_per_stage();
    let rku_ddr = rku_bytes as f64 / (device.ddr_peak_bw() * fpga_platform::axi::DDR_EFFICIENCY);
    let rku_seconds = (rku_cycles as f64 * cycle).max(rku_ddr);
    let stage_seconds = rkl_seconds + rku_seconds;

    // ---- Per-step and total. ----
    let mut step_seconds = stage_seconds * RK_STAGES as f64;
    if opts.host_in_the_loop {
        step_seconds += fpga_platform::pcie::transfer_seconds(w.host_transfer_bytes_per_step());
    }
    let init = fpga_platform::pcie::transfer_seconds(11 * w.num_nodes as u64 * 8);
    let rk_method_seconds = stage_seconds * RK_STAGES as f64 * opts.rk_steps as f64;
    let total_seconds = step_seconds * opts.rk_steps as f64 + init;

    Ok(PerformanceReport {
        design: design.name.clone(),
        fmax_mhz: fmax,
        tasks,
        bottleneck,
        rkl_cycles_per_stage: rkl_cycles,
        rku_cycles_per_stage: rku_cycles,
        stage_seconds,
        step_seconds,
        total_seconds,
        rk_method_seconds,
        resources: rkl_res + rku_res,
        used_des,
    })
}

/// CPU time of the full RK method for the same run (Fig 5's software
/// reference and Table II's baseline).
pub fn cpu_rk_method_seconds(
    workload: &crate::workload::RklWorkload,
    cal: &CpuCalibration,
    rk_steps: usize,
) -> f64 {
    let stage = cal.stage_seconds(workload.num_elements);
    // RKU on CPU: roofline on its sweep.
    let cpu = fpga_platform::cpu::CpuModel::xeon_silver_4210();
    let rku = cpu.time_seconds(
        workload.rku_flops_per_stage(),
        workload.rku_bytes_per_stage(),
    );
    (stage + rku) * (RK_STAGES * rk_steps) as f64
}

/// End-to-end CPU time: RK method plus the non-RK share (Fig 2: the RK
/// method is 76.5% of the total ⇒ total = RK / 0.765).
pub fn cpu_end_to_end_seconds(
    workload: &crate::workload::RklWorkload,
    cal: &CpuCalibration,
    rk_steps: usize,
) -> f64 {
    cpu_rk_method_seconds(workload, cal, rk_steps) / (1.0 - NON_RK_FRACTION)
}

/// End-to-end accelerated-system time: FPGA runs the RK method, the host
/// keeps the non-RK phase (unchanged from the CPU run) plus transfers.
pub fn fpga_end_to_end_seconds(
    report: &PerformanceReport,
    workload: &crate::workload::RklWorkload,
    cal: &CpuCalibration,
    rk_steps: usize,
) -> f64 {
    let cpu_total = cpu_end_to_end_seconds(workload, cal, rk_steps);
    let non_rk = cpu_total * NON_RK_FRACTION;
    report.total_seconds + non_rk
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::{proposed_design, vitis_baseline_design};
    use crate::optimizer::{optimize_design, OptimizerConfig};
    use crate::workload::RklWorkload;

    fn optimized_proposed(nodes: usize) -> AcceleratorDesign {
        let w = RklWorkload::with_nodes(nodes, 1);
        let mut d = proposed_design(&w);
        optimize_design(&mut d, &OptimizerConfig::for_u200_slr()).unwrap();
        d
    }

    #[test]
    fn proposed_clocks_faster_than_baseline() {
        let d = optimized_proposed(100_000);
        let b = vitis_baseline_design(&RklWorkload::with_nodes(100_000, 1));
        let rp = estimate_performance(&d, &PerfOptions::default()).unwrap();
        let rb = estimate_performance(&b, &PerfOptions::default()).unwrap();
        assert!(
            rp.fmax_mhz > rb.fmax_mhz,
            "proposed {} MHz vs baseline {} MHz",
            rp.fmax_mhz,
            rb.fmax_mhz
        );
    }

    #[test]
    fn fig5_speedup_band() {
        // The headline: proposed ≈ 7.9× faster than the Vitis baseline.
        let nodes = 200_000;
        let d = optimized_proposed(nodes);
        let b = vitis_baseline_design(&RklWorkload::with_nodes(nodes, 1));
        let opts = PerfOptions {
            host_in_the_loop: false,
            ..Default::default()
        };
        let rp = estimate_performance(&d, &opts).unwrap();
        let rb = estimate_performance(&b, &opts).unwrap();
        let speedup = rb.rk_method_seconds / rp.rk_method_seconds;
        assert!(
            (4.0..=14.0).contains(&speedup),
            "speedup {speedup:.2} outside the plausible band around the paper's 7.9×"
        );
    }

    #[test]
    fn des_and_analytic_agree_across_the_threshold() {
        let w_small = RklWorkload::with_nodes(20_000, 1);
        let mut d = proposed_design(&w_small);
        optimize_design(&mut d, &OptimizerConfig::for_u200_slr()).unwrap();
        let des = estimate_performance(
            &d,
            &PerfOptions {
                des_element_threshold: usize::MAX,
                ..Default::default()
            },
        )
        .unwrap();
        let ana = estimate_performance(
            &d,
            &PerfOptions {
                des_element_threshold: 0,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(des.used_des && !ana.used_des);
        let rel = (des.rkl_cycles_per_stage as f64 - ana.rkl_cycles_per_stage as f64).abs()
            / ana.rkl_cycles_per_stage as f64;
        assert!(rel < 0.05, "DES vs analytic relative gap {rel}");
    }

    #[test]
    fn scaling_is_roughly_linear_in_elements() {
        let opts = PerfOptions {
            des_element_threshold: 0,
            host_in_the_loop: false,
            ..Default::default()
        };
        let t1 = estimate_performance(&optimized_proposed(1_000_000), &opts)
            .unwrap()
            .rk_method_seconds;
        let t3 = estimate_performance(&optimized_proposed(3_000_000), &opts)
            .unwrap()
            .rk_method_seconds;
        let growth = t3 / t1;
        assert!(
            (2.5..=3.6).contains(&growth),
            "3× nodes should be ≈3× time, got {growth:.2}"
        );
    }

    #[test]
    fn baseline_bottleneck_is_memory() {
        let b = vitis_baseline_design(&RklWorkload::with_nodes(100_000, 1));
        let r = estimate_performance(&b, &PerfOptions::default()).unwrap();
        // Load and store share `gmem`: one of them must be the bottleneck.
        assert!(
            r.bottleneck.contains("load") || r.bottleneck.contains("store"),
            "baseline bottleneck {}",
            r.bottleneck
        );
    }

    #[test]
    fn proposed_beats_cpu_on_rk_method() {
        let nodes = 1_000_000;
        let d = optimized_proposed(nodes);
        let opts = PerfOptions {
            des_element_threshold: 0,
            host_in_the_loop: false,
            ..Default::default()
        };
        let rp = estimate_performance(&d, &opts).unwrap();
        let w = RklWorkload::with_nodes(nodes, 1);
        let cal = CpuCalibration::roofline_default(&w);
        let cpu = cpu_rk_method_seconds(&w, &cal, opts.rk_steps);
        assert!(
            rp.rk_method_seconds < cpu,
            "FPGA {} s vs CPU {} s",
            rp.rk_method_seconds,
            cpu
        );
    }
}
