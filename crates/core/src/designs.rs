//! The accelerator designs: the paper's proposed architecture and the
//! Vitis-HLS-defaults baseline it is evaluated against.
//!
//! A design is a set of HLS task kernels (built in the `hls-kernel` IR)
//! plus configuration describing the architectural decisions of §III:
//!
//! * **Load-Compute-Store restructuring** into dataflow tasks (§III-A/B),
//! * **merged Diffusion+Convection** compute module (§III-B),
//! * **AXI bundle-per-array** assignment and **decoupled load/store
//!   interfaces** (§III-C),
//! * **SLR split** of RKL and RKU (§III-A),
//! * hand directive tuning (§III-D) vs the automatic Vitis recipe
//!   (§IV-A) — both baselines share the restructured source; the
//!   baseline simply keeps the default single `gmem` bundle, default
//!   partitioning, no URAM binding, and single-SLR placement.

use crate::workload::{RklWorkload, INPUT_ARRAYS, OUTPUT_ARRAYS};
use hls_kernel::directives::{apply_vitis_defaults, VitisDefaults};
use hls_kernel::ir::{Kernel, LoopBuilder, OpCount, Partition, StorageKind};
use hls_kernel::ops::{DataType, OpKind};
use hls_kernel::HlsError;

/// Architectural switches of a design (each is one paper optimization;
/// ablations toggle them individually).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesignConfig {
    /// Task-level pipelining: Load/Compute/Store run as dataflow tasks
    /// (§III-B). Off = the same tasks execute sequentially per element
    /// (the pure-ILP ablation).
    pub task_level_pipelining: bool,
    /// Hand directive tuning per §III-D. Off = the automatic Vitis
    /// recipe (pipeline innermost loops, unroll/partition small things).
    pub hand_directives: bool,
    /// One `m_axi` bundle per streamed array (§III-C Fig 4). Off = the
    /// single default `gmem` bundle.
    pub bundle_per_array: bool,
    /// Separate read/write interfaces for the RKU update loops
    /// (§III-C). Off = read-modify-write through one interface.
    pub decoupled_update_interfaces: bool,
    /// RKL and RKU placed on different SLRs (§III-A). Off = same SLR.
    pub slr_split: bool,
    /// Diffusion and convection merged into one module (§III-B). Off =
    /// two separate compute modules (duplicated gradient hardware).
    pub merged_diff_conv: bool,
    /// The accumulation-reassociation restructuring that removes the
    /// residual reduction recurrence from the node pipeline.
    pub restructured_accumulation: bool,
    /// Bind large element buffers to URAM (§III-D).
    pub use_uram: bool,
}

impl DesignConfig {
    /// The paper's proposed design: every optimization on.
    pub fn proposed() -> Self {
        DesignConfig {
            task_level_pipelining: true,
            hand_directives: true,
            bundle_per_array: true,
            decoupled_update_interfaces: true,
            slr_split: true,
            merged_diff_conv: true,
            restructured_accumulation: true,
            use_uram: true,
        }
    }

    /// The Vitis-HLS optimized baseline (§IV-A): the same restructured
    /// source, but only the automatic directive recipe — default single
    /// `gmem` bundle, coupled update interfaces, no URAM, both kernels
    /// on one SLR (⇒ the 100 MHz clock of §IV-A).
    pub fn vitis_baseline() -> Self {
        DesignConfig {
            task_level_pipelining: true,
            hand_directives: false,
            bundle_per_array: false,
            decoupled_update_interfaces: false,
            slr_split: false,
            merged_diff_conv: true,
            restructured_accumulation: true,
            use_uram: false,
        }
    }
}

/// Elements buffered on-chip per batch (sizes the URAM-resident field
/// buffers the paper describes in §III-D).
pub const BATCH_ELEMENTS: usize = 512;

/// A complete accelerator design: the RKL task kernels, the RKU kernel,
/// and the configuration that produced them.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorDesign {
    /// Human-readable name.
    pub name: String,
    /// Configuration switches.
    pub config: DesignConfig,
    /// The workload it was built for.
    pub workload: RklWorkload,
    /// RKL tasks in pipeline order (Load → Compute… → Store).
    pub rkl_tasks: Vec<Kernel>,
    /// The RKU kernel.
    pub rku: Kernel,
}

fn bundle_name(cfg: &DesignConfig, idx: usize) -> String {
    if cfg.bundle_per_array {
        format!("gmem_{idx}")
    } else {
        "gmem".to_string()
    }
}

/// Builds the Load-Element task: streams the 12 input arrays for each
/// element's nodes from DDR into the on-chip element buffers.
fn build_load_task(w: &RklWorkload, cfg: &DesignConfig) -> Result<Kernel, HlsError> {
    let mut k = Kernel::new("load_element");
    for (i, name) in INPUT_ARRAYS.iter().enumerate() {
        k.add_axi_array(*name, w.num_nodes, DataType::F64, bundle_name(cfg, i))?;
    }
    // On-chip destination buffers (element batch, ping-ponged).
    k.add_array(
        "elem_fields",
        BATCH_ELEMENTS * w.nodes_per_element * 11,
        DataType::F64,
    )?;
    let mut node_loop = LoopBuilder::new("load_nodes", w.nodes_per_element as u64)
        .ops(vec![OpCount::new(OpKind::Logic, DataType::U32, 2)])
        .writes("elem_fields", 11);
    for name in INPUT_ARRAYS {
        node_loop = node_loop.reads(name, 1);
    }
    if cfg.hand_directives {
        node_loop = node_loop.unroll_complete();
        // 11·npe writes per initiation: partition the landing buffer so
        // on-chip ports never bound the AXI-limited II.
        hls_kernel::directives::set_partition(&mut k, "elem_fields", Partition::Cyclic(64))?;
        let elem_loop = LoopBuilder::new("load_elements", w.num_elements as u64)
            .nest(node_loop.build())
            .pipeline(1)
            .build();
        k.push_loop(elem_loop);
    } else {
        let elem_loop = LoopBuilder::new("load_elements", w.num_elements as u64)
            .nest(node_loop.build())
            .build();
        k.push_loop(elem_loop);
    }
    Ok(k)
}

/// Builds the merged (or split) Diffusion & Convection compute task: the
/// fused node pipeline computing gradients, τ, fluxes and the
/// weak-divergence residual contraction for a continuous stream of
/// element nodes.
///
/// `share` scales the op counts when the module is split in two
/// (duplicated gradient/transform hardware makes each part more than
/// half of the merged module).
fn build_compute_task(
    w: &RklWorkload,
    cfg: &DesignConfig,
    name: &str,
    share: f64,
) -> Result<Kernel, HlsError> {
    let mut k = Kernel::new(name);
    let npe = w.nodes_per_element;
    // Element-batch field buffers (inputs) and residual buffers (outputs).
    k.add_array("fields", BATCH_ELEMENTS * npe * 11, DataType::F64)?;
    k.add_array("geom", BATCH_ELEMENTS * npe * 12, DataType::F64)?;
    k.add_array("dmat", (w.order + 1) * (w.order + 1), DataType::F64)?;
    k.add_array("res", BATCH_ELEMENTS * npe * 5, DataType::F64)?;
    if cfg.use_uram {
        // §III-D: "larger matrices that surpass BRAM capacity are stored
        // in the 288KB URAMs" — the geometric-factor buffer is the
        // largest on-chip matrix; the field buffers stay in (partitioned)
        // BRAM for port bandwidth.
        hls_kernel::directives::set_storage(&mut k, "geom", StorageKind::Uram)?;
    }
    // The differentiation matrix is tiny: registers either way (Vitis
    // defaults complete-partition it too).
    hls_kernel::directives::set_partition(&mut k, "dmat", Partition::Complete)?;

    let ops = w.compute_ops;
    let scale = |x: u64| ((x as f64) * share).ceil() as u64;
    // One fused pipeline over every node of every element: the paper's
    // node-granular TLP (2a → 2b → 2c) keeps this pipeline full across
    // element boundaries.
    let total_nodes = (w.num_elements * npe) as u64;
    let mut node_loop = LoopBuilder::new(format!("{name}_nodes"), total_nodes)
        .ops(vec![
            OpCount::new(OpKind::MulAdd, DataType::F64, scale(ops.muladd)),
            OpCount::new(OpKind::Mul, DataType::F64, scale(ops.mul)),
            OpCount::new(OpKind::Add, DataType::F64, scale(ops.add)),
            OpCount::new(OpKind::Div, DataType::F64, scale(ops.div)),
        ])
        // Gradient stencil: each node reads its i/j/k lines of every
        // field (≈ 2 taps × 3 dirs × 4 fields) plus its own payload.
        .reads("fields", 24)
        .reads("geom", 12)
        .reads("dmat", 6)
        .writes("res", 5)
        .pipeline(1);
    if !cfg.restructured_accumulation {
        // Unrestructured code accumulates residuals through an f64 adder
        // chain carried across node iterations.
        let fadd = hls_kernel::ops::op_profile(OpKind::Add, DataType::F64).latency;
        node_loop = node_loop.carried_dep(fadd, 1, "residual accumulation");
    }
    k.push_loop(node_loop.build());
    Ok(k)
}

/// Builds the Store-Element-Contribution task: writes the five residual
/// arrays back to DDR.
fn build_store_task(w: &RklWorkload, cfg: &DesignConfig) -> Result<Kernel, HlsError> {
    let mut k = Kernel::new("store_element");
    for (i, name) in OUTPUT_ARRAYS.iter().enumerate() {
        let bundle = if cfg.bundle_per_array {
            format!("gmem_{}", INPUT_ARRAYS.len() + i)
        } else {
            "gmem".to_string()
        };
        k.add_axi_array(*name, w.num_nodes, DataType::F64, bundle)?;
    }
    k.add_array(
        "res",
        BATCH_ELEMENTS * w.nodes_per_element * 5,
        DataType::F64,
    )?;
    let mut node_loop = LoopBuilder::new("store_nodes", w.nodes_per_element as u64)
        .ops(vec![OpCount::new(OpKind::Logic, DataType::U32, 2)])
        .reads("res", 5);
    for name in OUTPUT_ARRAYS {
        node_loop = node_loop.writes(name, 1);
    }
    if cfg.hand_directives {
        node_loop = node_loop.unroll_complete();
        hls_kernel::directives::set_partition(&mut k, "res", Partition::Cyclic(32))?;
        let elem_loop = LoopBuilder::new("store_elements", w.num_elements as u64)
            .nest(node_loop.build())
            .pipeline(1)
            .build();
        k.push_loop(elem_loop);
    } else {
        let elem_loop = LoopBuilder::new("store_elements", w.num_elements as u64)
            .nest(node_loop.build())
            .build();
        k.push_loop(elem_loop);
    }
    Ok(k)
}

/// Builds the RKU kernel: the per-node update `x[i] ← f(x[i], k[i])`
/// sweep re-evaluating ρ, u, T, E, p (§III-A).
fn build_rku(w: &RklWorkload, cfg: &DesignConfig) -> Result<Kernel, HlsError> {
    let mut k = Kernel::new("rku");
    let mut lb = LoopBuilder::new("rku_nodes", w.num_nodes as u64).ops(vec![
        OpCount::new(OpKind::MulAdd, DataType::F64, 5),
        OpCount::new(OpKind::Mul, DataType::F64, 4),
        OpCount::new(OpKind::Add, DataType::F64, 3),
        OpCount::new(OpKind::Div, DataType::F64, 2),
    ]);
    if cfg.decoupled_update_interfaces {
        // Dedicated read-side and write-side pointers on separate bundles.
        for i in 0..5 {
            k.add_axi_array(
                format!("u_rd_{i}"),
                w.num_nodes,
                DataType::F64,
                format!("gmem_{i}"),
            )?;
            k.add_axi_array(
                format!("k_rd_{i}"),
                w.num_nodes,
                DataType::F64,
                format!("gmem_{}", 5 + i),
            )?;
            k.add_axi_array(
                format!("u_wr_{i}"),
                w.num_nodes,
                DataType::F64,
                format!("gmem_{}", 10 + i),
            )?;
            lb = lb
                .reads(format!("u_rd_{i}"), 1)
                .reads(format!("k_rd_{i}"), 1)
                .writes(format!("u_wr_{i}"), 1);
        }
    } else {
        // Vitis default: every pointer through `gmem`; the conserved
        // arrays are read *and* written through the same interface.
        for i in 0..5 {
            k.add_axi_array(format!("u_{i}"), w.num_nodes, DataType::F64, "gmem")?;
            k.add_axi_array(format!("k_{i}"), w.num_nodes, DataType::F64, "gmem")?;
            lb = lb
                .reads(format!("u_{i}"), 1)
                .writes(format!("u_{i}"), 1)
                .reads(format!("k_{i}"), 1);
        }
    }
    if cfg.hand_directives {
        lb = lb.pipeline(1);
        k.push_loop(lb.build());
    } else {
        k.push_loop(lb.build());
    }
    Ok(k)
}

/// Builds a complete design for `workload` under `config`.
///
/// # Errors
///
/// Propagates IR construction errors (cannot occur for valid workloads).
pub fn build_design(
    name: impl Into<String>,
    workload: &RklWorkload,
    config: DesignConfig,
) -> Result<AcceleratorDesign, HlsError> {
    let mut rkl_tasks = vec![build_load_task(workload, &config)?];
    if config.merged_diff_conv {
        rkl_tasks.push(build_compute_task(workload, &config, "diff_conv", 1.0)?);
    } else {
        // Split modules duplicate the shared gradient/transform stages:
        // each side carries ~65% of the merged op count.
        rkl_tasks.push(build_compute_task(workload, &config, "diffusion", 0.65)?);
        rkl_tasks.push(build_compute_task(workload, &config, "convection", 0.65)?);
    }
    rkl_tasks.push(build_store_task(workload, &config)?);
    let mut design = AcceleratorDesign {
        name: name.into(),
        config,
        workload: workload.clone(),
        rku: build_rku(workload, &config)?,
        rkl_tasks,
    };
    if !config.hand_directives {
        // Automatic recipe on the undirected loops.
        for k in design.rkl_tasks.iter_mut() {
            apply_vitis_defaults(k, VitisDefaults::default());
        }
        apply_vitis_defaults(&mut design.rku, VitisDefaults::default());
    }
    Ok(design)
}

/// Convenience: the proposed design.
pub fn proposed_design(workload: &RklWorkload) -> AcceleratorDesign {
    build_design("proposed", workload, DesignConfig::proposed()).expect("valid workload")
}

/// Convenience: the Vitis baseline design.
pub fn vitis_baseline_design(workload: &RklWorkload) -> AcceleratorDesign {
    build_design("vitis-optimized", workload, DesignConfig::vitis_baseline())
        .expect("valid workload")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_kernel::schedule::schedule_kernel;

    fn workload() -> RklWorkload {
        RklWorkload::with_nodes(100_000, 1)
    }

    #[test]
    fn proposed_design_builds_and_schedules() {
        let d = proposed_design(&workload());
        assert_eq!(d.rkl_tasks.len(), 3);
        for k in &d.rkl_tasks {
            schedule_kernel(k).unwrap();
        }
        schedule_kernel(&d.rku).unwrap();
    }

    #[test]
    fn baseline_design_builds_and_schedules() {
        let d = vitis_baseline_design(&workload());
        for k in &d.rkl_tasks {
            schedule_kernel(k).unwrap();
        }
        schedule_kernel(&d.rku).unwrap();
    }

    #[test]
    fn bundle_per_array_creates_bundles() {
        let d = proposed_design(&workload());
        let load = &d.rkl_tasks[0];
        assert_eq!(load.bundles().len(), INPUT_ARRAYS.len());
        let b = vitis_baseline_design(&workload());
        assert_eq!(b.rkl_tasks[0].bundles().len(), 1);
    }

    #[test]
    fn load_ii_reflects_bundle_contention() {
        let w = workload();
        let proposed = proposed_design(&w);
        let ii = schedule_kernel(&proposed.rkl_tasks[0])
            .unwrap()
            .loop_schedule("load_elements")
            .unwrap()
            .ii
            .unwrap();
        // Proposed: 8 beats per element per bundle.
        assert_eq!(ii, 8);
        // Baseline: node loop pipelined, 12 arrays share one bundle.
        let baseline = vitis_baseline_design(&w);
        let s = schedule_kernel(&baseline.rkl_tasks[0]).unwrap();
        let ii_node = s.loop_schedule("load_nodes").unwrap().ii.unwrap();
        assert!(
            ii_node >= 12,
            "baseline per-node load II {ii_node} must serialize 12 arrays"
        );
    }

    #[test]
    fn rku_decoupling_removes_rmw_recurrence() {
        let w = workload();
        let proposed = proposed_design(&w);
        let baseline = vitis_baseline_design(&w);
        let ii_p = schedule_kernel(&proposed.rku)
            .unwrap()
            .loop_schedule("rku_nodes")
            .unwrap()
            .ii
            .unwrap();
        let ii_b = schedule_kernel(&baseline.rku)
            .unwrap()
            .loop_schedule("rku_nodes")
            .unwrap()
            .ii
            .unwrap();
        assert!(
            ii_b >= hls_kernel::ops::AXI_READ_LATENCY,
            "baseline RKU II {ii_b} should carry the RMW recurrence"
        );
        assert!(ii_p <= 3, "decoupled RKU II {ii_p} should be small");
    }

    #[test]
    fn unmerged_compute_costs_more_hardware() {
        let w = workload();
        let merged = proposed_design(&w);
        let mut cfg = DesignConfig::proposed();
        cfg.merged_diff_conv = false;
        let split = build_design("split", &w, cfg).unwrap();
        assert_eq!(split.rkl_tasks.len(), 4);
        let res = |d: &AcceleratorDesign| {
            d.rkl_tasks
                .iter()
                .map(|k| {
                    let s = schedule_kernel(k).unwrap();
                    hls_kernel::resources::estimate_resources(k, &s)
                })
                .fold(hls_kernel::resources::ResourceUsage::ZERO, |a, b| a + b)
        };
        let r_merged = res(&merged);
        let r_split = res(&split);
        assert!(
            r_split.dsp > r_merged.dsp,
            "split {} vs merged {} DSPs",
            r_split.dsp,
            r_merged.dsp
        );
    }

    #[test]
    fn unrestructured_compute_carries_recurrence() {
        let w = workload();
        let mut cfg = DesignConfig::proposed();
        cfg.restructured_accumulation = false;
        let d = build_design("no-restructure", &w, cfg).unwrap();
        let s = schedule_kernel(&d.rkl_tasks[1]).unwrap();
        let ii = s.loop_schedule("diff_conv_nodes").unwrap().ii.unwrap();
        assert!(ii >= 7, "accumulation recurrence should bound II, got {ii}");
    }

    #[test]
    fn compute_pipeline_is_fused_across_elements() {
        let w = workload();
        let d = proposed_design(&w);
        let s = schedule_kernel(&d.rkl_tasks[1]).unwrap();
        let nodes = s.loop_schedule("diff_conv_nodes").unwrap();
        assert_eq!(
            nodes.effective_trips,
            (w.num_elements * w.nodes_per_element) as u64
        );
    }
}
