//! The paper's contribution: the dataflow-optimized FEM CFD accelerator.
//!
//! This crate assembles everything below it into the system of
//! *Dataflow Optimized Reconfigurable Acceleration for FEM-based CFD
//! Simulations* (DATE 2025):
//!
//! * [`workload`] — sizes and op counts of the RKL/RKU computation.
//! * [`designs`] — the proposed accelerator (Load-Compute-Store tasks,
//!   merged Diffusion+Convection, bundle-per-array AXI, decoupled update
//!   interfaces, SLR split) and the Vitis-defaults baseline.
//! * [`optimizer`] — the §III-D iterative directive optimizer: always
//!   improve the most latency-critical task until dependencies or the
//!   resource budget stop progress.
//! * [`perf`] — end-to-end performance estimation: HLS schedules → task
//!   IIs → dataflow makespan → seconds at the achievable clock, plus DDR,
//!   PCIe and CPU-baseline times.
//! * [`functional`] — proof that the task decomposition computes exactly
//!   what the reference solver computes.
//! * [`experiments`] — drivers that regenerate Fig 2, Fig 5, Table I, the
//!   §IV-B comparison, and the ablation studies.
//! * [`calibration`] — every constant tying model cycles/watts to
//!   seconds/watts, with provenance.

#![deny(missing_docs)]

pub mod calibration;
pub mod designs;
pub mod experiments;
pub mod functional;
pub mod optimizer;
pub mod perf;
pub mod report;
pub mod scaling;
pub mod workload;

pub use designs::{
    build_design, proposed_design, vitis_baseline_design, AcceleratorDesign, DesignConfig,
};
pub use optimizer::{optimize_design, OptStep, OptimizerConfig};
pub use perf::{estimate_performance, PerformanceReport};
pub use workload::RklWorkload;
