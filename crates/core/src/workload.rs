//! The FEM workload descriptor the accelerator designs are built from.
//!
//! Captures everything the HLS kernels need to know about a mesh + basis
//! combination *without* materializing the mesh (the paper evaluates up
//! to 4.2M nodes; the performance model must scale there even though the
//! functional simulator runs on small meshes).

use fem_mesh::HexMesh;
use fem_numerics::tensor::HexBasis;
use fem_solver::kernels::KernelOpCounts;

/// Field arrays the accelerator streams per node, in the paper's Fig 4
/// spirit (`rho`, `Tem`, `mu_fluid`, `E`, ...).
pub const INPUT_ARRAYS: [&str; 12] = [
    "rho", "ux", "uy", "uz", "Tem", "pres", "E", "mu_fluid", "coord_x", "coord_y", "coord_z",
    "conn",
];

/// Residual-contribution arrays written back per element node.
pub const OUTPUT_ARRAYS: [&str; 5] = ["res_rho", "res_mx", "res_my", "res_mz", "res_E"];

/// Per-node operation counts of the merged Diffusion ⊕ Convection
/// compute stage (f64 ops), derived from the solver's **fused**
/// single-contraction element kernels: tensor-product gradients,
/// Jacobian transforms, τ, the net `F_c − F_v` flux and ONE
/// weak-divergence contraction (the paper's Fig-1 fusion, which the host
/// hot path mirrors since the fused kernel landed). The contraction term
/// is the **sum-factored** three-sweep schedule — `3n` MACs per output
/// node (one 1D line per direction), O(p⁴) per element — not the dense
/// full-matrix count, which only the validation path pays (see
/// `fem_solver::kernels::KernelOpCounts::divergence_flops_for`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeOpCounts {
    /// Fused multiply-adds.
    pub muladd: u64,
    /// Multiplies.
    pub mul: u64,
    /// Adds/subtracts.
    pub add: u64,
    /// Divides (Jacobian inverse, primitive recovery).
    pub div: u64,
}

impl NodeOpCounts {
    /// Total f64 FLOPs (MulAdd = 2).
    pub fn flops(&self) -> u64 {
        2 * self.muladd + self.mul + self.add + self.div
    }
}

/// A sized RKL/RKU workload.
#[derive(Debug, Clone, PartialEq)]
pub struct RklWorkload {
    /// Mesh nodes.
    pub num_nodes: usize,
    /// Mesh elements.
    pub num_elements: usize,
    /// Nodes per element, `(p+1)³`.
    pub nodes_per_element: usize,
    /// Polynomial order.
    pub order: usize,
    /// Merged compute-stage op counts per element node.
    pub compute_ops: NodeOpCounts,
    /// RKU flops per mesh node.
    pub rku_flops_per_node: u64,
    /// Reference FLOP counts from the solver's kernel model.
    pub solver_ops: KernelOpCounts,
}

impl RklWorkload {
    /// Builds the workload descriptor for `num_nodes` nodes at polynomial
    /// `order` (fully periodic box ⇒ elements ≈ nodes/p³).
    ///
    /// # Panics
    ///
    /// Panics if `order == 0`.
    pub fn with_nodes(num_nodes: usize, order: usize) -> Self {
        assert!(order >= 1, "order must be ≥ 1");
        let basis = HexBasis::new(order).expect("order validated");
        let npe = basis.nodes_per_element();
        let num_elements = num_nodes / order.pow(3);
        let solver_ops = KernelOpCounts::for_basis(&basis);
        // Break the fused per-element count down to per-node op classes.
        let per_elem = solver_ops.rkl_flops_per_element() as u64;
        let per_node = per_elem / npe as u64;
        // Mix observed in the solver kernels: ≈45% of flops in MAC pairs,
        // 25% multiplies, 28% adds, ~2% divides.
        let muladd = (per_node as f64 * 0.45 / 2.0) as u64;
        let mul = (per_node as f64 * 0.25) as u64;
        let add = (per_node as f64 * 0.28) as u64;
        let div = ((per_node as f64 * 0.02) as u64).max(1);
        RklWorkload {
            num_nodes,
            num_elements,
            nodes_per_element: npe,
            order,
            compute_ops: NodeOpCounts {
                muladd,
                mul,
                add,
                div,
            },
            rku_flops_per_node: solver_ops.rku_flops_per_node as u64,
            solver_ops,
        }
    }

    /// Builds the descriptor from an actual mesh.
    pub fn from_mesh(mesh: &HexMesh) -> Self {
        let mut w = Self::with_nodes(mesh.num_nodes(), mesh.order());
        w.num_elements = mesh.num_elements();
        w
    }

    /// Bytes read from DDR per element per RK stage (all input arrays,
    /// one value per node each).
    pub fn bytes_in_per_element(&self) -> u64 {
        (INPUT_ARRAYS.len() * self.nodes_per_element * std::mem::size_of::<f64>()) as u64
    }

    /// Bytes written to DDR per element per RK stage.
    pub fn bytes_out_per_element(&self) -> u64 {
        (OUTPUT_ARRAYS.len() * self.nodes_per_element * std::mem::size_of::<f64>()) as u64
    }

    /// Total DDR traffic of one RKL stage.
    pub fn rkl_bytes_per_stage(&self) -> u64 {
        self.num_elements as u64 * (self.bytes_in_per_element() + self.bytes_out_per_element())
    }

    /// Total f64 FLOPs of one RKL stage.
    pub fn rkl_flops_per_stage(&self) -> u64 {
        self.num_elements as u64 * self.nodes_per_element as u64 * self.compute_ops.flops()
    }

    /// Total f64 FLOPs of one RKU sweep.
    pub fn rku_flops_per_stage(&self) -> u64 {
        self.num_nodes as u64 * self.rku_flops_per_node
    }

    /// Arithmetic intensity of one RKL stage (f64 FLOPs per DDR byte) —
    /// the x-axis coordinate of the workload on a roofline plot. A
    /// bandwidth `B` bytes/s then bounds the streaming compute rate at
    /// `intensity × B` FLOP/s.
    pub fn rkl_arithmetic_intensity(&self) -> f64 {
        self.rkl_flops_per_stage() as f64 / self.rkl_bytes_per_stage() as f64
    }

    /// Bytes the RKU sweep moves (read 10 arrays, write 10).
    pub fn rku_bytes_per_stage(&self) -> u64 {
        20 * self.num_nodes as u64 * std::mem::size_of::<f64>() as u64
    }

    /// Bytes moved host↔card per time step when the host runs the non-RK
    /// phase (all primary fields down and residual-updated fields back).
    pub fn host_transfer_bytes_per_step(&self) -> u64 {
        2 * 11 * self.num_nodes as u64 * std::mem::size_of::<f64>() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fem_mesh::generator::BoxMeshBuilder;

    #[test]
    fn node_budget_matches_mesh() {
        let mesh = BoxMeshBuilder::tgv_box(6).build().unwrap();
        let w = RklWorkload::from_mesh(&mesh);
        assert_eq!(w.num_nodes, 216);
        assert_eq!(w.num_elements, 216);
        assert_eq!(w.nodes_per_element, 8);
    }

    #[test]
    fn op_counts_are_plausible() {
        let w = RklWorkload::with_nodes(1_000_000, 1);
        // A few hundred flops per node.
        let f = w.compute_ops.flops();
        assert!(f > 100 && f < 2000, "flops per node {f}");
        // Stage totals scale with elements.
        let w2 = RklWorkload::with_nodes(2_000_000, 1);
        let ratio = w2.rkl_flops_per_stage() as f64 / w.rkl_flops_per_stage() as f64;
        assert!((ratio - 2.0).abs() < 0.01);
    }

    #[test]
    fn traffic_accounting() {
        let w = RklWorkload::with_nodes(8_000, 1);
        assert_eq!(w.bytes_in_per_element(), 12 * 8 * 8);
        assert_eq!(w.bytes_out_per_element(), 5 * 8 * 8);
        assert_eq!(w.rkl_bytes_per_stage(), 8_000 * (768 + 320));
    }

    #[test]
    fn arithmetic_intensity_is_flops_over_bytes() {
        let w = RklWorkload::with_nodes(100_000, 1);
        let ai = w.rkl_arithmetic_intensity();
        assert!(
            (ai - w.rkl_flops_per_stage() as f64 / w.rkl_bytes_per_stage() as f64).abs() < 1e-12
        );
        // The FEM gather/scatter workload is modestly compute-dense:
        // O(1)–O(10) flops per byte at order 1.
        assert!(ai > 0.1 && ai < 100.0, "intensity {ai}");
        // Intensity is size-independent (both numerator and denominator
        // scale with elements).
        let w2 = RklWorkload::with_nodes(1_000_000, 1);
        assert!((w2.rkl_arithmetic_intensity() - ai).abs() < 1e-9);
    }

    #[test]
    fn higher_order_has_fewer_elements() {
        let w1 = RklWorkload::with_nodes(1_000_000, 1);
        let w2 = RklWorkload::with_nodes(1_000_000, 2);
        assert!(w2.num_elements < w1.num_elements);
        assert_eq!(w2.nodes_per_element, 27);
    }
}
