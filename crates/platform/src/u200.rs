//! The AMD Alveo U200 device model.
//!
//! The U200 carries a Virtex UltraScale+ XCU200 (VU9P-class) die built
//! from three stacked Super Logic Regions (SLRs) joined by Super Long
//! Lines (SLLs), plus four 16 GB DDR4-2400 channels. The XDMA shell
//! (PCIe/DMA static region) permanently occupies part of SLR1.

use crate::memory::MemorySystem;
use hls_kernel::resources::ResourceUsage;

/// One of the three Super Logic Regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlrId {
    /// Bottom SLR (direct attach of DDR channel 0).
    Slr0,
    /// Middle SLR (hosts the shell; DDR channels 1 and 2).
    Slr1,
    /// Top SLR (DDR channel 3).
    Slr2,
}

impl SlrId {
    /// All SLRs in index order.
    pub const ALL: [SlrId; 3] = [SlrId::Slr0, SlrId::Slr1, SlrId::Slr2];

    /// Index 0..3.
    pub fn index(self) -> usize {
        match self {
            SlrId::Slr0 => 0,
            SlrId::Slr1 => 1,
            SlrId::Slr2 => 2,
        }
    }
}

/// Assignment of a named kernel to an SLR.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Kernel name.
    pub kernel: String,
    /// Target SLR.
    pub slr: SlrId,
    /// Resources the kernel occupies.
    pub usage: ResourceUsage,
}

/// The Alveo U200 device.
#[derive(Debug, Clone, PartialEq)]
pub struct U200 {
    per_slr: ResourceUsage,
    shell: ResourceUsage,
    memory: MemorySystem,
    sll_count: u32,
}

impl Default for U200 {
    fn default() -> Self {
        Self::new()
    }
}

impl U200 {
    /// The production U200 numbers: 1,182,240 LUT / 2,364,480 FF /
    /// 6,840 DSP / 4,320 BRAM18K / 960 URAM across three equal SLRs;
    /// 4 × 16 GB DDR4-2400 (19.2 GB/s peak each); ~17k SLLs per crossing.
    pub fn new() -> Self {
        U200 {
            per_slr: ResourceUsage {
                lut: 394_080,
                ff: 788_160,
                dsp: 2_280,
                bram18k: 1_440,
                uram: 320,
            },
            // XDMA shell static region (PCIe, DMA, platform logic).
            shell: ResourceUsage {
                lut: 100_000,
                ff: 130_000,
                dsp: 12,
                bram18k: 200,
                uram: 0,
            },
            memory: MemorySystem::u200_ddr(),
            sll_count: 17_280,
        }
    }

    /// Resources of one SLR (before shell subtraction).
    pub fn slr_resources(&self) -> ResourceUsage {
        self.per_slr
    }

    /// Whole-device totals.
    pub fn totals(&self) -> ResourceUsage {
        self.per_slr.scaled(3)
    }

    /// Resources the shell occupies (in SLR1).
    pub fn shell(&self) -> ResourceUsage {
        self.shell
    }

    /// Resources available to user kernels in `slr` (shell subtracted
    /// where it lives).
    pub fn available_in(&self, slr: SlrId) -> ResourceUsage {
        let mut avail = self.per_slr;
        if slr == SlrId::Slr1 {
            avail.lut = avail.lut.saturating_sub(self.shell.lut);
            avail.ff = avail.ff.saturating_sub(self.shell.ff);
            avail.dsp = avail.dsp.saturating_sub(self.shell.dsp);
            avail.bram18k = avail.bram18k.saturating_sub(self.shell.bram18k);
            avail.uram = avail.uram.saturating_sub(self.shell.uram);
        }
        avail
    }

    /// Device-wide resources available to user kernels.
    pub fn available_total(&self) -> ResourceUsage {
        let t = self.totals();
        ResourceUsage {
            lut: t.lut - self.shell.lut,
            ff: t.ff - self.shell.ff,
            dsp: t.dsp - self.shell.dsp,
            bram18k: t.bram18k - self.shell.bram18k,
            uram: t.uram - self.shell.uram,
        }
    }

    /// The card's banked memory system (4 × DDR4 on the production
    /// model). Roofline and transfer quotes derive from this rather
    /// than hard-coded channel counts.
    pub fn memory_system(&self) -> &MemorySystem {
        &self.memory
    }

    /// Number of DDR channels (banks of [`U200::memory_system`]).
    pub fn ddr_channels(&self) -> usize {
        self.memory.num_banks()
    }

    /// Capacity of one DDR channel in bytes.
    pub fn ddr_bytes_per_channel(&self) -> u64 {
        self.memory.bank(0).capacity_bytes
    }

    /// Peak bandwidth of one DDR channel (bytes/second).
    pub fn ddr_peak_bw(&self) -> f64 {
        self.memory.bank(0).peak_bw
    }

    /// SLL wires per SLR crossing.
    pub fn sll_count(&self) -> u32 {
        self.sll_count
    }

    /// Utilization percentages (FF, LUT, BRAM, URAM, DSP — Table I's
    /// column order) of `used` against the device-wide *available*
    /// resources.
    pub fn utilization_percent(&self, used: &ResourceUsage) -> UtilizationPercent {
        let avail = self.available_total();
        let pct = |u: u64, a: u64| 100.0 * u as f64 / a as f64;
        UtilizationPercent {
            ff: pct(used.ff, avail.ff),
            lut: pct(used.lut, avail.lut),
            bram: pct(used.bram18k, avail.bram18k),
            uram: pct(used.uram, avail.uram),
            dsp: pct(used.dsp, avail.dsp),
        }
    }

    /// Aggregates placements into per-SLR usage (shell not included; it
    /// is accounted through [`U200::available_in`]).
    pub fn per_slr_usage(&self, placements: &[Placement]) -> [ResourceUsage; 3] {
        let mut out = [ResourceUsage::ZERO; 3];
        for p in placements {
            out[p.slr.index()] += p.usage;
        }
        out
    }

    /// Peak utilization fraction of each SLR for the given placements.
    pub fn slr_utilization(&self, placements: &[Placement]) -> [f64; 3] {
        let usage = self.per_slr_usage(placements);
        let mut out = [0.0; 3];
        for slr in SlrId::ALL {
            let avail = self.available_in(slr);
            out[slr.index()] = usage[slr.index()].peak_utilization(&avail);
        }
        out
    }
}

/// Utilization percentages in the paper's Table I column order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilizationPercent {
    /// Flip-flop %.
    pub ff: f64,
    /// LUT %.
    pub lut: f64,
    /// BRAM %.
    pub bram: f64,
    /// URAM %.
    pub uram: f64,
    /// DSP %.
    pub dsp: f64,
}

impl std::fmt::Display for UtilizationPercent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FF {:5.2}% | LUT {:5.2}% | BRAM {:5.2}% | URAM {:5.2}% | DSP {:5.2}%",
            self.ff, self.lut, self.bram, self.uram, self.dsp
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_totals_match_vu9p() {
        let dev = U200::new();
        let t = dev.totals();
        assert_eq!(t.lut, 1_182_240);
        assert_eq!(t.ff, 2_364_480);
        assert_eq!(t.dsp, 6_840);
        assert_eq!(t.bram18k, 4_320);
        assert_eq!(t.uram, 960);
    }

    #[test]
    fn flat_ddr_quote_preserved_through_memory_system() {
        // The pre-banking hard-coded quotes must survive the routing
        // through MemorySystem bit-for-bit.
        let dev = U200::new();
        assert_eq!(dev.ddr_channels(), 4);
        assert_eq!(dev.ddr_bytes_per_channel(), 16 << 30);
        assert_eq!(dev.ddr_peak_bw(), 19.2e9);
        assert_eq!(dev.memory_system().name(), "u200-ddr4");
    }

    #[test]
    fn shell_reduces_slr1_only() {
        let dev = U200::new();
        assert_eq!(dev.available_in(SlrId::Slr0), dev.slr_resources());
        assert_eq!(dev.available_in(SlrId::Slr2), dev.slr_resources());
        let slr1 = dev.available_in(SlrId::Slr1);
        assert!(slr1.lut < dev.slr_resources().lut);
    }

    #[test]
    fn utilization_percent_roundtrip() {
        let dev = U200::new();
        let half = ResourceUsage {
            lut: dev.available_total().lut / 2,
            ff: dev.available_total().ff / 2,
            dsp: dev.available_total().dsp / 2,
            bram18k: dev.available_total().bram18k / 2,
            uram: dev.available_total().uram / 2,
        };
        let u = dev.utilization_percent(&half);
        for v in [u.ff, u.lut, u.bram, u.uram, u.dsp] {
            assert!((v - 50.0).abs() < 0.1, "{v}");
        }
    }

    #[test]
    fn placement_aggregation() {
        let dev = U200::new();
        let usage = ResourceUsage {
            lut: 100_000,
            ff: 150_000,
            dsp: 500,
            bram18k: 300,
            uram: 40,
        };
        let placements = vec![
            Placement {
                kernel: "rkl".into(),
                slr: SlrId::Slr0,
                usage,
            },
            Placement {
                kernel: "rku".into(),
                slr: SlrId::Slr2,
                usage,
            },
        ];
        let per = dev.per_slr_usage(&placements);
        assert_eq!(per[0], usage);
        assert_eq!(per[1], ResourceUsage::ZERO);
        assert_eq!(per[2], usage);
        let util = dev.slr_utilization(&placements);
        assert!(util[0] > 0.2 && util[0] < 0.3);
        assert_eq!(util[1], 0.0);
        // Packing both kernels into SLR0 doubles its pressure.
        let packed = vec![
            Placement {
                kernel: "rkl".into(),
                slr: SlrId::Slr0,
                usage,
            },
            Placement {
                kernel: "rku".into(),
                slr: SlrId::Slr0,
                usage,
            },
        ];
        let util_packed = dev.slr_utilization(&packed);
        assert!((util_packed[0] - 2.0 * util[0]).abs() < 1e-12);
    }
}
