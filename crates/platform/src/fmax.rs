//! Congestion-driven achievable clock frequency.
//!
//! The paper's §IV-A attributes part of the baseline's loss to clocking:
//! "the Vitis-optimized kernel being restricted to a 100 MHz clock
//! frequency, whereas the proposed design operates at 150 MHz ... arises
//! from both the RKL and RKU modules being mapped onto the same SLR,
//! which caused significant routing congestion". This module models that
//! effect: place-and-route closes timing at a frequency that degrades
//! superlinearly with the *most congested* SLR's utilization, quantized
//! to the 25 MHz kernel-clock steps platform shells typically offer.

use crate::u200::{Placement, SlrId, U200};

/// Maximum kernel clock the toolchain would target on this device family.
pub const BASE_FMAX_MHZ: f64 = 300.0;

/// Ceiling imposed by registered SLL crossings (an inter-SLR path cannot
/// close faster than this).
pub const SLL_FMAX_CAP_MHZ: f64 = 250.0;

/// Kernel clock quantization step.
pub const FMAX_STEP_MHZ: f64 = 25.0;

/// Raw (unquantized) congestion curve: achievable MHz at peak-SLR
/// utilization `u ∈ [0, 1+]`.
///
/// `f(u) = BASE / (1 + 2.5 u²)` — mild degradation while routing is
/// uncongested, steep beyond ~60% where detours dominate.
pub fn congestion_curve_mhz(u: f64) -> f64 {
    BASE_FMAX_MHZ / (1.0 + 2.5 * u * u)
}

/// Utilization multiplier when two or more kernels share one SLR: their
/// interleaved routing demand congests the region well beyond the sum of
/// their areas (calibrated so the paper's same-SLR baseline lands at
/// 100 MHz, §IV-A).
pub const CO_LOCATION_FACTOR: f64 = 1.6;

/// Flat utilization-equivalent penalty of an SLL crossing (registered
/// detours through the crossing columns; calibrated so the paper's
/// split design lands at 150 MHz).
pub const CROSSING_PENALTY: f64 = 0.10;

/// Achievable kernel clock (MHz) for a set of placements on `device`.
///
/// Takes the worst SLR's congestion — inflated by [`CO_LOCATION_FACTOR`]
/// where kernels share an SLR and by [`CROSSING_PENALTY`] when the design
/// spans SLRs — caps by the SLL ceiling when crossing, and floors to the
/// 25 MHz grid (minimum 50 MHz).
///
/// # Example
///
/// ```
/// use fpga_platform::u200::{Placement, SlrId, U200};
/// use fpga_platform::fmax::achievable_fmax_mhz;
/// use hls_kernel::resources::ResourceUsage;
///
/// let dev = U200::new();
/// let usage = ResourceUsage { lut: 230_000, ff: 300_000, dsp: 600, bram18k: 900, uram: 110 };
/// let split = vec![
///     Placement { kernel: "rkl".into(), slr: SlrId::Slr0, usage },
///     Placement { kernel: "rku".into(), slr: SlrId::Slr2, usage },
/// ];
/// let packed = vec![
///     Placement { kernel: "rkl".into(), slr: SlrId::Slr0, usage },
///     Placement { kernel: "rku".into(), slr: SlrId::Slr0, usage },
/// ];
/// let f_split = achievable_fmax_mhz(&dev, &split, true);
/// let f_packed = achievable_fmax_mhz(&dev, &packed, false);
/// assert!(f_split > f_packed);
/// ```
pub fn achievable_fmax_mhz(device: &U200, placements: &[Placement], has_slr_crossing: bool) -> f64 {
    let util = device.slr_utilization(placements);
    // Kernels per SLR (for the co-location factor).
    let mut kernels_in = [0usize; 3];
    for p in placements {
        kernels_in[p.slr.index()] += 1;
    }
    let mut worst = 0.0f64;
    for slr in SlrId::ALL {
        let mut u = util[slr.index()];
        if kernels_in[slr.index()] >= 2 {
            u *= CO_LOCATION_FACTOR;
        }
        if has_slr_crossing {
            u += CROSSING_PENALTY;
        }
        worst = worst.max(u);
    }
    let mut f = congestion_curve_mhz(worst);
    if has_slr_crossing {
        f = f.min(SLL_FMAX_CAP_MHZ);
    }
    quantize_fmax(f)
}

/// Floors `f` to the kernel-clock grid, with a 50 MHz floor.
pub fn quantize_fmax(f: f64) -> f64 {
    let stepped = (f / FMAX_STEP_MHZ).floor() * FMAX_STEP_MHZ;
    stepped.max(50.0)
}

/// Convenience: does this placement set use more than one SLR?
pub fn crosses_slr(placements: &[Placement]) -> bool {
    let mut used = [false; 3];
    for p in placements {
        used[p.slr.index()] = true;
    }
    used.iter().filter(|&&u| u).count() > 1
}

/// Convenience: builds a two-kernel placement (the paper's RKL + RKU).
pub fn place_two(
    rkl_usage: hls_kernel::resources::ResourceUsage,
    rku_usage: hls_kernel::resources::ResourceUsage,
    split: bool,
) -> Vec<Placement> {
    if split {
        vec![
            Placement {
                kernel: "RKL".into(),
                slr: SlrId::Slr0,
                usage: rkl_usage,
            },
            Placement {
                kernel: "RKU".into(),
                slr: SlrId::Slr2,
                usage: rku_usage,
            },
        ]
    } else {
        vec![
            Placement {
                kernel: "RKL".into(),
                slr: SlrId::Slr0,
                usage: rkl_usage,
            },
            Placement {
                kernel: "RKU".into(),
                slr: SlrId::Slr0,
                usage: rku_usage,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_kernel::resources::ResourceUsage;
    use proptest::prelude::*;

    #[test]
    fn curve_is_monotone_decreasing() {
        let mut prev = f64::INFINITY;
        for i in 0..20 {
            let u = i as f64 / 10.0;
            let f = congestion_curve_mhz(u);
            assert!(f < prev);
            prev = f;
        }
    }

    #[test]
    fn quantization_grid() {
        assert_eq!(quantize_fmax(174.9), 150.0);
        assert_eq!(quantize_fmax(175.0), 175.0);
        assert_eq!(quantize_fmax(99.0), 75.0);
        assert_eq!(quantize_fmax(10.0), 50.0);
        assert_eq!(quantize_fmax(301.0), 300.0);
    }

    #[test]
    fn split_beats_packed_for_moderate_kernels() {
        // Kernels that together congest one SLR but are comfortable
        // apart — the paper's RKL/RKU situation.
        let dev = U200::new();
        let usage = ResourceUsage {
            lut: 230_000,
            ff: 290_000,
            dsp: 620,
            bram18k: 900,
            uram: 110,
        };
        let f_split = achievable_fmax_mhz(&dev, &place_two(usage, usage, true), true);
        let f_packed = achievable_fmax_mhz(&dev, &place_two(usage, usage, false), false);
        assert!(
            f_split >= f_packed + FMAX_STEP_MHZ,
            "split {f_split} vs packed {f_packed}"
        );
    }

    #[test]
    fn sll_cap_applies_only_when_crossing() {
        let dev = U200::new();
        let tiny = ResourceUsage {
            lut: 10_000,
            ff: 10_000,
            dsp: 10,
            bram18k: 10,
            uram: 0,
        };
        let split = place_two(tiny, tiny, true);
        let packed = place_two(tiny, tiny, false);
        assert!(crosses_slr(&split));
        assert!(!crosses_slr(&packed));
        let f_split = achievable_fmax_mhz(&dev, &split, true);
        let f_packed = achievable_fmax_mhz(&dev, &packed, false);
        // Tiny kernels: packed hits the full 300, split capped at 250.
        assert!(f_packed > f_split);
        assert!(f_split <= SLL_FMAX_CAP_MHZ);
    }

    proptest! {
        /// More utilization never increases fmax.
        #[test]
        fn prop_fmax_monotone_in_usage(lut in 10_000u64..380_000) {
            let dev = U200::new();
            let mk = |l: u64| ResourceUsage { lut: l, ff: l, dsp: 100, bram18k: 100, uram: 10 };
            let f1 = achievable_fmax_mhz(&dev, &place_two(mk(lut), mk(lut), false), false);
            let f2 = achievable_fmax_mhz(&dev, &place_two(mk(lut + 10_000), mk(lut + 10_000), false), false);
            prop_assert!(f2 <= f1);
        }

        /// Quantization always lands on the grid and never rounds up.
        #[test]
        fn prop_quantize_floor(f in 0.0f64..400.0) {
            let q = quantize_fmax(f);
            prop_assert!(q >= 50.0);
            prop_assert!((q / FMAX_STEP_MHZ).fract() == 0.0);
            prop_assert!(q <= f.max(50.0));
        }
    }
}
