//! Host ↔ card transfer model (PCIe Gen3 ×16 via XDMA).

/// Effective PCIe Gen3 ×16 throughput after protocol overhead
/// (bytes/second).
pub const PCIE_EFFECTIVE_BW: f64 = 12.0e9;

/// Fixed software + DMA setup latency per transfer (seconds).
pub const PCIE_LATENCY_S: f64 = 15.0e-6;

/// Time to move `bytes` between host and card in one DMA transfer.
///
/// # Example
///
/// ```
/// use fpga_platform::pcie::transfer_seconds;
/// let t = transfer_seconds(12_000_000_000);
/// assert!((t - 1.0).abs() < 0.01); // ~1 s for 12 GB
/// ```
pub fn transfer_seconds(bytes: u64) -> f64 {
    PCIE_LATENCY_S + bytes as f64 / PCIE_EFFECTIVE_BW
}

/// Time for `n` separate transfers of `bytes` each (latency paid per
/// transfer — why hosts batch small buffers).
pub fn chunked_transfer_seconds(bytes: u64, n: u64) -> f64 {
    n as f64 * PCIE_LATENCY_S + bytes as f64 / PCIE_EFFECTIVE_BW
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_dominates_small_transfers() {
        let t = transfer_seconds(64);
        assert!(t > PCIE_LATENCY_S);
        assert!(t < 2.0 * PCIE_LATENCY_S);
    }

    #[test]
    fn bandwidth_dominates_large_transfers() {
        let t = transfer_seconds(24_000_000_000);
        assert!((t - 2.0).abs() < 0.01);
    }

    #[test]
    fn chunking_costs_latency() {
        let whole = chunked_transfer_seconds(1 << 20, 1);
        let split = chunked_transfer_seconds(1 << 20, 1000);
        assert!(split > whole + 0.9e-2);
    }
}
