//! FPGA platform models: the AMD Alveo U200 card, its memory system, the
//! congestion-driven clock model, power, and the CPU baseline.
//!
//! The paper deploys on an Alveo U200 ("3 Super Logic Regions and 4 DDR
//! memories, each with a capacity of 16GB", §IV) and compares against an
//! Intel Xeon Silver 4210 server (§IV-B). This crate provides the
//! device-level models those experiments need:
//!
//! * [`u200`] — SLR-level resource budgets, shell overhead, utilization
//!   percentages (Table I's denominators).
//! * [`fmax`] — achievable kernel clock vs per-SLR congestion: packing
//!   both kernels into one SLR costs the paper's baseline a 100 MHz
//!   ceiling while the SLR-split design closes at 150 MHz (§III-A, §IV-A).
//! * [`axi`] — DDR channel bandwidth and transfer-time model.
//! * [`memory`] — banked memory systems (U200 DDR4, U280-style HBM2)
//!   and bank-assignment planning for the dataflow emulator.
//! * [`pcie`] — host↔card transfer model.
//! * [`power`] — FPGA power breakdown (core / peripherals / rest, §IV-B).
//! * [`cpu`] — roofline-style timing and measured package power of the
//!   Xeon Silver 4210 baseline.

#![deny(missing_docs)]

pub mod axi;
pub mod cpu;
pub mod energy;
pub mod fmax;
pub mod memory;
pub mod pcie;
pub mod power;
pub mod u200;

pub use cpu::CpuModel;
pub use fmax::achievable_fmax_mhz;
pub use memory::{BankAssignment, MemoryBank, MemoryStream, MemorySystem};
pub use power::{FpgaPowerBreakdown, FpgaPowerModel};
pub use u200::{Placement, SlrId, U200};
