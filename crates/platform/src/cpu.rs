//! The CPU baseline model: Intel Xeon Silver 4210.
//!
//! The paper's software baseline is "the exact same C++ implementation
//! running in single-threaded mode on ... an Intel Xeon Silver 4210 CPU
//! @ 2.20GHz with 32K L1D/I, 1M L2 and 14M L3 cache", drawing an average
//! of 120.42 W (§IV-B). This module provides a roofline-style timing
//! model for extrapolating the measured Rust solver to paper-scale
//! meshes, and the measured package power.

/// A single-threaded CPU performance/power model.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuModel {
    /// Marketing name.
    pub name: String,
    /// Core clock (Hz).
    pub freq_hz: f64,
    /// Effective double-precision FLOPs retired per cycle in FEM kernels
    /// (includes issue limits, dependency stalls and the scalar/SSE mix —
    /// far below the 16/cycle AVX-512 peak).
    pub flops_per_cycle: f64,
    /// Effective single-thread memory bandwidth (bytes/s) for the gather/
    /// scatter access pattern.
    pub mem_bandwidth: f64,
    /// Average package power under the CFD workload (W) — the paper's
    /// measured 120.42 W.
    pub package_power_w: f64,
}

impl CpuModel {
    /// The paper's Xeon Silver 4210 configuration.
    pub fn xeon_silver_4210() -> Self {
        CpuModel {
            name: "Intel Xeon Silver 4210 @ 2.20GHz".into(),
            freq_hz: 2.2e9,
            flops_per_cycle: 2.0,
            mem_bandwidth: 12.0e9,
            package_power_w: 120.42,
        }
    }

    /// Roofline execution time for a phase with `flops` floating-point
    /// operations touching `bytes` of memory: the slower of the compute
    /// and memory roofs (no overlap credit beyond the max).
    ///
    /// # Example
    ///
    /// ```
    /// use fpga_platform::cpu::CpuModel;
    /// let cpu = CpuModel::xeon_silver_4210();
    /// // 4.4 GFLOP at 2 flops/cycle on 2.2 GHz = 1 s compute-bound.
    /// let t = cpu.time_seconds(4_400_000_000, 1_000_000);
    /// assert!((t - 1.0).abs() < 1e-9);
    /// ```
    pub fn time_seconds(&self, flops: u64, bytes: u64) -> f64 {
        let compute = flops as f64 / (self.freq_hz * self.flops_per_cycle);
        let memory = bytes as f64 / self.mem_bandwidth;
        compute.max(memory)
    }

    /// Energy for a phase of duration `seconds`.
    pub fn energy_joules(&self, seconds: f64) -> f64 {
        self.package_power_w * seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roofline_picks_the_binding_constraint() {
        let cpu = CpuModel::xeon_silver_4210();
        // Memory-bound: 12 GB at 12 GB/s = 1 s despite trivial flops.
        let t = cpu.time_seconds(1000, 12_000_000_000);
        assert!((t - 1.0).abs() < 1e-9);
        // Compute-bound case dominates when flops are heavy.
        let t2 = cpu.time_seconds(44_000_000_000, 1000);
        assert!((t2 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn paper_power_is_recorded() {
        let cpu = CpuModel::xeon_silver_4210();
        assert!((cpu.package_power_w - 120.42).abs() < 1e-9);
        assert!((cpu.energy_joules(2.0) - 240.84).abs() < 1e-9);
    }
}
