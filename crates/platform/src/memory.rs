//! Banked device-memory models and bank-assignment planning.
//!
//! The pre-banking performance model quoted one *flat* aggregate DDR
//! bound: every stream shared one pipe and the emulator could only
//! report, never choose, a layout. This module makes the memory system a
//! first-class, banked object:
//!
//! * [`MemorySystem`] — an ordered set of [`MemoryBank`]s, each with its
//!   own capacity, peak bandwidth, and SLR affinity
//!   ([`crate::u200::SlrId`]). Two production instances are provided —
//!   the U200's 4 × DDR4 channels ([`MemorySystem::u200_ddr`]) and a
//!   U280-style 32-pseudo-channel HBM2 stack
//!   ([`MemorySystem::u280_hbm2`]) — plus the 1-bank degenerate
//!   [`MemorySystem::flat`] that reproduces the old aggregate-pipe quote
//!   exactly.
//! * [`MemoryStream`] — one DDR-resident stream a kernel reads or
//!   writes (a state-array gather, a geometry-cache slice, an RHS
//!   scatter), sized in beats/token and resident bytes.
//! * [`BankAssignment`] — a total map of streams onto banks, with the
//!   [`BankAssignment::round_robin`] baseline and the capacity-aware
//!   [`BankAssignment::greedy`] planner. The swap-refinement optimizer
//!   that minimizes the *emulated* makespan lives one layer up, in
//!   `fem_accel::optimizer` (it needs the DES cost model).
//! * [`modeled_makespan_cycles`] — the closed-form cost both planners
//!   and the optimizer agree on: every bank is a single port issuing one
//!   512-bit beat per cycle, so a bank's busy time is the beat total of
//!   its streams, and a pipeline group can go no faster than its
//!   slowest own stream or its compute floor.

use crate::u200::SlrId;

/// One addressable bank (DDR channel or HBM2 pseudo-channel).
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryBank {
    /// Bank index within its [`MemorySystem`].
    pub index: usize,
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Peak bandwidth in bytes/second.
    pub peak_bw: f64,
    /// The SLR whose fabric the bank's port attaches to.
    pub slr: SlrId,
}

/// An ordered set of banks — the device's off-chip memory.
#[derive(Debug, Clone, PartialEq)]
pub struct MemorySystem {
    name: String,
    banks: Vec<MemoryBank>,
}

impl MemorySystem {
    /// The U200's four 16 GB DDR4-2400 channels (19.2 GB/s peak each).
    /// Affinity follows the card's floorplan: channel 0 attaches to
    /// SLR0, channels 1–2 to SLR1 (next to the shell), channel 3 to
    /// SLR2.
    pub fn u200_ddr() -> Self {
        let slrs = [SlrId::Slr0, SlrId::Slr1, SlrId::Slr1, SlrId::Slr2];
        MemorySystem {
            name: "u200-ddr4".into(),
            banks: slrs
                .iter()
                .enumerate()
                .map(|(index, &slr)| MemoryBank {
                    index,
                    capacity_bytes: 16 << 30,
                    peak_bw: 19.2e9,
                    slr,
                })
                .collect(),
        }
    }

    /// A U280-style HBM2 subsystem: 32 pseudo-channels of 256 MiB each
    /// (8 GB across two stacks) at 14.375 GB/s apiece (460 GB/s
    /// aggregate). Every pseudo-channel port lands in the bottom SLR —
    /// the stacks sit under SLR0, so kernels elsewhere pay an SLR
    /// crossing to reach any bank.
    pub fn u280_hbm2() -> Self {
        MemorySystem {
            name: "u280-hbm2".into(),
            banks: (0..32)
                .map(|index| MemoryBank {
                    index,
                    capacity_bytes: 256 << 20,
                    peak_bw: 14.375e9,
                    slr: SlrId::Slr0,
                })
                .collect(),
        }
    }

    /// The 1-bank degenerate system: one aggregate pipe of the given
    /// capacity and bandwidth. This is exactly the pre-banking flat
    /// model — per-bank port arbitration collapses to the old shared
    /// quote, and the dataflow emulation reproduces the flat
    /// `SimulationReport` cycle-for-cycle (pinned by test).
    pub fn flat(capacity_bytes: u64, peak_bw: f64) -> Self {
        MemorySystem {
            name: "flat".into(),
            banks: vec![MemoryBank {
                index: 0,
                capacity_bytes,
                peak_bw,
                slr: SlrId::Slr0,
            }],
        }
    }

    /// The U200 DDR totals folded into one flat bank (the degenerate
    /// form of [`MemorySystem::u200_ddr`]).
    pub fn u200_flat() -> Self {
        let ddr = Self::u200_ddr();
        Self::flat(ddr.total_capacity_bytes(), ddr.total_peak_bw())
    }

    /// Identifier ("u200-ddr4", "u280-hbm2", "flat").
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of banks.
    pub fn num_banks(&self) -> usize {
        self.banks.len()
    }

    /// The banks in index order.
    pub fn banks(&self) -> &[MemoryBank] {
        &self.banks
    }

    /// One bank by index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn bank(&self, index: usize) -> &MemoryBank {
        &self.banks[index]
    }

    /// Total capacity over all banks.
    pub fn total_capacity_bytes(&self) -> u64 {
        self.banks.iter().map(|b| b.capacity_bytes).sum()
    }

    /// Aggregate peak bandwidth over all banks.
    pub fn total_peak_bw(&self) -> f64 {
        self.banks.iter().map(|b| b.peak_bw).sum()
    }
}

/// One DDR-resident stream of a pipelined kernel group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryStream {
    /// Diagnostic label ("rho gather", "geometry slice", ...).
    pub label: String,
    /// Pipeline group the stream belongs to (one group per shard): the
    /// group's tasks form one Load → Compute → Store chain, so its
    /// streams all advance at the group's token rate.
    pub group: usize,
    /// 512-bit beats the stream issues per token (≥ 1).
    pub beats_per_token: u64,
    /// Tokens (elements) the stream moves per stage.
    pub tokens: u64,
    /// Bytes the stream keeps resident in its bank.
    pub resident_bytes: u64,
}

impl MemoryStream {
    /// Total port-busy cycles the stream costs its bank per stage.
    pub fn total_beats(&self) -> u64 {
        self.beats_per_token * self.tokens
    }
}

/// A total assignment of streams onto the banks of a [`MemorySystem`]:
/// `bank_of[i]` is the bank of stream `i` — every stream maps to exactly
/// one bank by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankAssignment {
    /// Bank index per stream.
    pub bank_of: Vec<usize>,
    /// Bank count of the target system.
    pub banks: usize,
}

impl BankAssignment {
    /// The naive baseline: stream `i` lands on bank `i mod banks`,
    /// ignoring traffic and capacity (what a shell linker does when
    /// nobody passes `--sp` flags).
    pub fn round_robin(streams: &[MemoryStream], system: &MemorySystem) -> Self {
        let banks = system.num_banks().max(1);
        BankAssignment {
            bank_of: (0..streams.len()).map(|i| i % banks).collect(),
            banks,
        }
    }

    /// Capacity-aware greedy: streams are placed in descending
    /// beat-traffic order, each onto the least-loaded bank that still
    /// has room for its resident bytes (falling back to the least-loaded
    /// bank outright when nothing fits — oversubscription is reported by
    /// [`BankAssignment::capacity_respected`], never hidden by a panic).
    pub fn greedy(streams: &[MemoryStream], system: &MemorySystem) -> Self {
        let banks = system.num_banks().max(1);
        let mut order: Vec<usize> = (0..streams.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse((streams[i].total_beats(), i)));
        let mut load = vec![0u64; banks];
        let mut free: Vec<u64> = system.banks().iter().map(|b| b.capacity_bytes).collect();
        let mut bank_of = vec![0usize; streams.len()];
        for &i in &order {
            let s = &streams[i];
            let fits = (0..banks)
                .filter(|&b| free[b] >= s.resident_bytes)
                .min_by_key(|&b| (load[b], b));
            let b = fits.unwrap_or_else(|| {
                (0..banks)
                    .min_by_key(|&b| (load[b], b))
                    .expect("banks >= 1")
            });
            bank_of[i] = b;
            load[b] += s.total_beats();
            free[b] = free[b].saturating_sub(s.resident_bytes);
        }
        BankAssignment { bank_of, banks }
    }

    /// Whether every bank's resident footprint fits its capacity.
    pub fn capacity_respected(&self, streams: &[MemoryStream], system: &MemorySystem) -> bool {
        let mut used = vec![0u64; self.banks];
        for (s, &b) in streams.iter().zip(&self.bank_of) {
            used[b] += s.resident_bytes;
        }
        used.iter()
            .zip(system.banks())
            .all(|(&u, bank)| u <= bank.capacity_bytes)
    }

    /// Per-bank total port-busy beats under this assignment.
    pub fn bank_beats(&self, streams: &[MemoryStream]) -> Vec<u64> {
        let mut beats = vec![0u64; self.banks];
        for (s, &b) in streams.iter().zip(&self.bank_of) {
            beats[b] += s.total_beats();
        }
        beats
    }

    /// Banks with at least one stream.
    pub fn banks_used(&self) -> usize {
        let mut seen = vec![false; self.banks];
        for &b in &self.bank_of {
            seen[b] = true;
        }
        seen.iter().filter(|&&s| s).count()
    }
}

/// Closed-form makespan bound of an assignment, in cycles: the slowest
/// single-port bank (Σ beats of its streams) or the slowest pipeline
/// group (its compute floor, or its own heaviest stream), whichever
/// dominates. `group_floor_cycles[g]` is group `g`'s bank-independent
/// floor (tokens × compute II). The DES refines this bound with fill
/// latencies and same-cycle arbitration; planners use the closed form
/// because it is exact in steady state and O(streams) to evaluate.
pub fn modeled_makespan_cycles(
    streams: &[MemoryStream],
    assignment: &BankAssignment,
    group_floor_cycles: &[u64],
) -> u64 {
    let bank_bound = assignment
        .bank_beats(streams)
        .into_iter()
        .max()
        .unwrap_or(0);
    let stream_bound = streams.iter().map(MemoryStream::total_beats).max();
    let group_bound = group_floor_cycles.iter().copied().max().unwrap_or(0);
    bank_bound.max(stream_bound.unwrap_or(0)).max(group_bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn stream(group: usize, beats: u64, tokens: u64, resident: u64) -> MemoryStream {
        MemoryStream {
            label: format!("s{group}"),
            group,
            beats_per_token: beats,
            tokens,
            resident_bytes: resident,
        }
    }

    #[test]
    fn production_instances_match_the_datasheets() {
        let ddr = MemorySystem::u200_ddr();
        assert_eq!(ddr.num_banks(), 4);
        assert_eq!(ddr.total_capacity_bytes(), 64 << 30);
        assert!((ddr.total_peak_bw() - 4.0 * 19.2e9).abs() < 1.0);
        assert_eq!(ddr.bank(0).slr, SlrId::Slr0);
        assert_eq!(ddr.bank(1).slr, SlrId::Slr1);
        assert_eq!(ddr.bank(2).slr, SlrId::Slr1);
        assert_eq!(ddr.bank(3).slr, SlrId::Slr2);

        let hbm = MemorySystem::u280_hbm2();
        assert_eq!(hbm.num_banks(), 32);
        assert_eq!(hbm.total_capacity_bytes(), 8 << 30);
        assert!((hbm.total_peak_bw() - 460.0e9).abs() < 1e9);
        assert!(hbm.banks().iter().all(|b| b.slr == SlrId::Slr0));

        // The flat fold preserves the aggregate quote exactly.
        let flat = MemorySystem::u200_flat();
        assert_eq!(flat.num_banks(), 1);
        assert_eq!(flat.total_capacity_bytes(), ddr.total_capacity_bytes());
        assert_eq!(flat.total_peak_bw(), ddr.total_peak_bw());
    }

    #[test]
    fn greedy_separates_the_heavy_stream() {
        // One heavy stream + four light ones on two banks: greedy must
        // not co-locate a light stream with the heavy one.
        let streams = vec![
            stream(0, 10, 100, 64),
            stream(0, 1, 100, 64),
            stream(0, 1, 100, 64),
            stream(0, 1, 100, 64),
            stream(0, 1, 100, 64),
        ];
        let sys = MemorySystem::flat(1 << 30, 1.0);
        let two = MemorySystem {
            name: "two".into(),
            banks: (0..2)
                .map(|index| MemoryBank {
                    index,
                    capacity_bytes: 1 << 30,
                    peak_bw: 1.0,
                    slr: SlrId::Slr0,
                })
                .collect(),
        };
        let g = BankAssignment::greedy(&streams, &two);
        let beats = g.bank_beats(&streams);
        assert_eq!(beats.iter().max(), Some(&1000));
        // 1-bank systems map everything to bank 0.
        let f = BankAssignment::round_robin(&streams, &sys);
        assert!(f.bank_of.iter().all(|&b| b == 0));
    }

    #[test]
    fn greedy_respects_capacity_when_feasible() {
        // Two big streams that only fit one per bank.
        let streams = vec![stream(0, 1, 10, 900), stream(1, 1, 10, 900)];
        let two = MemorySystem {
            name: "two".into(),
            banks: (0..2)
                .map(|index| MemoryBank {
                    index,
                    capacity_bytes: 1000,
                    peak_bw: 1.0,
                    slr: SlrId::Slr0,
                })
                .collect(),
        };
        let g = BankAssignment::greedy(&streams, &two);
        assert!(g.capacity_respected(&streams, &two));
        assert_ne!(g.bank_of[0], g.bank_of[1]);
    }

    proptest! {
        /// Every planner maps every stream to exactly one in-range bank.
        #[test]
        fn prop_total_in_range_assignment(
            n in 1usize..40,
            banks in 1usize..33,
            seed in 0u64..1000,
        ) {
            let streams: Vec<MemoryStream> = (0..n)
                .map(|i| stream(i, 1 + (seed + i as u64) % 12, 1 + (i as u64 % 50), 64))
                .collect();
            let sys = MemorySystem {
                name: "t".into(),
                banks: (0..banks).map(|index| MemoryBank {
                    index, capacity_bytes: 1 << 20, peak_bw: 1.0, slr: SlrId::Slr0,
                }).collect(),
            };
            for a in [BankAssignment::round_robin(&streams, &sys),
                      BankAssignment::greedy(&streams, &sys)] {
                prop_assert_eq!(a.bank_of.len(), streams.len());
                prop_assert!(a.bank_of.iter().all(|&b| b < banks));
            }
        }

        /// Greedy never exceeds a bank's capacity when a feasible
        /// placement exists (here: every stream fits any bank and the
        /// per-bank stream count is unconstrained by bytes).
        #[test]
        fn prop_greedy_capacity(
            n in 1usize..30,
            banks in 1usize..8,
        ) {
            let streams: Vec<MemoryStream> = (0..n)
                .map(|i| stream(i, 1, 10, 100))
                .collect();
            let cap = 100 * n.div_ceil(banks) as u64 + 100;
            let sys = MemorySystem {
                name: "t".into(),
                banks: (0..banks).map(|index| MemoryBank {
                    index, capacity_bytes: cap, peak_bw: 1.0, slr: SlrId::Slr0,
                }).collect(),
            };
            let g = BankAssignment::greedy(&streams, &sys);
            prop_assert!(g.capacity_respected(&streams, &sys));
        }

        /// Greedy's modeled makespan never loses to round-robin on
        /// capacity-unconstrained instances (it balances beat load).
        #[test]
        fn prop_greedy_beats_round_robin_on_model(
            n in 1usize..40,
            banks in 1usize..16,
            seed in 0u64..1000,
        ) {
            let streams: Vec<MemoryStream> = (0..n)
                .map(|i| stream(i, 1 + (seed * 7 + i as u64 * 13) % 20, 1 + (i as u64 % 30), 1))
                .collect();
            let sys = MemorySystem {
                name: "t".into(),
                banks: (0..banks).map(|index| MemoryBank {
                    index, capacity_bytes: 1 << 30, peak_bw: 1.0, slr: SlrId::Slr0,
                }).collect(),
            };
            let rr = BankAssignment::round_robin(&streams, &sys);
            let g = BankAssignment::greedy(&streams, &sys);
            let floors = vec![0u64];
            prop_assert!(
                modeled_makespan_cycles(&streams, &g, &floors)
                    <= modeled_makespan_cycles(&streams, &rr, &floors)
            );
        }
    }
}
