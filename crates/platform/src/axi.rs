//! DDR channel bandwidth and AXI transfer-time model.
//!
//! The paper's accelerator streams element data through multiple AXI
//! interfaces into four DDR4 channels (§III-C). Transfer time is bounded
//! by (a) the kernel-side interface width × clock and (b) the DDR
//! channel's effective bandwidth shared by the bundles mapped to it.

use crate::u200::U200;

/// Fraction of DDR4 peak bandwidth that random-ish FEM gather traffic
/// sustains (burst efficiency after row misses and read/write turnaround).
pub const DDR_EFFICIENCY: f64 = 0.80;

/// Kernel-side width of one AXI data beat, in bits (Vitis default
/// maximum).
pub const AXI_DATA_WIDTH_BITS: u32 = 512;

/// Effective bandwidth of one AXI bundle at the kernel clock
/// (bytes/second): one `AXI_DATA_WIDTH_BITS` beat per cycle.
pub fn bundle_bandwidth(f_mhz: f64) -> f64 {
    (AXI_DATA_WIDTH_BITS as f64 / 8.0) * f_mhz * 1.0e6
}

/// Mapping of AXI bundles onto DDR channels (round-robin by default).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelMap {
    /// `assignment[i]` = DDR channel of bundle `i`.
    pub assignment: Vec<usize>,
    /// Number of DDR channels.
    pub channels: usize,
}

impl ChannelMap {
    /// Spreads `bundles` across the device's DDR channels round-robin.
    pub fn round_robin(bundles: usize, device: &U200) -> Self {
        let channels = device.ddr_channels();
        ChannelMap {
            assignment: (0..bundles).map(|b| b % channels).collect(),
            channels,
        }
    }

    /// Maps every bundle to channel 0 (the unoptimized single-channel
    /// configuration).
    pub fn single_channel(bundles: usize) -> Self {
        ChannelMap {
            assignment: vec![0; bundles],
            channels: 1,
        }
    }

    /// Number of bundles mapped.
    pub fn bundles(&self) -> usize {
        self.assignment.len()
    }
}

/// Time to move `bytes_per_bundle[i]` through bundle `i`, accounting for
/// kernel-side width limits and DDR channel sharing.
///
/// Bundles move data concurrently; each DDR channel serves its bundles'
/// aggregate traffic at `peak × DDR_EFFICIENCY`; each bundle is
/// additionally limited by its own kernel-side bandwidth. The transfer
/// finishes when the slowest channel (or bundle) finishes.
///
/// # Panics
///
/// Panics if `bytes_per_bundle.len() != map.bundles()`.
pub fn transfer_seconds(
    bytes_per_bundle: &[u64],
    map: &ChannelMap,
    device: &U200,
    f_mhz: f64,
) -> f64 {
    assert_eq!(bytes_per_bundle.len(), map.bundles(), "bundle count");
    let chan_bw = device.ddr_peak_bw() * DDR_EFFICIENCY;
    let bundle_bw = bundle_bandwidth(f_mhz);
    // Per-channel aggregate.
    let mut per_channel = vec![0u64; map.channels.max(1)];
    for (b, &bytes) in bytes_per_bundle.iter().enumerate() {
        per_channel[map.assignment[b]] += bytes;
    }
    let channel_time = per_channel
        .iter()
        .map(|&bytes| bytes as f64 / chan_bw)
        .fold(0.0, f64::max);
    let bundle_time = bytes_per_bundle
        .iter()
        .map(|&bytes| bytes as f64 / bundle_bw)
        .fold(0.0, f64::max);
    channel_time.max(bundle_time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bundle_bandwidth_scales_with_clock() {
        let b150 = bundle_bandwidth(150.0);
        let b300 = bundle_bandwidth(300.0);
        assert!((b300 / b150 - 2.0).abs() < 1e-12);
        // 64 B/cycle at 150 MHz = 9.6 GB/s.
        assert!((b150 - 9.6e9).abs() < 1e6);
    }

    #[test]
    fn spreading_bundles_beats_single_channel() {
        let dev = U200::new();
        let bytes = vec![1 << 30; 4]; // 1 GiB per bundle
        let spread = transfer_seconds(&bytes, &ChannelMap::round_robin(4, &dev), &dev, 300.0);
        let packed = transfer_seconds(&bytes, &ChannelMap::single_channel(4), &dev, 300.0);
        assert!(packed > 3.5 * spread, "packed {packed} vs spread {spread}");
    }

    #[test]
    fn kernel_clock_can_be_the_bottleneck() {
        let dev = U200::new();
        // One bundle: at 100 MHz the 6.4 GB/s interface is slower than
        // the 15.4 GB/s effective DDR channel.
        let bytes = vec![1 << 30];
        let map = ChannelMap::round_robin(1, &dev);
        let slow = transfer_seconds(&bytes, &map, &dev, 100.0);
        let fast = transfer_seconds(&bytes, &map, &dev, 300.0);
        assert!(slow > fast);
        let expect = (1u64 << 30) as f64 / bundle_bandwidth(100.0);
        assert!((slow - expect).abs() < 1e-9);
    }

    proptest! {
        /// Transfer time is monotone in bytes and never beats the ideal.
        #[test]
        fn prop_transfer_monotone(bytes in 1u64..u64::from(u32::MAX), extra in 1u64..1_000_000) {
            let dev = U200::new();
            let map = ChannelMap::round_robin(2, &dev);
            let t1 = transfer_seconds(&[bytes, bytes], &map, &dev, 200.0);
            let t2 = transfer_seconds(&[bytes + extra, bytes], &map, &dev, 200.0);
            prop_assert!(t2 >= t1);
            let ideal = (2 * bytes) as f64 / (2.0 * dev.ddr_peak_bw());
            prop_assert!(t1 >= ideal);
        }
    }
}
