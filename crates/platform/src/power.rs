//! FPGA power model.
//!
//! The paper reports (§IV-B): "the FPGA averaged 32.4W for the core
//! application, with an additional 30.7W for peripherals and 1.7W for the
//! rest of the system". This module models that three-way breakdown:
//!
//! * **core** — static region leakage plus dynamic power proportional to
//!   resource toggling at the kernel clock,
//! * **peripherals** — DDR channels, PCIe/XDMA, shell logic (constant
//!   while the card is active),
//! * **rest** — card management, fans, auxiliary rails.

use hls_kernel::resources::ResourceUsage;

/// Coefficients of the FPGA power model. Defaults are fitted so the
/// paper's proposed design (Table I utilization at 150 MHz) lands on the
/// reported 32.4 W core power; the provenance of every constant is the
/// paper's §IV-B measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaPowerModel {
    /// Core-region static power (W).
    pub static_core_w: f64,
    /// W per LUT per MHz.
    pub w_per_lut_mhz: f64,
    /// W per FF per MHz.
    pub w_per_ff_mhz: f64,
    /// W per DSP per MHz.
    pub w_per_dsp_mhz: f64,
    /// W per BRAM18K per MHz.
    pub w_per_bram_mhz: f64,
    /// W per URAM per MHz.
    pub w_per_uram_mhz: f64,
    /// W per active DDR channel.
    pub ddr_channel_w: f64,
    /// PCIe + XDMA shell power (W).
    pub pcie_shell_w: f64,
    /// Everything else on the card (W).
    pub rest_w: f64,
}

impl Default for FpgaPowerModel {
    fn default() -> Self {
        FpgaPowerModel {
            static_core_w: 5.0,
            w_per_lut_mhz: 8.0e-8,
            w_per_ff_mhz: 4.0e-8,
            w_per_dsp_mhz: 2.0e-5,
            w_per_bram_mhz: 4.5e-5,
            w_per_uram_mhz: 1.0e-4,
            ddr_channel_w: 5.5,
            pcie_shell_w: 8.7,
            rest_w: 1.7,
        }
    }
}

/// The three-way power breakdown of §IV-B.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaPowerBreakdown {
    /// Core application power (static + dynamic), W.
    pub core_w: f64,
    /// Peripheral power (DDR + PCIe + shell), W.
    pub peripherals_w: f64,
    /// Rest-of-card power, W.
    pub rest_w: f64,
}

impl FpgaPowerBreakdown {
    /// Total card power.
    pub fn total_w(&self) -> f64 {
        self.core_w + self.peripherals_w + self.rest_w
    }
}

impl std::fmt::Display for FpgaPowerBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "core {:.1} W + peripherals {:.1} W + rest {:.1} W = {:.1} W",
            self.core_w,
            self.peripherals_w,
            self.rest_w,
            self.total_w()
        )
    }
}

impl FpgaPowerModel {
    /// Dynamic power of `usage` toggling at `f_mhz`.
    pub fn dynamic_core_w(&self, usage: &ResourceUsage, f_mhz: f64) -> f64 {
        f_mhz
            * (usage.lut as f64 * self.w_per_lut_mhz
                + usage.ff as f64 * self.w_per_ff_mhz
                + usage.dsp as f64 * self.w_per_dsp_mhz
                + usage.bram18k as f64 * self.w_per_bram_mhz
                + usage.uram as f64 * self.w_per_uram_mhz)
    }

    /// Full breakdown for a design with `usage` at `f_mhz` using
    /// `active_ddr_channels` channels.
    pub fn breakdown(
        &self,
        usage: &ResourceUsage,
        f_mhz: f64,
        active_ddr_channels: usize,
    ) -> FpgaPowerBreakdown {
        FpgaPowerBreakdown {
            core_w: self.static_core_w + self.dynamic_core_w(usage, f_mhz),
            peripherals_w: self.ddr_channel_w * active_ddr_channels as f64 + self.pcie_shell_w,
            rest_w: self.rest_w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Device-wide usage of the paper's proposed design (Table I
    /// percentages applied to the U200 totals).
    fn proposed_usage() -> ResourceUsage {
        ResourceUsage {
            ff: (0.2529 * 2_364_480.0) as u64,
            lut: (0.4115 * 1_182_240.0) as u64,
            bram18k: (0.4398 * 4_320.0) as u64,
            uram: (0.1177 * 960.0) as u64,
            dsp: (0.1823 * 6_840.0) as u64,
        }
    }

    #[test]
    fn core_power_matches_paper_scale() {
        let model = FpgaPowerModel::default();
        let b = model.breakdown(&proposed_usage(), 150.0, 4);
        // Paper: 32.4 W core. The fitted model must land within 15%.
        assert!(
            (b.core_w - 32.4).abs() < 0.15 * 32.4,
            "core power {:.1} W vs paper 32.4 W",
            b.core_w
        );
        // Paper: 30.7 W peripherals.
        assert!(
            (b.peripherals_w - 30.7).abs() < 0.1 * 30.7,
            "peripherals {:.1} W vs paper 30.7 W",
            b.peripherals_w
        );
        assert!((b.rest_w - 1.7).abs() < 1e-12);
    }

    #[test]
    fn power_scales_with_frequency() {
        let model = FpgaPowerModel::default();
        let u = proposed_usage();
        let b100 = model.breakdown(&u, 100.0, 4);
        let b150 = model.breakdown(&u, 150.0, 4);
        assert!(b150.core_w > b100.core_w);
        // Dynamic part scales linearly.
        let d100 = model.dynamic_core_w(&u, 100.0);
        let d150 = model.dynamic_core_w(&u, 150.0);
        assert!((d150 / d100 - 1.5).abs() < 1e-9);
    }

    proptest! {
        /// More resources never consume less power.
        #[test]
        fn prop_power_monotone(lut in 0u64..1_000_000, extra in 1u64..100_000) {
            let model = FpgaPowerModel::default();
            let mk = |l: u64| ResourceUsage { lut: l, ff: l, dsp: 100, bram18k: 100, uram: 10 };
            prop_assert!(
                model.dynamic_core_w(&mk(lut + extra), 150.0) > model.dynamic_core_w(&mk(lut), 150.0)
            );
        }
    }
}
