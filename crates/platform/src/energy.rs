//! Energy accounting: turns the §IV-B latency and power numbers into
//! energy-to-solution and energy-delay-product comparisons — the metric
//! that actually decides accelerator deployments.

use crate::power::FpgaPowerBreakdown;

/// Energy spent by one execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Average power (W).
    pub watts: f64,
}

impl EnergyReport {
    /// Energy in joules.
    pub fn joules(&self) -> f64 {
        self.seconds * self.watts
    }

    /// Energy-delay product (J·s).
    pub fn edp(&self) -> f64 {
        self.joules() * self.seconds
    }
}

/// CPU-vs-FPGA energy comparison for the same simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyComparison {
    /// CPU run.
    pub cpu: EnergyReport,
    /// FPGA-accelerated run (whole card power).
    pub fpga: EnergyReport,
}

impl EnergyComparison {
    /// Builds the comparison from run times and power models.
    pub fn new(
        cpu_seconds: f64,
        cpu_watts: f64,
        fpga_seconds: f64,
        fpga_power: &FpgaPowerBreakdown,
    ) -> Self {
        EnergyComparison {
            cpu: EnergyReport {
                seconds: cpu_seconds,
                watts: cpu_watts,
            },
            fpga: EnergyReport {
                seconds: fpga_seconds,
                watts: fpga_power.total_w(),
            },
        }
    }

    /// Energy ratio CPU / FPGA (> 1 means the FPGA saves energy).
    pub fn energy_ratio(&self) -> f64 {
        self.cpu.joules() / self.fpga.joules()
    }

    /// EDP ratio CPU / FPGA.
    pub fn edp_ratio(&self) -> f64 {
        self.cpu.edp() / self.fpga.edp()
    }
}

impl std::fmt::Display for EnergyComparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "  CPU : {:.2} s × {:.1} W = {:.1} kJ",
            self.cpu.seconds,
            self.cpu.watts,
            self.cpu.joules() / 1e3
        )?;
        writeln!(
            f,
            "  FPGA: {:.2} s × {:.1} W = {:.1} kJ",
            self.fpga.seconds,
            self.fpga.watts,
            self.fpga.joules() / 1e3
        )?;
        write!(
            f,
            "  energy ratio {:.2}× | EDP ratio {:.2}×",
            self.energy_ratio(),
            self.edp_ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::FpgaPowerModel;
    use hls_kernel::resources::ResourceUsage;
    use proptest::prelude::*;

    fn fpga_power() -> FpgaPowerBreakdown {
        FpgaPowerModel::default().breakdown(
            &ResourceUsage {
                lut: 200_000,
                ff: 300_000,
                dsp: 1000,
                bram18k: 800,
                uram: 20,
            },
            150.0,
            4,
        )
    }

    #[test]
    fn paper_like_case_saves_energy() {
        // 45% latency cut and ~2.4× lower card power ⇒ ~4× less energy.
        let cmp = EnergyComparison::new(100.0, 120.42, 55.0, &fpga_power());
        assert!(cmp.energy_ratio() > 3.0, "{}", cmp.energy_ratio());
        assert!(cmp.edp_ratio() > cmp.energy_ratio());
    }

    #[test]
    fn display_mentions_both_sides() {
        let cmp = EnergyComparison::new(10.0, 120.0, 5.0, &fpga_power());
        let s = format!("{cmp}");
        assert!(s.contains("CPU"));
        assert!(s.contains("FPGA"));
        assert!(s.contains("EDP"));
    }

    proptest! {
        /// Energy is bilinear: scaling time scales joules.
        #[test]
        fn prop_energy_scales(t in 0.1f64..1e4, w in 1.0f64..500.0) {
            let e = EnergyReport { seconds: t, watts: w };
            let e2 = EnergyReport { seconds: 2.0 * t, watts: w };
            prop_assert!((e2.joules() - 2.0 * e.joules()).abs() < 1e-9 * e.joules());
            prop_assert!((e2.edp() - 4.0 * e.edp()).abs() < 1e-9 * e.edp());
        }
    }
}
