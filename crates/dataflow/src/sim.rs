//! The discrete-event engine.
//!
//! Simulates a [`Network`] cycle-accurately: each task starts token `k`
//! as soon as (a) its own II allows, (b) every input channel holds a ready
//! token, and (c) every output channel has a free slot. FIFO slots free
//! when the consumer starts; PIPO slots free when the consumer finishes
//! (it holds its bank for the whole computation).

use crate::network::{ChannelKind, Network};
use crate::DataflowError;
use std::collections::BinaryHeap;

/// Per-task simulation statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskStats {
    /// Task name.
    pub name: String,
    /// Tokens processed.
    pub invocations: u64,
    /// First token start cycle.
    pub first_start: u64,
    /// Last token finish cycle.
    pub last_finish: u64,
    /// Cycles the task spent unable to start although its II had elapsed
    /// (starved on inputs or blocked on outputs).
    pub stall_cycles: u64,
}

impl TaskStats {
    /// Fraction of the steady window the task was initiating tokens:
    /// `invocations · ii / (last_finish − first_start)`.
    pub fn utilization(&self, ii: u64) -> f64 {
        let span = self.last_finish.saturating_sub(self.first_start).max(1);
        (self.invocations * ii) as f64 / span as f64
    }
}

/// Per-channel simulation statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelStats {
    /// Channel name.
    pub name: String,
    /// Peak simultaneous occupancy observed.
    pub peak_occupancy: usize,
    /// Total tokens transferred.
    pub tokens_transferred: u64,
}

/// Per-bank simulation statistics (present only when the network has
/// banked channels).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankStats {
    /// Bank index.
    pub bank: usize,
    /// Cycles the bank's port was reserved by producer bursts.
    pub reserved_cycles: u64,
    /// Cycles tasks sat ready-to-start waiting only for this bank's
    /// port (attributed to every bank the waiting task issues through).
    pub stall_cycles: u64,
    /// Tokens issued through the bank.
    pub tokens: u64,
}

/// One row of the execution trace: task `task` started token `token` at
/// cycle `start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Task index.
    pub task: usize,
    /// Token index.
    pub token: u64,
    /// Start cycle.
    pub start: u64,
    /// Finish cycle.
    pub finish: u64,
}

/// The outcome of a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimulationReport {
    /// Total cycles from 0 to the last task finish.
    pub makespan: u64,
    /// Per-task statistics (same order as the network's tasks).
    pub task_stats: Vec<TaskStats>,
    /// Per-channel statistics.
    pub channel_stats: Vec<ChannelStats>,
    /// Per-bank statistics (empty unless the network has banked
    /// channels, so unbanked reports are unchanged by the banking
    /// overlay).
    pub bank_stats: Vec<BankStats>,
    /// Optional full trace (when requested).
    pub trace: Vec<TraceEvent>,
}

impl SimulationReport {
    /// Observed steady-state initiation interval of the sink task
    /// (makespan slope); equals the bottleneck II once pipelined.
    pub fn observed_ii(&self, tokens: u64) -> f64 {
        if tokens < 2 {
            return self.makespan as f64;
        }
        let sink = self
            .task_stats
            .iter()
            .max_by_key(|t| t.last_finish)
            .expect("non-empty");
        (sink.last_finish - sink.first_start) as f64 / (tokens - 1) as f64
    }
}

#[derive(Debug, Clone)]
struct ChannelState {
    /// Ready times of queued tokens (FIFO order).
    queue: std::collections::VecDeque<u64>,
    /// Occupied slots (reservations included).
    occupancy: usize,
    peak: usize,
    transferred: u64,
}

#[derive(Debug, Clone)]
struct TaskState {
    started: u64,
    finished: u64,
    next_allowed_start: u64,
    first_start: u64,
    last_finish: u64,
    ready_since: Option<u64>,
    stall: u64,
}

/// Runs the simulation to completion.
///
/// # Errors
///
/// [`DataflowError::Deadlock`] if no task can make progress while work
/// remains (cannot happen for networks that pass the builder's
/// design-rule checks, but returned rather than looping forever).
pub fn simulate(net: &Network) -> Result<SimulationReport, DataflowError> {
    simulate_with_trace(net, false)
}

/// Runs the simulation, optionally recording every task invocation.
///
/// # Errors
///
/// See [`simulate`].
pub fn simulate_with_trace(
    net: &Network,
    trace_on: bool,
) -> Result<SimulationReport, DataflowError> {
    let nt = net.tasks().len();
    // Per-task token targets (per-task overrides, or the network count).
    let targets: Vec<u64> = (0..nt).map(|tid| net.task_tokens(tid)).collect();
    // Bank arbitration state: the distinct banks each task issues its
    // output bursts through, and per-bank port bookkeeping.
    let nbanks = net.max_bank().map_or(0, |b| b + 1);
    let task_banks: Vec<Vec<usize>> = net
        .tasks()
        .iter()
        .map(|t| {
            let mut banks: Vec<usize> = t
                .outputs
                .iter()
                .filter_map(|&c| net.channels()[c].bank)
                .collect();
            banks.sort_unstable();
            banks.dedup();
            banks
        })
        .collect();
    let mut bank_free_at = vec![0u64; nbanks];
    let mut bank_reserved = vec![0u64; nbanks];
    let mut bank_stall = vec![0u64; nbanks];
    let mut bank_tokens = vec![0u64; nbanks];
    let mut bank_block_since: Vec<Option<u64>> = vec![None; nt];
    let mut channels: Vec<ChannelState> = net
        .channels()
        .iter()
        .map(|_| ChannelState {
            queue: std::collections::VecDeque::new(),
            occupancy: 0,
            peak: 0,
            transferred: 0,
        })
        .collect();
    let mut tasks: Vec<TaskState> = (0..nt)
        .map(|_| TaskState {
            started: 0,
            finished: 0,
            next_allowed_start: 0,
            first_start: u64::MAX,
            last_finish: 0,
            ready_since: None,
            stall: 0,
        })
        .collect();
    let mut trace = Vec::new();

    // Pending "slot release" / "token ready" / "task finish" events.
    #[derive(PartialEq, Eq)]
    struct Ev(u64);
    impl Ord for Ev {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            other.0.cmp(&self.0) // min-heap
        }
    }
    impl PartialOrd for Ev {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    let mut events: BinaryHeap<Ev> = BinaryHeap::new();
    // Deferred releases: (time, channel) slot frees; (time,) handled by
    // scanning at each event time.
    let mut releases: Vec<(u64, usize)> = Vec::new(); // (time, channel)
    let mut finishes: Vec<(u64, usize)> = Vec::new(); // (time, task)
    let mut ready_pushes: Vec<(u64, usize)> = Vec::new(); // (time, channel)

    let mut now = 0u64;
    events.push(Ev(0));
    let total_needed: u64 = targets.iter().sum();
    let mut total_done = 0u64;

    while total_done < total_needed {
        // Advance time to the next event.
        let Some(Ev(t)) = events.pop() else {
            return Err(DataflowError::Deadlock {
                at_cycle: now,
                stuck_tasks: net
                    .tasks()
                    .iter()
                    .zip(&tasks)
                    .zip(&targets)
                    .filter(|((_, s), &target)| s.started < target)
                    .map(|((t, _), _)| t.name.clone())
                    .collect(),
            });
        };
        // Coalesce same-time events.
        while let Some(Ev(t2)) = events.peek() {
            if *t2 == t {
                events.pop();
            } else {
                break;
            }
        }
        now = t;

        // Apply matured releases / finishes / token arrivals.
        releases.retain(|&(rt, c)| {
            if rt <= now {
                channels[c].occupancy -= 1;
                false
            } else {
                true
            }
        });
        finishes.retain(|&(ft, tid)| {
            if ft <= now {
                tasks[tid].finished += 1;
                tasks[tid].last_finish = tasks[tid].last_finish.max(ft);
                total_done += 1;
                false
            } else {
                true
            }
        });
        ready_pushes.retain(|&(rt, c)| {
            if rt <= now {
                channels[c].queue.push_back(rt);
                false
            } else {
                true
            }
        });

        // Greedily start every task that can run at `now`; repeat until a
        // fixed point (a start may free an input slot for an upstream
        // task at the same cycle).
        let mut changed = true;
        while changed {
            changed = false;
            for (tid, spec) in net.tasks().iter().enumerate() {
                let st = &tasks[tid];
                if st.started >= targets[tid] || st.next_allowed_start > now {
                    continue;
                }
                // Inputs ready?
                let inputs_ready = spec
                    .inputs
                    .iter()
                    .all(|&c| channels[c].queue.front().is_some_and(|&rt| rt <= now));
                // Output space?
                let outputs_free = spec
                    .outputs
                    .iter()
                    .all(|&c| channels[c].occupancy < net.channels()[c].capacity);
                // Bank ports free? Same-cycle contenders serialize in
                // ascending task index: the first task in declaration
                // order wins the port and the rest re-test at the
                // bank's release event.
                let banks_free = task_banks[tid].iter().all(|&b| bank_free_at[b] <= now);
                if !(inputs_ready && outputs_free && banks_free) {
                    if tasks[tid].ready_since.is_none() {
                        tasks[tid].ready_since = Some(now);
                    }
                    if inputs_ready && outputs_free && bank_block_since[tid].is_none() {
                        // Blocked *only* by bank ports.
                        bank_block_since[tid] = Some(now);
                    }
                    continue;
                }
                // Start token.
                let st = &mut tasks[tid];
                if let Some(since) = st.ready_since.take() {
                    st.stall += now - since;
                }
                if let Some(since) = bank_block_since[tid].take() {
                    for &b in &task_banks[tid] {
                        bank_stall[b] += now - since;
                    }
                }
                // Reserve this token's burst on every output bank.
                for &b in &task_banks[tid] {
                    bank_free_at[b] = now + spec.ii;
                    bank_reserved[b] += spec.ii;
                    bank_tokens[b] += 1;
                }
                let token = st.started;
                st.started += 1;
                st.first_start = st.first_start.min(now);
                st.next_allowed_start = now + spec.ii;
                events.push(Ev(st.next_allowed_start));
                let finish = now + spec.latency;
                finishes.push((finish, tid));
                events.push(Ev(finish));
                if trace_on {
                    trace.push(TraceEvent {
                        task: tid,
                        token,
                        start: now,
                        finish,
                    });
                }
                // Consume inputs.
                for &c in &spec.inputs {
                    channels[c].queue.pop_front();
                    channels[c].transferred += 1;
                    match net.channels()[c].kind {
                        ChannelKind::Fifo => {
                            // Slot frees immediately at consumer start.
                            channels[c].occupancy -= 1;
                        }
                        ChannelKind::Pipo => {
                            // Slot held until the consumer finishes.
                            releases.push((finish, c));
                        }
                    }
                }
                // Reserve outputs; data ready at finish.
                for &c in &spec.outputs {
                    channels[c].occupancy += 1;
                    channels[c].peak = channels[c].peak.max(channels[c].occupancy);
                    ready_pushes.push((finish, c));
                }
                changed = true;
            }
        }
    }

    let makespan = tasks.iter().map(|t| t.last_finish).max().unwrap_or(0);
    Ok(SimulationReport {
        makespan,
        task_stats: net
            .tasks()
            .iter()
            .zip(&tasks)
            .map(|(spec, st)| TaskStats {
                name: spec.name.clone(),
                invocations: st.started,
                first_start: if st.first_start == u64::MAX {
                    0
                } else {
                    st.first_start
                },
                last_finish: st.last_finish,
                stall_cycles: st.stall,
            })
            .collect(),
        channel_stats: net
            .channels()
            .iter()
            .zip(&channels)
            .map(|(spec, st)| ChannelStats {
                name: spec.name.clone(),
                peak_occupancy: st.peak,
                tokens_transferred: st.transferred,
            })
            .collect(),
        bank_stats: (0..nbanks)
            .map(|b| BankStats {
                bank: b,
                reserved_cycles: bank_reserved[b],
                stall_cycles: bank_stall[b],
                tokens: bank_tokens[b],
            })
            .collect(),
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{ChannelKind, NetworkBuilder};
    use proptest::prelude::*;

    fn chain(iis: &[u64], lats: &[u64], cap: usize, kind: ChannelKind, tokens: u64) -> Network {
        let mut b = NetworkBuilder::new();
        let n = iis.len();
        let mut chans = Vec::new();
        for i in 0..n - 1 {
            chans.push(b.channel(format!("c{i}"), cap, kind));
        }
        for i in 0..n {
            let inputs = if i == 0 { vec![] } else { vec![chans[i - 1]] };
            let outputs = if i + 1 == n { vec![] } else { vec![chans[i]] };
            b.task(format!("t{i}"), iis[i], lats[i], inputs, outputs);
        }
        b.build(tokens).unwrap()
    }

    #[test]
    fn single_task_timing_is_exact() {
        let net = chain(&[3], &[10], 2, ChannelKind::Fifo, 100);
        let r = simulate(&net).unwrap();
        // starts at 0, 3, 6, ..., 297; finish = 297 + 10.
        assert_eq!(r.makespan, 3 * 99 + 10);
        assert_eq!(r.task_stats[0].invocations, 100);
        assert_eq!(r.task_stats[0].stall_cycles, 0);
    }

    #[test]
    fn bottleneck_sets_steady_state_rate() {
        let net = chain(&[2, 11, 3], &[5, 30, 7], 4, ChannelKind::Fifo, 500);
        let r = simulate(&net).unwrap();
        let ii = r.observed_ii(500);
        assert!(
            (ii - 11.0).abs() < 0.2,
            "observed II {ii}, expected ~11 (bottleneck)"
        );
        // Makespan ≈ fill + 11·(N−1).
        let fill: u64 = 5 + 30 + 7;
        let expect = fill + 11 * 499;
        assert!(
            (r.makespan as i64 - expect as i64).unsigned_abs() < 40,
            "makespan {} vs expected ≈{expect}",
            r.makespan
        );
    }

    #[test]
    fn fifo_vs_pipo_backpressure() {
        // Slow consumer with capacity-1 channels: PIPO holds its slot
        // through execution so the producer is throttled harder.
        let fifo = chain(&[1, 10], &[2, 10], 1, ChannelKind::Fifo, 200);
        let pipo = chain(&[1, 10], &[2, 10], 1, ChannelKind::Pipo, 200);
        let rf = simulate(&fifo).unwrap();
        let rp = simulate(&pipo).unwrap();
        assert!(
            rp.makespan >= rf.makespan,
            "pipo {} must not beat fifo {}",
            rp.makespan,
            rf.makespan
        );
        // With capacity 2 (double buffering) PIPO recovers the FIFO rate.
        let pipo2 = chain(&[1, 10], &[2, 10], 2, ChannelKind::Pipo, 200);
        let rp2 = simulate(&pipo2).unwrap();
        assert!(
            (rp2.observed_ii(200) - rf.observed_ii(200)).abs() < 0.5,
            "double-buffered PIPO should match FIFO"
        );
    }

    #[test]
    fn stalls_are_attributed_to_the_starved_task() {
        // Fast downstream task starved by a slow producer.
        let net = chain(&[20, 1], &[5, 2], 2, ChannelKind::Fifo, 50);
        let r = simulate(&net).unwrap();
        assert_eq!(r.task_stats[0].stall_cycles, 0);
        assert!(r.task_stats[1].stall_cycles > 0);
    }

    #[test]
    fn channel_stats_are_recorded() {
        let net = chain(&[1, 5], &[2, 5], 3, ChannelKind::Fifo, 100);
        let r = simulate(&net).unwrap();
        assert_eq!(r.channel_stats[0].tokens_transferred, 100);
        assert!(r.channel_stats[0].peak_occupancy >= 1);
        assert!(r.channel_stats[0].peak_occupancy <= 3);
    }

    #[test]
    fn trace_records_all_invocations() {
        let net = chain(&[2, 3], &[4, 4], 2, ChannelKind::Fifo, 25);
        let r = simulate_with_trace(&net, true).unwrap();
        assert_eq!(r.trace.len(), 50);
        // Token order per task is monotone.
        for tid in 0..2 {
            let starts: Vec<u64> = r
                .trace
                .iter()
                .filter(|e| e.task == tid)
                .map(|e| e.start)
                .collect();
            assert!(starts.windows(2).all(|w| w[0] < w[1]));
        }
        // A token is consumed only after it was produced.
        for e in r.trace.iter().filter(|e| e.task == 1) {
            let produced = r
                .trace
                .iter()
                .find(|p| p.task == 0 && p.token == e.token)
                .unwrap();
            assert!(e.start >= produced.finish);
        }
    }

    #[test]
    fn fan_out_fan_in_diamond() {
        // a → (b, c) → d : two parallel branches, no SPSC violation
        // because each branch has its own channels.
        let mut bld = NetworkBuilder::new();
        let ab = bld.channel("ab", 2, ChannelKind::Fifo);
        let ac = bld.channel("ac", 2, ChannelKind::Fifo);
        let bd = bld.channel("bd", 2, ChannelKind::Fifo);
        let cd = bld.channel("cd", 2, ChannelKind::Fifo);
        bld.task("a", 2, 3, vec![], vec![ab, ac]);
        bld.task("b", 5, 9, vec![ab], vec![bd]);
        bld.task("c", 7, 8, vec![ac], vec![cd]);
        bld.task("d", 2, 4, vec![bd, cd], vec![]);
        let net = bld.build(300).unwrap();
        let r = simulate(&net).unwrap();
        // Bottleneck is c (II 7).
        assert!((r.observed_ii(300) - 7.0).abs() < 0.2);
        assert_eq!(r.task_stats[3].invocations, 300);
    }

    /// Two independent producer→consumer pipelines; producers optionally
    /// share one memory bank for their output bursts.
    fn two_pipes(banks: [Option<usize>; 2], tokens: u64) -> Network {
        let mut b = NetworkBuilder::new();
        let mut mk = |i: usize, bank: Option<usize>| {
            let c = match bank {
                Some(bk) => b.banked_channel(format!("c{i}"), 2, ChannelKind::Fifo, bk),
                None => b.channel(format!("c{i}"), 2, ChannelKind::Fifo),
            };
            b.task(format!("p{i}"), 4, 8, vec![], vec![c]);
            b.task(format!("s{i}"), 1, 2, vec![c], vec![]);
        };
        mk(0, banks[0]);
        mk(1, banks[1]);
        b.build(tokens).unwrap()
    }

    #[test]
    fn unbanked_networks_report_no_bank_stats() {
        let net = chain(&[2, 3], &[4, 4], 2, ChannelKind::Fifo, 25);
        let r = simulate(&net).unwrap();
        assert!(r.bank_stats.is_empty());
    }

    #[test]
    fn shared_bank_serializes_and_distinct_banks_do_not() {
        let tokens = 100;
        let shared = simulate(&two_pipes([Some(0), Some(0)], tokens)).unwrap();
        let split = simulate(&two_pipes([Some(0), Some(1)], tokens)).unwrap();
        let unbanked = simulate(&two_pipes([None, None], tokens)).unwrap();
        // Two II-4 producers on one port: the bank is saturated and the
        // pair takes ~2x the unbanked time.
        assert!(
            shared.makespan > unbanked.makespan + tokens,
            "shared {} vs unbanked {}",
            shared.makespan,
            unbanked.makespan
        );
        // Distinct banks never conflict: identical to the unbanked run.
        assert_eq!(split.makespan, unbanked.makespan);
        // The shared bank's port is reserved 2·tokens·II cycles and saw
        // every token; some task waited on it.
        let b0 = &shared.bank_stats[0];
        assert_eq!(b0.tokens, 2 * tokens);
        assert_eq!(b0.reserved_cycles, 2 * tokens * 4);
        assert!(b0.stall_cycles > 0);
        // Split run: each bank carries one pipe, no stalls.
        assert!(split.bank_stats.iter().all(|b| b.stall_cycles == 0));
    }

    #[test]
    fn bank_arbitration_is_deterministic() {
        let a = simulate_with_trace(&two_pipes([Some(0), Some(0)], 64), true).unwrap();
        let b = simulate_with_trace(&two_pipes([Some(0), Some(0)], 64), true).unwrap();
        assert_eq!(a, b);
        // Ascending task index wins the first same-cycle conflict.
        let first_p0 = a.trace.iter().find(|e| e.task == 0).unwrap().start;
        let first_p1 = a.trace.iter().find(|e| e.task == 2).unwrap().start;
        assert!(first_p0 < first_p1);
    }

    #[test]
    fn per_task_token_overrides_run_disjoint_components() {
        // Pipe 0 processes 10 tokens, pipe 1 processes 40.
        let mut b = NetworkBuilder::new();
        let c0 = b.channel("c0", 2, ChannelKind::Fifo);
        let p0 = b.task("p0", 2, 4, vec![], vec![c0]);
        let s0 = b.task("s0", 1, 2, vec![c0], vec![]);
        let c1 = b.channel("c1", 2, ChannelKind::Fifo);
        let p1 = b.task("p1", 2, 4, vec![], vec![c1]);
        let s1 = b.task("s1", 1, 2, vec![c1], vec![]);
        b.task_tokens(p0, 10);
        b.task_tokens(s0, 10);
        b.task_tokens(p1, 40);
        b.task_tokens(s1, 40);
        let net = b.build(999).unwrap();
        let r = simulate(&net).unwrap();
        assert_eq!(r.task_stats[0].invocations, 10);
        assert_eq!(r.task_stats[1].invocations, 10);
        assert_eq!(r.task_stats[2].invocations, 40);
        assert_eq!(r.task_stats[3].invocations, 40);
        // Makespan is the long pipe's: fill + 2·(40−1) + drain.
        assert_eq!(r.makespan, 4 + 2 * 39 + 2);
    }

    proptest! {
        /// Banking only ever delays: a banked run is never faster than
        /// the same network unbanked, and putting every producer on its
        /// own bank is exactly the unbanked schedule.
        #[test]
        fn prop_banked_never_faster(
            tokens in 1u64..120,
            shared in proptest::bool::ANY,
        ) {
            let banks = if shared { [Some(0), Some(0)] } else { [Some(0), Some(1)] };
            let banked = simulate(&two_pipes(banks, tokens)).unwrap();
            let flat = simulate(&two_pipes([None, None], tokens)).unwrap();
            prop_assert!(banked.makespan >= flat.makespan);
            if !shared {
                prop_assert_eq!(banked.makespan, flat.makespan);
            }
        }

        /// Makespan is bounded below by the bottleneck and above by fully
        /// sequential execution.
        #[test]
        fn prop_makespan_bounds(
            iis in proptest::collection::vec(1u64..20, 2..5),
            cap in 1usize..4,
            tokens in 1u64..200,
        ) {
            let lats: Vec<u64> = iis.iter().map(|&ii| ii + 5).collect();
            let net = chain(&iis, &lats, cap, ChannelKind::Fifo, tokens);
            let r = simulate(&net).unwrap();
            let bottleneck = *iis.iter().max().unwrap();
            let lower = bottleneck * (tokens - 1);
            let upper: u64 = tokens * lats.iter().sum::<u64>() + 100;
            prop_assert!(r.makespan >= lower, "{} < {lower}", r.makespan);
            prop_assert!(r.makespan <= upper, "{} > {upper}", r.makespan);
        }

        /// Larger channel capacity never slows the pipeline down.
        #[test]
        fn prop_capacity_monotone(
            iis in proptest::collection::vec(1u64..16, 2..5),
            tokens in 1u64..150,
        ) {
            let lats: Vec<u64> = iis.iter().map(|&ii| ii * 2 + 3).collect();
            let small = simulate(&chain(&iis, &lats, 1, ChannelKind::Pipo, tokens)).unwrap();
            let large = simulate(&chain(&iis, &lats, 4, ChannelKind::Pipo, tokens)).unwrap();
            prop_assert!(large.makespan <= small.makespan);
        }

        /// Every task processes every token exactly once.
        #[test]
        fn prop_all_tokens_processed(
            iis in proptest::collection::vec(1u64..10, 1..5),
            tokens in 1u64..100,
        ) {
            let lats: Vec<u64> = iis.iter().map(|&ii| ii + 2).collect();
            let net = chain(&iis, &lats, 2, ChannelKind::Fifo, tokens);
            let r = simulate(&net).unwrap();
            for t in &r.task_stats {
                prop_assert_eq!(t.invocations, tokens);
            }
        }
    }
}
