//! Discrete-event simulation of HLS dataflow regions (Task-Level
//! Pipelining).
//!
//! The paper's §III-B restructures the solver into tasks
//! (`Load → Compute → Store`, at element and node granularity) connected
//! by FIFO or ping-pong (PIPO) buffers, so that `Task_k` processes token
//! `i+1` while `Task_{k+1}` processes token `i`. The achieved initiation
//! interval of the whole region is set by the slowest task; buffers
//! introduce backpressure; violating the single-producer-single-consumer
//! or no-bypass conditions risks deadlock. This crate models all of that:
//!
//! * [`network`] — process-network description: tasks (II + latency per
//!   token), channels (FIFO/PIPO, bounded capacity), design-rule checks
//!   (SPSC, bypass detection, §III-B).
//! * [`sim`] — the discrete-event engine: exact start/finish times,
//!   stalls, channel occupancy, deadlock detection, optional trace.
//!
//! # Memory-bank port conflicts
//!
//! Channels can carry an optional *bank* id
//! ([`network::ChannelSpec::bank`], declared via
//! [`network::NetworkBuilder::banked_channel`]) marking traffic that
//! goes through one port of a banked memory system (a DDR channel or an
//! HBM2 pseudo-channel). The conflict rule: when a task starts a token,
//! it reserves the port of every distinct bank among its *banked output
//! channels* for its full II (the burst issues back-to-back beats); a
//! task cannot start while any port it needs is reserved. Same-cycle
//! contenders are resolved in ascending task-declaration order — the
//! same order the engine's fixed-point start loop already scans, so
//! banked simulation stays fully deterministic: no randomness, no
//! iteration over unordered containers, ties broken by a total order
//! fixed at build time. A network with no banked channels takes none of
//! these paths and reports byte-identical results to the pre-banking
//! engine; per-bank reserved/stall/token counters appear in
//! [`sim::SimulationReport::bank_stats`] otherwise.
//! * [`analytic`] — closed-form steady-state model
//!   (`makespan ≈ fill + N · max II`), cross-validated against the DES by
//!   property tests.
//! * [`functional`] — typed staged pipelines for functional (bit-level)
//!   verification of a task decomposition against a reference.
//!
//! # Example
//!
//! ```
//! use hls_dataflow::network::{ChannelKind, NetworkBuilder};
//! use hls_dataflow::sim::simulate;
//!
//! // Load → Compute → Store, 1000 tokens, compute is the bottleneck.
//! // Channels are deep enough to cover the compute task's in-flight
//! // tokens (latency 40 / II 12 ⇒ ≥ 4 slots for full rate).
//! let mut b = NetworkBuilder::new();
//! let c1 = b.channel("load_to_compute", 8, ChannelKind::Fifo);
//! let c2 = b.channel("compute_to_store", 8, ChannelKind::Fifo);
//! b.task("load", 4, 10, vec![], vec![c1]);
//! b.task("compute", 12, 40, vec![c1], vec![c2]);
//! b.task("store", 4, 8, vec![c2], vec![]);
//! let net = b.build(1000).unwrap();
//! let report = simulate(&net).unwrap();
//! // Steady state: one token per 12 cycles.
//! assert!(report.makespan < 12 * 1000 + 200);
//! ```

#![deny(missing_docs)]

pub mod analytic;
pub mod buffer;
pub mod functional;
pub mod gantt;
pub mod network;
pub mod sim;

pub use network::{ChannelKind, Network, NetworkBuilder};
pub use sim::{simulate, BankStats, SimulationReport};

/// Errors produced by the dataflow layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataflowError {
    /// A channel has zero capacity.
    ZeroCapacity(String),
    /// A channel is written by more than one task (violates the paper's
    /// single-producer rule).
    MultipleProducers(String),
    /// A channel is read by more than one task (single-consumer rule).
    MultipleConsumers(String),
    /// A channel has no producer or no consumer.
    Dangling(String),
    /// The task graph contains a cycle.
    Cyclic,
    /// The simulation stopped making progress before completing.
    Deadlock {
        /// Cycle at which progress stopped.
        at_cycle: u64,
        /// Names of tasks that still had work.
        stuck_tasks: Vec<String>,
    },
    /// A task references a channel id that does not exist.
    UnknownChannel(usize),
    /// The network has no tasks.
    Empty,
}

impl std::fmt::Display for DataflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataflowError::ZeroCapacity(c) => write!(f, "channel `{c}` has zero capacity"),
            DataflowError::MultipleProducers(c) => {
                write!(f, "channel `{c}` has multiple producers")
            }
            DataflowError::MultipleConsumers(c) => {
                write!(f, "channel `{c}` has multiple consumers")
            }
            DataflowError::Dangling(c) => write!(f, "channel `{c}` is not fully connected"),
            DataflowError::Cyclic => write!(f, "task graph contains a cycle"),
            DataflowError::Deadlock {
                at_cycle,
                stuck_tasks,
            } => write!(
                f,
                "deadlock at cycle {at_cycle}; stuck tasks: {}",
                stuck_tasks.join(", ")
            ),
            DataflowError::UnknownChannel(id) => write!(f, "unknown channel id {id}"),
            DataflowError::Empty => write!(f, "network has no tasks"),
        }
    }
}

impl std::error::Error for DataflowError {}
