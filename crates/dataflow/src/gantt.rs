//! ASCII Gantt rendering of a simulation trace — the §III-B pipeline
//! overlap made visible in a terminal.

use crate::network::Network;
use crate::sim::SimulationReport;

/// Renders the trace of `report` (produced with
/// [`crate::sim::simulate_with_trace`]) as one row per task.
///
/// `width` is the target chart width in characters; cycles are scaled to
/// fit. Each invocation is drawn with the digit `token % 10`.
///
/// # Example
///
/// ```
/// use hls_dataflow::network::{ChannelKind, NetworkBuilder};
/// use hls_dataflow::sim::simulate_with_trace;
/// use hls_dataflow::gantt::render_gantt;
///
/// let mut b = NetworkBuilder::new();
/// let c = b.channel("c", 4, ChannelKind::Fifo);
/// b.task("producer", 2, 4, vec![], vec![c]);
/// b.task("consumer", 3, 5, vec![c], vec![]);
/// let net = b.build(6).unwrap();
/// let rep = simulate_with_trace(&net, true).unwrap();
/// let chart = render_gantt(&net, &rep, 40);
/// assert!(chart.contains("producer"));
/// assert!(chart.contains('0'));
/// ```
pub fn render_gantt(net: &Network, report: &SimulationReport, width: usize) -> String {
    let width = width.max(10);
    let scale = (report.makespan as usize / width).max(1);
    let cols = report.makespan as usize / scale + 2;
    let name_width = net
        .tasks()
        .iter()
        .map(|t| t.name.len())
        .max()
        .unwrap_or(4)
        .max(4);
    let mut out = String::new();
    for (tid, task) in net.tasks().iter().enumerate() {
        let mut line = vec![b' '; cols];
        for ev in report.trace.iter().filter(|e| e.task == tid) {
            let s = ev.start as usize / scale;
            let e = (ev.finish as usize / scale).max(s + 1).min(cols);
            let glyph = b'0' + (ev.token % 10) as u8;
            for slot in line.iter_mut().take(e).skip(s) {
                *slot = glyph;
            }
        }
        out.push_str(&format!(
            "{:>width$} |{}|\n",
            task.name,
            String::from_utf8_lossy(&line),
            width = name_width
        ));
    }
    out.push_str(&format!(
        "{:>width$}  (1 col = {scale} cycles, makespan {} cycles)\n",
        "",
        report.makespan,
        width = name_width
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{ChannelKind, NetworkBuilder};
    use crate::sim::simulate_with_trace;

    fn chain() -> Network {
        let mut b = NetworkBuilder::new();
        let c1 = b.channel("c1", 4, ChannelKind::Fifo);
        let c2 = b.channel("c2", 4, ChannelKind::Fifo);
        b.task("load", 4, 8, vec![], vec![c1]);
        b.task("compute", 10, 20, vec![c1], vec![c2]);
        b.task("store", 4, 8, vec![c2], vec![]);
        b.build(9).unwrap()
    }

    #[test]
    fn chart_has_one_row_per_task_plus_footer() {
        let net = chain();
        let rep = simulate_with_trace(&net, true).unwrap();
        let chart = render_gantt(&net, &rep, 60);
        assert_eq!(chart.lines().count(), 4);
        for name in ["load", "compute", "store"] {
            assert!(chart.contains(name));
        }
    }

    #[test]
    fn all_tokens_appear() {
        let net = chain();
        let rep = simulate_with_trace(&net, true).unwrap();
        let chart = render_gantt(&net, &rep, 120);
        for d in 0..9u8 {
            assert!(
                chart.contains(char::from(b'0' + d)),
                "token {d} missing from chart"
            );
        }
    }

    #[test]
    fn empty_trace_renders_blank_rows() {
        let net = chain();
        let rep = crate::sim::simulate(&net).unwrap(); // no trace
        let chart = render_gantt(&net, &rep, 40);
        assert_eq!(chart.lines().count(), 4);
        assert!(!chart.contains('0'));
    }
}
