//! Process-network description and design-rule checks.

use crate::DataflowError;

/// Inter-task buffer discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelKind {
    /// Streaming FIFO: the consumer drains elements as it runs, so the
    /// buffer slot frees when the consumer *starts* the token.
    Fifo,
    /// Ping-pong buffer: the consumer holds its bank for its entire
    /// execution, so the slot frees when the consumer *finishes*.
    Pipo,
}

/// A bounded channel between two tasks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelSpec {
    /// Name (diagnostics).
    pub name: String,
    /// Token capacity (PIPO is conventionally 2).
    pub capacity: usize,
    /// Buffer discipline.
    pub kind: ChannelKind,
    /// Memory bank the channel's *producer* writes through, if the
    /// channel models off-chip traffic. Banked channels share their
    /// bank's single port: two producers cannot start same-cycle tokens
    /// on the same bank (see the simulator's conflict rule). `None`
    /// (the default) is an on-chip channel with no port contention.
    pub bank: Option<usize>,
}

/// A pipelined task: accepts one token from every input, `latency` cycles
/// later emits one token to every output, and can start a new token every
/// `ii` cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSpec {
    /// Name (diagnostics).
    pub name: String,
    /// Initiation interval in cycles (≥ 1).
    pub ii: u64,
    /// Per-token latency in cycles (≥ 1).
    pub latency: u64,
    /// Input channel ids (one token consumed from each per invocation).
    pub inputs: Vec<usize>,
    /// Output channel ids (one token produced to each per invocation).
    pub outputs: Vec<usize>,
    /// Per-task token target overriding the network-wide count — lets
    /// disjoint subgraphs (e.g. one pipeline per shard) process
    /// different element counts in one simulation. `None` inherits
    /// [`Network::tokens`].
    pub tokens: Option<u64>,
}

/// A validated dataflow network with a fixed token count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Network {
    channels: Vec<ChannelSpec>,
    tasks: Vec<TaskSpec>,
    tokens: u64,
    topo_level: Vec<usize>,
}

impl Network {
    /// Channels in declaration order.
    pub fn channels(&self) -> &[ChannelSpec] {
        &self.channels
    }

    /// Tasks in declaration order.
    pub fn tasks(&self) -> &[TaskSpec] {
        &self.tasks
    }

    /// Tokens every task must process (unless overridden per task).
    pub fn tokens(&self) -> u64 {
        self.tokens
    }

    /// Token target of one task: its override, or the network count.
    pub fn task_tokens(&self, tid: usize) -> u64 {
        self.tasks[tid].tokens.unwrap_or(self.tokens)
    }

    /// Largest bank id referenced by any channel, if any channel is
    /// banked.
    pub fn max_bank(&self) -> Option<usize> {
        self.channels.iter().filter_map(|c| c.bank).max()
    }

    /// Topological level of each task (sources at level 0).
    pub fn topo_levels(&self) -> &[usize] {
        &self.topo_level
    }

    /// Channels whose producer and consumer are more than one topological
    /// level apart — the "bypass" pattern §III-B requires avoiding. The
    /// builder accepts them (they are legal if capacities are deep
    /// enough), but designs can assert this list is empty.
    pub fn bypass_channels(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for (cid, ch) in self.channels.iter().enumerate() {
            let producer = self
                .tasks
                .iter()
                .position(|t| t.outputs.contains(&cid))
                .expect("validated");
            let consumer = self
                .tasks
                .iter()
                .position(|t| t.inputs.contains(&cid))
                .expect("validated");
            if self.topo_level[consumer] > self.topo_level[producer] + 1 {
                out.push(ch.name.as_str());
            }
        }
        out
    }

    /// The largest task II — the steady-state initiation interval of the
    /// whole region (the paper's "most time-consuming task determines the
    /// II", §III-B).
    pub fn bottleneck_ii(&self) -> u64 {
        self.tasks.iter().map(|t| t.ii).max().unwrap_or(1)
    }
}

/// Builder for [`Network`].
#[derive(Debug, Clone, Default)]
pub struct NetworkBuilder {
    channels: Vec<ChannelSpec>,
    tasks: Vec<TaskSpec>,
}

impl NetworkBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a channel; returns its id.
    pub fn channel(
        &mut self,
        name: impl Into<String>,
        capacity: usize,
        kind: ChannelKind,
    ) -> usize {
        self.channels.push(ChannelSpec {
            name: name.into(),
            capacity,
            kind,
            bank: None,
        });
        self.channels.len() - 1
    }

    /// Declares a channel whose producer issues its beats through
    /// memory bank `bank`; returns its id.
    pub fn banked_channel(
        &mut self,
        name: impl Into<String>,
        capacity: usize,
        kind: ChannelKind,
        bank: usize,
    ) -> usize {
        self.channels.push(ChannelSpec {
            name: name.into(),
            capacity,
            kind,
            bank: Some(bank),
        });
        self.channels.len() - 1
    }

    /// Declares a task.
    pub fn task(
        &mut self,
        name: impl Into<String>,
        ii: u64,
        latency: u64,
        inputs: Vec<usize>,
        outputs: Vec<usize>,
    ) -> usize {
        self.tasks.push(TaskSpec {
            name: name.into(),
            ii: ii.max(1),
            latency: latency.max(1),
            inputs,
            outputs,
            tokens: None,
        });
        self.tasks.len() - 1
    }

    /// Overrides the token target of task `tid` (see
    /// [`TaskSpec::tokens`]). Targets must agree within a connected
    /// component — a mismatch starves a consumer and surfaces as
    /// [`DataflowError::Deadlock`] at simulation time.
    pub fn task_tokens(&mut self, tid: usize, tokens: u64) {
        self.tasks[tid].tokens = Some(tokens);
    }

    /// Validates and freezes the network for `tokens` tokens.
    ///
    /// # Errors
    ///
    /// Any [`DataflowError`] design-rule violation: zero-capacity channel,
    /// multiple producers/consumers (the paper's SPSC rule), dangling
    /// channels, cycles, unknown channel ids, or an empty network.
    pub fn build(self, tokens: u64) -> Result<Network, DataflowError> {
        if self.tasks.is_empty() {
            return Err(DataflowError::Empty);
        }
        let nch = self.channels.len();
        let mut producers = vec![0usize; nch];
        let mut consumers = vec![0usize; nch];
        for t in &self.tasks {
            for &c in &t.outputs {
                if c >= nch {
                    return Err(DataflowError::UnknownChannel(c));
                }
                producers[c] += 1;
            }
            for &c in &t.inputs {
                if c >= nch {
                    return Err(DataflowError::UnknownChannel(c));
                }
                consumers[c] += 1;
            }
        }
        for (cid, ch) in self.channels.iter().enumerate() {
            if ch.capacity == 0 {
                return Err(DataflowError::ZeroCapacity(ch.name.clone()));
            }
            if producers[cid] > 1 {
                return Err(DataflowError::MultipleProducers(ch.name.clone()));
            }
            if consumers[cid] > 1 {
                return Err(DataflowError::MultipleConsumers(ch.name.clone()));
            }
            if producers[cid] == 0 || consumers[cid] == 0 {
                return Err(DataflowError::Dangling(ch.name.clone()));
            }
        }
        // Topological levels via Kahn's algorithm on the task DAG.
        let nt = self.tasks.len();
        // channel -> producer task
        let mut chan_producer = vec![usize::MAX; nch];
        for (tid, t) in self.tasks.iter().enumerate() {
            for &c in &t.outputs {
                chan_producer[c] = tid;
            }
        }
        let mut indeg = vec![0usize; nt];
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); nt];
        for (tid, t) in self.tasks.iter().enumerate() {
            for &c in &t.inputs {
                let p = chan_producer[c];
                succ[p].push(tid);
                indeg[tid] += 1;
            }
        }
        let mut level = vec![0usize; nt];
        let mut queue: std::collections::VecDeque<usize> =
            (0..nt).filter(|&t| indeg[t] == 0).collect();
        let mut seen = 0;
        while let Some(t) = queue.pop_front() {
            seen += 1;
            for &s in &succ[t] {
                level[s] = level[s].max(level[t] + 1);
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push_back(s);
                }
            }
        }
        if seen != nt {
            return Err(DataflowError::Cyclic);
        }
        Ok(Network {
            channels: self.channels,
            tasks: self.tasks,
            tokens,
            topo_level: level,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> NetworkBuilder {
        let mut b = NetworkBuilder::new();
        let mut prev: Option<usize> = None;
        for i in 0..n {
            let out = if i + 1 < n {
                Some(b.channel(format!("c{i}"), 2, ChannelKind::Fifo))
            } else {
                None
            };
            let inputs = prev.map(|c| vec![c]).unwrap_or_default();
            let outputs = out.map(|c| vec![c]).unwrap_or_default();
            b.task(format!("t{i}"), (i as u64 + 1) * 2, 10, inputs, outputs);
            prev = out;
        }
        b
    }

    #[test]
    fn valid_chain_builds() {
        let net = chain(4).build(100).unwrap();
        assert_eq!(net.tasks().len(), 4);
        assert_eq!(net.channels().len(), 3);
        assert_eq!(net.topo_levels(), &[0, 1, 2, 3]);
        assert_eq!(net.bottleneck_ii(), 8);
        assert!(net.bypass_channels().is_empty());
    }

    #[test]
    fn spsc_violations_are_rejected() {
        // Two producers into one channel.
        let mut b = NetworkBuilder::new();
        let c = b.channel("shared", 2, ChannelKind::Fifo);
        b.task("p1", 1, 1, vec![], vec![c]);
        b.task("p2", 1, 1, vec![], vec![c]);
        b.task("consumer", 1, 1, vec![c], vec![]);
        assert!(matches!(
            b.build(10),
            Err(DataflowError::MultipleProducers(_))
        ));

        // Two consumers from one channel.
        let mut b = NetworkBuilder::new();
        let c = b.channel("shared", 2, ChannelKind::Fifo);
        b.task("p", 1, 1, vec![], vec![c]);
        b.task("c1", 1, 1, vec![c], vec![]);
        b.task("c2", 1, 1, vec![c], vec![]);
        assert!(matches!(
            b.build(10),
            Err(DataflowError::MultipleConsumers(_))
        ));
    }

    #[test]
    fn dangling_and_zero_capacity_rejected() {
        let mut b = NetworkBuilder::new();
        let _ = b.channel("orphan", 2, ChannelKind::Fifo);
        b.task("lonely", 1, 1, vec![], vec![]);
        assert!(matches!(b.build(10), Err(DataflowError::Dangling(_))));

        let mut b = NetworkBuilder::new();
        let c = b.channel("tight", 0, ChannelKind::Fifo);
        b.task("p", 1, 1, vec![], vec![c]);
        b.task("q", 1, 1, vec![c], vec![]);
        assert!(matches!(b.build(10), Err(DataflowError::ZeroCapacity(_))));
    }

    #[test]
    fn cycles_are_rejected() {
        let mut b = NetworkBuilder::new();
        let c1 = b.channel("fwd", 2, ChannelKind::Fifo);
        let c2 = b.channel("back", 2, ChannelKind::Fifo);
        b.task("a", 1, 1, vec![c2], vec![c1]);
        b.task("b", 1, 1, vec![c1], vec![c2]);
        assert!(matches!(b.build(10), Err(DataflowError::Cyclic)));
    }

    #[test]
    fn unknown_channel_rejected() {
        let mut b = NetworkBuilder::new();
        b.task("t", 1, 1, vec![5], vec![]);
        assert!(matches!(b.build(10), Err(DataflowError::UnknownChannel(5))));
    }

    #[test]
    fn empty_network_rejected() {
        assert!(matches!(
            NetworkBuilder::new().build(10),
            Err(DataflowError::Empty)
        ));
    }

    #[test]
    fn bypass_detection() {
        // a → b → c with an extra a → c channel (skips b).
        let mut b = NetworkBuilder::new();
        let ab = b.channel("ab", 2, ChannelKind::Fifo);
        let bc = b.channel("bc", 2, ChannelKind::Fifo);
        let ac = b.channel("ac_bypass", 8, ChannelKind::Fifo);
        b.task("a", 1, 1, vec![], vec![ab, ac]);
        b.task("b", 1, 1, vec![ab], vec![bc]);
        b.task("c", 1, 1, vec![bc, ac], vec![]);
        let net = b.build(10).unwrap();
        assert_eq!(net.bypass_channels(), vec!["ac_bypass"]);
    }
}
