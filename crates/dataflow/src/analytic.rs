//! Closed-form steady-state performance model.
//!
//! For a pipelined task chain with ample buffering, the makespan is
//! `fill + II_max · (N − 1) + drain` where `fill` is the sum of latencies
//! along the path to the bottleneck and `II_max` the bottleneck initiation
//! interval (§III-B: "the most time-consuming task determining the II").
//! The DES ([`crate::sim`]) validates this model; the accelerator
//! performance layer uses it to extrapolate to millions of elements
//! without event-by-event simulation.

use crate::network::Network;

/// Analytic makespan estimate for `net` processing its token budget.
///
/// Exact for chains whose channels hold at least two tokens (double
/// buffering); a lower bound in the presence of tight (capacity-1 PIPO)
/// backpressure.
///
/// # Example
///
/// ```
/// use hls_dataflow::network::{ChannelKind, NetworkBuilder};
/// use hls_dataflow::analytic::analytic_makespan;
/// use hls_dataflow::sim::simulate;
///
/// let mut b = NetworkBuilder::new();
/// let c = b.channel("c", 2, ChannelKind::Fifo);
/// b.task("producer", 3, 8, vec![], vec![c]);
/// b.task("consumer", 5, 12, vec![c], vec![]);
/// let net = b.build(400).unwrap();
/// let model = analytic_makespan(&net);
/// let sim = simulate(&net).unwrap().makespan;
/// assert!((model as i64 - sim as i64).abs() < 30);
/// ```
pub fn analytic_makespan(net: &Network) -> u64 {
    let tokens = net.tokens();
    if tokens == 0 {
        return 0;
    }
    // Fill: longest path of latencies through the DAG (tasks at their
    // topological levels; for chains this is the plain latency sum).
    let levels = net.topo_levels();
    let max_level = levels.iter().copied().max().unwrap_or(0);
    let mut fill = 0u64;
    for lv in 0..=max_level {
        let worst = net
            .tasks()
            .iter()
            .zip(levels)
            .filter(|(_, &l)| l == lv)
            .map(|(t, _)| t.latency)
            .max()
            .unwrap_or(0);
        fill += worst;
    }
    fill + net.bottleneck_ii() * (tokens - 1)
}

/// The throughput (tokens per cycle) the network approaches as the token
/// count grows.
pub fn steady_state_throughput(net: &Network) -> f64 {
    1.0 / net.bottleneck_ii() as f64
}

/// Analytic makespan of the *same* work executed without task-level
/// pipelining: each token traverses every task sequentially before the
/// next begins (the unoptimized baseline the paper's TLP removes).
pub fn sequential_makespan(net: &Network) -> u64 {
    let per_token: u64 = net.tasks().iter().map(|t| t.latency).sum();
    per_token * net.tokens()
}

/// The speedup TLP delivers over sequential task execution for this
/// network (the headline mechanism of §III-B).
pub fn tlp_speedup(net: &Network) -> f64 {
    sequential_makespan(net) as f64 / analytic_makespan(net).max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{ChannelKind, NetworkBuilder};
    use crate::sim::simulate;
    use proptest::prelude::*;

    fn chain(iis: &[u64], lats: &[u64], cap: usize, tokens: u64) -> Network {
        let mut b = NetworkBuilder::new();
        let n = iis.len();
        let mut chans = Vec::new();
        for i in 0..n - 1 {
            chans.push(b.channel(format!("c{i}"), cap, ChannelKind::Fifo));
        }
        for i in 0..n {
            let inputs = if i == 0 { vec![] } else { vec![chans[i - 1]] };
            let outputs = if i + 1 == n { vec![] } else { vec![chans[i]] };
            b.task(format!("t{i}"), iis[i], lats[i], inputs, outputs);
        }
        b.build(tokens).unwrap()
    }

    #[test]
    fn model_matches_simulation_for_chains() {
        for (iis, lats) in [
            (vec![4u64, 9, 2], vec![10u64, 25, 6]),
            (vec![1, 1, 1], vec![3, 3, 3]),
            (vec![7, 3], vec![20, 9]),
        ] {
            let net = chain(&iis, &lats, 4, 1000);
            let model = analytic_makespan(&net);
            let sim = simulate(&net).unwrap().makespan;
            let err = (model as i64 - sim as i64).abs();
            assert!(err <= 40, "model {model} vs sim {sim} for {iis:?}");
        }
    }

    #[test]
    fn tlp_speedup_approaches_latency_ratio() {
        // Three equal tasks: sequential = 3·L·N, pipelined ≈ II·N.
        let net = chain(&[10, 10, 10], &[10, 10, 10], 2, 10_000);
        let s = tlp_speedup(&net);
        assert!((s - 3.0).abs() < 0.05, "speedup {s}");
    }

    #[test]
    fn throughput_is_bottleneck_inverse() {
        let net = chain(&[2, 8, 4], &[5, 20, 9], 2, 100);
        assert!((steady_state_throughput(&net) - 0.125).abs() < 1e-12);
    }

    proptest! {
        /// DES and the analytic model agree for well-buffered chains.
        #[test]
        fn prop_model_matches_sim(
            iis in proptest::collection::vec(1u64..24, 1..6),
            tokens in 2u64..400,
        ) {
            // Latency ≥ II keeps tasks internally pipelined and realistic.
            // Channel depth must cover the in-flight window
            // (max latency/II = 8 at II=1), or backpressure legitimately
            // slows the pipeline below the model — the effect
            // `crate::buffer::advise_depths` exists to size away.
            let lats: Vec<u64> = iis.iter().map(|&ii| ii + 7).collect();
            let net = chain(&iis, &lats, 16, tokens);
            let model = analytic_makespan(&net);
            let sim = simulate(&net).unwrap().makespan;
            // Fill-phase interleaving can deviate by at most the total
            // fill time; steady state must match exactly.
            let slack = lats.iter().sum::<u64>() + 16;
            prop_assert!((model as i64 - sim as i64).unsigned_abs() <= slack,
                "model {model}, sim {sim}, iis {iis:?}");
        }

        /// TLP never loses to sequential execution.
        #[test]
        fn prop_tlp_never_slower(
            iis in proptest::collection::vec(1u64..16, 1..5),
            tokens in 1u64..200,
        ) {
            let lats: Vec<u64> = iis.iter().map(|&ii| ii + 3).collect();
            let net = chain(&iis, &lats, 2, tokens);
            prop_assert!(analytic_makespan(&net) <= sequential_makespan(&net));
            let sim = simulate(&net).unwrap().makespan;
            prop_assert!(sim <= sequential_makespan(&net) + 8);
        }
    }
}
