//! FIFO depth sizing: how deep must each inter-task buffer be for the
//! pipeline to run at the bottleneck rate?
//!
//! Too-shallow buffers let backpressure throttle tasks below the
//! steady-state II (exactly the stall the paper's ping-pong buffers
//! avoid); too-deep buffers waste BRAM. [`advise_depths`] computes, per
//! channel, the smallest depth that keeps throughput within a chosen
//! margin of the bottleneck — by analytic seed plus verification against
//! the discrete-event simulator.

use crate::network::{ChannelKind, Network, NetworkBuilder};
use crate::sim::simulate;
use crate::DataflowError;

/// The advice for one channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepthAdvice {
    /// Channel name.
    pub channel: String,
    /// Minimal verified depth.
    pub depth: usize,
}

/// Rebuilds `net` with every channel set to the depths in `depths`.
fn with_depths(net: &Network, depths: &[usize]) -> Result<Network, DataflowError> {
    let mut b = NetworkBuilder::new();
    for (ch, &d) in net.channels().iter().zip(depths) {
        b.channel(ch.name.clone(), d, ch.kind);
    }
    for t in net.tasks() {
        b.task(
            t.name.clone(),
            t.ii,
            t.latency,
            t.inputs.clone(),
            t.outputs.clone(),
        );
    }
    b.build(net.tokens())
}

/// The analytic lower bound on a producer-side channel depth: enough
/// slots to cover the consumer's in-flight window at the bottleneck
/// rate.
pub fn analytic_depth_bound(net: &Network, channel: usize) -> usize {
    let consumer = net
        .tasks()
        .iter()
        .find(|t| t.inputs.contains(&channel))
        .expect("validated network");
    let bottleneck = net.bottleneck_ii().max(1);
    let base = consumer.latency.div_ceil(bottleneck) as usize + 1;
    match net.channels()[channel].kind {
        ChannelKind::Fifo => base,
        // PIPO holds the consumer's bank for its whole execution.
        ChannelKind::Pipo => base + 1,
    }
}

/// Finds, per channel, the smallest depth whose simulated makespan is
/// within `margin` (e.g. 0.02 = 2%) of the deep-buffer reference.
///
/// # Errors
///
/// Propagates simulation errors.
///
/// # Example
///
/// ```
/// use hls_dataflow::network::{ChannelKind, NetworkBuilder};
/// use hls_dataflow::buffer::advise_depths;
///
/// let mut b = NetworkBuilder::new();
/// let c = b.channel("c", 64, ChannelKind::Fifo);
/// b.task("fast", 2, 4, vec![], vec![c]);
/// b.task("slow", 10, 40, vec![c], vec![]);
/// let net = b.build(300).unwrap();
/// let advice = advise_depths(&net, 0.02).unwrap();
/// // latency 40 at II 10 → about 5 slots needed, far below 64.
/// assert!(advice[0].depth <= 8);
/// ```
pub fn advise_depths(net: &Network, margin: f64) -> Result<Vec<DepthAdvice>, DataflowError> {
    let nch = net.channels().len();
    // Reference: everything deep.
    let deep = vec![256usize; nch];
    let reference = simulate(&with_depths(net, &deep)?)?.makespan;
    let budget = (reference as f64 * (1.0 + margin)) as u64;
    let mut depths: Vec<usize> = (0..nch).map(|c| analytic_depth_bound(net, c)).collect();
    // Verify; grow any channel that still throttles (rare: the analytic
    // bound is usually sufficient).
    for _ in 0..16 {
        let makespan = simulate(&with_depths(net, &depths)?)?.makespan;
        if makespan <= budget {
            break;
        }
        for d in depths.iter_mut() {
            *d += 1;
        }
    }
    // Shrink each channel individually while the margin holds.
    for c in 0..nch {
        while depths[c] > 1 {
            depths[c] -= 1;
            let makespan = simulate(&with_depths(net, &depths)?)?.makespan;
            if makespan > budget {
                depths[c] += 1;
                break;
            }
        }
    }
    Ok(net
        .channels()
        .iter()
        .zip(&depths)
        .map(|(ch, &depth)| DepthAdvice {
            channel: ch.name.clone(),
            depth,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn chain(iis: &[u64], lats: &[u64], kind: ChannelKind, tokens: u64) -> Network {
        let mut b = NetworkBuilder::new();
        let n = iis.len();
        let mut chans = Vec::new();
        for i in 0..n - 1 {
            chans.push(b.channel(format!("c{i}"), 64, kind));
        }
        for i in 0..n {
            let inputs = if i == 0 { vec![] } else { vec![chans[i - 1]] };
            let outputs = if i + 1 == n { vec![] } else { vec![chans[i]] };
            b.task(format!("t{i}"), iis[i], lats[i], inputs, outputs);
        }
        b.build(tokens).unwrap()
    }

    #[test]
    fn matched_pipeline_needs_shallow_buffers() {
        let net = chain(&[4, 4, 4], &[8, 8, 8], ChannelKind::Fifo, 200);
        let advice = advise_depths(&net, 0.02).unwrap();
        for a in &advice {
            assert!(a.depth <= 4, "{}: depth {}", a.channel, a.depth);
        }
    }

    #[test]
    fn deep_pipelines_need_inflight_coverage() {
        // Consumer latency 60 at bottleneck II 6 → ~10 in flight.
        let net = chain(&[6, 6], &[10, 60], ChannelKind::Fifo, 300);
        let advice = advise_depths(&net, 0.02).unwrap();
        assert!(
            advice[0].depth >= 2,
            "deep consumer needs buffering, got {}",
            advice[0].depth
        );
        // And the advice must actually deliver the rate.
        let depths: Vec<usize> = advice.iter().map(|a| a.depth).collect();
        let tuned = simulate(&with_depths(&net, &depths).unwrap())
            .unwrap()
            .makespan;
        let reference = simulate(&with_depths(&net, &vec![256; depths.len()]).unwrap())
            .unwrap()
            .makespan;
        assert!((tuned as f64) <= reference as f64 * 1.03);
    }

    #[test]
    fn pipo_needs_one_more_than_fifo() {
        let fifo = chain(&[5, 5], &[10, 10], ChannelKind::Fifo, 100);
        let pipo = chain(&[5, 5], &[10, 10], ChannelKind::Pipo, 100);
        assert!(analytic_depth_bound(&pipo, 0) >= analytic_depth_bound(&fifo, 0));
    }

    proptest! {
        /// Advised depths always reach within 5% of the deep-buffer rate.
        #[test]
        fn prop_advice_preserves_throughput(
            iis in proptest::collection::vec(1u64..12, 2..4),
            tokens in 50u64..200,
        ) {
            let lats: Vec<u64> = iis.iter().map(|&ii| ii * 3 + 2).collect();
            let net = chain(&iis, &lats, ChannelKind::Fifo, tokens);
            let advice = advise_depths(&net, 0.02).unwrap();
            let depths: Vec<usize> = advice.iter().map(|a| a.depth).collect();
            let tuned = simulate(&with_depths(&net, &depths).unwrap()).unwrap().makespan;
            let deep = simulate(&with_depths(&net, &vec![256; depths.len()]).unwrap())
                .unwrap()
                .makespan;
            prop_assert!((tuned as f64) <= deep as f64 * 1.05,
                "tuned {tuned} vs deep {deep}");
        }
    }
}
