//! Functional execution of staged pipelines.
//!
//! Timing aside, a dataflow decomposition must compute *the same values*
//! as the original code. [`StagedPipeline`] runs tokens through a chain
//! of stage functions — deterministically, in order — so a task
//! decomposition (e.g. Load → Compute-Diffusion&Convection → Store) can
//! be verified token-for-token against a monolithic reference
//! implementation. The accelerator crate uses this to prove its RKL task
//! graph computes exactly what the solver computes.

/// A chain of stages, each mapping a token to the next stage's input.
///
/// # Example
///
/// ```
/// use hls_dataflow::functional::StagedPipeline;
///
/// let mut p: StagedPipeline<i64> = StagedPipeline::new();
/// p.stage("double", |x| x * 2);
/// p.stage("inc", |x| x + 1);
/// let out = p.run((0..5).collect());
/// assert_eq!(out, vec![1, 3, 5, 7, 9]);
/// ```
pub struct StagedPipeline<'a, T> {
    stages: Vec<Stage<'a, T>>,
}

/// A named transformation stage. The `'a` bound lets stages borrow the
/// shared sweep context (mesh, state, geometry cache) instead of cloning
/// it per residual sweep.
type Stage<'a, T> = (String, Box<dyn FnMut(T) -> T + 'a>);

impl<T> Default for StagedPipeline<'_, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a, T> StagedPipeline<'a, T> {
    /// Empty pipeline (identity).
    pub fn new() -> Self {
        StagedPipeline { stages: Vec::new() }
    }

    /// Appends a named stage.
    pub fn stage(&mut self, name: impl Into<String>, f: impl FnMut(T) -> T + 'a) -> &mut Self {
        self.stages.push((name.into(), Box::new(f)));
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the pipeline has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Stage names in order.
    pub fn stage_names(&self) -> Vec<&str> {
        self.stages.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Processes one token through all stages.
    pub fn process(&mut self, token: T) -> T {
        let mut t = token;
        for (_, f) in &mut self.stages {
            t = f(t);
        }
        t
    }

    /// Processes a batch of tokens, preserving order (dataflow FIFO
    /// semantics: single producer, single consumer, no reordering).
    pub fn run(&mut self, tokens: Vec<T>) -> Vec<T> {
        tokens.into_iter().map(|t| self.process(t)).collect()
    }
}

impl<T> std::fmt::Debug for StagedPipeline<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StagedPipeline")
            .field("stages", &self.stage_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_pipeline_is_identity() {
        let mut p: StagedPipeline<String> = StagedPipeline::new();
        assert!(p.is_empty());
        assert_eq!(p.process("x".into()), "x");
    }

    #[test]
    fn stages_apply_in_order() {
        let mut p: StagedPipeline<i64> = StagedPipeline::new();
        p.stage("add3", |x| x + 3).stage("times10", |x| x * 10);
        // (x+3)*10, not x*10+3.
        assert_eq!(p.process(1), 40);
        assert_eq!(p.stage_names(), vec!["add3", "times10"]);
    }

    #[test]
    fn stateful_stages_see_tokens_in_order() {
        let mut p: StagedPipeline<u64> = StagedPipeline::new();
        let mut counter = 0u64;
        p.stage("tag", move |x| {
            counter += 1;
            x * 100 + counter
        });
        assert_eq!(p.run(vec![1, 2, 3]), vec![101, 202, 303]);
    }

    proptest! {
        /// A decomposed computation matches its fused reference.
        #[test]
        fn prop_decomposition_equals_fused(xs in proptest::collection::vec(-1000i64..1000, 0..50)) {
            let mut staged: StagedPipeline<i64> = StagedPipeline::new();
            staged.stage("load", |x| x ^ 0x55);
            staged.stage("compute", |x| x.wrapping_mul(7) - 9);
            staged.stage("store", |x| x.rotate_left(3));
            let fused = |x: i64| ((x ^ 0x55).wrapping_mul(7) - 9).rotate_left(3);
            let got = staged.run(xs.clone());
            let expect: Vec<i64> = xs.into_iter().map(fused).collect();
            prop_assert_eq!(got, expect);
        }

        /// Order preservation.
        #[test]
        fn prop_order_preserved(n in 0usize..100) {
            let mut p: StagedPipeline<usize> = StagedPipeline::new();
            p.stage("id", |x| x);
            let out = p.run((0..n).collect());
            prop_assert_eq!(out, (0..n).collect::<Vec<_>>());
        }
    }
}
