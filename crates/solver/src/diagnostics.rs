//! Flow diagnostics: conservation checks and turbulence statistics.
//!
//! These quantities validate the solver (mass/momentum/energy conservation
//! on periodic domains) and reproduce the classic TGV observables (kinetic
//! energy decay, enstrophy growth) used to sanity-check the physics.
//!
//! Both reductions — the nodal norms and the per-element enstrophy
//! integral — run in parallel via the rayon `fold`/`reduce`/`sum`
//! patterns. The per-chunk accumulators combine in input order, so
//! results are deterministic for a fixed worker count (they regroup, and
//! thus differ in the last bits, only when `available_parallelism`
//! changes). The enstrophy integral reads the precomputed
//! [`GeometryCache`] instead of rebuilding element Jacobians.

use crate::kernels::ElementWorkspace;
use crate::state::{Conserved, Primitives};
use fem_mesh::geometry::GeometryCache;
use fem_mesh::HexMesh;
use fem_numerics::linalg::{Mat3, Vec3};
use fem_numerics::tensor::HexBasis;
use rayon::prelude::*;

/// Integral diagnostics of a flow state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowDiagnostics {
    /// Simulation time the snapshot was taken at.
    pub time: f64,
    /// `∫ ρ dV`.
    pub total_mass: f64,
    /// `∫ ρu dV`.
    pub total_momentum: Vec3,
    /// `∫ E dV`.
    pub total_energy: f64,
    /// `∫ ½ ρ |u|² dV`.
    pub kinetic_energy: f64,
    /// `∫ ½ ρ |ω|² dV` with vorticity `ω = ∇×u`.
    pub enstrophy: f64,
    /// Maximum velocity magnitude.
    pub max_speed: f64,
    /// Maximum local Mach number.
    pub max_mach: f64,
}

impl FlowDiagnostics {
    /// Computes all diagnostics for the given state.
    ///
    /// The nodal integrals use the assembled lumped mass `mass`
    /// (`mass[n] = Σ_e w det(J)` over elements containing `n`); the
    /// enstrophy integral loops over elements to evaluate per-element
    /// velocity gradients.
    ///
    /// # Panics
    ///
    /// Panics if array lengths are inconsistent with the mesh.
    #[allow(clippy::too_many_arguments)]
    pub fn compute(
        time: f64,
        mesh: &HexMesh,
        basis: &HexBasis,
        gas: &crate::gas::GasModel,
        geometry: &GeometryCache,
        conserved: &Conserved,
        prim: &Primitives,
        mass: &[f64],
    ) -> FlowDiagnostics {
        let nn = mesh.num_nodes();
        assert_eq!(conserved.len(), nn);
        assert_eq!(mass.len(), nn);
        assert_eq!(geometry.num_elements(), mesh.num_elements());

        // Nodal norms: parallel fold over nodes, chunk accumulators
        // combined in input order.
        let nodal = (0..nn)
            .into_par_iter()
            .fold(NodalAccum::zero, |mut acc, n| {
                let m = mass[n];
                let rho = conserved.rho[n];
                acc.mass += m * rho;
                acc.momentum += m * conserved.momentum(n);
                acc.energy += m * conserved.energy[n];
                let u = prim.velocity(n);
                acc.kinetic += m * 0.5 * rho * u.norm_sq();
                let speed = u.norm();
                acc.max_speed = acc.max_speed.max(speed);
                let c = gas.sound_speed(prim.temp[n]);
                acc.max_mach = acc.max_mach.max(speed / c);
                acc
            })
            .reduce(NodalAccum::zero, NodalAccum::combine);

        // Enstrophy via per-element vorticity: each fold chunk carries
        // its own element workspace, so the hot loop never allocates;
        // geometry comes straight from the cache slices, and the
        // per-chunk partials combine with the ordered parallel `sum`.
        let npe = mesh.nodes_per_element();
        let enstrophy: f64 = (0..mesh.num_elements())
            .into_par_iter()
            .fold(
                || EnstrophyAccum::new(npe),
                |mut acc, e| {
                    let geom = geometry.element(e);
                    acc.ws.gather(mesh.element_nodes(e), conserved, prim);
                    basis.reference_gradient(&acc.ws.vel[0], &mut acc.gref[0]);
                    basis.reference_gradient(&acc.ws.vel[1], &mut acc.gref[1]);
                    basis.reference_gradient(&acc.ws.vel[2], &mut acc.gref[2]);
                    for (q, &inv_jt) in geom.inv_jt.iter().enumerate().take(npe) {
                        let l = Mat3::from_rows(
                            inv_jt.mul_vec(acc.gref[0][q]),
                            inv_jt.mul_vec(acc.gref[1][q]),
                            inv_jt.mul_vec(acc.gref[2][q]),
                        );
                        // ω = ∇×u from L[a][b] = ∂u_a/∂x_b.
                        let omega = Vec3::new(
                            l.m[2][1] - l.m[1][2],
                            l.m[0][2] - l.m[2][0],
                            l.m[1][0] - l.m[0][1],
                        );
                        acc.sum += geom.det_w[q] * 0.5 * acc.ws.rho[q] * omega.norm_sq();
                    }
                    acc
                },
            )
            .map(|acc| acc.sum)
            .sum();

        FlowDiagnostics {
            time,
            total_mass: nodal.mass,
            total_momentum: nodal.momentum,
            total_energy: nodal.energy,
            kinetic_energy: nodal.kinetic,
            enstrophy,
            max_speed: nodal.max_speed,
            max_mach: nodal.max_mach,
        }
    }
}

/// Per-chunk accumulator of the nodal diagnostics reduction.
#[derive(Debug, Clone, Copy)]
struct NodalAccum {
    mass: f64,
    momentum: Vec3,
    energy: f64,
    kinetic: f64,
    max_speed: f64,
    max_mach: f64,
}

impl NodalAccum {
    fn zero() -> NodalAccum {
        NodalAccum {
            mass: 0.0,
            momentum: Vec3::ZERO,
            energy: 0.0,
            kinetic: 0.0,
            max_speed: 0.0,
            max_mach: 0.0,
        }
    }

    fn combine(a: NodalAccum, b: NodalAccum) -> NodalAccum {
        NodalAccum {
            mass: a.mass + b.mass,
            momentum: a.momentum + b.momentum,
            energy: a.energy + b.energy,
            kinetic: a.kinetic + b.kinetic,
            max_speed: a.max_speed.max(b.max_speed),
            max_mach: a.max_mach.max(b.max_mach),
        }
    }
}

/// Per-chunk state of the enstrophy reduction: the partial integral plus
/// the element workspace, allocated once per worker chunk (geometry
/// comes from the shared cache).
struct EnstrophyAccum {
    ws: ElementWorkspace,
    gref: [Vec<Vec3>; 3],
    sum: f64,
}

impl EnstrophyAccum {
    fn new(npe: usize) -> EnstrophyAccum {
        EnstrophyAccum {
            ws: ElementWorkspace::new(npe),
            gref: [
                vec![Vec3::ZERO; npe],
                vec![Vec3::ZERO; npe],
                vec![Vec3::ZERO; npe],
            ],
            sum: 0.0,
        }
    }
}

impl std::fmt::Display for FlowDiagnostics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "t={:.4e}  mass={:.8e}  KE={:.6e}  enstrophy={:.6e}  max|u|={:.3e}  maxMach={:.3}",
            self.time,
            self.total_mass,
            self.kinetic_energy,
            self.enstrophy,
            self.max_speed,
            self.max_mach
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gas::GasModel;
    use crate::tgv::TgvConfig;
    use fem_mesh::generator::BoxMeshBuilder;

    fn lumped_mass(mesh: &HexMesh, geometry: &GeometryCache) -> Vec<f64> {
        let mut mass = vec![0.0; mesh.num_nodes()];
        for e in 0..mesh.num_elements() {
            let det_w = geometry.det_w(e);
            for (q, &n) in mesh.element_nodes(e).iter().enumerate() {
                mass[n as usize] += det_w[q];
            }
        }
        mass
    }

    #[test]
    fn tgv_diagnostics_match_analytic_values() {
        let mesh = BoxMeshBuilder::tgv_box(12).build().unwrap();
        let basis = HexBasis::new(1).unwrap();
        let cfg = TgvConfig::standard();
        let gas = cfg.gas();
        let conserved = cfg.initial_state(&mesh);
        let mut prim = Primitives::zeros(mesh.num_nodes());
        prim.update_from(&conserved, &gas);
        let geometry = GeometryCache::build(&mesh, &basis).unwrap();
        let mass = lumped_mass(&mesh, &geometry);
        let d = FlowDiagnostics::compute(
            0.0, &mesh, &basis, &gas, &geometry, &conserved, &prim, &mass,
        );
        let vol = std::f64::consts::TAU.powi(3);
        // Mass ≈ ρ0 · V (density perturbation integrates to ~0).
        assert!((d.total_mass - vol).abs() < 2e-2 * vol, "{}", d.total_mass);
        // Zero net momentum by symmetry.
        assert!(d.total_momentum.norm() < 1e-8 * vol);
        // KE ≈ ρ0 v0² π³ (analytic TGV value).
        let ke_exact = std::f64::consts::PI.powi(3);
        assert!(
            (d.kinetic_energy - ke_exact).abs() < 0.02 * ke_exact,
            "KE {} vs {}",
            d.kinetic_energy,
            ke_exact
        );
        // Initial enstrophy of the TGV equals its initial KE density rate:
        // analytic ∫½|ω|² = 3π³ v0²? — check against a dense reference.
        assert!(d.enstrophy > 0.0);
        assert!((d.max_speed - cfg.v0).abs() < 0.05 * cfg.v0);
        assert!((d.max_mach - cfg.mach).abs() < 0.02 * cfg.mach);
    }

    #[test]
    fn parallel_diagnostics_are_deterministic_within_a_process() {
        // Fixed worker count ⇒ fixed fold chunking ⇒ bitwise-equal
        // reductions on repeat evaluation.
        let mesh = BoxMeshBuilder::tgv_box(7).build().unwrap();
        let basis = HexBasis::new(1).unwrap();
        let cfg = TgvConfig::standard();
        let gas = cfg.gas();
        let conserved = cfg.initial_state(&mesh);
        let mut prim = Primitives::zeros(mesh.num_nodes());
        prim.update_from(&conserved, &gas);
        let geometry = GeometryCache::build(&mesh, &basis).unwrap();
        let mass = lumped_mass(&mesh, &geometry);
        let a = FlowDiagnostics::compute(
            0.0, &mesh, &basis, &gas, &geometry, &conserved, &prim, &mass,
        );
        let b = FlowDiagnostics::compute(
            0.0, &mesh, &basis, &gas, &geometry, &conserved, &prim, &mass,
        );
        assert_eq!(a.total_mass.to_bits(), b.total_mass.to_bits());
        assert_eq!(a.kinetic_energy.to_bits(), b.kinetic_energy.to_bits());
        assert_eq!(a.enstrophy.to_bits(), b.enstrophy.to_bits());
        assert_eq!(a.max_speed.to_bits(), b.max_speed.to_bits());
    }

    #[test]
    fn uniform_state_has_zero_enstrophy() {
        let mesh = BoxMeshBuilder::tgv_box(4).build().unwrap();
        let basis = HexBasis::new(1).unwrap();
        let gas = GasModel::air(1e-5);
        let mut conserved = Conserved::zeros(mesh.num_nodes());
        let u = Vec3::new(5.0, 4.0, -3.0);
        for n in 0..mesh.num_nodes() {
            conserved.rho[n] = 1.0;
            conserved.mom[0][n] = u.x;
            conserved.mom[1][n] = u.y;
            conserved.mom[2][n] = u.z;
            conserved.energy[n] = gas.total_energy(1.0, u, 300.0);
        }
        let mut prim = Primitives::zeros(mesh.num_nodes());
        prim.update_from(&conserved, &gas);
        let geometry = GeometryCache::build(&mesh, &basis).unwrap();
        let mass = lumped_mass(&mesh, &geometry);
        let d = FlowDiagnostics::compute(
            0.0, &mesh, &basis, &gas, &geometry, &conserved, &prim, &mass,
        );
        assert!(d.enstrophy.abs() < 1e-10);
        let vol = std::f64::consts::TAU.powi(3);
        assert!((d.total_momentum - u * vol).norm() < 1e-8 * vol);
    }
}
