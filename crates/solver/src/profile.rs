//! Phase profiler reproducing the measurement behind the paper's Fig 2.
//!
//! The paper profiles its C++ solver and reports the average breakdown of
//! execution time: RK-Diffusion 39.2%, RK-Convection 21.04%, RK-Other
//! 16.13%, Non-RK 23.63%. The solver driver threads every hot block
//! through this profiler so the same breakdown can be measured here.

use std::time::{Duration, Instant};

/// The four phases of Fig 2.
///
/// Since the fused single-contraction kernel landed, viscous elements run
/// one shared weak-divergence contraction: its time is charged half to
/// [`Phase::RkConvection`] and half to [`Phase::RkDiffusion`] (it serves
/// both halves of the fused `F_c − F_v` stage), while the fused flux
/// assembly (gradients, τ, net flux) is all diffusion. Per-stage geometry
/// rebuild time no longer exists — the one-time [`GeometryCache`] build
/// is charged to [`Phase::NonRk`] at construction.
///
/// [`GeometryCache`]: fem_mesh::geometry::GeometryCache
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Viscous (diffusion) term: gradients, τ, heat flux, its half of the
    /// fused weak divergence.
    RkDiffusion,
    /// Convective term: flux evaluation and its half of the fused weak
    /// divergence.
    RkConvection,
    /// Remaining RK work: gather/scatter, RKU update, axpy.
    RkOther,
    /// Everything outside the RK method: diagnostics, setup amortization
    /// (including the one-time geometry-cache build).
    NonRk,
}

impl Phase {
    /// All phases in Fig 2 order.
    pub const ALL: [Phase; 4] = [
        Phase::RkDiffusion,
        Phase::RkConvection,
        Phase::RkOther,
        Phase::NonRk,
    ];

    /// Human-readable label matching the paper's legend.
    pub fn label(self) -> &'static str {
        match self {
            Phase::RkDiffusion => "RK(Diffusion)",
            Phase::RkConvection => "RK(Convection)",
            Phase::RkOther => "RK(Other)",
            Phase::NonRk => "Non-RK",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::RkDiffusion => 0,
            Phase::RkConvection => 1,
            Phase::RkOther => 2,
            Phase::NonRk => 3,
        }
    }
}

/// Accumulates wall-clock time per [`Phase`].
///
/// # Example
///
/// ```
/// use fem_solver::profile::{Phase, PhaseProfiler};
/// let mut prof = PhaseProfiler::new();
/// prof.time(Phase::NonRk, || std::thread::sleep(std::time::Duration::from_millis(1)));
/// assert!(prof.total(Phase::NonRk).as_micros() >= 1000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PhaseProfiler {
    totals: [Duration; 4],
}

impl PhaseProfiler {
    /// Fresh profiler with zero accumulated time.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times `f` and charges the elapsed wall-clock time to `phase`.
    pub fn time<R>(&mut self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.totals[phase.index()] += start.elapsed();
        out
    }

    /// Adds an externally measured duration to `phase`.
    pub fn add(&mut self, phase: Phase, d: Duration) {
        self.totals[phase.index()] += d;
    }

    /// Adds every phase total of `other` into `self`.
    ///
    /// This is how the parallel assembly strategies report per-stage
    /// attribution: each worker accumulates into a thread-local profiler
    /// and the locals are merged afterwards. The merged totals are
    /// **summed thread time**, so under a parallel strategy
    /// [`PhaseProfiler::grand_total`] can exceed wall-clock time; the
    /// *relative* Fig 2 breakdown stays meaningful.
    pub fn merge(&mut self, other: &PhaseProfiler) {
        for (t, o) in self.totals.iter_mut().zip(&other.totals) {
            *t += *o;
        }
    }

    /// Accumulated time in `phase`.
    pub fn total(&self, phase: Phase) -> Duration {
        self.totals[phase.index()]
    }

    /// Sum over all phases.
    pub fn grand_total(&self) -> Duration {
        self.totals.iter().sum()
    }

    /// Percentage breakdown in [`Phase::ALL`] order; zeros when nothing was
    /// recorded.
    pub fn breakdown_percent(&self) -> [f64; 4] {
        let total = self.grand_total().as_secs_f64();
        if total == 0.0 {
            return [0.0; 4];
        }
        let mut out = [0.0; 4];
        for (i, d) in self.totals.iter().enumerate() {
            out[i] = 100.0 * d.as_secs_f64() / total;
        }
        out
    }

    /// Share of total time spent inside the RK method (the paper reports
    /// 76.5% on average).
    pub fn rk_fraction(&self) -> f64 {
        let total = self.grand_total().as_secs_f64();
        if total == 0.0 {
            return 0.0;
        }
        let rk: f64 = [Phase::RkDiffusion, Phase::RkConvection, Phase::RkOther]
            .iter()
            .map(|&p| self.total(p).as_secs_f64())
            .sum();
        rk / total
    }

    /// Clears all accumulated time.
    pub fn reset(&mut self) {
        self.totals = [Duration::ZERO; 4];
    }
}

impl std::fmt::Display for PhaseProfiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let pct = self.breakdown_percent();
        writeln!(f, "execution time breakdown (cf. paper Fig 2):")?;
        for (i, phase) in Phase::ALL.iter().enumerate() {
            writeln!(
                f,
                "  {:<15} {:>6.2}%  ({:.3?})",
                phase.label(),
                pct[i],
                self.totals[i]
            )?;
        }
        write!(f, "  RK fraction     {:>6.2}%", 100.0 * self.rk_fraction())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_profiler_reports_zeros() {
        let p = PhaseProfiler::new();
        assert_eq!(p.breakdown_percent(), [0.0; 4]);
        assert_eq!(p.rk_fraction(), 0.0);
        assert_eq!(p.grand_total(), Duration::ZERO);
    }

    #[test]
    fn percentages_sum_to_hundred() {
        let mut p = PhaseProfiler::new();
        p.add(Phase::RkDiffusion, Duration::from_millis(392));
        p.add(Phase::RkConvection, Duration::from_millis(210));
        p.add(Phase::RkOther, Duration::from_millis(161));
        p.add(Phase::NonRk, Duration::from_millis(237));
        let pct = p.breakdown_percent();
        let sum: f64 = pct.iter().sum();
        assert!((sum - 100.0).abs() < 1e-9);
        assert!((pct[0] - 39.2).abs() < 0.1);
        assert!((p.rk_fraction() - 0.763).abs() < 0.01);
    }

    #[test]
    fn time_accumulates_and_returns_value() {
        let mut p = PhaseProfiler::new();
        let x = p.time(Phase::RkOther, || 41 + 1);
        assert_eq!(x, 42);
        assert!(p.total(Phase::RkOther) > Duration::ZERO);
        p.reset();
        assert_eq!(p.grand_total(), Duration::ZERO);
    }

    #[test]
    fn merge_sums_per_phase() {
        let mut a = PhaseProfiler::new();
        a.add(Phase::RkConvection, Duration::from_millis(10));
        a.add(Phase::NonRk, Duration::from_millis(1));
        let mut b = PhaseProfiler::new();
        b.add(Phase::RkConvection, Duration::from_millis(5));
        b.add(Phase::RkDiffusion, Duration::from_millis(7));
        a.merge(&b);
        assert_eq!(a.total(Phase::RkConvection), Duration::from_millis(15));
        assert_eq!(a.total(Phase::RkDiffusion), Duration::from_millis(7));
        assert_eq!(a.total(Phase::NonRk), Duration::from_millis(1));
        assert_eq!(a.grand_total(), Duration::from_millis(23));
    }

    #[test]
    fn display_contains_labels() {
        let mut p = PhaseProfiler::new();
        p.add(Phase::NonRk, Duration::from_millis(5));
        let s = format!("{p}");
        assert!(s.contains("RK(Diffusion)"));
        assert!(s.contains("Non-RK"));
    }
}
